"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper, at
reduced trial counts (seeds per cell) so the whole suite completes in
tens of minutes; EXPERIMENTS.md records paper-vs-measured values.
"""

import numpy as np
import pytest

from repro.wehe.corpus import generate_corpus, tdiff_distribution


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        action="store",
        type=int,
        default=None,
        help="worker processes for sweep-based figure suites "
             "(default: all cores; 1 forces serial execution)",
    )
    parser.addoption(
        "--store",
        action="store",
        default=None,
        metavar="DIR",
        help="experiment-store root: sweep suites reuse cached cells "
             "and checkpoint completed cells, so an interrupted "
             "benchmark run resumes instead of restarting",
    )


@pytest.fixture(scope="session")
def jobs(request):
    """Sweep parallelism, from ``--jobs`` (None = all cores)."""
    return request.config.getoption("--jobs")


@pytest.fixture(scope="session")
def store(request):
    """Shared :class:`ExperimentStore`, from ``--store`` (None = off)."""
    root = request.config.getoption("--store")
    if root is None:
        return None
    from repro.store import ExperimentStore

    return ExperimentStore(root)


@pytest.fixture(scope="session")
def tdiff():
    """T_diff from the synthetic historical corpus (seeded)."""
    corpus = generate_corpus(np.random.default_rng(1234))
    return tdiff_distribution(corpus)


def print_header(title):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def print_row(label, value):
    print(f"  {label:<44} {value}")
