"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper, at
reduced trial counts (seeds per cell) so the whole suite completes in
tens of minutes; EXPERIMENTS.md records paper-vs-measured values.
"""

import numpy as np
import pytest

from repro.wehe.corpus import generate_corpus, tdiff_distribution


@pytest.fixture(scope="session")
def tdiff():
    """T_diff from the synthetic historical corpus (seeded)."""
    corpus = generate_corpus(np.random.default_rng(1234))
    return tdiff_distribution(corpus)


def print_header(title):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def print_row(label, value):
    print(f"  {label:<44} {value}")
