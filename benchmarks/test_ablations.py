"""Ablations of WeHeY's design choices (DESIGN.md's ablation index).

Each ablation turns one design element off and measures the effect on
the same scenario set:

1. interval-size sweep density -- Algorithm 1's `(1-FP)|Sigma|` rule
   over every multiple 10..50 RTT vs a sparse 9-size sweep;
2. trace modification (pacing / Poisson) -- also covered by Figure 6,
   measured here on the FP side;
3. the Section-7 extensions: per-flow throttling without and with
   WeHeY's flow-merging countermeasure, and a BBR-like sender in place
   of Cubic.
"""

import numpy as np
from conftest import print_header, print_row

from repro.core.localizer import WeHeYLocalizer
from repro.core.loss_correlation import LossTrendCorrelation
from repro.experiments.runner import NetsimReplayService, run_detection_experiment
from repro.experiments.scenarios import ScenarioConfig
from repro.experiments.wild import default_tdiff
from repro.wehe.apps import make_trace
from repro.wehe.traces import bit_invert

SEEDS = range(3)


def sweep_density_ablation():
    dense = LossTrendCorrelation()  # 41 sizes
    sparse = LossTrendCorrelation(rtt_multiples=(10, 15, 20, 25, 30, 35, 40, 45, 50))
    results = {"dense": [0, 0], "sparse": [0, 0]}
    for seed in SEEDS:
        config = ScenarioConfig(app="netflix", limiter="common", seed=seed)
        record = run_detection_experiment(
            config, detectors={"dense": dense, "sparse": sparse}
        )
        for name in results:
            results[name][0] += record.verdicts[name]
            results[name][1] += 1
    return results


def per_flow_extension():
    outcomes = {}
    for merge in (False, True):
        localized = 0
        for seed in SEEDS:
            config = ScenarioConfig(app="zoom", limiter="perflow", seed=seed)
            service = NetsimReplayService(config, merge_flows=merge)
            trace = make_trace("zoom", config.duration, service._trace_rng)
            localizer = WeHeYLocalizer(
                np.random.default_rng(seed), default_tdiff()
            )
            report = localizer.localize(service, trace, bit_invert(trace))
            localized += report.localized
        outcomes[merge] = localized
    return outcomes


def bbr_replay_comparison():
    """Algorithm 1 under BBR-like replay flows (Section 7's question)."""
    from repro.netsim.bbr import BbrSender

    detections = {"cubic": 0, "bbr": 0}
    for seed in SEEDS:
        for flavour in detections:
            config = ScenarioConfig(app="netflix", limiter="common", seed=seed)
            service = NetsimReplayService(config)
            trace = make_trace("netflix", config.duration, service._trace_rng)
            if flavour == "bbr":
                import repro.wehe.replay as replay_module

                original_sender = replay_module.TcpSender
                replay_module.TcpSender = BbrSender
                try:
                    result = service.simultaneous_replay(trace)
                finally:
                    replay_module.TcpSender = original_sender
            else:
                result = service.simultaneous_replay(trace)
            verdict = LossTrendCorrelation().detect(
                result.measurements_1, result.measurements_2
            )
            detections[flavour] += verdict.common_bottleneck
    return detections


def test_ablations(benchmark):
    density, per_flow, bbr = benchmark.pedantic(
        lambda: (sweep_density_ablation(), per_flow_extension(), bbr_replay_comparison()),
        rounds=1,
        iterations=1,
    )
    print_header("Ablations of WeHeY design choices")
    for name, (detected, total) in density.items():
        print_row(f"sigma sweep = {name}", f"detected {detected}/{total}")
    print_row(
        "per-flow limiter, replays unmerged (limitation)",
        f"localized {per_flow[False]}/{len(list(SEEDS))}",
    )
    print_row(
        "per-flow limiter, flows merged (Section-7 remedy)",
        f"localized {per_flow[True]}/{len(list(SEEDS))}",
    )
    for flavour, detected in bbr.items():
        print_row(f"replay congestion control = {flavour}",
                  f"detected {detected}/{len(list(SEEDS))}")
    # Shapes: the dense sweep must not underperform the sparse one;
    # flow merging must rescue the per-flow case.
    assert density["dense"][0] >= density["sparse"][0]
    assert per_flow[True] > per_flow[False]
