"""Figure 2: O_diff vs T_diff in the two throughput-comparison regimes.

Paper: in the per-client-throttling scenario the X and Y CDFs overlap
and the MWU p-value is 7.54e-18 (detect); in the shared-with-other-
traffic scenario they do not overlap and p = 0.99 (no detection).
"""

import numpy as np
from conftest import print_header, print_row

from repro.core.throughput_comparison import (
    ThroughputComparison,
    aggregate_simultaneous_samples,
)
from repro.experiments.wild import WILD_ISPS, WildReplayService
from repro.experiments.runner import NetsimReplayService
from repro.experiments.scenarios import ScenarioConfig
from repro.wehe.apps import make_trace


def run_per_client_scenario(tdiff):
    """Figure 2a: per-client policer (X ~= Y)."""
    service = WildReplayService(WILD_ISPS["ISP1"], "netflix", seed=3)
    trace = make_trace("netflix", service.duration, service._trace_rng)
    x = service.single_replay(trace)
    sim = service.simultaneous_replay(trace)
    y = aggregate_simultaneous_samples(sim.samples_1, sim.samples_2)
    rng = np.random.default_rng(90)
    return ThroughputComparison(rng).detect(x, y, tdiff), x, y


def run_shared_scenario(tdiff):
    """Figure 2b: collective limiter shared with background traffic."""
    config = ScenarioConfig(app="netflix", limiter="common", duration=45.0, seed=4)
    service = NetsimReplayService(config)
    trace = make_trace("netflix", config.duration, service._trace_rng)
    x = service.single_replay(trace)
    sim = service.simultaneous_replay(trace)
    y = aggregate_simultaneous_samples(sim.samples_1, sim.samples_2)
    rng = np.random.default_rng(91)
    return ThroughputComparison(rng).detect(x, y, tdiff), x, y


def test_fig2_odiff_tdiff(benchmark, tdiff):
    (per_client, x_a, y_a), (shared, x_b, y_b) = benchmark.pedantic(
        lambda: (run_per_client_scenario(tdiff), run_shared_scenario(tdiff)),
        rounds=1,
        iterations=1,
    )
    print_header("Figure 2: throughput comparison in the two regimes")
    print_row("(a) per-client: X mean / Y mean (Mb/s)",
              f"{per_client.x_mean_bps/1e6:.2f} / {per_client.y_mean_bps/1e6:.2f}")
    print_row("(a) |O_diff| median vs |T_diff| median",
              f"{np.median(per_client.odiff):.3f} vs {np.median(per_client.tdiff):.3f}")
    print_row("(a) MWU p-value (paper 7.5e-18)", f"{per_client.pvalue:.2e}")
    print_row("(a) common bottleneck detected", per_client.common_bottleneck)
    print_row("(b) shared: X mean / Y mean (Mb/s)",
              f"{shared.x_mean_bps/1e6:.2f} / {shared.y_mean_bps/1e6:.2f}")
    print_row("(b) |O_diff| median vs |T_diff| median",
              f"{np.median(shared.odiff):.3f} vs {np.median(shared.tdiff):.3f}")
    print_row("(b) MWU p-value (paper 0.99)", f"{shared.pvalue:.2f}")
    print_row("(b) common bottleneck detected", shared.common_bottleneck)
    assert per_client.common_bottleneck
    assert per_client.pvalue < 1e-6
    assert not shared.common_bottleneck
    assert shared.pvalue > 0.5
