"""Figure 3: BinLossTomo's loss-threshold sensitivity.

Paper: with a rate limiter on the common link (average loss ~0.04,
30 s measurement, sigma = 0.6 s), the inferred performance of l1 is
not the expected flat 100%, and near tau = 0.04 the inferred curves of
lc and l1 approach/cross -- binary tomography mistakenly attributes
part of the loss to the non-common link.
"""

import numpy as np
from conftest import print_header, print_row

from repro.core.tomography import BinLossTomo
from repro.experiments.runner import NetsimReplayService
from repro.experiments.scenarios import ScenarioConfig
from repro.wehe.apps import make_trace

TAUS = (0.005, 0.01, 0.02, 0.03, 0.035, 0.04, 0.045, 0.05, 0.07, 0.1)
SIGMA = 0.6


def run_fig3():
    config = ScenarioConfig(
        app="netflix",
        limiter="common",
        input_rate_factor=1.5,
        duration=30.0,
        seed=8,
    )
    service = NetsimReplayService(config)
    trace = make_trace("netflix", config.duration, service._trace_rng)
    result = service.simultaneous_replay(trace)
    m1, m2 = result.measurements_1, result.measurements_2
    curves = []
    for tau in TAUS:
        inferred = BinLossTomo(SIGMA, tau).infer(m1, m2)
        curves.append((tau, inferred.x_c, inferred.x_1, inferred.x_2))
    return curves, m1.loss_rate, m2.loss_rate


def test_fig3_threshold_sensitivity(benchmark):
    curves, loss_1, loss_2 = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    print_header("Figure 3: BinLossTomo inferred performance vs loss threshold")
    print_row("path loss rates (limiter on lc only)", f"{loss_1:.3f} / {loss_2:.3f}")
    print(f"  {'tau':>8} {'x_c':>8} {'x_1':>8} {'x_2':>8}")
    for tau, x_c, x_1, x_2 in curves:
        print(f"  {tau:>8.3f} {x_c:>8.2f} {x_1:>8.2f} {x_2:>8.2f}")
    x_c = np.array([c[1] for c in curves])
    x_1 = np.array([c[2] for c in curves])
    # The paper's failure signature: if tomography were right, x_1
    # would sit at 1.0 for every threshold (l1 loses nothing).  Instead
    # there are thresholds where the gap closes or inverts.
    gaps = x_1 - x_c
    print_row("min / max gap x_1 - x_c", f"{gaps.min():.2f} / {gaps.max():.2f}")
    assert gaps.min() < 0.25, "expected near-crossing of the inferred curves"
    assert (x_1 < 0.97).any(), "x_1 should be (wrongly) blamed at some threshold"
