"""Figure 4: ISP5's delayed fixed-rate throttling.

Paper: against ISP5, throughput drops to 2.5 Mb/s after ~22 s in the
single replay but already after ~5 s in the simultaneous replay
(two servers stream concurrently, so the trigger criterion trips
earlier), which is why the throughput comparison fails.
"""

import numpy as np
from conftest import print_header, print_row

from repro.experiments.wild import WILD_ISPS, WildReplayService
from repro.wehe.apps import make_trace


def throttle_onset(samples, duration, threshold_bps, smooth=7):
    """First time the smoothed throughput stays below the threshold.

    Video replays are chunky (burst, idle, burst); a moving average
    over ~3 s removes the chunk texture before the onset scan.
    """
    kernel = np.ones(smooth) / smooth
    smoothed = np.convolve(samples, kernel, mode="same")
    times = np.linspace(0, duration, len(smoothed))
    below = smoothed < threshold_bps
    for i in range(len(smoothed)):
        if below[i:].mean() > 0.9:
            return times[i]
    return duration


def run_fig4():
    isp = WILD_ISPS["ISP5"]
    service = WildReplayService(isp, "netflix", seed=2, duration=45.0)
    trace = make_trace("netflix", service.duration, service._trace_rng)
    x = service.single_replay(trace)
    sim = service.simultaneous_replay(trace)
    threshold = isp.throttle_rate_bps * 1.3
    onset_single = throttle_onset(x, service.duration, threshold)
    aggregate = sim.samples_1[: len(sim.samples_2)] + sim.samples_2[: len(sim.samples_1)]
    onset_sim = throttle_onset(aggregate, service.duration, threshold)
    return x, aggregate, onset_single, onset_sim


def test_fig4_delayed_trigger(benchmark):
    x, y, onset_single, onset_sim = benchmark.pedantic(
        run_fig4, rounds=1, iterations=1
    )
    print_header("Figure 4: ISP5 throughput over time, single vs simultaneous")
    print_row("single replay mean (Mb/s)", f"{x.mean()/1e6:.2f}")
    print_row("simultaneous aggregate mean (Mb/s)", f"{y.mean()/1e6:.2f}")
    print_row("throttle onset, single replay (paper ~22 s)", f"{onset_single:.1f} s")
    print_row("throttle onset, simultaneous (paper ~5 s)", f"{onset_sim:.1f} s")
    # Shape: the simultaneous replay trips the criterion much earlier.
    assert onset_sim < onset_single * 0.75
    # Early single-replay throughput is far above the late throttled rate.
    early = x[: len(x) // 4].mean()
    late = x[-len(x) // 4 :].mean()
    assert early > 1.5 * late
