"""Figure 5: retransmission rates and queuing delays of the emulation
grid vs "wild" WeHe tests.

Paper: the emulation experiments' retransmission-rate quartiles cover
the full range seen in past WeHe tests that detected differentiation,
and a significant fraction of the delay range.  We compare our
Section-6.2 grid against the per-client wild-ISP models standing in
for the WeHe corpus.
"""

from conftest import print_header, print_row

from repro.experiments.runner import NetsimReplayService
from repro.experiments.scenarios import ScenarioConfig
from repro.experiments.wild import WILD_ISPS, WildReplayService
from repro.stats.empirical import summarize
from repro.wehe.apps import make_trace

GRID_FACTORS = (1.3, 1.5, 2.0, 2.5)
GRID_QUEUES = (0.25, 0.5, 1.0)


def emulation_samples():
    retx, delay = [], []
    for i, factor in enumerate(GRID_FACTORS):
        for j, queue in enumerate(GRID_QUEUES):
            config = ScenarioConfig(
                app="netflix",
                limiter="common",
                input_rate_factor=factor,
                queue_factor=queue,
                duration=30.0,
                seed=20 + i * 10 + j,
            )
            service = NetsimReplayService(config)
            trace = make_trace("netflix", config.duration, service._trace_rng)
            result = service.simultaneous_replay(trace)
            retx.append(result.mean_retx_rate)
            delay.append(result.mean_queuing_delay)
    return retx, delay


def wild_samples():
    retx, delay = [], []
    for isp_name in ("ISP1", "ISP2", "ISP3", "ISP4"):
        service = WildReplayService(WILD_ISPS[isp_name], "netflix", seed=7,
                                    duration=30.0)
        trace = make_trace("netflix", service.duration, service._trace_rng)
        result = service.simultaneous_replay(trace)
        retx.append(result.mean_retx_rate)
        delay.append(result.mean_queuing_delay)
    return retx, delay


def test_fig5_replay_properties(benchmark):
    (em_retx, em_delay), (wild_retx, wild_delay) = benchmark.pedantic(
        lambda: (emulation_samples(), wild_samples()), rounds=1, iterations=1
    )
    print_header("Figure 5: original-replay properties, emulation vs wild")
    for label, samples in (
        ("(a) retx rate, emulation grid", em_retx),
        ("(a) retx rate, wild models", wild_retx),
    ):
        stats = summarize(samples)
        print_row(label, f"q1={stats['q1']:.3f} med={stats['median']:.3f} "
                         f"q3={stats['q3']:.3f} max={stats['max']:.3f}")
    for label, samples in (
        ("(b) queuing delay (ms), emulation grid", [d * 1e3 for d in em_delay]),
        ("(b) queuing delay (ms), wild models", [d * 1e3 for d in wild_delay]),
    ):
        stats = summarize(samples)
        print_row(label, f"q1={stats['q1']:.1f} med={stats['median']:.1f} "
                         f"q3={stats['q3']:.1f} max={stats['max']:.1f}")
    em = summarize(em_retx)
    wild = summarize(wild_retx)
    # The paper's claim is that the emulation grid spans the conditions
    # seen in the wild; at our scale (pure per-client wild models with
    # a narrow retx band) we assert the ranges overlap or nearly touch
    # on both axes rather than strict quartile coverage.
    assert em["min"] <= wild["max"] * 2.0, "emulation misses the wild retx regime"
    assert wild["min"] <= em["max"], "wild retx beyond the emulated range"
    em_d = summarize([d * 1e3 for d in em_delay])
    wild_d = summarize([d * 1e3 for d in wild_delay])
    assert em_d["min"] <= wild_d["max"] and wild_d["min"] <= em_d["max"]
    # Larger queue factors emulate shaping: some delay spread expected.
    assert max(em_delay) > min(em_delay)
