"""Figure 6: false-negative rate of alternative designs.

Paper: replacing loss-trend correlation with the best classic-
tomography algorithm (BinLossTomoNoParams) raises TCP FN by 66-82%,
and replaying unmodified traces raises it further by 3-11%; for UDP,
tomography does better than with TCP but still yields non-zero FN
while WeHeY's design stays at 0.
"""

from conftest import print_header, print_row

from repro.core.loss_correlation import LossTrendCorrelation
from repro.core.tomography import BinLossTomoNoParams
from repro.experiments.metrics import RateCounter
from repro.experiments.runner import run_detection_experiment
from repro.experiments.scenarios import ScenarioConfig

SEEDS = range(3)
FACTORS = (1.5, 2.0)
APPS = ("netflix", "zoom", "skype")

DETECTORS = {
    "loss_trend": LossTrendCorrelation(),
    "tomography": BinLossTomoNoParams(rtt_multiples=(10, 20, 30, 40, 50)),
}


def run_fig6():
    results = {}
    for app in APPS:
        for modified in (True, False):
            counters = {name: RateCounter() for name in DETECTORS}
            for factor in FACTORS:
                for seed in SEEDS:
                    config = ScenarioConfig(
                        app=app,
                        limiter="common",
                        input_rate_factor=factor,
                        duration=45.0,
                        seed=seed,
                    )
                    record = run_detection_experiment(
                        config, detectors=DETECTORS, modified=modified
                    )
                    if not record.differentiation_visible:
                        continue
                    for name in DETECTORS:
                        counters[name].record(True, record.verdict(name))
            results[(app, modified)] = counters
    return results


def test_fig6_alternative_designs(benchmark):
    results = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    print_header("Figure 6: FN of alternative designs (per app, modified?)")
    for (app, modified), counters in sorted(results.items()):
        tag = "modified " if modified else "unmodified"
        print_row(
            f"{app:<10} {tag}",
            "  ".join(
                f"{name}: {c.false_negatives}/{c.positives}"
                for name, c in counters.items()
            ),
        )
    # Aggregate shape: WeHeY's design (loss trend on modified traces)
    # must beat classic tomography overall.
    wehey_fn = sum(
        counters["loss_trend"].false_negatives
        for (app, modified), counters in results.items()
        if modified
    )
    wehey_n = sum(
        counters["loss_trend"].positives
        for (app, modified), counters in results.items()
        if modified
    )
    tomo_fn = sum(
        counters["tomography"].false_negatives
        for (app, modified), counters in results.items()
        if modified
    )
    assert wehey_n > 0
    assert wehey_fn <= tomo_fn, "loss-trend correlation must not lose to tomography"
    assert wehey_fn / wehey_n < 0.5
