"""Figure 7 / "FN under severe throttling".

Paper: with 25/50/75% of the background directed to the rate limiter,
overall FN was 19.2%, and false negatives concentrated in TCP
experiments with retransmission rates above 20% -- beyond that point
desynchronization overwhelms the correlation signal.
"""

from conftest import print_header, print_row

from repro.experiments.scenarios import ScenarioConfig
from repro.api import SweepRequest, run_sweep

SHARES = (0.25, 0.5, 0.75)
FACTORS = (1.5, 2.5)
SEEDS = range(2)


def run_fig7(jobs=None, store=None):
    # Hold the marked-background rate constant across the share sweep
    # (the paper recalibrates rate/queue per cell); otherwise low
    # shares let the two replays dominate the class, which Algorithm 1
    # does not claim to handle.
    configs = [
        ScenarioConfig(
            app="netflix",
            limiter="common",
            background_share=share,
            background_rate_bps=10e6 / share,
            input_rate_factor=factor,
            duration=45.0,
            seed=40 + seed,
        )
        for share in SHARES
        for factor in FACTORS
        for seed in SEEDS
    ]
    records = run_sweep(
        SweepRequest.detection(configs, jobs=jobs, store=store)
    ).results
    return [
        (record.retx_rate, record.queuing_delay, record.verdicts["loss_trend"])
        for record in records
        if record.differentiation_visible
    ]


def test_fig7_severe_throttling(benchmark, jobs, store):
    points = benchmark.pedantic(
        run_fig7, args=(jobs, store), rounds=1, iterations=1
    )
    print_header("Figure 7: (retx rate, queuing delay) vs detection outcome")
    for retx, delay, detected in sorted(points):
        marker = "TP" if detected else "FN"
        print_row(f"retx={retx:.3f} delay={delay*1e3:.1f} ms", marker)
    low = [d for r, _, d in points if r <= 0.20]
    high = [d for r, _, d in points if r > 0.20]
    fn_low = 1.0 - (sum(low) / len(low)) if low else 0.0
    fn_high = 1.0 - (sum(high) / len(high)) if high else None
    print_row("FN rate at retx <= 20% (paper: low)", f"{fn_low:.0%} of {len(low)}")
    if fn_high is not None:
        print_row(
            "FN rate at retx > 20% (paper: high)", f"{fn_high:.0%} of {len(high)}"
        )
    assert points, "no experiment produced visible differentiation"
    # Shape: the moderate-retx regime detects most of the time.
    assert fn_low <= 0.5
