"""Table 1: localization success rate against five wild ISPs.

Paper: ISP1 89.8%, ISP2 89.83%, ISP3 94%, ISP4 98.18%, ISP5 16.28% --
the throughput-comparison algorithm localizes per-client throttling for
four ISPs and fails against ISP5's delayed-trigger policy.  The paper's
sanity-check tests (a third concurrent replay) yielded exactly one
false detection; ours should likewise almost never detect.
"""

from conftest import print_header, print_row

from repro.experiments.wild import WILD_ISPS, run_wild_test

SEEDS_PER_ISP = 6
SANITY_SEEDS = 3
APPS = ("netflix", "youtube")


def run_table1(tdiff):
    rates = {}
    for isp_name in WILD_ISPS:
        localized = 0
        total = 0
        for seed in range(SEEDS_PER_ISP):
            app = APPS[seed % len(APPS)]
            report = run_wild_test(isp_name, app=app, seed=seed, tdiff=tdiff)
            localized += report.localized
            total += 1
        rates[isp_name] = localized / total
    sanity_detections = 0
    for seed in range(SANITY_SEEDS):
        report = run_wild_test(
            "ISP1", app="netflix", seed=100 + seed, sanity_check=True, tdiff=tdiff
        )
        sanity_detections += report.localized
    return rates, sanity_detections


def test_table1_wild_localization(benchmark, tdiff):
    rates, sanity = benchmark.pedantic(
        run_table1, args=(tdiff,), rounds=1, iterations=1
    )
    print_header(
        "Table 1: successful localization rate in five (modelled) ISPs"
    )
    paper = {"ISP1": 0.898, "ISP2": 0.8983, "ISP3": 0.94, "ISP4": 0.9818,
             "ISP5": 0.1628}
    for isp_name, rate in rates.items():
        print_row(
            f"{isp_name} (paper {paper[isp_name]:.0%})",
            f"{rate:.0%}  ({SEEDS_PER_ISP} tests)",
        )
    print_row("sanity-check false detections", f"{sanity}/{SANITY_SEEDS}")
    # Shape assertions: ISPs 1-4 localize most of the time; the
    # delayed-trigger ISP5 rarely does; sanity checks almost never.
    for isp_name in ("ISP1", "ISP2", "ISP3", "ISP4"):
        assert rates[isp_name] >= 0.5, f"{isp_name} localization collapsed"
    assert rates["ISP5"] <= 0.5, "ISP5's delayed trigger should defeat the test"
    assert sanity <= 1
