"""Table 3: false-negative rate as the second path's RTT grows.

Paper: RTT_1 = 35 ms fixed; RTT_2 in {15, 25, 35, 60, 120} ms.  FN is
stable until RTT_2 = 120 ms, where it jumps to 50% (TCP) and 21.33%
(UDP) -- larger RTTs mean larger interval sizes, hence fewer intervals
per experiment and an often-inconclusive Spearman test.
"""

from conftest import print_header, print_row

from repro.experiments.metrics import RateCounter
from repro.experiments.scenarios import rtt_grid
from repro.api import SweepRequest, run_sweep

RTT2_VALUES = (0.015, 0.035, 0.060, 0.120)
SEEDS = range(3)
APPS = ("netflix", "zoom")


def run_table3(jobs=None, store=None):
    configs = [
        config
        for app in APPS
        for config in rtt_grid(
            app,
            (50 + seed for seed in SEEDS),
            rtts=RTT2_VALUES,
            limiter="common",
            rtt_1=0.035,
            duration=45.0,
        )
    ]
    records = run_sweep(
        SweepRequest.detection(configs, jobs=jobs, store=store)
    ).results
    table = {}
    for config, record in zip(configs, records):
        key = (config.app, config.rtt_2)
        counter = table.setdefault(key, RateCounter())
        if not record.differentiation_visible:
            continue
        counter.record(True, record.verdicts["loss_trend"])
    return table


def test_table3_rtt_sweep(benchmark, jobs, store):
    table = benchmark.pedantic(
        run_table3, args=(jobs, store), rounds=1, iterations=1
    )
    print_header("Table 3: FN vs RTT_2 (paper: stable until 120 ms)")
    for (app, rtt_2), counter in sorted(table.items()):
        print_row(f"{app:<10} RTT2={rtt_2*1e3:>5.0f} ms",
                  f"FN {counter.false_negatives}/{counter.positives}")
    # Shape: moderate RTTs should not be catastrophically worse than
    # the 35 ms baseline; the 120 ms cells may degrade (paper: they do).
    for app in APPS:
        moderate_fn = sum(
            table[(app, rtt)].false_negatives for rtt in (0.015, 0.035, 0.060)
        )
        moderate_n = sum(
            table[(app, rtt)].positives for rtt in (0.015, 0.035, 0.060)
        )
        assert moderate_n > 0
        assert moderate_fn / moderate_n <= 0.5
