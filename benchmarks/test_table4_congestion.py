"""Table 4: false negatives under severe congestion on l1 and l2.

Paper: with the non-common links' load factor at 0.95 / 1.05 / 1.15,
FN grows (UDP 0% -> 0.38% -> 2.38%; TCP 19.3% -> 28% -> 34.88%): the
non-common links become the dominant bottleneck and the two paths'
loss rates decorrelate.  The paper argues these are arguably not real
false negatives -- the differentiation is no longer the dominant cause
of loss.
"""

from conftest import print_header, print_row

from repro.experiments.metrics import RateCounter
from repro.experiments.scenarios import congestion_grid
from repro.api import SweepRequest, run_sweep

CONGESTION = (0.2, 0.95, 1.15)
SEEDS = range(3)
APPS = ("zoom", "netflix")


def run_table4(jobs=None, store=None):
    configs = [
        config
        for app in APPS
        for config in congestion_grid(
            app,
            (60 + seed for seed in SEEDS),
            factors=CONGESTION,
            limiter="common",
            duration=45.0,
        )
    ]
    records = run_sweep(
        SweepRequest.detection(configs, jobs=jobs, store=store)
    ).results
    table = {}
    for config, record in zip(configs, records):
        counter = table.setdefault((config.app, config.congestion_factor), RateCounter())
        if not record.differentiation_visible:
            continue
        counter.record(True, record.verdicts["loss_trend"])
    return table


def test_table4_congestion(benchmark, jobs, store):
    table = benchmark.pedantic(
        run_table4, args=(jobs, store), rounds=1, iterations=1
    )
    print_header("Table 4: FN under congestion on the non-common links")
    for (app, congestion), counter in sorted(table.items()):
        print_row(f"{app:<10} load={congestion:.2f}",
                  f"FN {counter.false_negatives}/{counter.positives}")
    # Shape: congestion must not *improve* detection for UDP; the
    # uncongested baseline should be the best cell per app.
    for app in APPS:
        base = table[(app, 0.2)]
        worst = table[(app, 1.15)]
        if base.positives and worst.positives:
            assert base.fn_rate <= worst.fn_rate + 0.34
