"""Table 5: false positives under identical rate limiters.

Paper: with independent but *identically configured* rate limiters on
l1 and l2 (the most adversarial imaginable FP scenario), the
loss-trend correlation algorithm stays at or below the 5% target
(TCP 1.13%, UDP apps 1.67-3.75%).
"""

from conftest import print_header, print_row

from repro.experiments.metrics import RateCounter
from repro.experiments.scenarios import ScenarioConfig
from repro.api import SweepRequest, run_sweep

SEEDS = range(4)
FACTORS = (1.5, 2.0)
APPS = ("netflix", "zoom", "skype", "msteams")


def run_table5(jobs=None, store=None):
    configs = [
        ScenarioConfig(
            app=app,
            limiter="noncommon",
            input_rate_factor=factor,
            duration=45.0,
            seed=70 + seed,
        )
        for app in APPS
        for factor in FACTORS
        for seed in SEEDS
    ]
    records = run_sweep(
        SweepRequest.detection(configs, jobs=jobs, store=store)
    ).results
    table = {}
    for config, record in zip(configs, records):
        counter = table.setdefault(config.app, RateCounter())
        counter.record(False, record.verdicts["loss_trend"])
    return table


def test_table5_false_positives(benchmark, jobs, store):
    table = benchmark.pedantic(
        run_table5, args=(jobs, store), rounds=1, iterations=1
    )
    print_header(
        "Table 5: FP under identical limiters on l1/l2 (target 5%, paper 1-4%)"
    )
    total_fp = 0
    total_n = 0
    for app, counter in table.items():
        print_row(app, f"FP {counter.false_positives}/{counter.negatives}")
        total_fp += counter.false_positives
        total_n += counter.negatives
    rate = total_fp / total_n
    print_row("overall FP rate", f"{rate:.1%} (target 5%)")
    # One-sided binomial bound: with n = 32 and a true FP rate at the
    # 5% target, P(X >= 5) ~= 0.02 < 0.05 while P(X >= 4) ~= 0.07, so
    # only 5+ detections are statistically inconsistent with the
    # target.  (EXPERIMENTS.md discusses the measured rate.)
    assert total_fp <= 4, f"FP {total_fp}/{total_n} inconsistent with 5% target"
