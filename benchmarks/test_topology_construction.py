"""Section 3.3's coverage statistics.

Paper: over one month of WeHe-triggered M-Lab traceroutes, 52% of
clients had at least one complete traceroute, and 74% of those had at
least one suitable topology.  We reproduce the pipeline over the
synthetic internet, with ICMP blocking and aliasing rates tuned to the
same regime.
"""

import numpy as np
from conftest import print_header, print_row

from repro.mlab.annotations import AnnotationDatabase
from repro.mlab.internet import SyntheticInternet
from repro.mlab.topology_construction import TopologyConstructor
from repro.mlab.traceroute import collect_month


def run_tc():
    rng = np.random.default_rng(77)
    internet = SyntheticInternet(
        rng,
        n_sites=5,
        servers_per_site=2,
        n_isps=12,
        clients_per_isp=8,
        icmp_block_fraction=0.35,
        alias_fraction=0.25,
    )
    annotations = AnnotationDatabase(internet, rng=rng, miss_rate=0.02)
    records = collect_month(internet, rng)
    tc = TopologyConstructor(annotations)
    stats = tc.coverage(records)
    database = tc.build(records)
    return stats, len(database), len(records)


def test_topology_construction_coverage(benchmark):
    stats, db_size, n_records = benchmark.pedantic(run_tc, rounds=1, iterations=1)
    print_header("Section 3.3: topology-construction coverage")
    print_row("traceroute records ingested", n_records)
    print_row("clients with complete traceroutes (paper 52%)",
              f"{stats['complete_fraction']:.0%}")
    print_row("of those, clients with a suitable topology (paper 74%)",
              f"{stats['suitable_fraction']:.0%}")
    print_row("topology-database entries", db_size)
    assert 0.2 < stats["complete_fraction"] < 0.95
    assert stats["suitable_fraction"] > 0.4
    assert db_size > 0
