"""Collective throttling and the loss-trend correlation algorithm.

A collective policer throttles all traffic of a service (the WeHe
original replays plus same-service background).  The aggregate
simultaneous throughput no longer matches the single replay, so the
throughput comparison stays silent; Algorithm 1 instead correlates the
two paths' loss-rate time series across interval sizes from 10 to 50
RTTs.  The example prints the per-interval-size Spearman verdicts and
compares against the classic-tomography baselines the paper evolved
away from (Section 4.3).

Run:  python examples/collective_throttling.py
"""

from repro.core.loss_correlation import LossTrendCorrelation
from repro.core.packet_pair import PacketPairCorrelation
from repro.core.tomography import BinLossTomoNoParams, TrendLossTomo
from repro.experiments.runner import NetsimReplayService
from repro.experiments.scenarios import ScenarioConfig
from repro.wehe.apps import make_trace


def run_case(title, limiter, seed):
    print(f"\n--- {title}")
    config = ScenarioConfig(app="zoom", limiter=limiter, seed=seed)
    service = NetsimReplayService(config)
    trace = make_trace(config.app, config.duration, service._trace_rng)
    result = service.simultaneous_replay(trace)
    m1, m2 = result.measurements_1, result.measurements_2
    print(f"path loss rates: {m1.loss_rate:.3f} / {m2.loss_rate:.3f}")

    algorithm = LossTrendCorrelation()
    verdict = algorithm.detect(m1, m2)
    shown = verdict.per_interval[:: max(len(verdict.per_interval) // 8, 1)]
    for entry in shown:
        mark = "corr" if entry.correlated else "  --"
        print(
            f"  sigma={entry.interval:5.2f}s  n={entry.n_intervals:3d}  "
            f"rho={entry.rho:+.2f}  p={entry.pvalue:7.4f}  {mark}"
        )
    print(f"Algorithm 1: correlated at {verdict.n_correlated}/"
          f"{verdict.n_intervals_tested} sizes -> "
          f"common bottleneck = {verdict.common_bottleneck}")

    baselines = {
        "BinLossTomoNoParams (Alg. 4)": BinLossTomoNoParams(
            rtt_multiples=(10, 20, 30, 40, 50)
        ),
        "TrendLossTomo (V2)": TrendLossTomo(),
        "packet-pair correlation": PacketPairCorrelation(),
    }
    for name, detector in baselines.items():
        print(f"{name}: {detector.detect(m1, m2)}")
    return verdict


def main():
    # Ground truth: the limiter IS on the common link sequence.
    detected = run_case(
        "collective limiter on the common link (expected: detect)",
        "common",
        seed=3,
    )
    assert detected.common_bottleneck

    # Ground truth: two independent, identically configured limiters.
    run_case(
        "identical limiters on the non-common links (expected: no detect)",
        "noncommon",
        seed=3,
    )


if __name__ == "__main__":
    main()
