"""The whole system, end to end.

Builds a synthetic internet, collects a month of traceroutes, runs
topology construction, then coordinates a complete WeHeY test for a
client whose ISP collectively throttles a video service: topology
lookup, simultaneous replays on the simulator, differentiation
confirmation, common-bottleneck detection, and post-replay topology
re-verification.

Run:  python examples/full_system.py
"""

import numpy as np

from repro.core.coordinator import CoordinationStatus, WeHeYCoordinator
from repro.experiments.scenarios import ScenarioConfig
from repro.experiments.wild import default_tdiff
from repro.mlab.annotations import AnnotationDatabase
from repro.mlab.internet import SyntheticInternet
from repro.mlab.topology_construction import TopologyConstructor
from repro.mlab.traceroute import collect_month
from repro.mlab.verification import TopologyVerifier


def main():
    rng = np.random.default_rng(11)

    # -- the measurement platform -------------------------------------
    # Low aliasing keeps the walkthrough snappy: heavily aliased ISPs
    # mostly fail post-replay verification (run the coordinator tests
    # to see that path).
    internet = SyntheticInternet(
        rng, n_isps=8, clients_per_isp=5, alias_fraction=0.05
    )
    annotations = AnnotationDatabase(internet)
    records = collect_month(internet, rng, tests_per_client=len(internet.servers))
    database = TopologyConstructor(annotations).build(records)
    print(f"topology database: {len(database)} suitable pairs")

    # -- the ground truth: a collectively throttling client ISP --------
    scenario = ScenarioConfig(app="netflix", limiter="common", seed=3)
    verifier = TopologyVerifier(
        internet, annotations, rng, route_change_probability=0.05
    )
    coordinator = WeHeYCoordinator(
        internet, database, verifier, scenario, rng, default_tdiff()
    )

    # -- run tests until one completes ---------------------------------
    for client in internet.clients:
        report = coordinator.run_test(client.name, app="netflix")
        print(f"\nclient {client.name}: {report.status.value}")
        if report.status is CoordinationStatus.NO_TOPOLOGY:
            continue
        print(f"  server pair : {report.server_pair}")
        if report.status is CoordinationStatus.COMPLETED:
            loc = report.localization
            print(f"  outcome     : {loc.outcome.value}")
            print(f"  mechanism   : {loc.mechanism.value}")
            print(f"  reason      : {loc.reason}")
            break


if __name__ == "__main__":
    main()
