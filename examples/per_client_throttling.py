"""Per-client throttling: the Section-5 "in the wild" scenario.

Five (modelled) cellular ISPs throttle the client's video traffic with
a per-client policer.  WeHeY's throughput-comparison algorithm detects
this because the aggregate throughput of the simultaneous replay adds
up to the single-replay throughput.  The example also runs:

- a test against ISP5, whose throttling only engages after a data-
  volume criterion -- the case the paper reports as a failure mode
  (Table 1: 16% success);
- a "sanity check" with a third concurrent replay, where the
  algorithm must NOT detect a common bottleneck.

Run:  python examples/per_client_throttling.py
"""

from repro.experiments.wild import WILD_ISPS, run_wild_test


def show(title, report):
    print(f"\n--- {title}")
    print(f"outcome   : {report.outcome.value}")
    print(f"mechanism : {report.mechanism.value}")
    if report.throughput_result is not None:
        tr = report.throughput_result
        print(f"X mean    : {tr.x_mean_bps/1e6:.2f} Mb/s (single replay)")
        print(f"Y mean    : {tr.y_mean_bps/1e6:.2f} Mb/s (simultaneous aggregate)")
        print(f"MWU p     : {tr.pvalue:.2e}")


def main():
    print("ISP models:", ", ".join(
        f"{name} ({model.throttle_rate_bps/1e6:.1f} Mb/s)"
        for name, model in WILD_ISPS.items()
    ))

    # A well-behaved per-client throttler: localization succeeds.
    report = run_wild_test("ISP1", app="netflix", seed=0)
    show("ISP1, basic test (expected: evidence in ISP)", report)
    assert report.localized

    # ISP5's delayed trigger defeats the throughput comparison.
    report = run_wild_test("ISP5", app="netflix", seed=0)
    show("ISP5, basic test (expected: no evidence -- delayed trigger)", report)

    # Sanity check: a third concurrent replay breaks the X = Y identity.
    report = run_wild_test("ISP1", app="netflix", seed=1, sanity_check=True)
    show("ISP1, sanity check (expected: no evidence)", report)
    assert not report.localized


if __name__ == "__main__":
    main()
