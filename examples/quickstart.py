"""Quickstart: localize traffic differentiation end-to-end.

Builds a simulated ISP that throttles a video service with a
*collective* policer (all Netflix-like traffic shares one token
bucket), runs a WeHe test plus WeHeY's simultaneous replays, and
prints the localization verdict.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.localizer import WeHeYLocalizer
from repro.experiments.runner import NetsimReplayService
from repro.experiments.scenarios import ScenarioConfig
from repro.wehe.apps import make_trace
from repro.wehe.corpus import generate_corpus, tdiff_distribution
from repro.wehe.traces import bit_invert


def main():
    # 1. The scenario: a collective rate limiter on the common link
    #    sequence inside the client's ISP (ground truth: differentiation
    #    IS inside the ISP, so WeHeY should find evidence).
    config = ScenarioConfig(app="netflix", limiter="common", seed=42)
    service = NetsimReplayService(config)

    # 2. WeHe's prerecorded trace and its bit-inverted control copy.
    original = make_trace("netflix", config.duration, service._trace_rng)
    inverted = bit_invert(original)
    print(f"trace: {original.app}, {original.n_packets} packets, "
          f"{original.duration:.0f}s, SNI={original.sni!r}")

    # 3. T_diff: normal throughput variation from the historical corpus.
    tdiff = tdiff_distribution(generate_corpus(np.random.default_rng(7)))
    print(f"T_diff: {len(tdiff)} historical test pairs")

    # 4. Run the WeHeY pipeline (simultaneous replays, confirmation,
    #    common-bottleneck detection).
    localizer = WeHeYLocalizer(np.random.default_rng(1), tdiff)
    report = localizer.localize(service, original, inverted)

    # 5. The verdict.
    print()
    print(f"outcome   : {report.outcome.value}")
    print(f"mechanism : {report.mechanism.value}")
    print(f"reason    : {report.reason}")
    if report.confirmation_1 is not None:
        print(f"path 1    : differentiated={report.confirmation_1.differentiated} "
              f"(original {report.confirmation_1.original_mean_bps/1e6:.2f} Mb/s vs "
              f"inverted {report.confirmation_1.inverted_mean_bps/1e6:.2f} Mb/s)")
    if report.loss_result is not None:
        r = report.loss_result
        print(f"loss corr : {r.n_correlated}/{r.n_intervals_tested} interval sizes "
              f"significantly correlated")
    return report


if __name__ == "__main__":
    report = main()
    raise SystemExit(0 if report.localized else 1)
