"""Why classic tomography fails here (Section 4.3 / Figure 3).

Reproduces the parameter-sensitivity experiment: a rate limiter on the
common link is the sole engineered cause of loss, yet BinLossTomo's
inferred link performance depends wildly on the loss threshold tau,
and near the true average loss rate the inferred curves for the common
and non-common links converge -- exactly the failure that pushed the
paper from tomography to loss-trend correlation.

Run:  python examples/tomography_failure.py
"""

import numpy as np

from repro.core.loss_correlation import LossTrendCorrelation
from repro.core.tomography import BinLossTomo
from repro.experiments.runner import NetsimReplayService
from repro.experiments.scenarios import ScenarioConfig
from repro.wehe.apps import make_trace


def main():
    config = ScenarioConfig(
        app="netflix", limiter="common", duration=30.0, seed=8
    )
    service = NetsimReplayService(config)
    trace = make_trace(config.app, config.duration, service._trace_rng)
    result = service.simultaneous_replay(trace)
    m1, m2 = result.measurements_1, result.measurements_2
    print("ground truth: rate limiter on the COMMON link only")
    print(f"measured path loss rates: {m1.loss_rate:.3f} / {m2.loss_rate:.3f}\n")

    print("BinLossTomo inferred performance (probability of being non-lossy)")
    print(f"{'tau':>8} {'x_c':>7} {'x_1':>7} {'x_2':>7}   verdict of Alg. 3")
    sigma = 0.6
    for tau in np.linspace(0.005, 0.1, 12):
        inferred = BinLossTomo(sigma, float(tau)).infer(m1, m2)
        verdict = (
            "common bottleneck"
            if inferred.x_1 > inferred.x_c and inferred.x_2 > inferred.x_c
            else "NO common bottleneck  <-- wrong"
        )
        print(
            f"{tau:>8.3f} {inferred.x_c:>7.2f} {inferred.x_1:>7.2f} "
            f"{inferred.x_2:>7.2f}   {verdict}"
        )

    print("\nWeHeY's loss-trend correlation on the same measurements:")
    verdict = LossTrendCorrelation().detect(m1, m2)
    print(
        f"correlated at {verdict.n_correlated}/{verdict.n_intervals_tested} "
        f"interval sizes -> common bottleneck = {verdict.common_bottleneck}"
    )
    print("(no loss threshold anywhere in sight)")


if __name__ == "__main__":
    main()
