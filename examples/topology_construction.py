"""Topology construction over a synthetic internet (Section 3.3).

Builds an internet of M-Lab sites, transit carriers and client ISPs
(including ICMP-blocking ISPs and IP-aliased routers), collects a
month of traceroutes, runs the TC pipeline, and queries the resulting
topology database the way a WeHeY client would.

Run:  python examples/topology_construction.py
"""

import numpy as np

from repro.mlab.annotations import AnnotationDatabase
from repro.mlab.internet import SyntheticInternet
from repro.mlab.tables import annotation_table, traceroute_table
from repro.mlab.topology_construction import TopologyConstructor
from repro.mlab.traceroute import collect_month


def main():
    rng = np.random.default_rng(2023)
    internet = SyntheticInternet(
        rng,
        n_sites=5,
        servers_per_site=2,
        n_isps=10,
        clients_per_isp=6,
        icmp_block_fraction=0.3,
        alias_fraction=0.2,
    )
    print(f"internet: {len(internet.servers)} servers, "
          f"{len(internet.isps)} ISPs, {len(internet.clients)} clients")

    annotations = AnnotationDatabase(internet, rng=rng, miss_rate=0.02)
    records = collect_month(internet, rng)
    print(f"traceroutes collected: {len(records)} "
          f"({sum(r.reached_destination for r in records)} reached destination)")

    # The two BigQuery-style tables and their merge (what TC ingests).
    hops = traceroute_table(records)
    merged = hops.join(annotation_table(annotations), on="hop_ip", how="left")
    annotated = sum(1 for row in merged if row["asn"] is not None)
    print(f"hop table: {len(hops)} rows; merged+annotated: "
          f"{annotated}/{len(merged)}")

    tc = TopologyConstructor(annotations)
    stats = tc.coverage(records)
    print(f"clients with complete traceroutes: {stats['complete_fraction']:.0%} "
          f"(paper: 52%)")
    print(f"...of which with a suitable topology: {stats['suitable_fraction']:.0%} "
          f"(paper: 74%)")

    database = tc.build(records)
    print(f"topology database: {len(database)} suitable server pairs for "
          f"{len(database.destinations)} destinations")

    # A client-side lookup, as in Section 3.4 step (1).
    for client in internet.clients:
        pairs = database.lookup(client.ip, client.asn)
        if pairs:
            best = pairs[0]
            print(f"\nexample lookup for {client.name} ({client.ip}):")
            print(f"  server pair : {best.server_pair}")
            print(f"  converging at in-ISP node(s): {best.common_candidates}")
            break


if __name__ == "__main__":
    main()
