"""Reproduction of "Localizing Traffic Differentiation" (WeHeY, IMC 2023).

The package is organized as:

- :mod:`repro.netsim` -- packet-level discrete-event network simulator
  (links, drop-tail queues, token-bucket rate limiters, TCP, UDP,
  background traffic).  Substitute for the paper's ns-3 / tc testbed.
- :mod:`repro.wehe` -- the WeHe substrate: application traces,
  bit-inversion, replay engine, KS-based differentiation detection, and
  server-side loss measurement.
- :mod:`repro.mlab` -- the M-Lab substrate: a synthetic internet,
  scamper-like traceroutes, annotation databases, and the
  topology-construction (TC) module of the paper's Section 3.3.
- :mod:`repro.stats` -- from-scratch statistics (ECDF, KS, Mann-Whitney U,
  Spearman, Monte-Carlo subsampling) used by the detection algorithms.
- :mod:`repro.core` -- WeHeY itself: throughput comparison (Section 4.1),
  loss-trend correlation (Algorithm 1), the tomography baselines
  (Algorithms 2-4), and the end-to-end localizer.
- :mod:`repro.experiments` -- the evaluation harness reproducing every
  table and figure of the paper's evaluation.
- :mod:`repro.api` -- the supported programmatic surface: one
  ``run_sweep(SweepRequest) -> SweepResult`` facade over every sweep
  flavour (detection, wild, t_diff).
- :mod:`repro.obs` -- opt-in observability: counters/histograms from
  the netsim hot path, spans around coordinator/localizer/store
  activity, JSONL and table exporters.  Zero overhead when disabled.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
