"""``repro.api`` -- the supported programmatic surface for sweeps.

Every paper table and figure is a sweep of independent cells, and the
repo grew one entry point per flavour (``run_detection_sweep``,
``run_wild_sweep``, ``simulate_tdiff``, ``run_table1_sweep``), each
with its own keyword surface.  This module unifies them behind one
request/result pair::

    from repro.api import SweepRequest, run_sweep

    result = run_sweep(SweepRequest.detection(configs, jobs=4))
    records = result.results          # same list the legacy call returned
    result.hits, result.misses        # cache accounting (0 hits without a store)

    result = run_sweep(
        SweepRequest.wild(store=store, metrics="metrics.jsonl")
    )
    result.metrics                    # repro.obs snapshot (also written as JSONL)

Common options on every request:

- ``jobs``: worker processes (``None`` = all cores, ``1`` = serial);
- ``store`` / ``no_cache``: an :class:`repro.store.ExperimentStore`
  for resumable, checkpointed sweeps;
- ``on_result(index, item, result)``: streaming callback, fired for
  every *freshly computed* cell in completion order with the cell's
  original index, exactly once per cell.  A raising callback is logged
  and skipped, never fatal;
- ``metrics``: ``True`` collects a :mod:`repro.obs` snapshot onto the
  result; a path string additionally exports it as JSONL.  Collection
  never changes any sweep result byte;
- ``cell_timeout`` / ``max_cell_retries`` / ``strict``: process-level
  supervision (see :mod:`repro.parallel.supervisor`).  A parallel cell
  that outlives ``cell_timeout`` seconds has its worker killed and is
  retried; worker deaths and transient exceptions likewise cost one of
  ``max_cell_retries`` attempts.  A cell that exhausts its budget is
  *quarantined*: the sweep completes, the cell's slot in ``results``
  holds a :class:`repro.parallel.CellFailure`, and
  ``SweepResult.failures`` lists it -- unless ``strict=True``, which
  aborts the sweep on the first quarantine instead.  ``SIGINT`` /
  ``SIGTERM`` drain gracefully: in-flight cells finish, checkpoints
  flush, and the partial ``SweepResult`` comes back with
  ``interrupted=True``.

The legacy entry points still work but emit ``DeprecationWarning`` and
delegate here.
"""

from dataclasses import dataclass, field

from repro.obs import MetricsSink, use_sink, write_jsonl
from repro.obs import metrics as _obs
from repro.parallel.supervisor import DEFAULT_MAX_CELL_RETRIES

_KINDS = ("detection", "wild", "tdiff")


@dataclass(frozen=True)
class SweepRequest:
    """One sweep to run: a kind, its parameters, and execution options.

    Build requests with the :meth:`detection` / :meth:`wild` /
    :meth:`tdiff` constructors rather than directly -- they enforce
    per-kind parameter validity (e.g. ``fault_profile`` exists only for
    detection sweeps).
    """

    kind: str
    params: dict = field(default_factory=dict)
    jobs: object = None
    store: object = None
    no_cache: bool = False
    on_result: object = None
    metrics: object = None
    cell_timeout: object = None
    max_cell_retries: int = DEFAULT_MAX_CELL_RETRIES
    strict: bool = False

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown sweep kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.on_result is not None and not callable(self.on_result):
            raise TypeError("on_result must be callable")
        if self.cell_timeout is not None and not self.cell_timeout > 0:
            raise ValueError("cell_timeout must be positive (or None)")
        if self.max_cell_retries < 0:
            raise ValueError("max_cell_retries must be >= 0")

    @classmethod
    def detection(
        cls,
        configs,
        *,
        detectors=None,
        modified=True,
        entropy=0,
        merge_flows=False,
        fault_profile=None,
        fidelity=None,
        shaper=None,
        shaper_params=None,
        multipath=None,
        flowlet_gap_s=None,
        jobs=None,
        store=None,
        no_cache=False,
        on_result=None,
        metrics=None,
        cell_timeout=None,
        max_cell_retries=DEFAULT_MAX_CELL_RETRIES,
        strict=False,
    ):
        """A Section-6 FN/FP sweep: one cell per :class:`ScenarioConfig`.

        Results are
        :class:`~repro.experiments.runner.DetectionExperimentRecord`
        objects in config order.  ``fault_profile`` injects per-cell
        failures seeded from each cell's own ``config.seed``.
        ``fidelity`` (``"packet"``/``"hybrid"``), when given, overrides
        every config's own fidelity field -- the sweep-wide knob behind
        ``repro sweep --fidelity``.  ``shaper`` / ``shaper_params``
        likewise override the mechanism axis on every config (the knob
        behind ``repro sweep --shaper``), and ``multipath`` /
        ``flowlet_gap_s`` the ECMP axis (``repro sweep --multipath``).
        """
        configs = list(configs)
        if fidelity is not None:
            configs = [config.with_(fidelity=fidelity) for config in configs]
        if shaper is not None:
            overrides = {"shaper": shaper}
            if shaper_params is not None:
                overrides["shaper_params"] = tuple(shaper_params)
            configs = [config.with_(**overrides) for config in configs]
        elif shaper_params is not None:
            raise ValueError("shaper_params requires a shaper")
        if multipath is not None:
            overrides = {"multipath": int(multipath)}
            if flowlet_gap_s is not None:
                overrides["flowlet_gap_s"] = float(flowlet_gap_s)
            configs = [config.with_(**overrides) for config in configs]
        elif flowlet_gap_s is not None:
            raise ValueError("flowlet_gap_s requires multipath")
        return cls(
            kind="detection",
            params={
                "configs": configs,
                "detectors": detectors,
                "modified": modified,
                "entropy": entropy,
                "merge_flows": merge_flows,
                "fault_profile": fault_profile,
            },
            jobs=jobs,
            store=store,
            no_cache=no_cache,
            on_result=on_result,
            metrics=metrics,
            cell_timeout=cell_timeout,
            max_cell_retries=max_cell_retries,
            strict=strict,
        )

    @classmethod
    def wild(
        cls,
        isp_names=None,
        *,
        apps=("netflix",),
        seeds=range(3),
        sanity_check=False,
        fidelity="packet",
        jobs=None,
        store=None,
        no_cache=False,
        on_result=None,
        metrics=None,
        cell_timeout=None,
        max_cell_retries=DEFAULT_MAX_CELL_RETRIES,
        strict=False,
    ):
        """A Section-5 wild-ISP sweep over ISPs x apps x seeds.

        ``isp_names=None`` means every Table-1 ISP.  Results are
        per-cell summary dicts in grid order (isp-major).
        """
        return cls(
            kind="wild",
            params={
                "isp_names": None if isp_names is None else list(isp_names),
                "apps": tuple(apps),
                "seeds": list(seeds),
                "sanity_check": sanity_check,
                "fidelity": fidelity,
            },
            jobs=jobs,
            store=store,
            no_cache=no_cache,
            on_result=on_result,
            metrics=metrics,
            cell_timeout=cell_timeout,
            max_cell_retries=max_cell_retries,
            strict=strict,
        )

    @classmethod
    def tdiff(
        cls,
        n_pairs=25,
        *,
        app="netflix",
        duration=15.0,
        base_seed=5000,
        fidelity="packet",
        jobs=1,
        store=None,
        no_cache=False,
        on_result=None,
        metrics=None,
        cell_timeout=None,
        max_cell_retries=DEFAULT_MAX_CELL_RETRIES,
        strict=False,
    ):
        """A T_diff estimation sweep (back-to-back replay pairs).

        Results are a float ndarray of ``n_pairs`` t_diff samples (a
        plain list when cells were quarantined or the sweep drained).
        """
        return cls(
            kind="tdiff",
            params={
                "n_pairs": int(n_pairs),
                "app": app,
                "duration": duration,
                "base_seed": base_seed,
                "fidelity": fidelity,
            },
            jobs=jobs,
            store=store,
            no_cache=no_cache,
            on_result=on_result,
            metrics=metrics,
            cell_timeout=cell_timeout,
            max_cell_retries=max_cell_retries,
            strict=strict,
        )


@dataclass(frozen=True)
class SweepResult:
    """What :func:`run_sweep` returns.

    ``results`` has exactly the shape the corresponding legacy entry
    point returned (records list, summary-dict list, or ndarray).
    ``hits``/``misses`` count cache activity (``hits == 0`` when no
    store was used); ``metrics`` is a :mod:`repro.obs` snapshot dict
    when the request asked for one, else ``None``.

    ``failures`` holds one :class:`repro.parallel.CellFailure` per
    quarantined cell (each also sits inline at its position in
    ``results``); ``interrupted`` is True when a drain signal ended the
    sweep early, in which case never-computed cells are ``None`` in
    ``results``.  ``ok`` is the one-glance health check.
    """

    kind: str
    results: object
    cells: int
    hits: int
    misses: int
    metrics: object = None
    failures: tuple = ()
    interrupted: bool = False

    @property
    def ok(self):
        """True when the sweep completed with no quarantined cells."""
        return not self.failures and not self.interrupted

    def __len__(self):
        return len(self.results)

    def __iter__(self):
        return iter(self.results)


def _run_detection(request):
    from repro.parallel.executor import _detection_sweep

    return _detection_sweep(
        request.params["configs"],
        detectors=request.params["detectors"],
        modified=request.params["modified"],
        entropy=request.params["entropy"],
        merge_flows=request.params["merge_flows"],
        fault_profile=request.params["fault_profile"],
        jobs=request.jobs,
        store=request.store,
        no_cache=request.no_cache,
        on_result=request.on_result,
        cell_timeout=request.cell_timeout,
        max_cell_retries=request.max_cell_retries,
        strict=request.strict,
    )


def _run_wild(request):
    from repro.experiments.wild import WILD_ISPS
    from repro.parallel.executor import _wild_sweep

    isp_names = request.params["isp_names"]
    if isp_names is None:
        isp_names = list(WILD_ISPS)
    return _wild_sweep(
        isp_names,
        request.params["apps"],
        request.params["seeds"],
        sanity_check=request.params["sanity_check"],
        fidelity=request.params.get("fidelity", "packet"),
        jobs=request.jobs,
        store=request.store,
        no_cache=request.no_cache,
        on_result=request.on_result,
        cell_timeout=request.cell_timeout,
        max_cell_retries=request.max_cell_retries,
        strict=request.strict,
    )


def _run_tdiff(request):
    from repro.experiments.tdiff import _tdiff_sweep

    return _tdiff_sweep(
        n_pairs=request.params["n_pairs"],
        app=request.params["app"],
        duration=request.params["duration"],
        base_seed=request.params["base_seed"],
        fidelity=request.params.get("fidelity", "packet"),
        jobs=request.jobs if request.jobs is not None else 1,
        store=request.store,
        no_cache=request.no_cache,
        on_result=request.on_result,
        cell_timeout=request.cell_timeout,
        max_cell_retries=request.max_cell_retries,
        strict=request.strict,
    )


_DISPATCH = {
    "detection": _run_detection,
    "wild": _run_wild,
    "tdiff": _run_tdiff,
}


def run_sweep(request):
    """Run one :class:`SweepRequest`; returns a :class:`SweepResult`.

    When the request asks for metrics, the whole sweep runs under a
    fresh :class:`repro.obs.MetricsSink` (worker-process deltas are
    merged in by the executor), the snapshot lands on
    ``SweepResult.metrics``, and -- if ``metrics`` is a path string --
    is also written there as JSONL.  If an outer sink was already
    active, the sweep's snapshot is folded into it too, so nested
    collection composes.  Metrics never alter sweep results.
    """
    impl = _DISPATCH[request.kind]
    collect = request.metrics is not None and request.metrics is not False
    if not collect:
        results, hits, misses, failures, interrupted = impl(request)
        snapshot = None
    else:
        outer = _obs.SINK if _obs.ENABLED else None
        with use_sink(MetricsSink()) as sink:
            results, hits, misses, failures, interrupted = impl(request)
            snapshot = sink.snapshot()
        if isinstance(request.metrics, str) and request.metrics:
            write_jsonl(snapshot, request.metrics)
        if outer is not None:
            outer.merge(snapshot)
    return SweepResult(
        kind=request.kind,
        results=results,
        cells=hits + misses,
        hits=hits,
        misses=misses,
        metrics=snapshot,
        failures=tuple(failures),
        interrupted=interrupted,
    )


__all__ = ["SweepRequest", "SweepResult", "run_sweep"]
