"""Command-line interface.

Three subcommands mirror how the system is used:

- ``localize`` -- run one end-to-end WeHeY test on a simulated scenario
  and print the localization report;
- ``topology`` -- build a synthetic internet, run topology construction,
  and print the coverage statistics;
- ``sweep`` -- run an FN or FP sweep over seeds for a scenario cell.

Examples::

    python -m repro.cli localize --app netflix --limiter common
    python -m repro.cli localize --app zoom --limiter perflow --merge-flows
    python -m repro.cli topology --isps 8 --clients 6
    python -m repro.cli topology --ases 1000 --backend columnar --dynamics-events 2
    python -m repro.cli sweep --limiter noncommon --seeds 5 --jobs 4
    python -m repro.cli sweep --seeds 8 --store .repro-store --resume --json
    python -m repro.cli sweep --seeds 5 --metrics metrics.jsonl
    python -m repro.cli sweep --shaper red --shaper-params max_p=0.2 --seeds 3
    python -m repro.cli qdisc --build
"""

import argparse
import sys

import numpy as np

from repro.core.localizer import WeHeYLocalizer
from repro.core.loss_correlation import LossTrendCorrelation
from repro.experiments.runner import NetsimReplayService
from repro.faults import FaultInjector, ReplayAbortedError
from repro.experiments.scenarios import ScenarioConfig
from repro.experiments.wild import default_tdiff
from repro.wehe.apps import APP_SPECS, make_trace
from repro.wehe.traces import bit_invert


def _add_scenario_arguments(parser):
    parser.add_argument(
        "--app", default="netflix", choices=sorted(APP_SPECS),
        help="replayed application",
    )
    parser.add_argument(
        "--limiter", default="common",
        choices=["common", "noncommon", "perflow", "none"],
        help="rate-limiter placement (ground truth)",
    )
    parser.add_argument("--factor", type=float, default=1.5,
                        help="input-rate factor (Table 2)")
    parser.add_argument("--queue", type=float, default=0.5,
                        help="TBF queue as a multiple of the burst")
    parser.add_argument("--duration", type=float, default=60.0,
                        help="replay duration in seconds")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--fidelity", default="packet", choices=["packet", "hybrid"],
        help="simulation fidelity: 'packet' simulates every background "
             "packet; 'hybrid' uses the calibrated fluid background "
             "model (5-10x faster cells, verdict-equivalent)",
    )
    parser.add_argument(
        "--shaper", default=None, metavar="NAME",
        help="rate-limiting mechanism deployed at the --limiter "
             "placement ('repro qdisc' lists them: red, codel, pie, "
             "dual_tbf, conditional, ecn, ...); default: the paper's "
             "token bucket",
    )
    parser.add_argument(
        "--shaper-params", default=None, metavar="K=V[,K=V...]",
        help="mechanism parameters, e.g. 'max_p=0.2,ecn=true' "
             "(requires --shaper)",
    )
    parser.add_argument(
        "--multipath", type=int, default=0, metavar="N",
        help="model the ISP's common device as an N-member ECMP bundle "
             "(the two replays co-hash with probability 1/N); 0 keeps "
             "the classic single common link",
    )
    parser.add_argument(
        "--flowlet-gap", type=float, default=None, metavar="SECONDS",
        help="flowlet re-hash gap: a flow pausing longer than this "
             "re-hashes onto a (possibly different) member "
             "(requires --multipath)",
    )


def _parse_shaper_params(text):
    """``'a=1,b=true,c=x'`` -> ``(("a", 1), ("b", True), ("c", "x"))``."""
    params = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(
                f"bad --shaper-params item {item!r} (expected KEY=VALUE)"
            )
        key, raw = (part.strip() for part in item.split("=", 1))
        if raw.lower() in ("true", "false"):
            value = raw.lower() == "true"
        else:
            try:
                value = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    value = raw
        params.append((key, value))
    return tuple(params)


def _scenario_from(args):
    shaper_params = ()
    if getattr(args, "shaper_params", None):
        shaper_params = _parse_shaper_params(args.shaper_params)
    return ScenarioConfig(
        app=args.app,
        limiter=None if args.limiter == "none" else args.limiter,
        input_rate_factor=args.factor,
        queue_factor=args.queue,
        duration=args.duration,
        seed=args.seed,
        fidelity=args.fidelity,
        shaper=getattr(args, "shaper", None),
        shaper_params=shaper_params,
        multipath=getattr(args, "multipath", 0) or 0,
        flowlet_gap_s=getattr(args, "flowlet_gap", None),
    )


def cmd_localize(args):
    try:
        config = _scenario_from(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    injector = None
    if args.fault_profile and args.fault_profile != "none":
        injector = FaultInjector.from_spec(args.fault_profile, seed=args.seed)
    localizer = WeHeYLocalizer(
        np.random.default_rng(args.seed),
        default_tdiff(),
        multipath_aware=config.multipath >= 2,
    )
    attempts_allowed = args.max_retries + 1
    report = None
    for attempt in range(attempts_allowed):
        service = NetsimReplayService(
            config,
            entropy=attempt,
            merge_flows=args.merge_flows,
            fault_injector=injector,
        )
        trace = make_trace(config.app, config.duration, service._trace_rng)
        try:
            candidate = localizer.localize(service, trace, bit_invert(trace))
        except ReplayAbortedError as exc:
            print(f"attempt {attempt + 1}/{attempts_allowed}: replay aborted ({exc})")
            continue
        if candidate.invalid and attempt + 1 < attempts_allowed:
            print(
                f"attempt {attempt + 1}/{attempts_allowed}: "
                f"unusable measurements ({candidate.reason_code}); retrying"
            )
            continue
        report = candidate
        break
    if injector is not None and injector.fires_by_site:
        fired = ", ".join(
            f"{site} x{count}"
            for site, count in sorted(injector.fires_by_site.items())
        )
        print(f"faults    : {fired}")
    if report is None:
        print(f"outcome   : failed (all {attempts_allowed} attempts aborted)")
        return 2
    print(f"outcome   : {report.outcome.value}")
    print(f"mechanism : {report.mechanism.value}")
    print(f"reason    : {report.reason}")
    if report.reason_code:
        print(f"code      : {report.reason_code}")
    if report.throughput_result is not None:
        tr = report.throughput_result
        print(f"X / Y     : {tr.x_mean_bps/1e6:.2f} / {tr.y_mean_bps/1e6:.2f} Mb/s "
              f"(MWU p = {tr.pvalue:.3g})")
    if report.loss_result is not None:
        lr = report.loss_result
        print(f"loss corr : {lr.n_correlated}/{lr.n_intervals_tested} interval sizes")
    return 0 if report.localized else 1


def cmd_topology(args):
    from repro.mlab.annotations import AnnotationDatabase
    from repro.mlab.internet import SyntheticInternet
    from repro.mlab.tables import annotation_table, traceroute_table
    from repro.mlab.topology_construction import (
        TopologyConstructor,
        build_topology_from_tables,
    )
    from repro.mlab.traceroute import collect_month

    rng = np.random.default_rng(args.seed)
    if args.ases:
        from repro.inet import PolicyInternet

        internet = PolicyInternet(
            seed=args.seed,
            n_ases=args.ases,
            n_client_isps=args.isps,
            clients_per_isp=args.clients,
        )
        records = collect_month(
            internet, rng, tests_per_client=len(internet.servers)
        )
    else:
        internet = SyntheticInternet(
            rng, n_isps=args.isps, clients_per_isp=args.clients
        )
        records = collect_month(internet, rng)
    annotations = AnnotationDatabase(internet)
    tc = TopologyConstructor(annotations)
    stats = tc.coverage(records)
    if args.backend == "object":
        database = tc.build(records)
    else:
        database = build_topology_from_tables(
            traceroute_table(records, backend=args.backend),
            annotation_table(annotations, backend=args.backend),
        )
    if args.ases:
        print(f"AS graph              : {len(internet.graph.asns)} ASes, "
              f"{internet.graph.n_edges} edges")
    print(f"traceroutes           : {len(records)}")
    print(f"complete fraction     : {stats['complete_fraction']:.0%}")
    print(f"suitable fraction     : {stats['suitable_fraction']:.0%}")
    print(f"topology-db entries   : {len(database)}")

    if not args.ases:
        return 0

    from repro.inet import RouteDynamics, TopologyOracle, generate_schedule

    oracle = TopologyOracle(internet)
    score = oracle.score(database)
    print(f"oracle precision      : {score['precision']:.3f}")
    print(f"oracle recall         : {score['recall']:.3f}")

    if not args.dynamics_events:
        return 0

    events = generate_schedule(
        internet.graph,
        args.seed + 1,
        n_failures=args.dynamics_events,
        n_flips=1,
        targets=internet.isp_asns,
    )
    internet.attach_dynamics(RouteDynamics(events))
    detected = healed = 0
    for event in events:
        internet.advance_to(event.time + 1e-6)
        for entry, _client in oracle.stale_entries(database):
            detected += 1
            healed += bool(database.invalidate(entry))
    horizon = max(e.time + e.convergence_s for e in events) + 1.0
    internet.advance_to(horizon)
    post = oracle.score(database)
    print(f"dynamics events       : {internet.telemetry['events_applied']}")
    print(f"path changes          : {internet.telemetry['path_changes']}")
    print(f"stale entries healed  : {healed}/{detected}")
    print(f"post-dynamics precision: {post['precision']:.3f}")
    print(f"post-dynamics recall  : {post['recall']:.3f}")
    return 0


def _print_failure_table(failures, stream):
    """The quarantined-cell report (stderr; stdout stays byte-clean)."""
    print(f"quarantined cells: {len(failures)}", file=stream)
    print(f"{'idx':>5}  {'kind':<12} {'attempts':>8} {'elapsed':>9}  error",
          file=stream)
    for failure in failures:
        print(
            f"{failure.index:>5}  {failure.kind:<12} {failure.attempts:>8}"
            f" {failure.elapsed:>8.2f}s  {failure.error}",
            file=stream,
        )


#: ``repro sweep`` exit code when cells were quarantined: distinct from
#: misuse (2) and from a localization miss (1) so scripts can branch.
EXIT_QUARANTINED = 3

#: Exit code for a drained (SIGINT/SIGTERM) sweep: 128 + SIGINT.
EXIT_INTERRUPTED = 130


def cmd_sweep(args):
    from repro.api import SweepRequest, run_sweep
    from repro.experiments.scenarios import seed_sweep
    from repro.parallel import CellFailure, SweepCellError

    detector = {"loss_trend": LossTrendCorrelation()}
    common_exists = args.limiter in ("common", "perflow")
    try:
        configs = list(seed_sweep(_scenario_from(args), range(args.seeds)))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    fault_profile = (
        args.fault_profile
        if getattr(args, "fault_profile", "none") not in (None, "none")
        else None
    )
    store = None
    if args.store:
        from repro.store import ExperimentStore

        store = ExperimentStore(args.store)
    elif args.resume or args.no_cache:
        print("--resume/--no-cache require --store DIR", file=sys.stderr)
        return 2
    # argparse: flag absent -> None (off); bare --metrics -> "" (collect
    # in-memory, print the table); --metrics PATH -> also export JSONL.
    metrics = None
    if args.metrics is not None:
        metrics = args.metrics if args.metrics else True
    try:
        result = run_sweep(
            SweepRequest.detection(
                configs,
                detectors=detector,
                fault_profile=fault_profile,
                jobs=args.jobs,
                store=store,
                no_cache=args.no_cache,
                metrics=metrics,
                cell_timeout=args.cell_timeout,
                max_cell_retries=args.max_cell_retries,
                strict=args.strict,
            )
        )
    except SweepCellError as exc:
        # --strict: the first quarantine-worthy cell aborts the sweep.
        print(f"sweep aborted (--strict): {exc}", file=sys.stderr)
        return 1
    records = result.results
    # Human-readable summary goes to stderr when the record stream owns
    # stdout, so `repro sweep --json > records.jsonl` stays clean.
    info = sys.stderr if args.json else sys.stdout
    if args.json:
        import json

        from repro.store import record_line

        for record in records:
            if record is None:  # interrupted before this cell ran
                continue
            if isinstance(record, CellFailure):
                # Failures stay in-stream as machine-readable records,
                # so `--json > records.jsonl` keeps one line per cell.
                print(json.dumps(record.as_dict(), sort_keys=True,
                                 separators=(",", ":")))
                continue
            print(record_line(record))
    bad = 0
    scored = 0
    for record in records:
        if record is None or isinstance(record, CellFailure):
            continue
        seed = record.config.seed
        if record.aborted:
            print(f"seed={seed} aborted (fault injection)", file=info)
            continue
        detected = record.verdicts["loss_trend"]
        wrong = (not detected) if common_exists else detected
        bad += wrong
        scored += 1
        kind = ("FN" if common_exists else "FP") if wrong else "ok"
        print(f"seed={seed} detected={detected} loss="
              f"{record.loss_rate_1:.3f}/{record.loss_rate_2:.3f} [{kind}]",
              file=info)
    label = "FN" if common_exists else "FP"
    print(f"{label} rate: {bad}/{scored}", file=info)
    if store is not None:
        print(f"cache: {result.hits} hits / {result.misses} misses "
              f"over {result.cells} cells (store {store.root})", file=info)
    if result.failures:
        _print_failure_table(result.failures, sys.stderr)
    if result.interrupted:
        completed = sum(record is not None for record in records)
        print(f"sweep interrupted: {completed}/{len(records)} cells completed"
              + (" (partial results checkpointed)" if store is not None else ""),
              file=sys.stderr)
    if result.metrics is not None:
        from repro.obs import summary_table

        # Metrics always go to stderr so `--json > records.jsonl` and
        # byte-comparisons of the record stream stay clean.
        print(summary_table(result.metrics), file=sys.stderr)
        if isinstance(metrics, str):
            print(f"metrics written to {metrics}", file=sys.stderr)
    if result.interrupted:
        return EXIT_INTERRUPTED
    if result.failures:
        return EXIT_QUARANTINED
    return 0


def cmd_qdisc(args):
    """List registered qdisc mechanisms; ``--build`` smoke-builds each."""
    from repro.netsim.qdisc import (
        make_qdisc,
        qdisc_spec,
        registered_qdiscs,
        supports_fidelity,
    )

    names = registered_qdiscs()
    print(f"{'name':<12} {'fidelities':<14} {'seeded':<7} description")
    for name in names:
        spec = qdisc_spec(name)
        fidelities = ",".join(
            fid for fid in ("packet", "hybrid") if supports_fidelity(name, fid)
        )
        seeded = "yes" if spec.seeded else "no"
        print(f"{name:<12} {fidelities:<14} {seeded:<7} {spec.doc}")
    if not args.build:
        return 0
    failures = 0
    for name in names:
        for fidelity in ("packet", "hybrid"):
            if not supports_fidelity(name, fidelity):
                continue
            kwargs = (
                {"capacity_bytes": 100_000}
                if name == "droptail"
                else {"rate_bps": 2e6}
            )
            try:
                qdisc = make_qdisc(name, fidelity=fidelity, **kwargs)
                ok = (
                    len(qdisc) == 0
                    and qdisc.backlog_bytes == 0
                    and callable(qdisc.enqueue)
                    and callable(qdisc.dequeue)
                )
            except Exception as exc:  # smoke test: any failure is a report
                print(f"build {name}/{fidelity}: FAILED ({exc})",
                      file=sys.stderr)
                failures += 1
                continue
            if not ok:
                print(f"build {name}/{fidelity}: FAILED (bad empty state)",
                      file=sys.stderr)
                failures += 1
            else:
                print(f"build {name}/{fidelity}: ok")
    return 1 if failures else 0


def cmd_serve(args):
    import asyncio

    from repro.service import (
        ServiceConfig,
        ServiceCore,
        ServiceServer,
        SweepEngine,
        SyntheticEngine,
    )

    store = None
    if args.store:
        from repro.store import ExperimentStore

        store = ExperimentStore(args.store)
    config = ServiceConfig(
        max_queue=args.max_queue, tenant_rate=args.tenant_rate
    )
    core = ServiceCore(config, store=store)
    if args.synthetic:
        engine = SyntheticEngine(
            mean_service_s=args.synthetic_service_s, realtime=True
        )
    else:
        engine = SweepEngine(store=store, jobs=args.jobs)

    async def run():
        server = ServiceServer(
            core, engine, store=store, host=args.host, port=args.port
        )
        await server.start()
        print(f"serving on {args.host}:{server.port}", flush=True)
        if server.resumed:
            print(f"resumed {server.resumed} persisted submissions",
                  file=sys.stderr)
        await server.serve_until_drained()

    asyncio.run(run())
    counts = ", ".join(
        f"{status}={n}" for status, n in sorted(core.counts.items()) if n
    )
    print(f"drained ({counts or 'no requests'})", file=sys.stderr)
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro", description="WeHeY reproduction command line"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    localize = subparsers.add_parser(
        "localize", help="run one end-to-end localization test"
    )
    _add_scenario_arguments(localize)
    localize.add_argument(
        "--merge-flows", action="store_true",
        help="apply the Section-7 flow-merging countermeasure",
    )
    localize.add_argument(
        "--max-retries", type=int, default=2,
        help="retries after an aborted or unusable replay (default 2)",
    )
    localize.add_argument(
        "--fault-profile", default="none",
        help="fault-injection profile: none, flaky, chaos, or a spec "
             "like 'replay_abort=0.5,traceroute_timeout=1.0:2'",
    )
    localize.set_defaults(func=cmd_localize)

    topology = subparsers.add_parser(
        "topology", help="run topology construction on a synthetic internet"
    )
    topology.add_argument("--isps", type=int, default=8)
    topology.add_argument("--clients", type=int, default=6)
    topology.add_argument("--seed", type=int, default=0)
    topology.add_argument(
        "--ases", type=int, default=None, metavar="N",
        help="use the repro.inet policy-routed AS graph with N ASes "
             "(default: the legacy hand-wired synthetic internet)",
    )
    topology.add_argument(
        "--backend", default="object", choices=["object", "row", "columnar"],
        help="TC pipeline: 'object' runs over records, 'row'/'columnar' "
             "run the BigQuery-shaped table joins on that backend",
    )
    topology.add_argument(
        "--dynamics-events", type=int, default=0, metavar="N",
        help="with --ases: schedule N link failures (plus recoveries "
             "and one policy flip), heal stale entries, and report "
             "pre/post oracle precision and recall",
    )
    topology.set_defaults(func=cmd_topology)

    sweep = subparsers.add_parser("sweep", help="run an FN/FP seed sweep")
    _add_scenario_arguments(sweep)
    sweep.add_argument("--seeds", type=int, default=5)
    sweep.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the sweep (default: all cores; "
             "1 forces serial execution)",
    )
    sweep.add_argument(
        "--fault-profile", default="none",
        help="per-cell fault-injection profile (seeded from each "
             "cell's seed); none, flaky, chaos, or a spec string",
    )
    sweep.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per parallel cell; a cell that "
             "overruns has its worker killed and is retried",
    )
    sweep.add_argument(
        "--max-cell-retries", type=int, default=2, metavar="N",
        help="extra attempts per cell after a worker death, timeout, "
             "or transient exception before the cell is quarantined "
             "(default 2)",
    )
    sweep.add_argument(
        "--strict", action="store_true",
        help="abort the sweep on the first quarantine-worthy cell "
             "instead of quarantining it (exit 1); default is to "
             "finish the sweep and exit 3 with a failure table",
    )
    sweep.add_argument(
        "--store", default=None, metavar="DIR",
        help="experiment-store root: reuse cached cells, checkpoint "
             "each completed cell, and record the run in the ledger",
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted sweep from --store (cache reuse is "
             "the default with --store; this flag documents intent and "
             "errors without --store)",
    )
    sweep.add_argument(
        "--no-cache", action="store_true",
        help="with --store: recompute every cell (still checkpoints "
             "fresh results into the store)",
    )
    sweep.add_argument(
        "--json", action="store_true",
        help="emit one canonical JSONL record per cell on stdout (the "
             "store serialization); the summary moves to stderr",
    )
    sweep.add_argument(
        "--metrics", nargs="?", const="", default=None, metavar="PATH",
        help="collect observability metrics for the sweep and print a "
             "summary table to stderr; with PATH, also export the "
             "snapshot as JSONL (never changes sweep records)",
    )
    sweep.set_defaults(func=cmd_sweep)

    qdisc = subparsers.add_parser(
        "qdisc",
        help="list registered shaper mechanisms (the qdisc registry)",
    )
    qdisc.add_argument(
        "--build", action="store_true",
        help="smoke-build every mechanism at every supported fidelity "
             "(exit 1 on any failure); the CI registry-smoke step",
    )
    qdisc.set_defaults(func=cmd_qdisc)

    serve = subparsers.add_parser(
        "serve",
        help="run the overload-safe WeHeY submission service "
             "(newline-delimited JSON over TCP)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="listen port (default 0: pick a free port and print it)",
    )
    serve.add_argument(
        "--store", default=None, metavar="DIR",
        help="experiment-store root: serve cached verdicts, checkpoint "
             "cells, and persist/resume the pending queue across "
             "SIGTERM drains",
    )
    serve.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes per dispatched batch (default 1)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64,
        help="bounded accept-queue size (default 64)",
    )
    serve.add_argument(
        "--tenant-rate", type=float, default=None, metavar="RPS",
        help="per-tenant admission rate cap in requests/s "
             "(default: uncapped)",
    )
    serve.add_argument(
        "--synthetic", action="store_true",
        help="serve deterministic synthetic verdicts instead of running "
             "real detection sweeps (for load tests and CI)",
    )
    serve.add_argument(
        "--synthetic-service-s", type=float, default=0.1, metavar="SECONDS",
        help="mean synthetic service time per reference cell "
             "(with --synthetic; default 0.1)",
    )
    serve.set_defaults(func=cmd_serve)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
