"""WeHeY's core: common-bottleneck detection and the localization pipeline.

- :mod:`~repro.core.throughput_comparison` -- Section 4.1's O_diff /
  T_diff Mann-Whitney test (detects per-client throttling);
- :mod:`~repro.core.loss_correlation` -- Algorithm 1, the Spearman
  loss-trend correlation over multiple interval sizes (detects
  collective throttling);
- :mod:`~repro.core.tomography` -- the classic-tomography baselines the
  paper evolved away from: BinLossTomo (Alg. 2), BinLossTomo++
  (Alg. 3), BinLossTomoNoParams (Alg. 4) and the V2 trend-tomography
  intermediate (Section 4.3);
- :mod:`~repro.core.packet_pair` -- the Rubenstein/Kurose/Towsley-style
  packet-level correlation baseline (Section 8);
- :mod:`~repro.core.localizer` -- the four-operation WeHeY pipeline of
  Section 3.1.
"""

from repro.core.localizer import (
    LocalizationOutcome,
    LocalizationReport,
    WeHeYLocalizer,
)
from repro.core.loss_correlation import LossCorrelationResult, LossTrendCorrelation
from repro.core.throughput_comparison import (
    ThroughputComparison,
    ThroughputComparisonResult,
)
from repro.core.tomography import (
    BinLossTomo,
    BinLossTomoNoParams,
    BinLossTomoPlusPlus,
    TrendLossTomo,
)

__all__ = [
    "LocalizationOutcome",
    "LocalizationReport",
    "WeHeYLocalizer",
    "LossTrendCorrelation",
    "LossCorrelationResult",
    "ThroughputComparison",
    "ThroughputComparisonResult",
    "BinLossTomo",
    "BinLossTomoPlusPlus",
    "BinLossTomoNoParams",
    "TrendLossTomo",
]
