"""End-to-end test coordination -- the full Section-3.4 flow.

When WeHe detects differentiation for a client and the user opts in,
the system must:

1. query the topology database for a server pair whose paths converge
   inside the client's ISP (no pair -> WeHeY cannot run);
2. derive the measurement topology (the two paths' RTTs come from the
   traceroute data);
3. run the simultaneous replays and the localizer;
4. re-verify the topology afterwards; if routes changed and the pair
   is no longer suitable, the measurements are *discarded* and the
   database entry invalidated (Section 3.4, step 4).

``WeHeYCoordinator`` glues the M-Lab substrate (topology database +
verifier) to the simulator-backed replay service and the localizer.

In the wild every step can fail: replays abort, traceroutes time out,
topology entries go stale, measurements arrive corrupted (the Wehe
case study, arXiv:2102.04196, reports these as the dominant source of
inconclusive tests).  The coordinator therefore degrades gracefully
instead of raising: transient failures are retried with exponential
backoff across *all* candidate server pairs, subject to a per-test
attempt/time budget (:class:`~repro.faults.RetryPolicy`), and every
outcome is a structured :class:`CoordinatedReport` terminal status.
"""

import enum
import time
import warnings
import zlib
from collections import Counter, deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.localizer import WeHeYLocalizer
from repro.experiments.runner import NetsimReplayService
from repro.netsim.multipath import EPHEMERAL_PORT_HI, EPHEMERAL_PORT_LO
from repro.obs import metrics as _obs
from repro.obs import span as _span
from repro.faults import (
    FaultSite,
    ReplayAbortedError,
    RetryBudget,
    RetryPolicy,
    TracerouteTimeoutError,
    maybe_fire,
)
from repro.wehe.apps import make_trace
from repro.wehe.traces import bit_invert

#: RTT assumed for a path whose traceroute reported no usable hops --
#: the historical median of the deployment's server-client RTTs.  Using
#: it is a degradation, so it is surfaced via a warning and the
#: coordinator's ``traceroute_fallback_rtt`` telemetry counter.
TRACEROUTE_FALLBACK_RTT_S = 0.035


class TracerouteFallbackWarning(UserWarning):
    """A traceroute produced no hops; the fallback RTT was used."""


class CoordinationStatus(enum.Enum):
    """What happened to one coordinated WeHeY test."""

    COMPLETED = "completed"
    NO_TOPOLOGY = "no-suitable-topology"
    DISCARDED_TOPOLOGY_CHANGED = "discarded-topology-changed"
    REPLAY_FAILED = "replay-failed"
    TRACEROUTE_FAILED = "traceroute-failed"
    INVALID_MEASUREMENTS = "invalid-measurements"
    RETRIES_EXHAUSTED = "retries-exhausted"


#: Failures worth retrying on another candidate pair.  A topology
#: change is not among them: Section 3.4 discards the measurements and
#: ends the test (the next invocation will pick a surviving pair).
RETRYABLE_STATUSES = frozenset(
    {
        CoordinationStatus.REPLAY_FAILED,
        CoordinationStatus.TRACEROUTE_FAILED,
        CoordinationStatus.INVALID_MEASUREMENTS,
    }
)


@dataclass(frozen=True)
class AttemptRecord:
    """One attempt within a coordinated test (for the report's audit log)."""

    index: int
    server_pair: tuple
    failure: CoordinationStatus  # None when the attempt succeeded
    reason: str
    backoff_s: float = 0.0
    #: the ephemeral source-port pair drawn for a multipath re-hash
    #: retry (None for ordinary attempts using derived default ports).
    ports: tuple = None


@dataclass(frozen=True)
class CoordinatedReport:
    """Outcome of a coordinated test."""

    status: CoordinationStatus
    client_name: str
    server_pair: tuple = None
    localization: object = None  # LocalizationReport when COMPLETED
    attempts: tuple = field(default_factory=tuple)

    @property
    def localized(self):
        return (
            self.status is CoordinationStatus.COMPLETED
            and self.localization.localized
        )

    @property
    def n_attempts(self):
        return len(self.attempts)


def replay_entropy(client_name, attempt_index=0):
    """Stable per-client replay entropy.

    ``hash()`` is salted per interpreter run (PYTHONHASHSEED), which
    made coordinated results irreproducible across processes; CRC-32 is
    stable everywhere.  ``attempt_index`` decorrelates retries so a
    retried replay does not deterministically reproduce the failure
    conditions of the first one.
    """
    base = zlib.crc32(client_name.encode("utf-8"))
    return (base + attempt_index) % (2**31)


def rtts_from_traceroutes(
    internet, rng, server_pair, client, fault_injector=None, telemetry=None
):
    """Estimate the two path RTTs from fresh traceroute measurements.

    The last hop's RTT approximates the one-way forward delay; the
    paper's client uses such measurements when configuring the replay.
    A traceroute with no usable hops degrades to
    :data:`TRACEROUTE_FALLBACK_RTT_S` (warned about and counted in
    ``telemetry``); a timed-out traceroute raises
    :class:`~repro.faults.TracerouteTimeoutError` for the caller's
    retry logic.
    """
    from repro.mlab.traceroute import run_traceroute

    servers = {s.name: s for s in internet.servers}
    rtts = []
    for name in server_pair:
        record = run_traceroute(
            internet, servers[name], client, rng, fault_injector=fault_injector
        )
        if record.hops:
            rtts.append(max(2.0 * record.hops[-1].rtt_ms / 1e3, 0.01))
        else:
            warnings.warn(
                f"traceroute {name} -> {client.name} returned no hops; "
                f"assuming {TRACEROUTE_FALLBACK_RTT_S * 1e3:.0f} ms RTT",
                TracerouteFallbackWarning,
                stacklevel=2,
            )
            if telemetry is not None:
                telemetry["traceroute_fallback_rtt"] += 1
            rtts.append(TRACEROUTE_FALLBACK_RTT_S)
    return tuple(rtts)


class WeHeYCoordinator:
    """Runs coordinated WeHeY tests against a ground-truth scenario.

    Parameters:
        internet: the synthetic internet (routes, servers, clients).
        database: a TC :class:`~repro.mlab.topology_construction.TopologyDatabase`.
        verifier: a :class:`~repro.mlab.verification.TopologyVerifier`.
        scenario: the ground-truth :class:`ScenarioConfig` describing
            the client ISP's differentiation behaviour (limiter
            placement, severity); RTTs are overridden per server pair.
        rng: numpy Generator.
        tdiff: T_diff samples for the throughput comparison.
        retry_policy: a :class:`~repro.faults.RetryPolicy`; the default
            allows three attempts with exponential backoff.
        fault_injector: optional :class:`~repro.faults.FaultInjector`
            threaded through every layer (traceroutes, replay service,
            topology lookups) for deterministic failure testing.
        clock / sleep: time source and delay callable for the retry
            budget.  The default accounts backoff virtually without
            sleeping; pass ``sleep=time.sleep`` in a real deployment.
        preflight_verify: re-verify each candidate entry *before*
            spending replays on it.  Off by default (the paper's flow
            verifies after the test); turn it on when routes are known
            to be in flux -- e.g. under a route-dynamics schedule --
            so stale entries are invalidated for the price of two
            traceroutes instead of a discarded measurement.
    """

    def __init__(
        self,
        internet,
        database,
        verifier,
        scenario,
        rng,
        tdiff,
        retry_policy=None,
        fault_injector=None,
        clock=time.monotonic,
        sleep=None,
        preflight_verify=False,
        multipath_rehash_retries=4,
    ):
        self.internet = internet
        self.database = database
        self.verifier = verifier
        self.scenario = scenario
        self.rng = rng
        self.tdiff = tdiff
        self.retry_policy = retry_policy or RetryPolicy()
        self.fault_injector = fault_injector
        self.telemetry = Counter()
        self._clock = clock
        self._sleep = sleep
        self.preflight_verify = preflight_verify
        # Wehe's port-change tactic, mirrored: when the localizer
        # reports multipath-suspect / flowlet-split, re-draw the client
        # ephemeral ports (forcing a fresh ECMP hash) and rerun, at
        # most this many times per attempt.  Seeded draws -- every
        # retry's port tuple is reproducible per (scenario seed,
        # client, attempt).
        self.multipath_rehash_retries = multipath_rehash_retries

    def run_test(self, client_name, app="netflix"):
        """One full WeHeY invocation for ``client_name``.

        Never raises on pipeline failures: every outcome -- success,
        missing topology, discarded measurements, aborted replays,
        traceroute timeouts, corrupted measurements, exhausted retries
        -- comes back as a :class:`CoordinatedReport` whose ``attempts``
        log records what was tried.
        """
        with _span("coordinator.run_test", client=client_name, app=app) as rec:
            report = self._run_test(client_name, app)
            if rec is not None:
                rec["attrs"].update(
                    status=report.status.value, attempts=report.n_attempts
                )
            if _obs.ENABLED:
                _obs.SINK.inc("coordinator.tests")
                _obs.SINK.inc("coordinator.attempts", report.n_attempts)
                _obs.SINK.inc(f"coordinator.status.{report.status.value}")
            return report

    def _run_test(self, client_name, app):
        client = self.internet.find_client(client_name)
        candidates = deque(self.database.lookup(client.ip, client.asn))
        if not candidates:
            return CoordinatedReport(
                status=CoordinationStatus.NO_TOPOLOGY, client_name=client_name
            )

        # Full-jitter backoff, drawn from the fault injector's dedicated
        # stream: reproducible per (seed, profile), and advancing it
        # never perturbs any fault site's schedule.
        jitter_rng = getattr(self.fault_injector, "backoff_rng", None)
        budget = RetryBudget(
            self.retry_policy,
            clock=self._clock,
            sleep=self._sleep,
            jitter_rng=jitter_rng,
        )
        attempts = []
        while candidates and budget.allows_another():
            entry = candidates[0]
            if maybe_fire(self.fault_injector, FaultSite.STALE_TOPOLOGY):
                # The entry no longer reflects reality (decommissioned
                # server, long-gone route): drop it and move on without
                # charging the retry budget -- nothing was measured.
                self.database.invalidate(entry)
                candidates.popleft()
                self.telemetry["stale_topology_entries"] += 1
                attempts.append(
                    AttemptRecord(
                        index=len(attempts),
                        server_pair=entry.server_pair,
                        failure=CoordinationStatus.NO_TOPOLOGY,
                        reason="stale topology entry",
                    )
                )
                continue

            if self.preflight_verify and not self.verifier.verify(
                entry, client.name
            ):
                # The routes moved since TC built this entry.  Drop it
                # now -- two traceroutes are far cheaper than a replay
                # pair that post-replay verification would discard.
                self.database.invalidate(entry)
                candidates.popleft()
                self.telemetry["preflight_stale"] += 1
                if _obs.ENABLED:
                    _obs.SINK.inc("coordinator.preflight_stale")
                attempts.append(
                    AttemptRecord(
                        index=len(attempts),
                        server_pair=entry.server_pair,
                        failure=CoordinationStatus.NO_TOPOLOGY,
                        reason="preflight: topology changed",
                    )
                )
                continue

            budget.charge_attempt()
            self.telemetry["attempts"] += 1
            failure, reason, localization, rehashes = self._attempt(
                client, entry, app, budget.attempts_used - 1
            )
            for ports, reason_code in rehashes:
                # One audit-log entry per port-redraw retry: which
                # tuple was drawn and what the localizer said to it.
                attempts.append(
                    AttemptRecord(
                        index=len(attempts),
                        server_pair=entry.server_pair,
                        failure=None,
                        reason=f"multipath re-hash retry -> {reason_code}",
                        ports=ports,
                    )
                )

            if failure is None:
                attempts.append(
                    AttemptRecord(
                        index=len(attempts),
                        server_pair=entry.server_pair,
                        failure=None,
                        reason=reason,
                    )
                )
                return CoordinatedReport(
                    status=CoordinationStatus.COMPLETED,
                    client_name=client_name,
                    server_pair=entry.server_pair,
                    localization=localization,
                    attempts=tuple(attempts),
                )

            if failure is CoordinationStatus.DISCARDED_TOPOLOGY_CHANGED:
                # Section 3.4, step 4: discard the measurements,
                # invalidate the entry, end the test.
                self.database.invalidate(entry)
                self.telemetry["topology_invalidated"] += 1
                attempts.append(
                    AttemptRecord(
                        index=len(attempts),
                        server_pair=entry.server_pair,
                        failure=failure,
                        reason=reason,
                    )
                )
                return CoordinatedReport(
                    status=failure,
                    client_name=client_name,
                    server_pair=entry.server_pair,
                    attempts=tuple(attempts),
                )

            # Transient failure: rotate to the next candidate pair and
            # back off before the retry.
            candidates.rotate(-1)
            backoff = 0.0
            if candidates and budget.allows_another():
                backoff = budget.charge_backoff()
                self.telemetry["retries"] += 1
            attempts.append(
                AttemptRecord(
                    index=len(attempts),
                    server_pair=entry.server_pair,
                    failure=failure,
                    reason=reason,
                    backoff_s=backoff,
                )
            )

        status = self._terminal_status(attempts)
        last_pair = attempts[-1].server_pair if attempts else None
        return CoordinatedReport(
            status=status,
            client_name=client_name,
            server_pair=last_pair,
            attempts=tuple(attempts),
        )

    def _attempt(self, client, entry, app, attempt_index):
        """One attempt; returns ``(failure, reason, localization, rehashes)``.

        ``failure`` is ``None`` on success, otherwise the
        :class:`CoordinationStatus` classifying what went wrong.
        ``rehashes`` is the multipath re-hash audit trail: one
        ``(ports, reason_code)`` pair per port-redraw retry, in order.
        """
        rehashes = []
        try:
            rtt_1, rtt_2 = rtts_from_traceroutes(
                self.internet,
                self.rng,
                entry.server_pair,
                client,
                fault_injector=self.fault_injector,
                telemetry=self.telemetry,
            )
        except TracerouteTimeoutError as exc:
            return CoordinationStatus.TRACEROUTE_FAILED, str(exc), None, rehashes

        config = self.scenario.with_(
            rtt_1=max(rtt_1, 0.01), rtt_2=max(rtt_2, 0.01)
        )
        # A 1-member bundle is byte-identical to a plain link, so
        # suspicion heuristics only arm on genuinely multipath devices.
        multipath_aware = getattr(config, "multipath", 0) >= 2

        def run_localization(replay_ports):
            service = NetsimReplayService(
                config,
                entropy=replay_entropy(client.name, attempt_index),
                fault_injector=self.fault_injector,
                replay_ports=replay_ports,
            )
            trace = make_trace(app, config.duration, service._trace_rng)
            localizer = WeHeYLocalizer(
                self.rng, self.tdiff, multipath_aware=multipath_aware
            )
            return localizer.localize(service, trace, bit_invert(trace))

        try:
            report = run_localization(None)
        except ReplayAbortedError as exc:
            return CoordinationStatus.REPLAY_FAILED, str(exc), None, rehashes
        if report.invalid:
            return (
                CoordinationStatus.INVALID_MEASUREMENTS,
                report.reason_code,
                report,
                rehashes,
            )

        if report.multipath_suspect and self.multipath_rehash_retries > 0:
            report = self._rehash_recovery(
                report, run_localization, client, attempt_index, rehashes
            )

        # Section 3.4, step 4: re-verify the topology after the replays.
        if not self.verifier.verify(entry, client.name):
            return (
                CoordinationStatus.DISCARDED_TOPOLOGY_CHANGED,
                "routes changed during the test",
                None,
                rehashes,
            )
        return None, "completed", report, rehashes

    def _rehash_recovery(self, report, run_localization, client, attempt_index,
                         rehashes):
        """Bounded port-redraw retries after a multipath-suspect report.

        Each retry re-draws both replays' ephemeral source ports, which
        re-hashes them across the bundle; with N members a draw
        co-hashes them with probability 1/N, so a small budget almost
        surely lands at least one genuinely-shared attempt.  The chain
        persists until a *localized* verdict (recovery) or the budget
        runs out: once suspicion is established, a single re-hash draw
        that comes back empty-handed (``no-common-bottleneck``,
        ``not-confirmed-both-paths``) may itself be split-path
        collateral, so it never overwrites the suspect finding.

        The port stream is seeded from ``(scenario seed, client,
        attempt)`` -- its own :class:`~numpy.random.SeedSequence`
        branch, so drawing ports never perturbs ``self.rng`` (which
        feeds the localizer's Monte-Carlo subsampling).  An exhausted
        budget keeps the honest suspect report: COMPLETED, with the
        suspicion as the finding.
        """
        ports_rng = np.random.default_rng(
            np.random.SeedSequence(
                [0xEC49, self.scenario.seed,
                 replay_entropy(client.name, attempt_index)]
            )
        )
        for _ in range(self.multipath_rehash_retries):
            ports = tuple(
                int(port)
                for port in ports_rng.integers(
                    EPHEMERAL_PORT_LO, EPHEMERAL_PORT_HI + 1, size=2
                )
            )
            self.telemetry["multipath_retries"] += 1
            if _obs.ENABLED:
                _obs.SINK.inc("coordinator.multipath_retries")
            try:
                retried = run_localization(ports)
            except ReplayAbortedError:
                # The retry replay died; keep the last honest report.
                rehashes.append((ports, "replay-aborted"))
                break
            rehashes.append((ports, retried.reason_code))
            if retried.invalid:
                break
            if retried.localized:
                report = retried
                self.telemetry["multipath_recovered"] += 1
                if _obs.ENABLED:
                    _obs.SINK.inc("coordinator.multipath_recovered")
                break
            if retried.multipath_suspect:
                # Suspicion stands; keep the freshest suspect evidence.
                report = retried
        return report

    @staticmethod
    def _terminal_status(attempts):
        """Status when the attempt loop ended without a success.

        All entries stale -> NO_TOPOLOGY; every real attempt failing
        the same way -> that failure's status (more diagnostic than a
        generic label); mixed failures -> RETRIES_EXHAUSTED.
        """
        if not attempts:
            # The time budget expired before anything could run.
            return CoordinationStatus.RETRIES_EXHAUSTED
        real_failures = {
            a.failure
            for a in attempts
            if a.failure is not CoordinationStatus.NO_TOPOLOGY
        }
        if not real_failures:
            return CoordinationStatus.NO_TOPOLOGY
        if len(real_failures) == 1:
            return next(iter(real_failures))
        return CoordinationStatus.RETRIES_EXHAUSTED
