"""End-to-end test coordination -- the full Section-3.4 flow.

When WeHe detects differentiation for a client and the user opts in,
the system must:

1. query the topology database for a server pair whose paths converge
   inside the client's ISP (no pair -> WeHeY cannot run);
2. derive the measurement topology (the two paths' RTTs come from the
   traceroute data);
3. run the simultaneous replays and the localizer;
4. re-verify the topology afterwards; if routes changed and the pair
   is no longer suitable, the measurements are *discarded* and the
   database entry invalidated (Section 3.4, step 4).

``WeHeYCoordinator`` glues the M-Lab substrate (topology database +
verifier) to the simulator-backed replay service and the localizer.
"""

import enum
from dataclasses import dataclass

from repro.core.localizer import WeHeYLocalizer
from repro.experiments.runner import NetsimReplayService
from repro.wehe.apps import make_trace
from repro.wehe.traces import bit_invert


class CoordinationStatus(enum.Enum):
    """What happened to one coordinated WeHeY test."""

    COMPLETED = "completed"
    NO_TOPOLOGY = "no-suitable-topology"
    DISCARDED_TOPOLOGY_CHANGED = "discarded-topology-changed"


@dataclass(frozen=True)
class CoordinatedReport:
    """Outcome of a coordinated test."""

    status: CoordinationStatus
    client_name: str
    server_pair: tuple = None
    localization: object = None  # LocalizationReport when COMPLETED

    @property
    def localized(self):
        return (
            self.status is CoordinationStatus.COMPLETED
            and self.localization.localized
        )


def rtts_from_traceroutes(internet, rng, server_pair, client):
    """Estimate the two path RTTs from fresh traceroute measurements.

    The last hop's RTT approximates the one-way forward delay; the
    paper's client uses such measurements when configuring the replay.
    """
    from repro.mlab.traceroute import run_traceroute

    servers = {s.name: s for s in internet.servers}
    rtts = []
    for name in server_pair:
        record = run_traceroute(internet, servers[name], client, rng)
        if record.hops:
            rtts.append(max(2.0 * record.hops[-1].rtt_ms / 1e3, 0.01))
        else:
            rtts.append(0.035)
    return tuple(rtts)


class WeHeYCoordinator:
    """Runs coordinated WeHeY tests against a ground-truth scenario.

    Parameters:
        internet: the synthetic internet (routes, servers, clients).
        database: a TC :class:`~repro.mlab.topology_construction.TopologyDatabase`.
        verifier: a :class:`~repro.mlab.verification.TopologyVerifier`.
        scenario: the ground-truth :class:`ScenarioConfig` describing
            the client ISP's differentiation behaviour (limiter
            placement, severity); RTTs are overridden per server pair.
        rng: numpy Generator.
        tdiff: T_diff samples for the throughput comparison.
    """

    def __init__(self, internet, database, verifier, scenario, rng, tdiff):
        self.internet = internet
        self.database = database
        self.verifier = verifier
        self.scenario = scenario
        self.rng = rng
        self.tdiff = tdiff

    def run_test(self, client_name, app="netflix"):
        """One full WeHeY invocation for ``client_name``."""
        client = self.internet.find_client(client_name)
        entries = self.database.lookup(client.ip, client.asn)
        if not entries:
            return CoordinatedReport(
                status=CoordinationStatus.NO_TOPOLOGY, client_name=client_name
            )
        entry = entries[0]

        rtt_1, rtt_2 = rtts_from_traceroutes(
            self.internet, self.rng, entry.server_pair, client
        )
        config = self.scenario.with_(
            rtt_1=max(rtt_1, 0.01), rtt_2=max(rtt_2, 0.01)
        )
        service = NetsimReplayService(
            config, entropy=abs(hash(client_name)) % (2**31)
        )
        trace = make_trace(app, config.duration, service._trace_rng)
        localizer = WeHeYLocalizer(self.rng, self.tdiff)
        report = localizer.localize(service, trace, bit_invert(trace))

        # Section 3.4, step 4: re-verify the topology after the replays.
        if not self.verifier.verify(entry, client_name):
            entries.remove(entry)
            return CoordinatedReport(
                status=CoordinationStatus.DISCARDED_TOPOLOGY_CHANGED,
                client_name=client_name,
                server_pair=entry.server_pair,
            )
        return CoordinatedReport(
            status=CoordinationStatus.COMPLETED,
            client_name=client_name,
            server_pair=entry.server_pair,
            localization=report,
        )
