"""The WeHeY pipeline (Section 3.1).

When invoked on a client for which WeHe already detected
differentiation on a path ``p0``, WeHeY performs four operations:

1. **Topology construction** -- pick two servers whose paths to the
   client converge exactly once, inside the client's ISP (done ahead of
   time by :mod:`repro.mlab.topology_construction`; the localizer takes
   the chosen topology as given, or queries a topology database).
2. **Simultaneous replays** -- replay the modified original trace on
   p1 and p2 simultaneously, then the modified bit-inverted trace.
3. **Differentiation confirmation** -- rerun WeHe's detector per path;
   unless *both* paths differentiated, output "no evidence".
4. **Common-bottleneck detection** -- first the throughput comparison
   (per-client throttling), then the loss-trend correlation
   (collective throttling); either firing is evidence that the
   differentiation happened inside the target network area.

The localizer is decoupled from the simulator through a *replay
service* interface so it drives the netsim harness, the wild-ISP
models, and unit-test fakes identically.
"""

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.loss_correlation import LossTrendCorrelation
from repro.core.throughput_comparison import (
    ThroughputComparison,
    aggregate_simultaneous_samples,
)
from repro.obs import metrics as _obs
from repro.obs import span as _span
from repro.wehe.detection import detect_differentiation


class LocalizationOutcome(enum.Enum):
    """WeHeY's two possible outputs (Section 1)."""

    EVIDENCE_IN_TARGET_AREA = "evidence-in-target-area"
    NO_EVIDENCE = "no-evidence"


class Mechanism(enum.Enum):
    """Which detector produced the evidence."""

    PER_CLIENT_THROTTLING = "per-client"
    COLLECTIVE_THROTTLING = "collective"
    NONE = "none"


#: Machine-readable prefix marking reports produced by input validation
#: rather than by the detectors.
INVALID_REASON_PREFIX = "invalid:"

#: Fewest throughput samples a replay must deliver (the throughput
#: comparison's Monte-Carlo subsampling needs at least this many).
MIN_THROUGHPUT_SAMPLES = 4

#: Reason codes for suspected ECMP/flowlet confounding (emitted only
#: when the localizer runs ``multipath_aware``): the evidence pattern
#: is inconsistent with a single shared device, so instead of a
#: confident verdict the report asks for a port re-draw (the
#: coordinator's re-hash recovery keys on these codes).
MULTIPATH_SUSPECT = "multipath-suspect"
FLOWLET_SPLIT = "flowlet-split"
SUSPECT_REASON_CODES = frozenset({MULTIPATH_SUSPECT, FLOWLET_SPLIT})

#: Fewest per-path transmissions each half-test window needs before the
#: flowlet regime-change check is meaningful.
MIN_WINDOW_PACKETS = 50


@dataclass(frozen=True)
class LocalizationReport:
    """Everything WeHeY concluded about one test.

    ``reason_code`` is the machine-readable counterpart of ``reason``;
    validation failures use codes of the form ``invalid:<where>:<what>``
    so callers (the coordinator, dashboards) can branch without parsing
    prose.
    """

    outcome: LocalizationOutcome
    mechanism: Mechanism
    reason: str
    confirmation_1: object = None
    confirmation_2: object = None
    throughput_result: object = None
    loss_result: object = None
    reason_code: str = ""
    #: for multipath-suspect reports: the code the localizer would have
    #: emitted with suspect detection off (lets the perf harness derive
    #: the detection-off degradation curve without re-simulating).
    fallback_reason_code: str = ""

    @property
    def localized(self):
        return self.outcome is LocalizationOutcome.EVIDENCE_IN_TARGET_AREA

    @property
    def invalid(self):
        """True iff the inputs were unusable (vs. a genuine no-evidence)."""
        return self.reason_code.startswith(INVALID_REASON_PREFIX)

    @property
    def multipath_suspect(self):
        """True iff the report asks for a re-hash instead of a verdict."""
        return self.reason_code in SUSPECT_REASON_CODES


def _sample_problem(samples, label):
    """Reason code if a throughput-sample series is unusable, else None."""
    arr = np.asarray(samples, dtype=float)
    if arr.size < MIN_THROUGHPUT_SAMPLES:
        return f"{INVALID_REASON_PREFIX}{label}:too-few-samples"
    if not np.all(np.isfinite(arr)):
        return f"{INVALID_REASON_PREFIX}{label}:non-finite-samples"
    if np.any(arr < 0):
        return f"{INVALID_REASON_PREFIX}{label}:negative-samples"
    return None


def _measurement_problem(measurements, label):
    """Reason code if a path's loss measurements are unusable, else None."""
    if measurements.packets_sent == 0:
        return f"{INVALID_REASON_PREFIX}{label}:empty-measurements"
    send = np.asarray(measurements.send_times, dtype=float)
    lost = np.asarray(measurements.loss_times, dtype=float)
    if not (np.all(np.isfinite(send)) and np.all(np.isfinite(lost))):
        return f"{INVALID_REASON_PREFIX}{label}:non-finite-measurements"
    rate = measurements.loss_rate
    if not np.isfinite(rate) or rate < 0:
        return f"{INVALID_REASON_PREFIX}{label}:bad-loss-rate"
    return None


def _simultaneous_problem(result, label):
    """Reason code if a simultaneous-replay result is unusable, else None."""
    for which, samples in ((1, result.samples_1), (2, result.samples_2)):
        problem = _sample_problem(samples, f"{label}-p{which}")
        if problem:
            return problem
    for which, measurements in (
        (1, result.measurements_1),
        (2, result.measurements_2),
    ):
        problem = _measurement_problem(measurements, f"{label}-p{which}")
        if problem:
            return problem
    return None


class SimultaneousReplayResult:
    """What a replay service returns for one simultaneous replay.

    Attributes per path (1 and 2): throughput sample arrays and
    :class:`~repro.netsim.capture.PathMeasurements`.
    """

    def __init__(self, samples_1, samples_2, measurements_1, measurements_2):
        self.samples_1 = samples_1
        self.samples_2 = samples_2
        self.measurements_1 = measurements_1
        self.measurements_2 = measurements_2


class WeHeYLocalizer:
    """Operations (3) and (4) of the pipeline over a replay service.

    The service must provide:

    - ``single_replay(trace)`` -> throughput samples along p0;
    - ``simultaneous_replay(trace)`` ->
      :class:`SimultaneousReplayResult`.

    Parameters:
        rng: numpy Generator (Monte-Carlo subsampling).
        tdiff: the T_diff sample set (see
            :func:`repro.wehe.corpus.tdiff_distribution`).
        fp_rate: Algorithm 1's acceptable false-positive rate.
        alpha: significance level for the WeHe confirmation and the
            throughput comparison.
        skip_throughput_comparison / skip_loss_correlation: disable one
            detector (used by the evaluation to study them separately).
        multipath_aware: degrade gracefully under ECMP/flowlet
            confounding -- when the evidence pattern is inconsistent
            with one shared device, return ``multipath-suspect`` /
            ``flowlet-split`` instead of a confident wrong verdict.
            Off by default: the legacy pipeline's reports (and bytes)
            are untouched unless the caller opts in.
        suspect_asymmetry / suspect_aggregate_ratio: thresholds of the
            multipath-suspect rules (see ``_multipath_suspicion``).
    """

    def __init__(
        self,
        rng,
        tdiff,
        fp_rate=0.05,
        alpha=0.05,
        skip_throughput_comparison=False,
        skip_loss_correlation=False,
        multipath_aware=False,
        suspect_asymmetry=0.12,
        suspect_aggregate_ratio=2.8,
    ):
        self.rng = rng
        self.tdiff = tdiff
        self.alpha = alpha
        self.throughput_comparison = ThroughputComparison(rng, alpha=alpha)
        self.loss_correlation = LossTrendCorrelation(fp_rate=fp_rate)
        self.skip_throughput_comparison = skip_throughput_comparison
        self.skip_loss_correlation = skip_loss_correlation
        self.multipath_aware = multipath_aware
        self.suspect_asymmetry = suspect_asymmetry
        self.suspect_aggregate_ratio = suspect_aggregate_ratio

    def _invalid(self, code):
        """A NO_EVIDENCE report for unusable inputs (never raises)."""
        return LocalizationReport(
            outcome=LocalizationOutcome.NO_EVIDENCE,
            mechanism=Mechanism.NONE,
            reason=f"measurements unusable ({code})",
            reason_code=code,
        )

    def localize(self, service, original_trace, inverted_trace):
        """Run operations 2-4 and produce a :class:`LocalizationReport`.

        Inputs are validated as they arrive (sample counts, NaN or
        negative values, empty loss logs); unusable measurements yield
        a NO_EVIDENCE report with a machine-readable ``reason_code``
        rather than an exception, and the remaining replays are not
        run.
        """
        with _span("localizer.localize", app=getattr(original_trace, "app", None)) as rec:
            report = self._localize(service, original_trace, inverted_trace)
            if rec is not None:
                rec["attrs"].update(
                    outcome=report.outcome.value,
                    mechanism=report.mechanism.value,
                    reason_code=report.reason_code,
                )
            if _obs.ENABLED:
                _obs.SINK.inc(f"localizer.outcome.{report.outcome.value}")
                _obs.SINK.inc(f"localizer.mechanism.{report.mechanism.value}")
                if report.invalid:
                    _obs.SINK.inc("localizer.invalid")
                if report.multipath_suspect:
                    _obs.SINK.inc(f"localizer.suspect.{report.reason_code}")
            return report

    def _localize(self, service, original_trace, inverted_trace):
        x_samples = service.single_replay(original_trace)
        problem = _sample_problem(x_samples, "single-replay")
        if problem:
            return self._invalid(problem)
        original_sim = service.simultaneous_replay(original_trace)
        problem = _simultaneous_problem(original_sim, "original-sim")
        if problem:
            return self._invalid(problem)
        inverted_sim = service.simultaneous_replay(inverted_trace)
        problem = _simultaneous_problem(inverted_sim, "inverted-sim")
        if problem:
            return self._invalid(problem)

        confirmation_1 = detect_differentiation(
            original_sim.samples_1, inverted_sim.samples_1, alpha=self.alpha
        )
        confirmation_2 = detect_differentiation(
            original_sim.samples_2, inverted_sim.samples_2, alpha=self.alpha
        )
        if not (confirmation_1.differentiated and confirmation_2.differentiated):
            return LocalizationReport(
                outcome=LocalizationOutcome.NO_EVIDENCE,
                mechanism=Mechanism.NONE,
                reason="differentiation not confirmed on both paths",
                reason_code="not-confirmed-both-paths",
                confirmation_1=confirmation_1,
                confirmation_2=confirmation_2,
            )

        # Suspicion is evaluated before *any* localized verdict: a
        # split replay pair can fake either evidence pattern, so both
        # the per-client and the collective branch are vetoable.
        suspect_code = None
        if self.multipath_aware:
            suspect_code = self._multipath_suspicion(x_samples, original_sim)

        throughput_result = None
        if not self.skip_throughput_comparison:
            y_samples = aggregate_simultaneous_samples(
                original_sim.samples_1, original_sim.samples_2
            )
            throughput_result = self.throughput_comparison.detect(
                x_samples, y_samples, self.tdiff
            )
            if throughput_result.common_bottleneck:
                if suspect_code:
                    return self._suspect_report(
                        suspect_code,
                        "per-client-throttling",
                        confirmation_1,
                        confirmation_2,
                        throughput_result,
                        None,
                    )
                return LocalizationReport(
                    outcome=LocalizationOutcome.EVIDENCE_IN_TARGET_AREA,
                    mechanism=Mechanism.PER_CLIENT_THROTTLING,
                    reason="aggregate simultaneous throughput matches the single replay",
                    reason_code="per-client-throttling",
                    confirmation_1=confirmation_1,
                    confirmation_2=confirmation_2,
                    throughput_result=throughput_result,
                )

        loss_result = None
        if not self.skip_loss_correlation:
            loss_result = self.loss_correlation.detect(
                original_sim.measurements_1, original_sim.measurements_2
            )
            if loss_result.common_bottleneck:
                if suspect_code:
                    # The correlation fired, but the throughput pattern
                    # (or a mid-test regime change) says the two paths
                    # cannot share the limiter: a confident collective
                    # verdict here would localize a device that does
                    # not exist.  Surface the suspicion instead.
                    return self._suspect_report(
                        suspect_code,
                        "collective-throttling",
                        confirmation_1,
                        confirmation_2,
                        throughput_result,
                        loss_result,
                    )
                return LocalizationReport(
                    outcome=LocalizationOutcome.EVIDENCE_IN_TARGET_AREA,
                    mechanism=Mechanism.COLLECTIVE_THROTTLING,
                    reason="loss trends of the two paths are significantly correlated",
                    reason_code="collective-throttling",
                    confirmation_1=confirmation_1,
                    confirmation_2=confirmation_2,
                    throughput_result=throughput_result,
                    loss_result=loss_result,
                )

        if suspect_code:
            return self._suspect_report(
                suspect_code,
                "no-common-bottleneck",
                confirmation_1,
                confirmation_2,
                throughput_result,
                loss_result,
            )

        return LocalizationReport(
            outcome=LocalizationOutcome.NO_EVIDENCE,
            mechanism=Mechanism.NONE,
            reason="no common bottleneck detected",
            reason_code="no-common-bottleneck",
            confirmation_1=confirmation_1,
            confirmation_2=confirmation_2,
            throughput_result=throughput_result,
            loss_result=loss_result,
        )

    def _suspect_report(self, code, fallback_code, confirmation_1,
                        confirmation_2, throughput_result, loss_result):
        reasons = {
            MULTIPATH_SUSPECT: (
                "per-path throughputs are inconsistent with one shared "
                "limiter (asymmetric shares or super-additive aggregate; "
                "ECMP hash collision miss suspected)"
            ),
            FLOWLET_SPLIT: (
                "loss-trend correlation changes regime mid-test -- "
                "consistent with a flowlet re-hash moving a replay "
                "between bundle members"
            ),
        }
        return LocalizationReport(
            outcome=LocalizationOutcome.NO_EVIDENCE,
            mechanism=Mechanism.NONE,
            reason=reasons[code],
            reason_code=code,
            fallback_reason_code=fallback_code,
            confirmation_1=confirmation_1,
            confirmation_2=confirmation_2,
            throughput_result=throughput_result,
            loss_result=loss_result,
        )

    def _multipath_suspicion(self, x_samples, original_sim):
        """ECMP/flowlet-confounding evidence, or None.

        Rule 1 (``multipath-suspect``, *asymmetry*): two replays
        sharing one limiter queue receive near-identical shares of its
        rate -- the qdiscs serve the two identical-pattern flows
        symmetrically, and empirically the per-path means agree within
        a few percent of the single-replay mean.  Replays hashed onto
        *different* members compete against different background mixes,
        so their means diverge.  A gap above ``suspect_asymmetry``
        (fraction of the single-replay mean) is evidence of split
        paths.

        Rule 2 (``multipath-suspect``, *super-additive aggregate*): two
        replays sharing one limiter cannot jointly exceed what that
        limiter grants; when the per-path sum is far above the
        single-replay mean (``suspect_aggregate_ratio`` times it), each
        path is being throttled by its own device -- duplicate limiter
        instances on different bundle members, not one shared one.

        Rule 3 (``flowlet-split``): a flowlet re-hash mid-test moves a
        replay between members, so the loss-trend correlation verdict
        *changes regime* between the first and second half of the test.
        A shared device correlates (or not) consistently across halves.
        """
        x_mean = float(np.mean(np.asarray(x_samples, dtype=float)))
        t1 = float(np.mean(np.asarray(original_sim.samples_1, dtype=float)))
        t2 = float(np.mean(np.asarray(original_sim.samples_2, dtype=float)))
        if x_mean > 0:
            if abs(t1 - t2) > self.suspect_asymmetry * x_mean:
                return MULTIPATH_SUSPECT
            if t1 + t2 > self.suspect_aggregate_ratio * x_mean:
                return MULTIPATH_SUSPECT
        if self._flowlet_regime_change(original_sim):
            return FLOWLET_SPLIT
        return None

    def _flowlet_regime_change(self, original_sim):
        """True iff the two half-test windows disagree on correlation."""
        from repro.netsim.capture import PathMeasurements

        m1, m2 = original_sim.measurements_1, original_sim.measurements_2
        lo1, hi1 = m1.time_span()
        lo2, hi2 = m2.time_span()
        lo, hi = min(lo1, lo2), max(hi1, hi2)
        if hi <= lo:
            return False
        mid = (lo + hi) / 2.0

        def window(measurements, t0, t1):
            send = measurements.send_times
            loss = measurements.loss_times
            return PathMeasurements(
                send[(send >= t0) & (send < t1)],
                loss[(loss >= t0) & (loss < t1)],
                measurements.rtt,
            )

        halves = []
        for t0, t1 in ((lo, mid), (mid, hi)):
            w1, w2 = window(m1, t0, t1), window(m2, t0, t1)
            if min(w1.packets_sent, w2.packets_sent) < MIN_WINDOW_PACKETS:
                return False
            halves.append(
                bool(self.loss_correlation.detect(w1, w2).common_bottleneck)
            )
        return halves[0] != halves[1]
