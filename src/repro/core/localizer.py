"""The WeHeY pipeline (Section 3.1).

When invoked on a client for which WeHe already detected
differentiation on a path ``p0``, WeHeY performs four operations:

1. **Topology construction** -- pick two servers whose paths to the
   client converge exactly once, inside the client's ISP (done ahead of
   time by :mod:`repro.mlab.topology_construction`; the localizer takes
   the chosen topology as given, or queries a topology database).
2. **Simultaneous replays** -- replay the modified original trace on
   p1 and p2 simultaneously, then the modified bit-inverted trace.
3. **Differentiation confirmation** -- rerun WeHe's detector per path;
   unless *both* paths differentiated, output "no evidence".
4. **Common-bottleneck detection** -- first the throughput comparison
   (per-client throttling), then the loss-trend correlation
   (collective throttling); either firing is evidence that the
   differentiation happened inside the target network area.

The localizer is decoupled from the simulator through a *replay
service* interface so it drives the netsim harness, the wild-ISP
models, and unit-test fakes identically.
"""

import enum
from dataclasses import dataclass

from repro.core.loss_correlation import LossTrendCorrelation
from repro.core.throughput_comparison import (
    ThroughputComparison,
    aggregate_simultaneous_samples,
)
from repro.wehe.detection import detect_differentiation


class LocalizationOutcome(enum.Enum):
    """WeHeY's two possible outputs (Section 1)."""

    EVIDENCE_IN_TARGET_AREA = "evidence-in-target-area"
    NO_EVIDENCE = "no-evidence"


class Mechanism(enum.Enum):
    """Which detector produced the evidence."""

    PER_CLIENT_THROTTLING = "per-client"
    COLLECTIVE_THROTTLING = "collective"
    NONE = "none"


@dataclass(frozen=True)
class LocalizationReport:
    """Everything WeHeY concluded about one test."""

    outcome: LocalizationOutcome
    mechanism: Mechanism
    reason: str
    confirmation_1: object = None
    confirmation_2: object = None
    throughput_result: object = None
    loss_result: object = None

    @property
    def localized(self):
        return self.outcome is LocalizationOutcome.EVIDENCE_IN_TARGET_AREA


class SimultaneousReplayResult:
    """What a replay service returns for one simultaneous replay.

    Attributes per path (1 and 2): throughput sample arrays and
    :class:`~repro.netsim.capture.PathMeasurements`.
    """

    def __init__(self, samples_1, samples_2, measurements_1, measurements_2):
        self.samples_1 = samples_1
        self.samples_2 = samples_2
        self.measurements_1 = measurements_1
        self.measurements_2 = measurements_2


class WeHeYLocalizer:
    """Operations (3) and (4) of the pipeline over a replay service.

    The service must provide:

    - ``single_replay(trace)`` -> throughput samples along p0;
    - ``simultaneous_replay(trace)`` ->
      :class:`SimultaneousReplayResult`.

    Parameters:
        rng: numpy Generator (Monte-Carlo subsampling).
        tdiff: the T_diff sample set (see
            :func:`repro.wehe.corpus.tdiff_distribution`).
        fp_rate: Algorithm 1's acceptable false-positive rate.
        alpha: significance level for the WeHe confirmation and the
            throughput comparison.
        skip_throughput_comparison / skip_loss_correlation: disable one
            detector (used by the evaluation to study them separately).
    """

    def __init__(
        self,
        rng,
        tdiff,
        fp_rate=0.05,
        alpha=0.05,
        skip_throughput_comparison=False,
        skip_loss_correlation=False,
    ):
        self.rng = rng
        self.tdiff = tdiff
        self.alpha = alpha
        self.throughput_comparison = ThroughputComparison(rng, alpha=alpha)
        self.loss_correlation = LossTrendCorrelation(fp_rate=fp_rate)
        self.skip_throughput_comparison = skip_throughput_comparison
        self.skip_loss_correlation = skip_loss_correlation

    def localize(self, service, original_trace, inverted_trace):
        """Run operations 2-4 and produce a :class:`LocalizationReport`."""
        x_samples = service.single_replay(original_trace)
        original_sim = service.simultaneous_replay(original_trace)
        inverted_sim = service.simultaneous_replay(inverted_trace)

        confirmation_1 = detect_differentiation(
            original_sim.samples_1, inverted_sim.samples_1, alpha=self.alpha
        )
        confirmation_2 = detect_differentiation(
            original_sim.samples_2, inverted_sim.samples_2, alpha=self.alpha
        )
        if not (confirmation_1.differentiated and confirmation_2.differentiated):
            return LocalizationReport(
                outcome=LocalizationOutcome.NO_EVIDENCE,
                mechanism=Mechanism.NONE,
                reason="differentiation not confirmed on both paths",
                confirmation_1=confirmation_1,
                confirmation_2=confirmation_2,
            )

        throughput_result = None
        if not self.skip_throughput_comparison:
            y_samples = aggregate_simultaneous_samples(
                original_sim.samples_1, original_sim.samples_2
            )
            throughput_result = self.throughput_comparison.detect(
                x_samples, y_samples, self.tdiff
            )
            if throughput_result.common_bottleneck:
                return LocalizationReport(
                    outcome=LocalizationOutcome.EVIDENCE_IN_TARGET_AREA,
                    mechanism=Mechanism.PER_CLIENT_THROTTLING,
                    reason="aggregate simultaneous throughput matches the single replay",
                    confirmation_1=confirmation_1,
                    confirmation_2=confirmation_2,
                    throughput_result=throughput_result,
                )

        loss_result = None
        if not self.skip_loss_correlation:
            loss_result = self.loss_correlation.detect(
                original_sim.measurements_1, original_sim.measurements_2
            )
            if loss_result.common_bottleneck:
                return LocalizationReport(
                    outcome=LocalizationOutcome.EVIDENCE_IN_TARGET_AREA,
                    mechanism=Mechanism.COLLECTIVE_THROTTLING,
                    reason="loss trends of the two paths are significantly correlated",
                    confirmation_1=confirmation_1,
                    confirmation_2=confirmation_2,
                    throughput_result=throughput_result,
                    loss_result=loss_result,
                )

        return LocalizationReport(
            outcome=LocalizationOutcome.NO_EVIDENCE,
            mechanism=Mechanism.NONE,
            reason="no common bottleneck detected",
            confirmation_1=confirmation_1,
            confirmation_2=confirmation_2,
            throughput_result=throughput_result,
            loss_result=loss_result,
        )
