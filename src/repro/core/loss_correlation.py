"""Loss-trend correlation -- Algorithm 1, WeHeY's second detector.

Two flows crossing a common bottleneck need not lose packets at similar
*rates*, but their loss rates tend to rise and fall together with the
bottleneck's arrival rate.  Algorithm 1 captures exactly that:

1. sweep interval sizes sigma with ``10 <= sigma / max_RTT <= 50``;
2. for each sigma, build the per-interval loss-rate time series of the
   two paths (discarding intervals with fewer than ``min_packets``
   transmissions on either path, or with no loss on both);
3. test the Spearman correlation of the two series (null: uncorrelated)
   at significance ``FP``;
4. declare a common bottleneck iff the null is rejected for *more than
   a fraction (1 - FP)* of the interval sizes -- iterating over sizes
   and requiring near-unanimity is what keeps the empirical
   false-positive rate at or below the target.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.netsim.capture import PathMeasurements, binned_loss_series
from repro.stats.spearman import spearman_test


def _finite_measurements(measurements):
    """Measurements with non-finite timestamps dropped (or None if the
    RTT itself is unusable).

    Wild captures occasionally deliver NaN registration times; a NaN
    endpoint would corrupt the interval grid, so filter defensively.
    """
    if not np.isfinite(measurements.rtt) or measurements.rtt <= 0:
        return None
    send = np.asarray(measurements.send_times, dtype=float)
    lost = np.asarray(measurements.loss_times, dtype=float)
    if np.all(np.isfinite(send)) and np.all(np.isfinite(lost)):
        return measurements
    return PathMeasurements(
        send[np.isfinite(send)], lost[np.isfinite(lost)], measurements.rtt
    )

#: Every integer multiple of the (larger) path RTT from 10 to 50 --
#: the natural reading of Algorithm 1's line 2.  The dense sweep
#: matters: the final rule requires correlation at more than a
#: fraction (1 - FP) of the sizes, so with 41 sizes a couple of
#: desynchronization-hit fine sizes do not flip the verdict.
DEFAULT_RTT_MULTIPLES = tuple(range(10, 51))


@dataclass(frozen=True)
class IntervalVerdict:
    """Outcome of the Spearman test at one interval size."""

    interval: float
    n_intervals: int
    rho: float
    pvalue: float
    correlated: bool


@dataclass(frozen=True)
class LossCorrelationResult:
    """Outcome of Algorithm 1."""

    common_bottleneck: bool
    n_correlated: int
    n_intervals_tested: int
    per_interval: tuple = field(default_factory=tuple)

    @property
    def correlated_fraction(self):
        if self.n_intervals_tested == 0:
            return 0.0
        return self.n_correlated / self.n_intervals_tested


class LossTrendCorrelation:
    """Algorithm 1 (LossTrendCorrelation).

    Parameters:
        fp_rate: the acceptable false-positive rate FP (0.05 in the
            paper) -- used both as the per-test significance level and
            in the final ``correlations > (1 - FP) |Sigma|`` rule.
        rtt_multiples: the sigma sweep, as multiples of the larger
            path RTT (10..50 per the paper).
        min_packets: minimum transmissions per interval per path
            (10 in the paper's implementation).
    """

    def __init__(self, fp_rate=0.05, rtt_multiples=DEFAULT_RTT_MULTIPLES, min_packets=10):
        if not 0.0 < fp_rate < 1.0:
            raise ValueError("fp_rate must be in (0, 1)")
        if not rtt_multiples:
            raise ValueError("need at least one interval size")
        if any(m <= 0 for m in rtt_multiples):
            raise ValueError("rtt multiples must be positive")
        self.fp_rate = fp_rate
        self.rtt_multiples = tuple(rtt_multiples)
        self.min_packets = min_packets

    def interval_sizes(self, measurements_1, measurements_2):
        """The sigma sweep: multiples of the larger of the two path RTTs."""
        max_rtt = max(measurements_1.rtt, measurements_2.rtt)
        return [m * max_rtt for m in self.rtt_multiples]

    def detect(self, measurements_1, measurements_2):
        """Run Algorithm 1 on the two paths' measurements.

        Args are :class:`~repro.netsim.capture.PathMeasurements` from
        the original-trace simultaneous replay.  Non-finite timestamps
        are dropped; if either path's RTT is unusable the result is a
        clean non-detection rather than an exception.
        """
        measurements_1 = _finite_measurements(measurements_1)
        measurements_2 = _finite_measurements(measurements_2)
        if measurements_1 is None or measurements_2 is None:
            return LossCorrelationResult(
                common_bottleneck=False, n_correlated=0, n_intervals_tested=0
            )
        verdicts = []
        correlations = 0
        for interval in self.interval_sizes(measurements_1, measurements_2):
            series_1, series_2 = binned_loss_series(
                measurements_1, measurements_2, interval, self.min_packets
            )
            test = spearman_test(series_1, series_2, alternative="greater")
            correlated = test.pvalue < self.fp_rate
            if correlated:
                correlations += 1
            verdicts.append(
                IntervalVerdict(
                    interval=interval,
                    n_intervals=len(series_1),
                    rho=test.rho,
                    pvalue=test.pvalue,
                    correlated=correlated,
                )
            )
        n_sizes = len(verdicts)
        detected = correlations > (1.0 - self.fp_rate) * n_sizes
        return LossCorrelationResult(
            common_bottleneck=detected,
            n_correlated=correlations,
            n_intervals_tested=n_sizes,
            per_interval=tuple(verdicts),
        )
