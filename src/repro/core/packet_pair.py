"""Packet-level loss-correlation baseline (Section 8 related work).

Rubenstein, Kurose and Towsley detect shared congestion by correlating
per-packet loss events of packets that reach the candidate common
bottleneck close together in time.  The paper reports that this does
not work against policers: even when two packets arrive at a
policer/shaper back-to-back, usually only one of them is dropped, so
packet-level loss indicators decorrelate.

We implement the spirit of the technique at the finest usable
granularity -- a binary per-mini-interval loss indicator at ~1 RTT --
so the benchmark suite can show it underperforming Algorithm 1 on
rate-limited bottlenecks.
"""

import numpy as np

from repro.stats.spearman import spearman_test


class PacketPairCorrelation:
    """Fine-grained (packet-timescale) loss-indicator correlation."""

    def __init__(self, alpha=0.05, rtt_multiple=1.0):
        if rtt_multiple <= 0:
            raise ValueError("rtt_multiple must be positive")
        self.alpha = alpha
        self.rtt_multiple = rtt_multiple

    def detect(self, measurements_1, measurements_2):
        """Correlate binary loss indicators at ~1-RTT granularity."""
        interval = self.rtt_multiple * max(measurements_1.rtt, measurements_2.rtt)
        lo = min(measurements_1.time_span()[0], measurements_2.time_span()[0])
        hi = max(measurements_1.time_span()[1], measurements_2.time_span()[1])
        if hi - lo < interval:
            return False
        n_bins = int((hi - lo) / interval)
        edges = lo + np.arange(n_bins + 1) * interval
        lost_1, _ = np.histogram(measurements_1.loss_times, bins=edges)
        lost_2, _ = np.histogram(measurements_2.loss_times, bins=edges)
        indicator_1 = (lost_1 > 0).astype(float)
        indicator_2 = (lost_2 > 0).astype(float)
        if indicator_1.sum() < 3 or indicator_2.sum() < 3:
            return False
        # Rank correlation of the binary per-window loss indicators
        # (equivalent to a phi-coefficient test): co-occurrence of loss
        # in the same RTT-scale window is the packet-level signal.
        test = spearman_test(indicator_1, indicator_2, alternative="greater")
        return test.pvalue < self.alpha
