"""Throughput comparison -- the first common-bottleneck detector (Section 4.1).

Checks whether the aggregate throughput of the simultaneous replay
(``Y``, the per-interval sums over p1 and p2) "roughly adds up to" the
single-replay throughput on p0 (``X``).  That holds when the client's
traffic crosses a queue that is *dedicated to the client* and is the
bottleneck -- i.e. per-client throttling.

The comparison is indirect, via two empirical distributions:

- ``T_diff``: normal throughput variation between back-to-back WeHe
  tests (from the historical corpus);
- ``O_diff``: the Monte-Carlo distribution of relative mean differences
  between random halves of X and Y.

If the *magnitude* of O_diff is significantly smaller than the
magnitude of T_diff under a one-sided Mann-Whitney U test, the X-Y gap
is justifiable as normal variation and a common (per-client) bottleneck
is declared.

Note on magnitudes: the paper's o_diff/t_diff formulas are signed, but
"O_diff significantly smaller than T_diff" can only mean "the X-Y
discrepancy is smaller than normal variation" -- a statement about
magnitudes (a large *negative* O_diff, e.g. when Y outgrows X at a
shared bottleneck, is evidence *against* a dedicated queue).  We
therefore rank ``|o_diff|`` against ``|t_diff|``, which reproduces both
panels of Figure 2 (p = 7.5e-18 vs p = 0.99).
"""

from dataclasses import dataclass

import numpy as np

from repro.stats.montecarlo import relative_mean_difference_distribution
from repro.stats.mwu import mann_whitney_u


@dataclass(frozen=True)
class ThroughputComparisonResult:
    """Outcome of the throughput-comparison detector."""

    common_bottleneck: bool
    pvalue: float
    odiff: np.ndarray
    tdiff: np.ndarray
    x_mean_bps: float
    y_mean_bps: float


class ThroughputComparison:
    """The Section-4.1 detector.

    Parameters:
        alpha: MWU significance level (0.05 in the paper).
        rng: numpy Generator for the Monte-Carlo subsampling.
        min_tdiff_samples: minimum corpus pairs required to run; below
            this the detector refuses (returns no evidence) rather than
            compare against a meaningless T_diff.
    """

    def __init__(self, rng, alpha=0.05, min_tdiff_samples=20):
        self.rng = rng
        self.alpha = alpha
        self.min_tdiff_samples = min_tdiff_samples

    def detect(self, x_samples, y_samples, tdiff):
        """Run the detector.

        Args:
            x_samples: throughput samples from p0's original single
                replay (bits/s).
            y_samples: per-interval *sums* of p1's and p2's throughput
                during the original simultaneous replay.
            tdiff: the T_diff sample set (signed; magnitudes are taken
                here).

        Returns a :class:`ThroughputComparisonResult`; when T_diff is
        too small the result reports ``common_bottleneck=False`` with
        ``pvalue=1.0``.
        """
        x = np.asarray(x_samples, dtype=float)
        y = np.asarray(y_samples, dtype=float)
        tdiff = np.asarray(tdiff, dtype=float)
        # Corrupted captures can carry NaN samples; drop them rather
        # than let them poison the Monte-Carlo means and the MWU ranks.
        x = x[np.isfinite(x)]
        y = y[np.isfinite(y)]
        tdiff = np.abs(tdiff[np.isfinite(tdiff)])
        if x.size < 4 or y.size < 4:
            raise ValueError("need at least 4 throughput samples per replay")
        if tdiff.size < self.min_tdiff_samples:
            return ThroughputComparisonResult(
                common_bottleneck=False,
                pvalue=1.0,
                odiff=np.array([]),
                tdiff=tdiff,
                x_mean_bps=float(x.mean()),
                y_mean_bps=float(y.mean()),
            )
        odiff = np.abs(
            relative_mean_difference_distribution(x, y, len(tdiff), self.rng)
        )
        mwu = mann_whitney_u(odiff, tdiff, alternative="less")
        return ThroughputComparisonResult(
            common_bottleneck=mwu.pvalue < self.alpha,
            pvalue=mwu.pvalue,
            odiff=odiff,
            tdiff=tdiff,
            x_mean_bps=float(x.mean()),
            y_mean_bps=float(y.mean()),
        )


def aggregate_simultaneous_samples(samples_1, samples_2):
    """Build Y: the per-interval sums across the two simultaneous replays.

    The two replays are binned on the same interval grid, so the j-th
    samples align; trailing intervals beyond the shorter replay are
    dropped.
    """
    a = np.asarray(samples_1, dtype=float)
    b = np.asarray(samples_2, dtype=float)
    n = min(len(a), len(b))
    if n == 0:
        raise ValueError("both simultaneous replays need throughput samples")
    return a[:n] + b[:n]
