"""Classic binary-loss tomography and the intermediate designs (Section 4.3).

These are the baselines WeHeY evolved away from; the paper's Figure 6
quantifies how much worse they do, and Figure 3 reproduces the
parameter-sensitivity failure of BinLossTomo.

All algorithms work on the Figure-1 topology: two paths ``p1 = (l1,
lc)`` and ``p2 = (l2, lc)``.  With ``x_k`` the probability that link
sequence ``l_k`` is non-lossy and ``y_i`` / ``y_12`` the (joint)
probabilities that paths are non-lossy, the tomographic system
(System 1) is::

    y_1  = x_c * x_1
    y_2  = x_c * x_2
    y_12 = x_c * x_1 * x_2

which solves to ``x_c = y_1 y_2 / y_12``, ``x_1 = y_12 / y_2``,
``x_2 = y_12 / y_1``.

Note: the paper's printed Algorithm 2 uses a "lossy" indicator in lines
4-8 while its prose defines ``y_i`` as the fraction of intervals in
which the path was *not* lossy; the prose is the consistent reading
(it is what makes System 1 hold), so that is what we implement.
"""

from dataclasses import dataclass

import numpy as np

DEFAULT_RTT_MULTIPLES = (10, 15, 20, 25, 30, 35, 40, 45, 50)


@dataclass(frozen=True)
class TomographyResult:
    """Inferred link-sequence performance (probability of being non-lossy)."""

    x_c: float
    x_1: float
    x_2: float
    n_intervals: int


def path_loss_series(measurements_1, measurements_2, interval, min_packets=10):
    """Per-interval loss rates for the two paths (no loss filter).

    Unlike Algorithm 1's series, tomography keeps zero-loss intervals:
    they are exactly the "non-lossy" observations the estimator needs.
    Intervals where either path transmitted fewer than ``min_packets``
    are discarded.
    """
    lo1, hi1 = measurements_1.time_span()
    lo2, hi2 = measurements_2.time_span()
    lo, hi = min(lo1, lo2), max(hi1, hi2)
    if hi - lo < interval:
        return np.array([]), np.array([])
    n_bins = int((hi - lo) / interval)
    edges = lo + np.arange(n_bins + 1) * interval
    txed1, _ = np.histogram(measurements_1.send_times, bins=edges)
    txed2, _ = np.histogram(measurements_2.send_times, bins=edges)
    lost1, _ = np.histogram(measurements_1.loss_times, bins=edges)
    lost2, _ = np.histogram(measurements_2.loss_times, bins=edges)
    keep = (txed1 >= min_packets) & (txed2 >= min_packets)
    if not np.any(keep):
        return np.array([]), np.array([])
    return lost1[keep] / txed1[keep], lost2[keep] / txed2[keep]


class BinLossTomo:
    """Algorithm 2: binary loss tomography on the Figure-1 system.

    Parameters ``interval`` (sigma) and ``loss_threshold`` (tau) are the
    two knobs whose sensitivity Section 4.3 demonstrates.
    """

    def __init__(self, interval, loss_threshold, min_packets=10):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if loss_threshold < 0:
            raise ValueError("loss threshold must be non-negative")
        self.interval = interval
        self.loss_threshold = loss_threshold
        self.min_packets = min_packets

    def infer(self, measurements_1, measurements_2):
        """Solve System 1; returns a :class:`TomographyResult`.

        Degenerate inputs (no usable intervals, or the two paths never
        both non-lossy, i.e. ``y_12 = 0``) yield ``x = 0`` across the
        board -- the estimator simply has no information.
        """
        rates_1, rates_2 = path_loss_series(
            measurements_1, measurements_2, self.interval, self.min_packets
        )
        n = len(rates_1)
        if n == 0:
            return TomographyResult(0.0, 0.0, 0.0, 0)
        non_lossy_1 = rates_1 <= self.loss_threshold
        non_lossy_2 = rates_2 <= self.loss_threshold
        y_1 = float(np.mean(non_lossy_1))
        y_2 = float(np.mean(non_lossy_2))
        y_12 = float(np.mean(non_lossy_1 & non_lossy_2))
        if y_12 == 0.0:
            return TomographyResult(0.0, 0.0, 0.0, n)
        return TomographyResult(
            x_c=y_1 * y_2 / y_12,
            x_1=y_12 / y_2 if y_2 > 0 else 0.0,
            x_2=y_12 / y_1 if y_1 > 0 else 0.0,
            n_intervals=n,
        )


class BinLossTomoPlusPlus:
    """Algorithm 3: common bottleneck iff lc performs worse than l1 and l2."""

    def __init__(self, interval, loss_threshold, min_packets=10):
        self._tomo = BinLossTomo(interval, loss_threshold, min_packets)

    def detect(self, measurements_1, measurements_2):
        result = self._tomo.infer(measurements_1, measurements_2)
        return (result.x_1 > result.x_c) and (result.x_2 > result.x_c)


class BinLossTomoNoParams:
    """Algorithm 4: sweep interval sizes and loss thresholds, average gaps.

    Interval sizes span 10-50 RTTs; loss thresholds are chosen so that
    neither path is found lossy too often or too rarely
    (``0.1 <= y_i <= 0.9``).  A common bottleneck is declared iff lc's
    inferred performance is, *on average across all parameter
    combinations*, worse than both non-common links.
    """

    def __init__(
        self,
        rtt_multiples=DEFAULT_RTT_MULTIPLES,
        n_thresholds=19,
        min_packets=10,
    ):
        self.rtt_multiples = tuple(rtt_multiples)
        self.n_thresholds = n_thresholds
        self.min_packets = min_packets

    def candidate_thresholds(self, measurements_1, measurements_2, interval):
        """Thresholds keeping path performance inside [0.1, 0.9]."""
        rates_1, rates_2 = path_loss_series(
            measurements_1, measurements_2, interval, self.min_packets
        )
        if len(rates_1) == 0:
            return []
        pooled = np.concatenate([rates_1, rates_2])
        quantiles = np.quantile(
            pooled, np.linspace(0.05, 0.95, self.n_thresholds)
        )
        thresholds = []
        for tau in np.unique(quantiles):
            y_1 = float(np.mean(rates_1 <= tau))
            y_2 = float(np.mean(rates_2 <= tau))
            if 0.1 <= y_1 <= 0.9 and 0.1 <= y_2 <= 0.9:
                thresholds.append(float(tau))
        return thresholds

    def detect(self, measurements_1, measurements_2, return_gaps=False):
        max_rtt = max(measurements_1.rtt, measurements_2.rtt)
        gaps_1, gaps_2 = [], []
        for multiple in self.rtt_multiples:
            interval = multiple * max_rtt
            for tau in self.candidate_thresholds(
                measurements_1, measurements_2, interval
            ):
                result = BinLossTomo(interval, tau, self.min_packets).infer(
                    measurements_1, measurements_2
                )
                gaps_1.append(result.x_1 - result.x_c)
                gaps_2.append(result.x_2 - result.x_c)
        if not gaps_1:
            detected = False
        else:
            detected = float(np.mean(gaps_1)) > 0 and float(np.mean(gaps_2)) > 0
        if return_gaps:
            return detected, np.asarray(gaps_1), np.asarray(gaps_2)
        return detected


class TrendLossTomo:
    """The V2 intermediate: "lossy" means the loss rate *increased*.

    Labelling a path lossy in an interval when its loss rate rose
    relative to the previous interval removes the loss-threshold knob
    entirely (Section 4.3, V2).  As the paper observes, this
    tomography "infers that the common link sequence has worse
    performance iff it determines that the performance of the two
    paths was correlated" -- so the per-size verdict is a significance
    test on the correlation of the binary increase indicators, and the
    overall verdict is a majority vote over the interval sizes.
    """

    def __init__(self, rtt_multiples=DEFAULT_RTT_MULTIPLES, alpha=0.05, min_packets=10):
        self.rtt_multiples = tuple(rtt_multiples)
        self.alpha = alpha
        self.min_packets = min_packets

    def detect(self, measurements_1, measurements_2):
        from repro.stats.spearman import spearman_test

        max_rtt = max(measurements_1.rtt, measurements_2.rtt)
        votes = 0
        total = 0
        for multiple in self.rtt_multiples:
            interval = multiple * max_rtt
            rates_1, rates_2 = path_loss_series(
                measurements_1, measurements_2, interval, self.min_packets
            )
            if len(rates_1) < 4:
                continue
            increased_1 = (np.diff(rates_1) > 0).astype(float)
            increased_2 = (np.diff(rates_2) > 0).astype(float)
            total += 1
            test = spearman_test(increased_1, increased_2, alternative="greater")
            if test.pvalue < self.alpha:
                votes += 1
        if total == 0:
            return False
        return votes > total / 2.0
