"""Evaluation harness reproducing the paper's Sections 5 and 6.

- :mod:`~repro.experiments.scenarios` -- Table-2 parameterized
  experiment configurations;
- :mod:`~repro.experiments.runner` -- builds simulator instances from a
  scenario and implements the localizer's replay-service interface;
- :mod:`~repro.experiments.wild` -- the five-ISP in-the-wild models of
  Section 5 (per-client throttling, incl. ISP5's delayed trigger);
- :mod:`~repro.experiments.tdiff` -- simulator-derived T_diff;
- :mod:`~repro.experiments.metrics` -- FN/FP accounting.
"""

from repro.experiments.runner import NetsimReplayService, run_detection_experiment
from repro.experiments.scenarios import ScenarioConfig

__all__ = [
    "ScenarioConfig",
    "NetsimReplayService",
    "run_detection_experiment",
]
