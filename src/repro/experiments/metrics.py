"""False-negative / false-positive accounting for the evaluation."""

from dataclasses import dataclass, field


@dataclass
class RateCounter:
    """Counts detector outcomes against ground truth."""

    positives: int = 0  # experiments where a common bottleneck exists
    negatives: int = 0  # experiments where none exists
    false_negatives: int = 0
    false_positives: int = 0

    def record(self, common_bottleneck_exists, detected):
        if common_bottleneck_exists:
            self.positives += 1
            if not detected:
                self.false_negatives += 1
        else:
            self.negatives += 1
            if detected:
                self.false_positives += 1

    @property
    def fn_rate(self):
        if self.positives == 0:
            return 0.0
        return self.false_negatives / self.positives

    @property
    def fp_rate(self):
        if self.negatives == 0:
            return 0.0
        return self.false_positives / self.negatives

    def __str__(self):
        parts = []
        if self.positives:
            parts.append(
                f"FN {self.false_negatives}/{self.positives} ({self.fn_rate:.1%})"
            )
        if self.negatives:
            parts.append(
                f"FP {self.false_positives}/{self.negatives} ({self.fp_rate:.1%})"
            )
        return ", ".join(parts) if parts else "no experiments"


@dataclass
class SweepTable:
    """Accumulates per-cell rates for the paper's tables (3, 4, 5, ...)."""

    name: str
    cells: dict = field(default_factory=dict)

    def counter(self, key):
        return self.cells.setdefault(key, RateCounter())

    def rows(self):
        for key in sorted(self.cells):
            yield key, self.cells[key]

    def format(self):
        lines = [f"== {self.name} =="]
        for key, counter in self.rows():
            lines.append(f"  {key}: {counter}")
        return "\n".join(lines)
