"""Experiment reporting: records -> JSON and text summaries.

The benchmark suite prints its tables; this module gives programmatic
users (and the CLI) the same capability: accumulate
:class:`~repro.experiments.runner.DetectionExperimentRecord` or
localization reports into a serializable summary.
"""

import json
from dataclasses import asdict, dataclass, field, is_dataclass


@dataclass
class ExperimentSummary:
    """Aggregate view over a batch of detection experiments."""

    name: str
    records: list = field(default_factory=list)

    def add(self, record):
        self.records.append(record)

    def __len__(self):
        return len(self.records)

    def detection_rate(self, detector="loss_trend"):
        """Fraction of (visible) experiments where the detector fired."""
        visible = [r for r in self.records if r.differentiation_visible]
        if not visible:
            return 0.0
        return sum(r.verdicts.get(detector, False) for r in visible) / len(visible)

    def mean_retx_rate(self):
        if not self.records:
            return 0.0
        return sum(r.retx_rate for r in self.records) / len(self.records)

    def to_dict(self):
        """JSON-serializable representation."""
        rows = []
        for record in self.records:
            config = record.config
            rows.append(
                {
                    "config": asdict(config) if is_dataclass(config) else str(config),
                    "verdicts": dict(record.verdicts),
                    "retx_rate": record.retx_rate,
                    "queuing_delay_s": record.queuing_delay,
                    "loss_rate_1": record.loss_rate_1,
                    "loss_rate_2": record.loss_rate_2,
                    "differentiation_visible": record.differentiation_visible,
                }
            )
        return {"name": self.name, "n": len(rows), "records": rows}

    def to_json(self, path=None, indent=2):
        """Serialize; writes to ``path`` when given, else returns str."""
        text = json.dumps(self.to_dict(), indent=indent)
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text)
        return text

    def format_text(self):
        """A compact human-readable summary."""
        lines = [f"== {self.name}: {len(self.records)} experiments =="]
        detectors = sorted(
            {name for record in self.records for name in record.verdicts}
        )
        for detector in detectors:
            lines.append(
                f"  {detector}: detection rate "
                f"{self.detection_rate(detector):.0%}"
            )
        lines.append(f"  mean retx rate: {self.mean_retx_rate():.3f}")
        return "\n".join(lines)
