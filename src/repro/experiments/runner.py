"""Experiment runner: scenarios -> simulator instances -> measurements.

``NetsimReplayService`` adapts a :class:`ScenarioConfig` to the replay
interface :class:`~repro.core.localizer.WeHeYLocalizer` expects: every
replay builds a *fresh* simulator (fresh background randomness -- the
replays happen at different wall-clock times, like real WeHe tests),
with the same topology and rate-limiter configuration (it is the same
ISP device across replays).

``run_detection_experiment`` is the cheaper harness used by the
Section-6 benchmarks: it runs only the original-trace simultaneous
replay and applies the common-bottleneck detectors directly, which is
what the paper's FN/FP metrics are defined on.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.core.localizer import SimultaneousReplayResult
from repro.core.loss_correlation import LossTrendCorrelation
from repro.experiments.scenarios import ScenarioConfig
from repro.faults import FaultInjector, FaultSite, ReplayAbortedError, maybe_fire
from repro.netsim.background import (
    CountingSink,
    ModulatedPoissonBackground,
    TcpBackgroundPool,
)
from repro.netsim.engine import Simulator
from repro.netsim.fluid import (
    FluidPoissonBackground,
    FluidTcpBackground,
    harvest_fluid,
)
from repro.netsim.path import Path
from repro.obs import harvest_topology
from repro.obs import metrics as _obs
from repro.netsim.topology import FigureOneTopology, TopologyConfig
from repro.wehe.apps import make_trace
from repro.wehe.loss_measurement import RetransmissionLossEstimator
from repro.wehe.replay import attach_replay
from repro.wehe.traces import poissonize

#: Seconds of background warm-up before replays start.
WARMUP = 1.0
#: Seconds of drain after replays stop.
DRAIN = 1.0


class _Environment:
    """One simulator instance wired per the scenario."""

    def __init__(self, config, seed_seq):
        self.config = config
        self.sim = Simulator()
        children = seed_seq.spawn(6)
        self.rngs = [np.random.default_rng(s) for s in children]

        topo_config = TopologyConfig(
            common_bandwidth_bps=100e6,
            rtt_1=config.rtt_1,
            rtt_2=config.rtt_2,
            limiter=config.limiter,
            limiter_rate_bps=config.limiter_rate_bps,
            queue_factor=config.queue_factor,
            noncommon_bandwidth_bps=config.noncommon_bandwidth_bps,
            fidelity=getattr(config, "fidelity", "packet"),
            shaper=getattr(config, "shaper", None),
            shaper_params=tuple(getattr(config, "shaper_params", ())),
            # Seeded mechanisms (RED/PIE draws) derive their device
            # seeds from the scenario seed, so a cell's shaper behaviour
            # depends only on the cell.
            shaper_seed=config.seed,
            # ECMP bundle knobs; the hash seed also derives from the
            # scenario seed, so member assignment is a cell property.
            multipath_members=getattr(config, "multipath", 0) or 0,
            flowlet_gap_s=getattr(config, "flowlet_gap_s", None),
            multipath_shaped=getattr(config, "multipath_shaped", None),
            multipath_seed=config.seed,
        )
        self.topology = FigureOneTopology(self.sim, topo_config)
        self._attach_background()

    def _attach_background(self):
        config = self.config
        hybrid = getattr(config, "fidelity", "packet") == "hybrid"
        stop = WARMUP + config.duration + DRAIN
        for which, rng_udp, rng_tcp in (
            (1, self.rngs[0], self.rngs[2]),
            (2, self.rngs[1], self.rngs[3]),
        ):
            links = [self.topology.noncommon_links[which - 1], self.topology.link_c]
            # The marked (same-service) share must reach the limiter in
            # full; the unmarked remainder only loads the FIFO class and
            # links, so simulating it beyond a few Mb/s per side buys
            # nothing but event count -- cap it.
            marked = config.background_share * config.background_rate_bps / 2.0
            unmarked = min(
                (1.0 - config.background_share) * config.background_rate_bps / 2.0,
                4e6,
            )
            side_rate = marked + unmarked
            if hybrid:
                FluidPoissonBackground(
                    self.sim,
                    rng_udp,
                    links,
                    side_rate,
                    dscp1_fraction=marked / side_rate if side_rate > 0 else 0.0,
                    modulation=config.background_modulation,
                    stop_at=stop,
                    flow_id=f"bg-udp-{which}",
                )
            else:
                ModulatedPoissonBackground(
                    self.sim,
                    rng_udp,
                    Path(links, CountingSink()),
                    side_rate,
                    dscp1_fraction=marked / side_rate if side_rate > 0 else 0.0,
                    modulation=config.background_modulation,
                    stop_at=stop,
                    flow_id=f"bg-udp-{which}",
                )
            if config.tcp_background_flows > 0:
                tcp_source = FluidTcpBackground if hybrid else TcpBackgroundPool
                tcp_source(
                    self.sim,
                    rng_tcp,
                    links,
                    n_longlived=max(config.tcp_background_flows // 2, 1),
                    short_flow_rate=0.5,
                    dscp1_fraction=config.background_share,
                    stop_at=stop,
                    flow_prefix=f"bg-tcp-{which}",
                )

    def run(self):
        elapsed = WARMUP + self.config.duration + DRAIN
        self.sim.run(until=elapsed)
        if _obs.ENABLED:
            # Aggregates (utilization, occupancy, delay) come from the
            # statistics the simulator keeps anyway -- one harvest per
            # run, zero per-packet cost.
            harvest_topology(_obs.SINK, self.topology, elapsed)
            if getattr(self.config, "fidelity", "packet") == "hybrid":
                harvest_fluid(_obs.SINK, self.topology)

    @property
    def ack_jitter_rng(self):
        return self.rngs[5]

    def loss_estimator(self):
        config = self.config
        if config.overcount_rate > 0 or config.registration_jitter > 0:
            return RetransmissionLossEstimator(
                config.overcount_rate, config.registration_jitter, self.rngs[4]
            )
        return RetransmissionLossEstimator()


class SimultaneousRunResult(SimultaneousReplayResult):
    """Simultaneous-replay outputs plus the per-path health metrics
    used by Figures 5 and 7."""

    def __init__(
        self,
        samples_1,
        samples_2,
        measurements_1,
        measurements_2,
        retx_rate_1=0.0,
        retx_rate_2=0.0,
        queuing_delay_1=0.0,
        queuing_delay_2=0.0,
        mean_throughput_1=0.0,
        mean_throughput_2=0.0,
    ):
        super().__init__(samples_1, samples_2, measurements_1, measurements_2)
        self.retx_rate_1 = retx_rate_1
        self.retx_rate_2 = retx_rate_2
        self.queuing_delay_1 = queuing_delay_1
        self.queuing_delay_2 = queuing_delay_2
        self.mean_throughput_1 = mean_throughput_1
        self.mean_throughput_2 = mean_throughput_2

    @property
    def mean_retx_rate(self):
        return (self.retx_rate_1 + self.retx_rate_2) / 2.0

    @property
    def mean_queuing_delay(self):
        return (self.queuing_delay_1 + self.queuing_delay_2) / 2.0


def _prepare_trace(trace, rng, modified):
    """Apply WeHeY's Section-3.4 modifications (or not, for ablations)."""
    if modified and trace.protocol == "udp":
        return poissonize(trace, rng)
    return trace


class NetsimReplayService:
    """Replay service over the simulator for one scenario.

    ``fault_injector`` (a :class:`~repro.faults.FaultInjector`) makes
    the service fail the way real WeHe servers do: replays abort before
    delivering data, sample series arrive truncated, and loss logs
    arrive corrupted.  Aborts raise :class:`ReplayAbortedError` *before*
    the simulator is built (the test never ran); truncation and
    corruption damage otherwise-complete results.
    """

    def __init__(self, config, entropy=0, merge_flows=False, fault_injector=None,
                 replay_ports=None, path_flap=None):
        self.config = config
        self._seed_seq = np.random.SeedSequence([config.seed, entropy])
        self._trace_rng = np.random.default_rng(self._seed_seq.spawn(1)[0])
        self.modified = True
        self.fault_injector = fault_injector
        # Section 7's remedy for per-flow throttling: make the two
        # simultaneous replays appear to belong to the same flow, so a
        # per-flow policer assigns them the same bucket.
        self.merge_flows = merge_flows
        # The multipath counterpart of merge_flows: client-chosen
        # ephemeral source ports, one per path.  An ECMP common device
        # hashes the replay five-tuples, so re-drawing these ports
        # (the coordinator's re-hash recovery) re-rolls which member
        # each replay lands on.  None keeps the derived default tuples.
        self.replay_ports = replay_ports
        # A repro.faults.PathFlapInjector armed once per replay run.
        self.path_flap = path_flap
        self.last_simultaneous_handles = None
        self.last_environment = None

    def _new_environment(self):
        env = _Environment(self.config, self._seed_seq.spawn(1)[0])
        self._register_ports(env)
        if self.path_flap is not None:
            self.path_flap.arm(
                env.sim, env.topology.link_c, WARMUP, self.config.duration
            )
        return env

    def _register_ports(self, env):
        """Pin the replay flows' five-tuples on a multipath common device."""
        if self.replay_ports is None:
            return
        register = getattr(env.topology.link_c, "register_flow", None)
        if register is None:
            return
        app = self.config.app
        proto = self.config.protocol
        for which, sport in zip((1, 2), self.replay_ports):
            for suffix in ("orig", "inv"):
                register(f"replay-{app}-{which}-{suffix}", sport, proto=proto)
        if self.merge_flows:
            register(f"replay-{app}-merged", self.replay_ports[0], proto=proto)

    def single_replay(self, trace):
        """WeHe's p0 replay; returns 100 throughput samples."""
        if maybe_fire(self.fault_injector, FaultSite.REPLAY_ABORT):
            raise ReplayAbortedError("single replay aborted")
        env = self._new_environment()
        trace = _prepare_trace(trace, self._trace_rng, self.modified)
        handle = attach_replay(
            env.sim,
            env.topology,
            1,
            trace,
            start_at=WARMUP,
            duration=self.config.duration,
            ack_jitter_rng=env.ack_jitter_rng,
        )
        env.run()
        samples = handle.throughput_samples()
        if maybe_fire(self.fault_injector, FaultSite.TRUNCATED_SAMPLES):
            samples = self.fault_injector.truncate_samples(samples)
        return samples

    def simultaneous_replay(self, trace):
        """Replay ``trace`` on p1 and p2 at (nearly) the same instant.

        Starts are only back-to-back client commands (Section 3.4), so
        the second replay begins a command-latency later -- drawn here
        between 20 and 100 ms, covering the RTT/startup spread of real
        server pairs.
        """
        if maybe_fire(self.fault_injector, FaultSite.REPLAY_ABORT):
            raise ReplayAbortedError("simultaneous replay aborted")
        env = self._new_environment()
        pacing = self.modified
        offset = float(self._trace_rng.uniform(0.02, 0.1))
        handles = []
        merged_id = f"replay-{trace.app}-merged" if self.merge_flows else None
        for which, start in ((1, WARMUP), (2, WARMUP + offset)):
            prepared = _prepare_trace(trace, self._trace_rng, self.modified)
            handle = attach_replay(
                env.sim,
                env.topology,
                which,
                prepared,
                start_at=start,
                duration=self.config.duration,
                flow_id=merged_id,
                ack_jitter_rng=env.ack_jitter_rng,
            )
            if prepared.protocol == "tcp":
                handle.sender.pacing = pacing
            handles.append(handle)
        env.run()
        # Kept for callers that need raw capture access after the run
        # (the shaper fingerprinter reads windowed loss/mark series the
        # summary statistics below throw away).
        self.last_simultaneous_handles = handles
        self.last_environment = env
        estimator = env.loss_estimator()
        h1, h2 = handles
        result = SimultaneousRunResult(
            samples_1=h1.throughput_samples(),
            samples_2=h2.throughput_samples(),
            measurements_1=h1.path_measurements(estimator),
            measurements_2=h2.path_measurements(estimator),
            retx_rate_1=h1.retransmission_rate(),
            retx_rate_2=h2.retransmission_rate(),
            queuing_delay_1=h1.queuing_delay(),
            queuing_delay_2=h2.queuing_delay(),
            mean_throughput_1=h1.mean_throughput(),
            mean_throughput_2=h2.mean_throughput(),
        )
        injector = self.fault_injector
        if maybe_fire(injector, FaultSite.TRUNCATED_SAMPLES):
            result.samples_1 = injector.truncate_samples(result.samples_1)
            result.samples_2 = injector.truncate_samples(result.samples_2)
        if maybe_fire(injector, FaultSite.CORRUPT_LOSS):
            injector.corrupt_measurements(result.measurements_1)
            injector.corrupt_measurements(result.measurements_2)
        return result


@dataclass(frozen=True)
class DetectionExperimentRecord:
    """One Section-6 experiment: detector verdicts plus health metrics.

    Frozen so records can cross process boundaries (the parallel sweep
    executor returns them from worker processes) without any risk of a
    consumer mutating shared state; ``status`` is ``"ok"`` for a
    completed cell and ``"aborted"`` when fault injection killed the
    replay before it produced measurements.
    """

    config: ScenarioConfig
    verdicts: dict = field(default_factory=dict)
    retx_rate: float = 0.0
    queuing_delay: float = 0.0
    loss_rate_1: float = 0.0
    loss_rate_2: float = 0.0
    differentiation_visible: bool = True
    status: str = "ok"

    def verdict(self, name):
        return self.verdicts[name]

    @property
    def aborted(self):
        return self.status == "aborted"


#: Below this per-path loss rate WeHe would likely not have flagged the
#: test (the paper excluded 41/360 such runs); see EXPERIMENTS.md.
MIN_VISIBLE_LOSS_RATE = 0.003


def run_detection_experiment(
    config,
    detectors=None,
    modified=True,
    entropy=0,
    merge_flows=False,
    fault_profile=None,
):
    """Run one FN/FP experiment cell.

    Generates the app's original trace, runs the original-trace
    simultaneous replay, and applies each detector to the resulting
    path measurements.  ``detectors`` maps name -> object with a
    ``detect(m1, m2)`` method (default: Algorithm 1); pass
    ``modified=False`` to replay unmodified traces (Figure 6's
    ablation).

    ``fault_profile`` (a spec string or :class:`~repro.faults.FaultProfile`)
    injects failures seeded from ``config.seed``, so the fault schedule
    of a cell depends only on the cell -- never on how many other cells
    ran before it or on which worker process it landed in.  An aborted
    replay returns a record with ``status="aborted"`` instead of
    raising, which keeps sweep result streams aligned with their
    config streams.
    """
    if detectors is None:
        detectors = {"loss_trend": LossTrendCorrelation()}
    injector = None
    if fault_profile is not None:
        if isinstance(fault_profile, str):
            injector = FaultInjector.from_spec(fault_profile, seed=config.seed)
        else:
            injector = FaultInjector(fault_profile, seed=config.seed)
    service = NetsimReplayService(
        config, entropy=entropy, merge_flows=merge_flows, fault_injector=injector
    )
    service.modified = modified
    trace = make_trace(config.app, config.duration, service._trace_rng)
    try:
        result = service.simultaneous_replay(trace)
    except ReplayAbortedError:
        if _obs.ENABLED:
            _obs.SINK.inc("runner.cells_aborted")
        return DetectionExperimentRecord(
            config=config,
            verdicts={},
            differentiation_visible=False,
            status="aborted",
        )

    verdicts = {}
    for name, detector in detectors.items():
        outcome = detector.detect(result.measurements_1, result.measurements_2)
        verdicts[name] = (
            outcome.common_bottleneck
            if hasattr(outcome, "common_bottleneck")
            else bool(outcome)
        )
    loss_1 = result.measurements_1.loss_rate
    loss_2 = result.measurements_2.loss_rate
    if _obs.ENABLED:
        _obs.SINK.inc("runner.cells_completed")
    return DetectionExperimentRecord(
        config=config,
        verdicts=verdicts,
        retx_rate=result.mean_retx_rate,
        queuing_delay=result.mean_queuing_delay,
        loss_rate_1=loss_1,
        loss_rate_2=loss_2,
        differentiation_visible=min(loss_1, loss_2) >= MIN_VISIBLE_LOSS_RATE,
    )
