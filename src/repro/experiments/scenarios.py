"""Experiment scenarios -- the knobs of the paper's Table 2.

A :class:`ScenarioConfig` fully determines one emulation/simulation
experiment: the replayed application, where the rate limiter sits, how
hard it throttles (the ``input_rate_factor``: traffic arrives at the
limiter at 1.3x / 1.5x / 2x / 2.5x its rate), how deep its queue is
(0.25x / 0.5x / 1x the burst), what share of the background traffic
competes inside the limiter (25 / 50 / 75 %), the two path RTTs, and
how congested the non-common links are (input-traffic / bandwidth of
0.2 default, 0.95 / 1.05 / 1.15 for Table 4).

Rates are scaled to simulator-friendly magnitudes; the *ratios* (which
is what the evaluation sweeps) match the paper.
"""

from dataclasses import dataclass, replace

from repro.wehe.apps import APP_SPECS

#: Paper parameter grids (Table 2); bold defaults first.
INPUT_RATE_FACTORS = (1.5, 1.3, 2.0, 2.5)
QUEUE_FACTORS = (0.5, 0.25, 1.0)
BACKGROUND_SHARES = (0.5, 0.25, 0.75)
CONGESTION_FACTORS = (0.2, 0.95, 1.05, 1.15)
RTT2_SWEEP = (0.010, 0.015, 0.025, 0.035, 0.060, 0.120)


@dataclass(frozen=True)
class ScenarioConfig:
    """One experiment's parameters (defaults = Table 2 bold values)."""

    app: str = "netflix"
    limiter: str = "common"  # "common", "noncommon", "perflow", or None
    input_rate_factor: float = 1.5
    queue_factor: float = 0.5
    background_share: float = 0.5
    background_rate_bps: float = 20e6
    tcp_background_flows: int = 2
    rtt_1: float = 0.035
    rtt_2: float = 0.035
    congestion_factor: float = 0.2
    duration: float = 60.0
    #: override the background modulation components (ablation knob);
    #: None uses repro.netsim.background.DEFAULT_MODULATION.
    background_modulation: tuple = None
    seed: int = 0
    #: extra loss-measurement noise (see RetransmissionLossEstimator)
    overcount_rate: float = 0.0
    registration_jitter: float = 0.0
    #: ``"packet"`` simulates every background packet exactly;
    #: ``"hybrid"`` replaces background traffic with the calibrated
    #: fluid model of :mod:`repro.netsim.fluid` (only foreground
    #: replay packets and ACKs remain exact DES events).  Part of the
    #: store cache key -- records from the two fidelities never alias.
    fidelity: str = "packet"
    #: rate-limiting *mechanism* deployed at the ``limiter`` placement
    #: (orthogonal knobs: ``limiter`` says where, ``shaper`` says what).
    #: None means the paper's default token-bucket device; any name from
    #: :func:`repro.netsim.qdisc.registered_qdiscs` works ("red",
    #: "codel", "pie", "dual_tbf", "conditional", "ecn", ...).  Part of
    #: the cache key when set; omitted at the default so pre-shaper
    #: records keep their keys.
    shaper: str = None
    #: mechanism parameters as a tuple of ``(name, value)`` pairs
    #: (hashable, so configs stay frozen/hashable).
    shaper_params: tuple = ()
    #: ECMP member count of the ISP's common device (0 = the classic
    #: single common link).  With N >= 2 members the two simultaneous
    #: replays co-hash onto one member with probability 1/N -- the
    #: common-bottleneck assumption becomes probabilistic.  Part of the
    #: cache key when set; omitted at the default so every
    #: pre-multipath record keeps its key.
    multipath: int = 0
    #: flowlet re-hash gap in seconds (LetFlow-style switching); None
    #: keeps classic sticky ECMP.  Requires ``multipath >= 1``.
    flowlet_gap_s: float = None
    #: how many bundle members carry the limiter (None = all); the
    #: subset is a seeded draw per scenario seed.
    multipath_shaped: int = None

    def __post_init__(self):
        if self.app not in APP_SPECS:
            raise ValueError(f"unknown app {self.app!r}")
        if self.limiter not in (None, "common", "noncommon", "perflow"):
            raise ValueError(f"unknown limiter placement {self.limiter!r}")
        if self.fidelity not in ("packet", "hybrid"):
            raise ValueError(f"unknown fidelity {self.fidelity!r}")
        if self.input_rate_factor <= 1.0 and self.limiter is not None:
            raise ValueError("input_rate_factor must exceed 1 for throttling to bite")
        if not 0.0 <= self.background_share <= 1.0:
            raise ValueError("background_share must be in [0, 1]")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.shaper_params and self.shaper is None:
            raise ValueError("shaper_params requires a shaper")
        if self.shaper is not None:
            if self.limiter is None:
                raise ValueError("shaper requires a limiter placement")
            from repro.netsim.qdisc import qdisc_spec

            qdisc_spec(self.shaper)  # raises on unknown mechanisms
            object.__setattr__(
                self,
                "shaper_params",
                tuple(tuple(pair) for pair in self.shaper_params),
            )
        if self.multipath < 0:
            raise ValueError("multipath must be non-negative")
        if self.multipath:
            if self.fidelity != "packet":
                raise ValueError("multipath requires fidelity='packet'")
            if self.flowlet_gap_s is not None and self.flowlet_gap_s <= 0:
                raise ValueError("flowlet_gap_s must be positive")
            if self.multipath_shaped is not None and not (
                1 <= self.multipath_shaped <= self.multipath
            ):
                raise ValueError("multipath_shaped must be in [1, multipath]")
        else:
            if self.flowlet_gap_s is not None:
                raise ValueError("flowlet_gap_s requires multipath >= 1")
            if self.multipath_shaped is not None:
                raise ValueError("multipath_shaped requires multipath >= 1")

    @property
    def protocol(self):
        return APP_SPECS[self.app].protocol

    @property
    def replay_rate_bps(self):
        """Nominal offered rate of one original replay."""
        return APP_SPECS[self.app].rate_bps

    @property
    def limiter_rate_bps(self):
        """Throttling rate such that the simultaneous replay plus the
        throttled background share arrives at ``input_rate_factor`` times
        the rate (Section 6.2's load definition)."""
        offered = (
            2.0 * self.replay_rate_bps
            + self.background_share * self.background_rate_bps
        )
        if self.limiter == "noncommon":
            # Each of the two limiters sees one replay and half of the
            # background aggregate.
            offered = (
                self.replay_rate_bps
                + self.background_share * self.background_rate_bps / 2.0
            )
        elif self.limiter == "perflow":
            # Per-flow policers: each flow is individually held below
            # its own offered rate.
            offered = self.replay_rate_bps
        return offered / self.input_rate_factor

    @property
    def noncommon_bandwidth_bps(self):
        """Link bandwidth of l1/l2 given the Table-2 congestion factor."""
        input_rate = self.replay_rate_bps + self.background_rate_bps / 2.0
        return input_rate / self.congestion_factor

    def with_(self, **changes):
        """Functional update (convenience for sweeps)."""
        return replace(self, **changes)


def severity_grid(app, seeds, factors=INPUT_RATE_FACTORS, queues=QUEUE_FACTORS):
    """The Section-6.2 grid: rate factor x queue factor x seeds."""
    for factor in factors:
        for queue in queues:
            for seed in seeds:
                yield ScenarioConfig(
                    app=app,
                    input_rate_factor=factor,
                    queue_factor=queue,
                    seed=seed,
                )


def rtt_grid(app, seeds, rtts=RTT2_SWEEP, **common):
    """The Table-3 grid: asymmetric path RTTs x seeds."""
    for rtt_2 in rtts:
        for seed in seeds:
            yield ScenarioConfig(app=app, rtt_2=rtt_2, seed=seed, **common)


def congestion_grid(app, seeds, factors=CONGESTION_FACTORS, **common):
    """The Table-4 grid: non-common-link congestion x seeds."""
    for factor in factors:
        for seed in seeds:
            yield ScenarioConfig(
                app=app, congestion_factor=factor, seed=seed, **common
            )


def multipath_grid(app, seeds, member_counts=(1, 2, 4), flowlet_gaps=(None,),
                   **common):
    """The ECMP confounder grid: member count x flowlet gap x seeds.

    ``member_counts`` sets the hash-collision probability axis (the two
    replays co-hash with probability 1/N); ``flowlet_gaps`` adds the
    mid-test flowlet-split axis (None = sticky ECMP).
    """
    for members in member_counts:
        for gap in flowlet_gaps:
            for seed in seeds:
                yield ScenarioConfig(
                    app=app,
                    multipath=members,
                    flowlet_gap_s=gap,
                    seed=seed,
                    **common,
                )


def seed_sweep(base_config, seeds):
    """One cell replicated across seeds (the FN/FP rate estimator).

    Every sweep generator in this module yields plain configs; feed the
    list to :func:`repro.api.run_sweep` to execute it on
    all cores, or iterate it serially -- results are identical either
    way.
    """
    for seed in seeds:
        yield base_config.with_(seed=seed)
