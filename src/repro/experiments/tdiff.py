"""Simulator-derived T_diff (normal throughput variation).

The statistical corpus in :mod:`repro.wehe.corpus` assumes a
coefficient of variation for back-to-back WeHe tests; this module
*measures* it instead, by running pairs of bit-inverted replays minutes
apart on an undifferentiated path with fresh background traffic, then
feeding the pairs through the same t_diff formula.
"""

import warnings

import numpy as np

from repro.experiments.runner import NetsimReplayService
from repro.experiments.scenarios import ScenarioConfig
from repro.stats.montecarlo import relative_mean_difference
from repro.wehe.apps import make_trace
from repro.wehe.traces import bit_invert


def _tdiff_pair(config):
    """One back-to-back replay pair; pure function of its config."""
    service = NetsimReplayService(config)
    trace = bit_invert(make_trace(config.app, config.duration, service._trace_rng))
    first = service.single_replay(trace)
    second = service.single_replay(trace)
    return relative_mean_difference(first, second)


def _tdiff_sweep(
    n_pairs=25,
    app="netflix",
    duration=15.0,
    base_seed=5000,
    fidelity="packet",
    jobs=1,
    store=None,
    no_cache=False,
    on_result=None,
    cell_timeout=None,
    max_cell_retries=None,
    strict=False,
):
    """T_diff-sweep implementation; returns the 5-tuple
    ``(values, hits, misses, failures, interrupted)``.

    ``values`` is a float ndarray of ``n_pairs`` t_diff samples -- or a
    plain list when cells were quarantined or the sweep was drained
    (``CellFailure``/``None`` entries do not belong in a float array).
    The engine behind :func:`repro.api.run_sweep`; call that instead.
    """
    from repro.parallel import SweepExecutor
    from repro.parallel.executor import _run_cached_sweep, _run_plain_sweep
    from repro.parallel.supervisor import DEFAULT_MAX_CELL_RETRIES

    if max_cell_retries is None:
        max_cell_retries = DEFAULT_MAX_CELL_RETRIES
    executor = SweepExecutor(
        jobs,
        cell_timeout=cell_timeout,
        max_cell_retries=max_cell_retries,
        strict=strict,
    )
    configs = [
        ScenarioConfig(
            app=app,
            limiter=None,
            input_rate_factor=1.5,
            duration=duration,
            seed=base_seed + pair,
            fidelity=fidelity,
        )
        for pair in range(n_pairs)
    ]
    if store is None:
        values, hits, misses, failures, interrupted = _run_plain_sweep(
            _tdiff_pair, configs, executor, on_result=on_result
        )
    else:
        from repro.store import tdiff_cache_key

        keys = [
            tdiff_cache_key(
                config,
                fingerprint=store.fingerprint,
                schema_version=store.schema_version,
            )
            for config in configs
        ]
        values, hits, misses, failures, interrupted = _run_cached_sweep(
            _tdiff_pair,
            configs,
            keys,
            store,
            executor,
            kind="tdiff",
            decode=lambda payload: payload["value"],
            encode=lambda value: {"kind": "tdiff", "value": float(value)},
            no_cache=no_cache,
            on_result=on_result,
        )
    if not failures and not interrupted:
        values = np.asarray(values)
    return values, hits, misses, failures, interrupted


def simulate_tdiff(
    n_pairs=25, app="netflix", duration=15.0, base_seed=5000, jobs=1, store=None
):
    """Run ``n_pairs`` back-to-back replay pairs and return t_diff samples.

    .. deprecated:: 1.1
        Use :func:`repro.api.run_sweep` with
        :meth:`repro.api.SweepRequest.tdiff` instead.

    Each pair replays the bit-inverted trace twice on a path without a
    rate limiter; the two runs see different background traffic (the
    second test happens minutes later), giving genuine normal
    throughput variation.  Pairs are seeded independently, so
    ``jobs > 1`` fans them out over cores without changing the samples.

    ``store`` (a :class:`~repro.store.ExperimentStore`) caches each
    pair's t_diff value under a ``kind="tdiff"`` key, so re-estimating
    the distribution replays nothing.
    """
    warnings.warn(
        "simulate_tdiff is deprecated; use "
        "repro.api.run_sweep(SweepRequest.tdiff(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro import api

    return api.run_sweep(
        api.SweepRequest.tdiff(
            n_pairs=n_pairs,
            app=app,
            duration=duration,
            base_seed=base_seed,
            jobs=jobs,
            store=store,
        )
    ).results
