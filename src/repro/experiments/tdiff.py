"""Simulator-derived T_diff (normal throughput variation).

The statistical corpus in :mod:`repro.wehe.corpus` assumes a
coefficient of variation for back-to-back WeHe tests; this module
*measures* it instead, by running pairs of bit-inverted replays minutes
apart on an undifferentiated path with fresh background traffic, then
feeding the pairs through the same t_diff formula.
"""

import numpy as np

from repro.experiments.runner import NetsimReplayService
from repro.experiments.scenarios import ScenarioConfig
from repro.stats.montecarlo import relative_mean_difference
from repro.wehe.apps import make_trace
from repro.wehe.traces import bit_invert


def simulate_tdiff(n_pairs=25, app="netflix", duration=15.0, base_seed=5000):
    """Run ``n_pairs`` back-to-back replay pairs and return t_diff samples.

    Each pair replays the bit-inverted trace twice on a path without a
    rate limiter; the two runs see different background traffic (the
    second test happens minutes later), giving genuine normal
    throughput variation.
    """
    values = []
    for pair in range(n_pairs):
        config = ScenarioConfig(
            app=app,
            limiter=None,
            input_rate_factor=1.5,
            duration=duration,
            seed=base_seed + pair,
        )
        service = NetsimReplayService(config)
        trace = bit_invert(make_trace(app, duration, service._trace_rng))
        first = service.single_replay(trace)
        second = service.single_replay(trace)
        values.append(relative_mean_difference(first, second))
    return np.asarray(values)
