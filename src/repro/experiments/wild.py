"""In-the-wild evaluation models -- Section 5 (Table 1, Figure 4).

The paper tested WeHeY's throughput-comparison algorithm against five
U.S. cellular ISPs that throttle video *per client* (e.g. "video at
480p").  We model each ISP as a per-client token-bucket policer on the
common link sequence -- only the client's own targeted-service traffic
enters it (no background competes inside), which is what makes the
aggregate simultaneous throughput add up to the single-replay
throughput.

ISP5 reproduces the paper's pathological case: its fixed-rate
throttling (2.5 Mbps) engages only after a data-volume criterion is
met, so during a simultaneous replay (two servers streaming at once)
the criterion trips roughly twice as fast, the throughput time series
of single and simultaneous replays diverge (Figure 4), and the
throughput comparison fails.

"Sanity check" tests add a third server replaying concurrently during
the original simultaneous replay; p1 + p2 then share the per-client
policer with a third path, their aggregate no longer adds up to X, and
the algorithm must *not* detect a common bottleneck.
"""

from dataclasses import dataclass

import numpy as np

from repro.core.localizer import WeHeYLocalizer
from repro.experiments.runner import (
    DRAIN,
    WARMUP,
    SimultaneousRunResult,
    _prepare_trace,
)
from repro.netsim.background import CountingSink, ModulatedPoissonBackground
from repro.netsim.engine import Simulator
from repro.netsim.fluid import FluidPoissonBackground
from repro.netsim.path import Path
from repro.netsim.topology import FigureOneTopology, TopologyConfig
from repro.obs import harvest_topology
from repro.obs import metrics as _obs
from repro.wehe.apps import make_trace
from repro.wehe.corpus import generate_corpus, tdiff_distribution
from repro.wehe.replay import attach_replay


@dataclass(frozen=True)
class IspModel:
    """One wild ISP's per-client throttling policy."""

    name: str
    throttle_rate_bps: float
    queue_factor: float
    rtt: float
    #: bytes of targeted-service traffic before throttling engages
    #: (None = always on).  ISP5's conditional policy.
    trigger_bytes: float = None
    trigger_jitter: float = 0.0
    #: rate-limiting mechanism deployed on the common link (None = the
    #: paper's token-bucket policer; any registered qdisc name works).
    shaper: str = None
    #: mechanism parameters as ``(name, value)`` pairs.
    shaper_params: tuple = ()


#: The five ISPs of Table 1 (anonymized in the paper; parameters are
#: plausible per-client video-throttling configurations).
WILD_ISPS = {
    "ISP1": IspModel("ISP1", 2.5e6, 0.5, 0.045),
    "ISP2": IspModel("ISP2", 3.0e6, 0.25, 0.055),
    "ISP3": IspModel("ISP3", 2.0e6, 0.5, 0.040),
    "ISP4": IspModel("ISP4", 4.0e6, 1.0, 0.060),
    "ISP5": IspModel(
        "ISP5", 2.5e6, 0.5, 0.050, trigger_bytes=12e6, trigger_jitter=0.3
    ),
}

#: Hypothetical ISPs deploying the wider shaper zoo (AQM, two-rate,
#: qdisc-level conditional throttling).  Kept separate from the
#: Table-1 five so the paper-reproduction sweeps are unchanged;
#: :func:`isp_model` looks names up across both.
ZOO_ISPS = {
    "ZOO-RED": IspModel("ZOO-RED", 2.5e6, 0.5, 0.045, shaper="red"),
    "ZOO-CODEL": IspModel("ZOO-CODEL", 3.0e6, 0.5, 0.050, shaper="codel"),
    "ZOO-PIE": IspModel("ZOO-PIE", 2.5e6, 0.5, 0.045, shaper="pie"),
    "ZOO-ECN": IspModel("ZOO-ECN", 2.5e6, 0.5, 0.045, shaper="ecn"),
    "ZOO-DUAL": IspModel(
        "ZOO-DUAL",
        2.0e6,
        0.5,
        0.050,
        shaper="dual_tbf",
        shaper_params=(("peak_factor", 2.0), ("boost_bytes", 3_000_000)),
    ),
    "ZOO-COND": IspModel(
        "ZOO-COND",
        2.5e6,
        0.5,
        0.050,
        shaper="conditional",
        shaper_params=(("trigger_bytes", 8e6),),
    ),
}


def isp_model(isp_name):
    """Look up an ISP model across the Table-1 five and the zoo."""
    model = WILD_ISPS.get(isp_name) or ZOO_ISPS.get(isp_name)
    if model is None:
        known = ", ".join([*WILD_ISPS, *ZOO_ISPS])
        raise KeyError(f"unknown ISP {isp_name!r} (known: {known})")
    return model


class DelayedTriggerClassifier:
    """Classifier that starts throttling after a data-volume criterion.

    Counts targeted-service bytes; packets are sent to the TBF only
    once the cumulative volume passes the trigger.  This reproduces
    ISP5's "fixed-rate throttling kicks in after some criterion is met"
    behaviour (Section 5).
    """

    def __init__(self, trigger_bytes):
        self.trigger_bytes = trigger_bytes
        self.seen_bytes = 0.0
        self.tripped = trigger_bytes <= 0

    def __call__(self, packet):
        if packet.dscp != 1:
            return False
        if not self.tripped:
            self.seen_bytes += packet.size
            if self.seen_bytes >= self.trigger_bytes:
                self.tripped = True
        return self.tripped


class WildReplayService:
    """Replay service over a wild-ISP model.

    Parameters:
        isp: an :class:`IspModel`.
        app: replayed application name.
        seed: experiment seed.
        sanity_check: when True, a third server replays the original
            trace concurrently during original simultaneous replays.
        fidelity: ``"packet"`` simulates the non-targeted background
            per packet; ``"hybrid"`` replaces it with the calibrated
            fluid model of :mod:`repro.netsim.fluid`.
    """

    def __init__(
        self, isp, app, seed=0, duration=45.0, sanity_check=False, fidelity="packet"
    ):
        self.isp = isp
        self.app = app
        self.seed = seed
        self.duration = duration
        self.sanity_check = sanity_check
        self.fidelity = fidelity
        self._seed_seq = np.random.SeedSequence([hash(isp.name) % (2**31), seed])
        self._trace_rng = np.random.default_rng(self._seed_seq.spawn(1)[0])
        self.modified = True

    def _new_environment(self):
        sim = Simulator()
        children = self._seed_seq.spawn(3)
        rng_bg = np.random.default_rng(children[0])
        rng_trigger = np.random.default_rng(children[1])
        self._ack_jitter_rng = np.random.default_rng(children[2])
        config = TopologyConfig(
            common_bandwidth_bps=100e6,
            rtt_1=self.isp.rtt,
            rtt_2=self.isp.rtt * 1.1,
            limiter="common",
            limiter_rate_bps=self.isp.throttle_rate_bps,
            queue_factor=self.isp.queue_factor,
            extra_server_rtts=(self.isp.rtt * 1.2,),
            fidelity=self.fidelity,
            shaper=self.isp.shaper,
            shaper_params=tuple(self.isp.shaper_params),
            shaper_seed=self.seed,
        )
        topology = FigureOneTopology(sim, config)
        if self.isp.trigger_bytes is not None:
            jitter = 1.0 + self.isp.trigger_jitter * float(
                rng_trigger.uniform(-1.0, 1.0)
            )
            topology.link_c.qdisc.classifier = DelayedTriggerClassifier(
                self.isp.trigger_bytes * jitter
            )
        # Light non-targeted background; it shares links but not the
        # per-client policer (dscp1_fraction = 0).
        if self.fidelity == "hybrid":
            FluidPoissonBackground(
                sim,
                rng_bg,
                [topology.link_1, topology.link_c],
                4e6,
                dscp1_fraction=0.0,
                stop_at=WARMUP + self.duration + DRAIN,
            )
        else:
            ModulatedPoissonBackground(
                sim,
                rng_bg,
                Path([topology.link_1, topology.link_c], CountingSink()),
                4e6,
                dscp1_fraction=0.0,
                stop_at=WARMUP + self.duration + DRAIN,
            )
        return sim, topology

    def single_replay(self, trace):
        sim, topology = self._new_environment()
        trace = _prepare_trace(trace, self._trace_rng, self.modified)
        handle = attach_replay(
            sim, topology, 1, trace, start_at=WARMUP, duration=self.duration,
            ack_jitter_rng=self._ack_jitter_rng,
        )
        elapsed = WARMUP + self.duration + DRAIN
        sim.run(until=elapsed)
        if _obs.ENABLED:
            harvest_topology(_obs.SINK, topology, elapsed)
        self.last_single_handle = handle
        return handle.throughput_samples()

    def simultaneous_replay(self, trace):
        sim, topology = self._new_environment()
        offset = float(self._trace_rng.uniform(0.02, 0.1))
        handles = []
        for which, start in ((1, WARMUP), (2, WARMUP + offset)):
            prepared = _prepare_trace(trace, self._trace_rng, self.modified)
            handles.append(
                attach_replay(
                    sim, topology, which, prepared,
                    start_at=start, duration=self.duration,
                    ack_jitter_rng=self._ack_jitter_rng,
                )
            )
        if self.sanity_check and trace.is_original:
            third = _prepare_trace(trace, self._trace_rng, self.modified)
            attach_replay(
                sim, topology, 3, third,
                start_at=WARMUP + 2 * offset, duration=self.duration,
                ack_jitter_rng=self._ack_jitter_rng,
            )
        elapsed = WARMUP + self.duration + DRAIN
        sim.run(until=elapsed)
        if _obs.ENABLED:
            harvest_topology(_obs.SINK, topology, elapsed)
        h1, h2 = handles
        self.last_simultaneous_handles = handles
        return SimultaneousRunResult(
            samples_1=h1.throughput_samples(),
            samples_2=h2.throughput_samples(),
            measurements_1=h1.path_measurements(),
            measurements_2=h2.path_measurements(),
            retx_rate_1=h1.retransmission_rate(),
            retx_rate_2=h2.retransmission_rate(),
            queuing_delay_1=h1.queuing_delay(),
            queuing_delay_2=h2.queuing_delay(),
            mean_throughput_1=h1.mean_throughput(),
            mean_throughput_2=h2.mean_throughput(),
        )


_TDIFF_CACHE = {}


def default_tdiff(seed=1234):
    """A cached T_diff sample set from the synthetic historical corpus."""
    if seed not in _TDIFF_CACHE:
        corpus = generate_corpus(np.random.default_rng(seed))
        _TDIFF_CACHE[seed] = tdiff_distribution(corpus)
    return _TDIFF_CACHE[seed]


def run_wild_test(
    isp_name, app="netflix", seed=0, sanity_check=False, fidelity="packet", tdiff=None
):
    """One Section-5 test; returns the localizer's report.

    Basic tests should localize (per-client throttling); sanity-check
    tests should not.
    """
    isp = isp_model(isp_name)
    service = WildReplayService(
        isp, app, seed=seed, sanity_check=sanity_check, fidelity=fidelity
    )
    rng = np.random.default_rng(np.random.SeedSequence([seed, 77]))
    localizer = WeHeYLocalizer(
        rng,
        tdiff if tdiff is not None else default_tdiff(),
        skip_loss_correlation=True,
    )
    original = make_trace(app, service.duration, service._trace_rng)
    from repro.wehe.traces import bit_invert

    return localizer.localize(service, original, bit_invert(original))


def run_table1_sweep(
    isp_names=None,
    apps=("netflix",),
    seeds=range(3),
    jobs=None,
    sanity_check=False,
    store=None,
):
    """The Table-1 grid (ISPs x apps x seeds) on all cores.

    .. deprecated:: 1.1
        Use :func:`repro.api.run_sweep` with
        :meth:`repro.api.SweepRequest.wild` instead (it defaults to the
        same grid).

    Every cell seeds itself from ``(isp, seed)`` alone, so the sweep is
    embarrassingly parallel; returns per-cell summary dicts in grid
    order regardless of ``jobs``.  ``store`` caches and resumes cells
    exactly as in :func:`repro.api.run_sweep`.
    """
    import warnings

    warnings.warn(
        "run_table1_sweep is deprecated; use "
        "repro.api.run_sweep(SweepRequest.wild(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro import api

    return api.run_sweep(
        api.SweepRequest.wild(
            isp_names,
            apps=apps,
            seeds=list(seeds),
            sanity_check=sanity_check,
            jobs=jobs,
            store=store,
        )
    ).results
