"""Deterministic fault injection for the WeHeY pipeline.

The wild deployment the paper describes (Section 3.4) fails constantly:
replays abort, traceroutes time out, topology entries go stale, and
measurements arrive truncated or corrupted.  This package makes those
failures *injectable and reproducible* -- a seeded
:class:`FaultInjector` drives every failure site from its own RNG
stream, so a failing run can be replayed exactly.

Usage::

    from repro.faults import FaultInjector, FaultProfile

    injector = FaultInjector(FaultProfile.parse("replay_abort=0.5"), seed=7)
    service = NetsimReplayService(config, fault_injector=injector)

:mod:`repro.faults.chaos` extends the same idea one layer down, to the
*process* level: seeded worker-kill / hang / raise / slow injectors
(:class:`ChaosProfile`, activated via ``REPRO_CHAOS`` or a
``chaos_profile=`` knob) exercise the sweep supervisor in
:mod:`repro.parallel`.
"""

from repro.faults.chaos import ChaosError, ChaosProfile, chaos_from_env
from repro.faults.flap import PathFlapInjector, PathFlapPlan, plan_path_flap
from repro.faults.injector import (
    FaultInjectionError,
    FaultInjector,
    ReplayAbortedError,
    StaleTopologyError,
    TracerouteTimeoutError,
    maybe_fire,
)
from repro.faults.profile import ALL_SITES, FaultProfile, FaultRule, FaultSite
from repro.faults.retry import RetryBudget, RetryPolicy

__all__ = [
    "ALL_SITES",
    "ChaosError",
    "ChaosProfile",
    "FaultInjectionError",
    "FaultInjector",
    "FaultProfile",
    "FaultRule",
    "FaultSite",
    "PathFlapInjector",
    "PathFlapPlan",
    "ReplayAbortedError",
    "RetryBudget",
    "RetryPolicy",
    "StaleTopologyError",
    "TracerouteTimeoutError",
    "chaos_from_env",
    "maybe_fire",
    "plan_path_flap",
]
