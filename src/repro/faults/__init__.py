"""Deterministic fault injection for the WeHeY pipeline.

The wild deployment the paper describes (Section 3.4) fails constantly:
replays abort, traceroutes time out, topology entries go stale, and
measurements arrive truncated or corrupted.  This package makes those
failures *injectable and reproducible* -- a seeded
:class:`FaultInjector` drives every failure site from its own RNG
stream, so a failing run can be replayed exactly.

Usage::

    from repro.faults import FaultInjector, FaultProfile

    injector = FaultInjector(FaultProfile.parse("replay_abort=0.5"), seed=7)
    service = NetsimReplayService(config, fault_injector=injector)
"""

from repro.faults.injector import (
    FaultInjectionError,
    FaultInjector,
    ReplayAbortedError,
    StaleTopologyError,
    TracerouteTimeoutError,
    maybe_fire,
)
from repro.faults.profile import ALL_SITES, FaultProfile, FaultRule, FaultSite
from repro.faults.retry import RetryBudget, RetryPolicy

__all__ = [
    "ALL_SITES",
    "FaultInjectionError",
    "FaultInjector",
    "FaultProfile",
    "FaultRule",
    "FaultSite",
    "ReplayAbortedError",
    "RetryBudget",
    "RetryPolicy",
    "StaleTopologyError",
    "TracerouteTimeoutError",
    "maybe_fire",
]
