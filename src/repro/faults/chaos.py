"""Process-level chaos injection for the sweep supervisor.

:mod:`repro.faults.injector` makes *domain* failures (aborted replays,
broken traceroutes) reproducible.  This module does the same for
*process* failures -- the ones the supervised executor in
:mod:`repro.parallel` exists to survive:

- ``kill``  -- the worker process dies mid-cell (``SIGKILL`` to itself:
  the OOM-killer / container-limit case);
- ``hang``  -- the cell blocks and never returns (a wedged syscall),
  which only the wall-clock watchdog can clear;
- ``raise`` -- the cell raises :class:`ChaosError` before doing any
  work (a crashed dependency);
- ``slow``  -- the cell sleeps briefly before running (scheduling
  jitter, to shake out ordering assumptions).

Every decision is a pure function of ``(seed, cell index, attempt)``
via SHA-256, so a chaos schedule is byte-reproducible across runs,
machines, and worker placements -- tests can call :meth:`~ChaosProfile.plan`
to predict exactly which cells will die without running anything, and a
retried attempt re-draws independently, so recovery converges.

Activation: pass ``chaos_profile=`` to
:class:`~repro.parallel.SweepExecutor`, or set ``REPRO_CHAOS`` (a spec
string, see :meth:`ChaosProfile.parse`) to inject into every supervised
sweep in the process.  Chaos fires only inside pool workers -- a serial
(``jobs=1``) sweep is never injected, which is what makes the
"chaos-ridden ``jobs=N`` equals clean ``jobs=1``" equivalence suite in
``tests/chaos/`` meaningful.
"""

import hashlib
import os
import signal
import time
from dataclasses import dataclass

from repro.faults.injector import FaultInjectionError


class ChaosError(FaultInjectionError):
    """The injected in-worker exception (the ``raise`` site)."""


def uniform_draw(seed, *parts):
    """Deterministic uniform in [0, 1) for one (seed, \\*parts) tuple.

    Pure SHA-256 over the stringified parts -- machine-, process- and
    interleaving-independent, so every chaos schedule (process-level
    and service-level) and the synthetic service engine share one
    reproducible randomness source.
    """
    token = ":".join(str(part) for part in (seed, *parts)).encode()
    digest = hashlib.sha256(token).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


#: Spec keys that set a fire probability, in precedence order: when two
#: sites draw a hit for the same (cell, attempt), the first one wins.
CHAOS_SITES = ("kill", "hang", "raise", "slow")


@dataclass(frozen=True)
class ChaosProfile:
    """Per-site fire probabilities plus the seed that schedules them.

    Parameters:
        kill / hang / raise\\_ / slow: probability in [0, 1] that the
            site fires for a given (cell, attempt) draw.
        seed: schedule seed -- same seed, same schedule, everywhere.
        slow_seconds: sleep for the ``slow`` site.
        hang_seconds: sleep for the ``hang`` site; meant to be far above
            any sane ``cell_timeout`` so the watchdog, not the sleep,
            ends the cell.
    """

    kill: float = 0.0
    hang: float = 0.0
    raise_: float = 0.0
    slow: float = 0.0
    seed: int = 0
    slow_seconds: float = 0.05
    hang_seconds: float = 600.0
    name: str = "custom"

    def __post_init__(self):
        for site in CHAOS_SITES:
            probability = self._probability(site)
            if not 0.0 <= probability <= 1.0:
                raise ValueError(f"chaos {site} probability must be in [0, 1]")

    def _probability(self, site):
        return getattr(self, "raise_" if site == "raise" else site)

    def _draw(self, index, attempt, site):
        """Deterministic uniform in [0, 1) for one (cell, attempt, site)."""
        return uniform_draw(self.seed, index, attempt, site)

    def plan(self, index, attempt):
        """The action for this (cell, attempt), or None.

        Pure and stateless: the supervisor's workers and a test
        predicting the schedule see exactly the same answer.
        """
        for site in CHAOS_SITES:
            probability = self._probability(site)
            if probability and self._draw(index, attempt, site) < probability:
                return site
        return None

    def schedule(self, n_cells, attempt=0):
        """``{index: action}`` over ``n_cells`` for one attempt round.

        Lets a test assert "this profile kills >= 2 workers and hangs
        >= 1 cell" before spending any compute on the sweep itself.
        """
        plans = ((index, self.plan(index, attempt)) for index in range(n_cells))
        return {index: action for index, action in plans if action}

    def inject(self, index, attempt):
        """Fire this (cell, attempt)'s scheduled action, if any.

        Runs inside the worker process, before the cell's task -- so a
        ``kill``/``raise`` never leaves a half-computed result behind,
        and a retried cell reproduces the exact bytes a clean run
        produces.
        """
        action = self.plan(index, attempt)
        if action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif action == "hang":
            time.sleep(self.hang_seconds)
        elif action == "raise":
            raise ChaosError(
                f"injected chaos failure (cell {index}, attempt {attempt})"
            )
        elif action == "slow":
            time.sleep(self.slow_seconds)

    @classmethod
    def smoke(cls, seed=11):
        """The CI profile: some kills and jitter, no hangs (no watchdog
        needed), light enough that bounded retries always recover."""
        return cls(kill=0.4, raise_=0.2, slow=0.3, seed=seed, name="smoke")

    @classmethod
    def parse(cls, spec):
        """Build a profile from a spec string; None for "off".

        Accepts ``off``/``none``/empty (returns None), the named
        profile ``smoke``, or comma-separated ``key=value`` pairs over
        ``kill, hang, raise, slow, seed, slow_seconds, hang_seconds``::

            kill=0.3,hang=0.1,seed=7
        """
        spec = (spec or "").strip()
        if spec in ("", "off", "none"):
            return None
        if spec == "smoke":
            return cls.smoke()
        values = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if key == "raise":
                key = "raise_"
            if not sep or key not in (
                "kill", "hang", "raise_", "slow",
                "seed", "slow_seconds", "hang_seconds",
            ):
                raise ValueError(f"bad chaos spec element {part!r}")
            try:
                values[key] = int(value) if key == "seed" else float(value)
            except ValueError:
                raise ValueError(f"bad chaos spec element {part!r}") from None
        return cls(name="custom", **values)


#: Service-level injection sites, in precedence order (first hit wins):
#: ``malformed`` -- the submission arrives as garbage (bad JSON / bad
#: fields); ``slow_client`` -- the client trickles its request in (or
#: stalls reading its response); ``disconnect`` -- the connection drops
#: mid-stream, after submitting but before the verdict arrives.
SERVICE_CHAOS_SITES = ("malformed", "slow_client", "disconnect")


@dataclass(frozen=True)
class ServiceChaosProfile:
    """Seeded client-misbehaviour schedule for the WeHeY service.

    The service-level twin of :class:`ChaosProfile`: every decision is
    a pure SHA-256 function of ``(seed, request index, site)``, so an
    overload test's misbehaving clients are byte-reproducible across
    machines.  The load generator consults :meth:`plan` per generated
    request; the asyncio client harness uses the same schedule to
    decide which connections stall or drop.
    """

    malformed: float = 0.0
    slow_client: float = 0.0
    disconnect: float = 0.0
    seed: int = 0
    slow_seconds: float = 0.5
    name: str = "custom"

    def __post_init__(self):
        for site in SERVICE_CHAOS_SITES:
            if not 0.0 <= getattr(self, site) <= 1.0:
                raise ValueError(f"service chaos {site} probability must be in [0, 1]")

    def plan(self, index):
        """The misbehaviour for request ``index``, or None."""
        for site in SERVICE_CHAOS_SITES:
            probability = getattr(self, site)
            if probability and uniform_draw(self.seed, "svc", index, site) < probability:
                return site
        return None

    def schedule(self, n_requests):
        """``{index: site}`` over ``n_requests`` -- predictable by tests."""
        plans = ((index, self.plan(index)) for index in range(n_requests))
        return {index: site for index, site in plans if site}

    @classmethod
    def smoke(cls, seed=23):
        """The CI profile: a light mix of all three misbehaviours."""
        return cls(malformed=0.05, slow_client=0.05, disconnect=0.05,
                   seed=seed, name="smoke")

    @classmethod
    def parse(cls, spec):
        """Build a profile from a spec string; None for "off".

        Same grammar as :meth:`ChaosProfile.parse`:
        ``malformed=0.1,disconnect=0.05,seed=3``, or ``smoke``.
        """
        spec = (spec or "").strip()
        if spec in ("", "off", "none"):
            return None
        if spec == "smoke":
            return cls.smoke()
        values = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or key not in (
                "malformed", "slow_client", "disconnect", "seed", "slow_seconds",
            ):
                raise ValueError(f"bad service chaos spec element {part!r}")
            try:
                values[key] = int(value) if key == "seed" else float(value)
            except ValueError:
                raise ValueError(f"bad service chaos spec element {part!r}") from None
        return cls(name="custom", **values)


def chaos_from_env(environ=None):
    """The :class:`ChaosProfile` named by ``REPRO_CHAOS``, or None.

    A malformed spec raises -- silently running *without* chaos when
    the operator asked for it would invert the point of the harness.
    """
    environ = os.environ if environ is None else environ
    return ChaosProfile.parse(environ.get("REPRO_CHAOS", ""))
