"""Seeded mid-test path flaps for multipath topologies.

A *path flap* is a member link of an ECMP bundle going down mid-test:
the device withdraws the member from its hash table and every flow on
it re-hashes over the survivors -- exactly the event that turns a
co-hashed (correctly localizable) replay pair into a split one, or
vice versa, partway through a test.

The schedule reuses the SHA-256 machinery of :mod:`repro.faults.chaos`
(:func:`~repro.faults.chaos.uniform_draw`): every flap's (fire?, time,
member) is a pure function of ``(seed, run index)``, so a chaos run
that flaps run 3 at t=12.7s on member 1 does so on every machine, every
time.  Arm the injector on a replay service::

    flap = PathFlapInjector(seed=7, probability=0.5)
    service = NetsimReplayService(config, path_flap=flap)

Each simulator the service builds (single replay, each simultaneous
replay) counts as one run; runs without a multipath common device arm
nothing and draw nothing for the fire/time/member decision, so the
schedule of run N never depends on the topology of runs before it.
"""

from dataclasses import dataclass

from repro.faults.chaos import uniform_draw
from repro.obs import metrics as _obs


@dataclass(frozen=True)
class PathFlapPlan:
    """One scheduled flap: when, and which member goes down."""

    time_s: float
    member: int


def plan_path_flap(seed, run_index, n_members, start_s, duration_s,
                   window=(0.35, 0.65)):
    """The deterministic flap plan for one run (pure, no state).

    The flap lands inside ``window`` (fractions of the replay
    duration), mid-test by default -- early enough that both regimes
    have data, late enough that the first regime had time to settle.
    """
    lo, hi = window
    fraction = lo + (hi - lo) * uniform_draw(seed, "path_flap", run_index, "time")
    member = int(
        uniform_draw(seed, "path_flap", run_index, "member") * n_members
    ) % n_members
    return PathFlapPlan(time_s=start_s + fraction * duration_s, member=member)


class PathFlapInjector:
    """Arms one seeded member-link failure per replay run.

    Parameters:
        seed: schedule seed (same seed, same flaps, everywhere).
        probability: chance a given run flaps at all.
        window: where in the replay window the flap lands, as fractions
            of the duration.
    """

    def __init__(self, seed=0, probability=1.0, window=(0.35, 0.65)):
        if not 0.0 <= probability <= 1.0:
            raise ValueError("path-flap probability must be in [0, 1]")
        lo, hi = window
        if not 0.0 <= lo <= hi <= 1.0:
            raise ValueError("path-flap window must satisfy 0 <= lo <= hi <= 1")
        self.seed = seed
        self.probability = probability
        self.window = (lo, hi)
        self.runs = 0
        self.flaps_armed = 0
        self.flaps_fired = 0

    def plan(self, run_index, n_members, start_s, duration_s):
        """The plan for ``run_index``, or None when that run won't flap."""
        if self.probability < 1.0 and (
            uniform_draw(self.seed, "path_flap", run_index, "fire")
            >= self.probability
        ):
            return None
        return plan_path_flap(
            self.seed, run_index, n_members, start_s, duration_s,
            window=self.window,
        )

    def arm(self, sim, link, start_s, duration_s):
        """Schedule this run's flap on ``link`` (a fresh simulator's).

        Returns the :class:`PathFlapPlan`, or None when the link is not
        a multipath bundle or this run drew no flap.  Flaps that would
        take down the last surviving member are skipped at fire time --
        a flap degrades the bundle, it never partitions the path.
        """
        run_index = self.runs
        self.runs += 1
        members = getattr(link, "members", None)
        if not members or len(members) < 2:
            return None
        plan = self.plan(run_index, len(members), start_s, duration_s)
        if plan is None:
            return None

        def fire():
            try:
                link.fail_member(plan.member)
            except ValueError:
                return  # already down, or the last member standing
            self.flaps_fired += 1
            if _obs.ENABLED:
                _obs.SINK.inc("faults.path_flap.fired")

        sim.schedule(plan.time_s, fire)
        self.flaps_armed += 1
        if _obs.ENABLED:
            _obs.SINK.inc("faults.path_flap.armed")
        return plan
