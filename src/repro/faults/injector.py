"""The deterministic fault injector.

``FaultInjector`` pairs a :class:`~repro.faults.profile.FaultProfile`
with a seed.  Every injection site gets its *own* child RNG stream
(spawned from one ``SeedSequence``), so whether ``replay_abort`` fires
on the third replay never depends on how many traceroutes were run in
between -- two runs with the same seed and profile produce the same
fault schedule even when code paths interleave differently.

The injector also keeps telemetry: per-site counters of how often each
site was consulted (``draws``) and how often it fired (``fires``).
"""

from collections import Counter

import numpy as np

from repro.faults.profile import FaultProfile, FaultSite


class FaultInjectionError(RuntimeError):
    """Base class for injected failures; carries the site name."""

    site = None

    def __init__(self, message, site=None):
        super().__init__(message)
        if site is not None:
            self.site = site


class ReplayAbortedError(FaultInjectionError):
    """A replay died mid-test (Section 3.4's aborted-replay mode)."""

    site = FaultSite.REPLAY_ABORT


class TracerouteTimeoutError(FaultInjectionError):
    """A traceroute never completed."""

    site = FaultSite.TRACEROUTE_TIMEOUT


class StaleTopologyError(FaultInjectionError):
    """A topology-database entry no longer reflects reality."""

    site = FaultSite.STALE_TOPOLOGY


#: How many leading samples survive a truncation fault -- always fewer
#: than the localizer's minimum, so truncation is reliably detectable.
MAX_TRUNCATED_SAMPLES = 3


class FaultInjector:
    """Deterministic, seeded fault source shared across the pipeline.

    Parameters:
        profile: the :class:`FaultProfile` describing what can fail.
        seed: any value accepted by ``np.random.SeedSequence`` entropy
            (the experiment seed, so fault schedules are reproducible).
    """

    def __init__(self, profile, seed=0):
        self.profile = profile
        self.seed = seed
        seq = np.random.SeedSequence([0xFA17, int(seed) % (2**31)])
        # One extra child beyond the per-rule streams: the coordinator's
        # retry-backoff jitter.  Spawned *last* so every rule keeps the
        # exact stream it had before the jitter stream existed.
        children = seq.spawn(len(profile.rules) + 1)
        self._rngs = {
            rule.site: np.random.default_rng(child)
            for rule, child in zip(profile.rules, children)
        }
        self.backoff_rng = np.random.default_rng(children[-1])
        self.fires_by_site = Counter()
        self.draws_by_site = Counter()

    @classmethod
    def from_spec(cls, spec, seed=0):
        """Convenience for the CLI: parse a spec string and seed it."""
        return cls(FaultProfile.parse(spec), seed=seed)

    def fires(self, site):
        """True iff the fault at ``site`` fires this time.

        Consults (and advances) the site's private RNG stream; honours
        the rule's ``max_fires`` cap.  Sites without a rule never fire
        and consume no randomness.
        """
        rule = self.profile.rule_for(site)
        if rule is None:
            return False
        self.draws_by_site[site] += 1
        if rule.max_fires is not None and self.fires_by_site[site] >= rule.max_fires:
            return False
        fired = bool(self._rngs[site].random() < rule.probability)
        if fired:
            self.fires_by_site[site] += 1
        return fired

    # -- site-specific corruption helpers -----------------------------

    def truncate_samples(self, samples):
        """A truncated throughput-sample series (transfer died early)."""
        rng = self._rngs[FaultSite.TRUNCATED_SAMPLES]
        keep = int(rng.integers(0, MAX_TRUNCATED_SAMPLES + 1))
        return np.asarray(samples, dtype=float)[:keep]

    def corrupt_measurements(self, measurements):
        """Poison a path's loss log with non-finite timestamps in place."""
        measurements.loss_times = np.append(
            np.asarray(measurements.loss_times, dtype=float), np.nan
        )
        return measurements


def maybe_fire(injector, site):
    """``injector.fires(site)`` tolerant of ``injector is None``."""
    return injector is not None and injector.fires(site)
