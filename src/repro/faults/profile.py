"""Fault profiles: *what* can fail, how often, and how many times.

A profile is pure data -- a set of :class:`FaultRule` entries, one per
injection site.  It carries no randomness of its own; pairing a profile
with a seed happens in :class:`~repro.faults.injector.FaultInjector`,
which is what makes every fault schedule reproducible.

Sites correspond to the failure modes the paper's deployment flow is
exposed to (Section 3.4; see also the Wehe case study, arXiv:2102.04196):

- ``replay_abort`` -- a replay dies mid-test (server unreachable,
  middlebox reset);
- ``truncated_samples`` -- a replay completes but the throughput-sample
  series arrives truncated;
- ``corrupt_loss`` -- loss measurements arrive corrupted (NaN
  timestamps from a broken capture);
- ``traceroute_timeout`` -- the traceroute never returns;
- ``traceroute_empty`` -- the traceroute returns but reports no hops;
- ``stale_topology`` -- a topology-database entry no longer reflects
  reality (server decommissioned, route long gone).
"""

from dataclasses import dataclass


class FaultSite:
    """Injection-site names (string constants, usable as dict keys)."""

    REPLAY_ABORT = "replay_abort"
    TRUNCATED_SAMPLES = "truncated_samples"
    CORRUPT_LOSS = "corrupt_loss"
    TRACEROUTE_TIMEOUT = "traceroute_timeout"
    TRACEROUTE_EMPTY = "traceroute_empty"
    STALE_TOPOLOGY = "stale_topology"


ALL_SITES = (
    FaultSite.REPLAY_ABORT,
    FaultSite.TRUNCATED_SAMPLES,
    FaultSite.CORRUPT_LOSS,
    FaultSite.TRACEROUTE_TIMEOUT,
    FaultSite.TRACEROUTE_EMPTY,
    FaultSite.STALE_TOPOLOGY,
)


@dataclass(frozen=True)
class FaultRule:
    """One injection site's behaviour.

    Parameters:
        site: one of :data:`ALL_SITES`.
        probability: chance that the fault fires when its site is
            reached (1.0 = always).
        max_fires: cap on total fires across the injector's lifetime;
            ``None`` means unlimited.  ``max_fires=1`` models a
            transient failure that a retry gets past.
    """

    site: str
    probability: float = 1.0
    max_fires: int = None

    def __post_init__(self):
        if self.site not in ALL_SITES:
            raise ValueError(f"unknown fault site {self.site!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("fault probability must be in [0, 1]")
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError("max_fires must be >= 0 or None")


@dataclass(frozen=True)
class FaultProfile:
    """A named set of fault rules (at most one rule per site)."""

    rules: tuple = ()
    name: str = "custom"

    def __post_init__(self):
        sites = [rule.site for rule in self.rules]
        if len(sites) != len(set(sites)):
            raise ValueError("at most one rule per fault site")

    def rule_for(self, site):
        for rule in self.rules:
            if rule.site == site:
                return rule
        return None

    @classmethod
    def none(cls):
        """The empty profile: nothing ever fails."""
        return cls(rules=(), name="none")

    @classmethod
    def flaky(cls):
        """Occasional transient failures -- the realistic wild mix."""
        return cls(
            name="flaky",
            rules=(
                FaultRule(FaultSite.REPLAY_ABORT, 0.25),
                FaultRule(FaultSite.TRUNCATED_SAMPLES, 0.10),
                FaultRule(FaultSite.CORRUPT_LOSS, 0.10),
                FaultRule(FaultSite.TRACEROUTE_TIMEOUT, 0.15),
                FaultRule(FaultSite.TRACEROUTE_EMPTY, 0.15),
                FaultRule(FaultSite.STALE_TOPOLOGY, 0.10),
            ),
        )

    @classmethod
    def chaos(cls, probability=0.5):
        """Everything fails half the time -- the stress profile."""
        return cls(
            name="chaos",
            rules=tuple(FaultRule(site, probability) for site in ALL_SITES),
        )

    @classmethod
    def parse(cls, spec):
        """Build a profile from a CLI-style spec string.

        Accepts a named profile (``none``, ``flaky``, ``chaos``) or a
        comma-separated rule list ``site[=prob[:max_fires]]``, e.g.
        ``replay_abort=0.5,traceroute_timeout=1.0:2``.
        """
        spec = (spec or "").strip()
        named = {"none": cls.none, "flaky": cls.flaky, "chaos": cls.chaos}
        if spec in named:
            return named[spec]()
        if not spec:
            return cls.none()
        rules = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            site, _, value = part.partition("=")
            probability, max_fires = 1.0, None
            if value:
                prob_str, _, fires_str = value.partition(":")
                try:
                    probability = float(prob_str)
                    if fires_str:
                        max_fires = int(fires_str)
                except ValueError as exc:
                    raise ValueError(
                        f"bad fault spec element {part!r}: {exc}"
                    ) from None
            rules.append(FaultRule(site.strip(), probability, max_fires))
        return cls(rules=tuple(rules), name="custom")
