"""Retry policy with exponential backoff and a per-test budget.

The coordinator retries failed attempts across candidate server pairs.
Backoff is *accounted*, not slept, by default: the simulator has no
wall clock worth waiting on, and tests must stay fast.  A production
deployment passes ``sleep=time.sleep`` to actually wait.
"""

import time
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try, and how long to wait between tries.

    Parameters:
        max_attempts: total attempts (1 = no retries).
        base_backoff_s: delay before the first retry.
        backoff_factor: exponential growth factor per retry.
        max_backoff_s: per-retry delay cap.
        max_total_time_s: budget for the whole test -- elapsed wall
            time plus accumulated backoff; once exceeded, no further
            attempts are made.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.5
    backoff_factor: float = 2.0
    max_backoff_s: float = 30.0
    max_total_time_s: float = float("inf")

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_total_time_s <= 0:
            raise ValueError("max_total_time_s must be positive")

    def backoff_s(self, retry_index):
        """Delay before retry number ``retry_index`` (0-based)."""
        return min(
            self.base_backoff_s * self.backoff_factor**retry_index,
            self.max_backoff_s,
        )


class RetryBudget:
    """Tracks attempts and (virtual) time against a :class:`RetryPolicy`.

    ``charge_backoff`` adds the next exponential delay to the virtual
    clock and optionally really sleeps; ``allows_another`` is consulted
    before every attempt.

    ``jitter_rng``, when given, applies *full jitter* (Exponential
    Backoff And Jitter): each delay is drawn uniformly from ``[0,
    exponential delay]``.  Retrying clients then spread out instead of
    synchronizing into waves -- and because the rng is a seeded stream
    (the fault injector's, in the coordinator), the jittered schedule
    is still byte-reproducible.
    """

    def __init__(self, policy, clock=time.monotonic, sleep=None, jitter_rng=None):
        self.policy = policy
        self._clock = clock
        self._sleep = sleep
        self._jitter_rng = jitter_rng
        self._started_at = clock()
        self.attempts_used = 0
        self.backoff_accumulated_s = 0.0

    def elapsed_s(self):
        return (self._clock() - self._started_at) + self.backoff_accumulated_s

    def allows_another(self):
        return (
            self.attempts_used < self.policy.max_attempts
            and self.elapsed_s() < self.policy.max_total_time_s
        )

    def charge_attempt(self):
        self.attempts_used += 1

    def charge_backoff(self):
        """Account (and optionally perform) the next retry's delay."""
        delay = self.policy.backoff_s(max(self.attempts_used - 1, 0))
        if self._jitter_rng is not None and delay > 0:
            delay = float(self._jitter_rng.uniform(0.0, delay))
        self.backoff_accumulated_s += delay
        if self._sleep is not None and delay > 0:
            self._sleep(delay)
        return delay
