"""``repro.inet`` -- an internet-scale AS topology with policy routing.

The :mod:`repro.mlab` synthetic internet is ~20 hand-wired ASes with
static routes; this subsystem replaces its core with a model sized and
shaped like the internet topology construction (Section 3.3) actually
faces:

- :mod:`~repro.inet.asgraph` -- a seeded CAIDA-style AS-level graph:
  power-law degrees via preferential attachment, customer/provider and
  peer edge labels, a tier-1 clique, transit tiers, and stub ASes --
  byte-identical per seed;
- :mod:`~repro.inet.policy` -- a Gao-Rexford policy-routing engine:
  valley-free best paths under the standard export rules (routes
  learned from customers are exported to everyone; peer- and
  provider-learned routes only to customers), local-pref
  customer > peer > provider, then shortest AS path, then lowest
  next-hop ASN;
- :mod:`~repro.inet.dynamics` -- a seeded route-dynamics schedule:
  link failures, recoveries, and policy flips that change paths
  mid-test, with bounded per-(source, destination) convergence windows
  during which stale paths keep being used (and traceroutes over a
  failed link truncate, exactly as BGP transients blackhole);
- :mod:`~repro.inet.internet` -- :class:`PolicyInternet`, a drop-in
  for :class:`~repro.mlab.internet.SyntheticInternet`: same surface
  (``servers``/``clients``/``isps``/``route``/``isp_of``/
  ``find_client``), so traceroutes, annotation databases, topology
  construction, verification, and the coordinator run unchanged on
  1000+-AS graphs;
- :mod:`~repro.inet.oracle` -- the ground-truth oracle: it derives the
  *true* suitable server pairs from the graph itself and scores a TC
  :class:`~repro.mlab.topology_construction.TopologyDatabase` with
  precision/recall, before, during, and after dynamics;
- :mod:`~repro.inet.coltable` -- a columnar table engine (numpy column
  arrays, vectorized equi-join and predicate scans) behind the same
  API as :class:`repro.mlab.tables.Table`, for BigQuery-scale row
  counts.
"""

from repro.inet.asgraph import ASGraph, generate_as_graph
from repro.inet.coltable import ColumnarTable
from repro.inet.dynamics import RouteDynamics, RouteEvent, generate_schedule
from repro.inet.internet import PolicyInternet
from repro.inet.oracle import TopologyOracle
from repro.inet.policy import as_path, compute_routes

__all__ = [
    "ASGraph",
    "generate_as_graph",
    "compute_routes",
    "as_path",
    "RouteEvent",
    "RouteDynamics",
    "generate_schedule",
    "PolicyInternet",
    "TopologyOracle",
    "ColumnarTable",
]
