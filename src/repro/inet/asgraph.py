"""Seeded CAIDA-style AS-level graphs.

The generator grows the graph the way the real AS topology grew:
a small clique of tier-1 providers peering with each other, a transit
tier attaching to existing providers with probability proportional to
their degree (preferential attachment -- this is what produces the
power-law degree distribution CAIDA measures), and a large fringe of
stub ASes (client ISPs and content networks) buying transit from one
or two providers.  Edges carry the Gao-Rexford business labels --
customer/provider or peer -- that the policy engine's export rules run
on.

Everything is deterministic per seed: the same ``(seed, parameters)``
always yields a byte-identical graph (:meth:`ASGraph.fingerprint`
hashes a canonical serialization, and ``tests/inet`` pins it).
"""

import hashlib

import numpy as np

#: Edge relationship labels.
PEER = "peer"
CUSTOMER_PROVIDER = "cp"


class ASGraph:
    """An AS-level graph with labelled business relationships.

    Adjacency is exposed through :meth:`providers`, :meth:`customers`
    and :meth:`peers`, which return *sorted tuples* (deterministic
    iteration order) and respect link state: a downed link disappears
    from every adjacency view until :meth:`link_up` restores it.
    """

    def __init__(self):
        self.tiers = {}  # asn -> "tier1" | "transit" | "stub" | "content"
        self._providers = {}  # asn -> set of provider asns
        self._customers = {}  # asn -> set of customer asns
        self._peers = {}  # asn -> set of peer asns
        self._edges = {}  # frozenset({a, b}) -> (kind, customer, provider)
        self._down = set()  # frozensets of failed links
        #: Optional per-AS provider preference (policy knob): asn ->
        #: preferred provider asn.  Consulted by the routing engine's
        #: provider-route selection; flipped by dynamics events.
        self.provider_pref = {}

    # -- construction -------------------------------------------------

    def add_as(self, asn, tier):
        if asn in self.tiers:
            raise ValueError(f"duplicate ASN {asn}")
        self.tiers[asn] = tier
        self._providers[asn] = set()
        self._customers[asn] = set()
        self._peers[asn] = set()

    def add_customer(self, customer, provider):
        """Add a customer->provider transit edge."""
        key = frozenset((customer, provider))
        if key in self._edges:
            raise ValueError(f"duplicate edge {customer}-{provider}")
        self._edges[key] = (CUSTOMER_PROVIDER, customer, provider)
        self._providers[customer].add(provider)
        self._customers[provider].add(customer)

    def add_peer(self, a, b):
        """Add a settlement-free peering edge."""
        key = frozenset((a, b))
        if key in self._edges:
            raise ValueError(f"duplicate edge {a}-{b}")
        self._edges[key] = (PEER, None, None)
        self._peers[a].add(b)
        self._peers[b].add(a)

    # -- adjacency (live links only) ----------------------------------

    def _up(self, a, b):
        return frozenset((a, b)) not in self._down

    def providers(self, asn):
        return tuple(sorted(p for p in self._providers[asn] if self._up(asn, p)))

    def customers(self, asn):
        return tuple(sorted(c for c in self._customers[asn] if self._up(asn, c)))

    def peers(self, asn):
        return tuple(sorted(p for p in self._peers[asn] if self._up(asn, p)))

    def degree(self, asn):
        return (
            len(self._providers[asn])
            + len(self._customers[asn])
            + len(self._peers[asn])
        )

    def relationship(self, a, b):
        """``("peer", None, None)`` or ``("cp", customer, provider)``."""
        return self._edges[frozenset((a, b))]

    def has_edge(self, a, b):
        return frozenset((a, b)) in self._edges

    def link_is_up(self, a, b):
        return self.has_edge(a, b) and self._up(a, b)

    @property
    def asns(self):
        return tuple(sorted(self.tiers))

    @property
    def n_edges(self):
        return len(self._edges)

    # -- link state (dynamics) ----------------------------------------

    def link_down(self, a, b):
        """Fail the a-b link; adjacency views stop reporting it."""
        key = frozenset((a, b))
        if key not in self._edges:
            raise KeyError(f"no edge {a}-{b}")
        self._down.add(key)

    def link_up(self, a, b):
        key = frozenset((a, b))
        if key not in self._edges:
            raise KeyError(f"no edge {a}-{b}")
        self._down.discard(key)

    @property
    def down_links(self):
        return tuple(sorted(tuple(sorted(k)) for k in self._down))

    # -- determinism --------------------------------------------------

    def serialize(self):
        """A canonical text serialization (sorted, state-independent).

        Link state and provider preferences are *runtime* state, not
        graph identity, so they are excluded: a graph equals itself
        across a failure/recovery cycle.
        """
        lines = []
        for asn in sorted(self.tiers):
            lines.append(f"as {asn} {self.tiers[asn]}")
        for key in sorted(self._edges, key=sorted):
            kind, customer, provider = self._edges[key]
            if kind == PEER:
                a, b = sorted(key)
                lines.append(f"peer {a} {b}")
            else:
                lines.append(f"cp {customer} {provider}")
        return "\n".join(lines)

    def fingerprint(self):
        """SHA-256 over the canonical serialization."""
        return hashlib.sha256(self.serialize().encode("utf-8")).hexdigest()


def _preferential_pick(rng, candidates, degrees, k):
    """Pick ``k`` distinct candidates with probability ~ degree + 1."""
    if k >= len(candidates):
        return list(candidates)
    weights = np.asarray([degrees[c] + 1.0 for c in candidates])
    weights /= weights.sum()
    picked = rng.choice(len(candidates), size=k, replace=False, p=weights)
    return [candidates[int(i)] for i in sorted(picked)]


def generate_as_graph(
    seed,
    n_ases=1000,
    n_tier1=6,
    transit_fraction=0.12,
    multihome_fraction=0.5,
    peer_density=0.25,
    content_fraction=0.1,
):
    """Generate a seeded CAIDA-style AS graph.

    Parameters:
        seed: integer; same seed -> byte-identical graph.
        n_ases: total AS count (tier-1 + transit + stubs).
        n_tier1: size of the tier-1 peering clique.
        transit_fraction: fraction of ASes in the transit tier.
        multihome_fraction: probability a stub buys from two providers
            instead of one (multihomed stubs are the ones that survive
            a provider-link failure -- route dynamics needs them).
        peer_density: probability each transit AS adds one lateral
            peering link to an earlier transit AS.
        content_fraction: fraction of stubs tagged ``"content"``
            (candidate M-Lab server sites; the rest are client ISPs).
    """
    if n_ases < n_tier1 + 2:
        raise ValueError("n_ases too small for the requested tier-1 clique")
    rng = np.random.default_rng([int(seed), 0x51ED])
    graph = ASGraph()
    n_transit = max(2, int(n_ases * transit_fraction))
    n_stub = n_ases - n_tier1 - n_transit
    if n_stub < 1:
        raise ValueError("no room for stub ASes; shrink the upper tiers")

    # ASN blocks: tier-1 from 10, transit from 100, stubs from 5000.
    # The gaps keep the tiers visually separable in traces and leave
    # room for the tiers to grow without renumbering.
    tier1 = [10 + i for i in range(n_tier1)]
    transit = [100 + i for i in range(n_transit)]
    stubs = [5000 + i for i in range(n_stub)]

    for asn in tier1:
        graph.add_as(asn, "tier1")
    for a in tier1:
        for b in tier1:
            if a < b:
                graph.add_peer(a, b)

    degrees = {asn: graph.degree(asn) for asn in tier1}

    # Transit tier: preferential attachment into everything above it.
    for asn in transit:
        graph.add_as(asn, "transit")
        upstream = [a for a in tier1 + transit if a in degrees]
        n_providers = 1 + int(rng.random() < 0.5)
        for provider in _preferential_pick(rng, upstream, degrees, n_providers):
            graph.add_customer(asn, provider)
        # Lateral peering with an earlier transit AS (CAIDA's dense
        # mid-tier mesh), degree-biased like everything else.
        earlier = [a for a in transit if a < asn]
        if earlier and rng.random() < peer_density:
            peer = _preferential_pick(rng, earlier, degrees, 1)[0]
            if not graph.has_edge(asn, peer):
                graph.add_peer(asn, peer)
        degrees[asn] = graph.degree(asn)
        for neighbor in graph.providers(asn) + graph.peers(asn):
            degrees[neighbor] = graph.degree(neighbor)

    # Stub fringe: client ISPs and content networks buying transit.
    upstream = tier1 + transit
    for asn in stubs:
        tier = "content" if rng.random() < content_fraction else "stub"
        graph.add_as(asn, tier)
        n_providers = 1 + int(rng.random() < multihome_fraction)
        for provider in _preferential_pick(rng, upstream, degrees, n_providers):
            graph.add_customer(asn, provider)
            degrees[provider] = graph.degree(provider)
        degrees[asn] = graph.degree(asn)

    return graph
