"""A columnar table engine behind the ``repro.mlab.tables.Table`` API.

M-Lab's real tables are BigQuery-scale; the row-dict ``Table`` tops out
around a million hop rows because every join materializes a python
dict per output row.  ``ColumnarTable`` stores each column as one
numpy array and runs the two operations TC actually leans on --
equi-join and predicate filtering -- vectorized:

- string columns are *dictionary-encoded* (sorted unique values plus
  an integer code per row, ``None`` encoded as code -1), so joins,
  filters, and gathers move 8-byte codes instead of 60-byte UCS-4
  strings -- this is where the order-of-magnitude win over the row
  backend comes from;
- the equi-join sorts the right side's key column once (stable
  argsort), binary-searches every left key against it
  (``searchsorted``), and expands duplicate matches with
  ``np.repeat`` index arithmetic -- no per-row python;
- filters build boolean masks over whole columns.

Row order is bit-for-bit identical to the row backend's join (left
rows in order; duplicate right matches in right-table insertion order,
courtesy of the stable sort), so topology construction produces the
same database from either backend -- ``tests/inet`` asserts it, and
the acceptance gate in ``repro.perf.topology`` measures the speedup.

Appends go to plain python lists and are materialized into arrays
lazily on first read.  Columns that defeat the native dtypes (mixed
types, nested values) fall back to object arrays with python-loop
semantics, so correctness never depends on dtype luck.
"""

import numpy as np


class DictColumn:
    """A dictionary-encoded column: sorted unique values + row codes.

    ``values`` is a sorted unique string array; ``codes`` holds one
    index per row, with -1 encoding a ``None`` fill (left-join miss).
    Code equality is value equality, so joins and filters can work on
    the integer codes alone.
    """

    __slots__ = ("values", "codes")

    def __init__(self, values, codes):
        self.values = values
        self.codes = codes

    def __len__(self):
        return len(self.codes)

    def take(self, indices):
        return DictColumn(self.values, self.codes[indices])

    def decode(self):
        """The column as a plain array (object dtype if any None)."""
        if len(self.codes) and self.codes.min() < 0:
            out = self.values[np.maximum(self.codes, 0)].astype(object)
            out[self.codes < 0] = None
            return out
        return self.values[self.codes]

    def tolist(self):
        return self.decode().tolist()

    def codes_in(self, other):
        """This column's rows re-encoded in ``other``'s dictionary.

        Rows whose value is absent from ``other.values`` get the
        sentinel -2 (never equal to any real code or to the None code
        -1, which is preserved so ``None == None`` keeps matching,
        exactly like the row backend's dict join).
        """
        if len(other.values) == 0:
            mapping = np.full(len(self.values), -2)
        else:
            pos = np.searchsorted(other.values, self.values)
            pos = np.minimum(pos, len(other.values) - 1)
            ok = other.values[pos] == self.values
            mapping = np.where(ok, pos, -2)
        if len(self.codes) == 0:
            return self.codes
        return np.where(
            self.codes < 0, -1, mapping[np.maximum(self.codes, 0)]
        )


def _as_column(values):
    """Materialize a python list (or array) as a column.

    Strings dictionary-encode; numerics stay native; anything mixed
    (or containing None) becomes an object array with python
    semantics.
    """
    try:
        arr = np.asarray(values)
    except (ValueError, TypeError):
        arr = None
    if arr is None or arr.ndim != 1 or arr.dtype.kind not in "iufbU":
        arr = np.empty(len(values), dtype=object)
        arr[:] = list(values)
        return arr
    if arr.dtype.kind == "U":
        uniques, codes = np.unique(arr, return_inverse=True)
        return DictColumn(uniques, codes.astype(np.intp))
    return arr


def _decoded(column):
    return column.decode() if isinstance(column, DictColumn) else column


def _take(column, indices):
    if isinstance(column, DictColumn):
        return column.take(indices)
    return column[indices]


def _concat(a, b):
    if len(b) == 0:
        return a
    if len(a) == 0:
        return b
    da, db = _decoded(a), _decoded(b)
    if da.dtype == object or db.dtype == object:
        out = np.empty(len(da) + len(db), dtype=object)
        out[: len(da)] = da
        out[len(da):] = db
        return out
    return _as_column(np.concatenate([da, db]))


class ColumnarTable:
    """An append-only columnar table, API-compatible with ``Table``."""

    def __init__(self, name, columns):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.name = name
        self.columns = tuple(columns)
        self._colset = frozenset(columns)
        self._pending = {c: [] for c in self.columns}
        self._arrays = None
        self._n = 0

    # -- construction helpers -----------------------------------------

    @classmethod
    def from_arrays(cls, name, columns, arrays, n):
        """Wrap pre-built column arrays (no copy)."""
        table = cls(name, columns)
        table._arrays = dict(arrays)
        table._n = int(n)
        return table

    # -- the Table surface --------------------------------------------

    def __len__(self):
        return self._n

    def insert(self, **values):
        if values.keys() == self._colset:
            for column, value in values.items():
                self._pending[column].append(value)
            self._n += 1
            return
        missing = self._colset - values.keys()
        extra = values.keys() - self._colset
        raise ValueError(
            f"row does not match schema of {self.name!r}: "
            f"missing={sorted(missing)} extra={sorted(extra)}"
        )

    def extend(self, rows):
        """Bulk append; every row must match the schema exactly."""
        pending = self._pending
        colset = self._colset
        added = 0
        try:
            for row in rows:
                if row.keys() != colset:
                    missing = colset - row.keys()
                    extra = row.keys() - colset
                    raise ValueError(
                        f"row does not match schema of {self.name!r}: "
                        f"missing={sorted(missing)} extra={sorted(extra)}"
                    )
                for column, value in row.items():
                    pending[column].append(value)
                added += 1
        finally:
            self._n += added

    def __iter__(self):
        columns = self.columns
        lists = [self.column(c) for c in columns]
        for values in zip(*lists):
            yield dict(zip(columns, values))

    def scan(self, predicate=None):
        for row in self:
            if predicate is None or predicate(row):
                yield row

    def materialize(self):
        """Force pending appends into their columns.

        Appends are buffered in python lists and materialized lazily on
        first read; call this to take the encoding cost at ingestion
        time (the row backend's ``materialize`` is a no-op, so callers
        can invoke it unconditionally).
        """
        self._flush()

    def column(self, name):
        """The column's values as a python list."""
        return self._column(name).tolist()

    def array(self, name):
        """The column as a plain numpy array (decoding strings)."""
        return _decoded(self._column(name))

    # -- columnar internals -------------------------------------------

    def _flush(self):
        if self._arrays is None:
            self._arrays = {
                c: _as_column(self._pending[c]) for c in self.columns
            }
        elif any(self._pending[c] for c in self.columns):
            self._arrays = {
                c: _concat(self._arrays[c], _as_column(self._pending[c]))
                for c in self.columns
            }
        self._pending = {c: [] for c in self.columns}

    def _column(self, name):
        if name not in self._colset:
            raise KeyError(name)
        self._flush()
        return self._arrays[name]

    def _gather(self, indices, name=None):
        """A new table of the given row indices (all columns)."""
        self._flush()
        arrays = {c: _take(self._arrays[c], indices) for c in self.columns}
        return ColumnarTable.from_arrays(
            name or self.name, self.columns, arrays, len(indices)
        )

    # -- filters -------------------------------------------------------

    def where_equals(self, column, value):
        col = self._column(column)
        if isinstance(col, DictColumn):
            if value is None:
                mask = col.codes < 0
            else:
                pos = np.searchsorted(col.values, value)
                if pos >= len(col.values) or col.values[pos] != value:
                    mask = np.zeros(len(col), dtype=bool)
                else:
                    mask = col.codes == pos
        elif col.dtype == object:
            mask = np.fromiter(
                (v == value for v in col), dtype=bool, count=len(col)
            )
        else:
            mask = col == value
        return self._gather(np.flatnonzero(mask))

    def where_columns_equal(self, column_a, column_b):
        a = self._column(column_a)
        b = self._column(column_b)
        if isinstance(a, DictColumn) and isinstance(b, DictColumn):
            mask = a.codes_in(b) == b.codes
        else:
            da, db = _decoded(a), _decoded(b)
            if da.dtype == object or db.dtype == object:
                mask = np.fromiter(
                    (x == y for x, y in zip(da, db)),
                    dtype=bool,
                    count=len(da),
                )
            else:
                mask = da == db
        return self._gather(np.flatnonzero(mask))

    def renamed(self, mapping):
        """A view with columns renamed per ``mapping`` (no copy)."""
        unknown = set(mapping) - self._colset
        if unknown:
            raise KeyError(f"no such columns: {sorted(unknown)}")
        self._flush()
        new_columns = tuple(mapping.get(c, c) for c in self.columns)
        if len(set(new_columns)) != len(new_columns):
            raise ValueError("renaming collides column names")
        arrays = {
            mapping.get(c, c): self._arrays[c] for c in self.columns
        }
        return ColumnarTable.from_arrays(
            self.name, new_columns, arrays, self._n
        )

    # -- joins ---------------------------------------------------------

    def join_table(self, other, on, how="inner"):
        """Vectorized equi-join; returns a new ``ColumnarTable``.

        Output row order matches the row backend exactly: left rows in
        order, duplicate right matches in insertion order.
        """
        if how not in ("inner", "left"):
            raise ValueError(f"unsupported join type {how!r}")
        left_col = self._column(on)
        right_col = other._column(on)
        right_columns = [c for c in other.columns if c != on]

        if isinstance(left_col, DictColumn) and isinstance(
            right_col, DictColumn
        ):
            left_idx, right_idx = _join_indices_codes(
                left_col.codes_in(right_col),
                right_col.codes,
                len(right_col.values),
                how,
            )
        else:
            left_keys = _decoded(left_col)
            right_keys = _decoded(right_col)
            if left_keys.dtype == object or right_keys.dtype == object:
                left_idx, right_idx = _join_indices_object(
                    left_keys, right_keys, how
                )
            else:
                left_idx, right_idx = _join_indices(
                    left_keys, right_keys, how
                )

        self._flush()
        other._flush()
        arrays = {c: _take(self._arrays[c], left_idx) for c in self.columns}
        unmatched = right_idx < 0
        any_unmatched = bool(unmatched.any())
        safe_idx = np.where(unmatched, 0, right_idx)
        for c in right_columns:
            col = other._arrays[c]
            if len(other) == 0:
                arrays[c] = np.full(len(left_idx), None, dtype=object)
            elif isinstance(col, DictColumn):
                codes = col.codes[safe_idx]
                if any_unmatched:
                    codes = np.where(unmatched, -1, codes)
                arrays[c] = DictColumn(col.values, codes)
            else:
                values = col[safe_idx]
                if any_unmatched:
                    values = values.astype(object)
                    values[unmatched] = None
                arrays[c] = values
        columns = self.columns + tuple(right_columns)
        return ColumnarTable.from_arrays(
            f"{self.name}*{other.name}", columns, arrays, len(left_idx)
        )

    def join(self, other, on, how="inner"):
        """Row-dict join results, for API parity with ``Table``."""
        return list(self.join_table(other, on, how=how))


def _expand_matches(lo, hi, order, n_left, how):
    """Turn per-left-row match ranges into (left_idx, right_idx).

    ``lo``/``hi`` bound each left row's matches within ``order`` (the
    right rows sorted stably by key, so duplicate matches come out in
    right-table insertion order).  ``right_idx`` is -1 for an unmatched
    left row (left join only).
    """
    counts = hi - lo
    if how == "left":
        out_counts = np.maximum(counts, 1)
    else:
        out_counts = counts
    total = int(out_counts.sum())
    left_idx = np.repeat(np.arange(n_left), out_counts)
    group_offsets = np.cumsum(out_counts) - out_counts
    within = np.arange(total) - np.repeat(group_offsets, out_counts)
    positions = np.repeat(lo, out_counts) + within
    matched = np.repeat(counts > 0, out_counts)
    positions = np.where(matched, positions, 0)
    right_idx = np.where(matched, order[positions], -1)
    return left_idx, right_idx


def _empty_join(n_left, how):
    if how == "left":
        return np.arange(n_left), np.full(n_left, -1)
    return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)


def _join_indices(left_keys, right_keys, how):
    """Sort-merge join over plain (numeric) key arrays."""
    if len(right_keys) == 0:
        return _empty_join(len(left_keys), how)
    order = np.argsort(right_keys, kind="stable")
    sorted_keys = right_keys[order]
    lo = np.searchsorted(sorted_keys, left_keys, side="left")
    hi = np.searchsorted(sorted_keys, left_keys, side="right")
    return _expand_matches(lo, hi, order, len(left_keys), how)


def _join_indices_codes(left_keys, right_codes, n_values, how):
    """Direct-address join over dictionary codes.

    Both key arrays are codes into the *right* column's dictionary
    (``left_keys`` via :meth:`DictColumn.codes_in`: -1 is None, -2 is
    absent-from-dictionary), so instead of binary-searching we bucket
    the right rows by code (+1, so the None code lands in bucket 0) and
    index each left key's bucket bounds directly -- O(n) instead of
    O(n log n), and no string comparisons at all.
    """
    if len(right_codes) == 0:
        return _empty_join(len(left_keys), how)
    shifted = right_codes + 1
    order = np.argsort(shifted, kind="stable")
    counts = np.bincount(shifted, minlength=n_values + 1)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    lk = left_keys + 1
    valid = lk >= 0
    safe = np.where(valid, lk, 0)
    lo = np.where(valid, offsets[safe], 0)
    hi = np.where(valid, offsets[safe + 1], 0)
    return _expand_matches(lo, hi, order, len(left_keys), how)


def _join_indices_object(left_keys, right_keys, how):
    """Dict-index fallback for object-dtype key columns."""
    index = {}
    for i, key in enumerate(right_keys):
        index.setdefault(key, []).append(i)
    left_idx = []
    right_idx = []
    for i, key in enumerate(left_keys):
        matches = index.get(key)
        if matches:
            for j in matches:
                left_idx.append(i)
                right_idx.append(j)
        elif how == "left":
            left_idx.append(i)
            right_idx.append(-1)
    return np.asarray(left_idx, dtype=np.intp), np.asarray(
        right_idx, dtype=np.intp
    )
