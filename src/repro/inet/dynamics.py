"""Seeded route dynamics: failures, recoveries, and policy flips.

A :class:`RouteDynamics` instance owns a sorted schedule of
:class:`RouteEvent`\\ s and applies them to a
:class:`~repro.inet.internet.PolicyInternet` as its clock advances.
Each applied event perturbs the AS graph (link down/up, provider
preference flip) and starts a *convergence window*: for every
(server, client) pair whose path changed, the old path keeps being
served for a deterministic per-pair fraction of the window -- exactly
the BGP transient where different vantage points converge at different
times, and traffic over a withdrawn path blackholes.  Traceroutes over
a stale path truncate at the failed link, so topology construction's
completeness filter, post-replay verification, and the coordinator's
``invalidate`` path all get exercised while the ground truth shifts.

Schedules are generated with pure SHA-256-free numpy draws from the
seed and are byte-identical per ``(graph, seed, parameters)`` --
``tests/inet`` pins the serialization.
"""

import zlib
from dataclasses import dataclass

import numpy as np

LINK_DOWN = "link_down"
LINK_UP = "link_up"
POLICY_FLIP = "policy_flip"


@dataclass(frozen=True)
class RouteEvent:
    """One scheduled routing change."""

    time: float
    kind: str  # LINK_DOWN / LINK_UP / POLICY_FLIP
    a: int  # link endpoint, or the AS whose policy flips
    b: int  # other endpoint, or the newly preferred provider
    convergence_s: float = 30.0

    def serialize(self):
        return (
            f"{self.time:.6f} {self.kind} {self.a} {self.b} "
            f"{self.convergence_s:.6f}"
        )


def convergence_fraction(src_asn, dst_asn, event_index):
    """Deterministic per-(source, destination) convergence position.

    Returns a fraction in [0.15, 1.0): the pair adopts the new route
    after that fraction of the event's convergence window.  CRC-32 over
    the triple keeps the schedule machine-independent (``hash()`` is
    salted per process).
    """
    h = zlib.crc32(f"{src_asn}:{dst_asn}:{event_index}".encode())
    return 0.15 + 0.85 * (h / 2**32)


def _flippable_stubs(graph):
    """Stub ASes eligible for a policy flip: >= 2 providers, no customers."""
    eligible = []
    for asn in graph.asns:
        if graph.tiers[asn] in ("stub", "content") and not graph.customers(asn):
            if len(graph.providers(asn)) >= 2:
                eligible.append(asn)
    return eligible


def generate_schedule(
    graph,
    seed,
    n_failures=2,
    n_flips=1,
    start=10.0,
    spacing=40.0,
    convergence_s=30.0,
    recovery_after=2.0,
    targets=None,
):
    """A seeded failure/recovery/flip schedule over ``graph``.

    Failures target provider links of multihomed stubs (so a failover
    path exists and the event is survivable); each failure is followed
    by a recovery ``recovery_after`` windows later.  Flips toggle a
    multihomed stub's preferred provider.  Events are spaced
    ``spacing`` seconds apart starting at ``start``.

    ``targets`` restricts the perturbed stubs to the given ASNs --
    pass a :class:`~repro.inet.internet.PolicyInternet`'s
    ``isp_asns`` to guarantee the events move paths the topology
    database actually covers.
    """
    rng = np.random.default_rng([int(seed), 0xD1A])
    multihomed = _flippable_stubs(graph)
    if targets is not None:
        allowed = set(targets)
        multihomed = [asn for asn in multihomed if asn in allowed]
    if not multihomed:
        raise ValueError("graph has no multihomed stubs to perturb")
    events = []
    t = float(start)
    order = rng.permutation(len(multihomed))
    cursor = 0

    for _ in range(n_failures):
        asn = multihomed[int(order[cursor % len(order)])]
        cursor += 1
        providers = graph.providers(asn)
        provider = providers[int(rng.integers(0, len(providers)))]
        events.append(
            RouteEvent(t, LINK_DOWN, asn, provider, convergence_s)
        )
        events.append(
            RouteEvent(
                t + recovery_after * convergence_s,
                LINK_UP,
                asn,
                provider,
                convergence_s,
            )
        )
        t += spacing

    for _ in range(n_flips):
        asn = multihomed[int(order[cursor % len(order)])]
        cursor += 1
        providers = graph.providers(asn)
        current = graph.provider_pref.get(asn)
        choices = [p for p in providers if p != current]
        preferred = choices[int(rng.integers(0, len(choices)))]
        events.append(RouteEvent(t, POLICY_FLIP, asn, preferred, convergence_s))
        t += spacing

    events.sort(key=lambda e: (e.time, e.kind, e.a, e.b))
    return tuple(events)


def serialize_schedule(events):
    """Canonical text form of a schedule (pinned by determinism tests)."""
    return "\n".join(event.serialize() for event in events)


class RouteDynamics:
    """Applies a schedule to a live graph as time advances.

    The owning :class:`~repro.inet.internet.PolicyInternet` calls
    :meth:`due_events` from its ``advance_to`` and applies the graph
    mutation itself (it owns the path caches); this class tracks the
    schedule cursor and exposes what changed for telemetry.
    """

    def __init__(self, events):
        self.events = tuple(sorted(events, key=lambda e: (e.time, e.kind, e.a, e.b)))
        self._next = 0
        self.applied = []

    def due_events(self, now):
        """Events with ``time <= now`` not yet handed out, in order."""
        due = []
        while self._next < len(self.events) and self.events[self._next].time <= now:
            due.append(self.events[self._next])
            self._next += 1
        self.applied.extend(due)
        return due

    @property
    def pending(self):
        return self.events[self._next:]

    def apply_to_graph(self, graph, event):
        """Mutate ``graph`` per ``event`` (link state or policy)."""
        if event.kind == LINK_DOWN:
            graph.link_down(event.a, event.b)
        elif event.kind == LINK_UP:
            graph.link_up(event.a, event.b)
        elif event.kind == POLICY_FLIP:
            graph.provider_pref[event.a] = event.b
        else:
            raise ValueError(f"unknown event kind {event.kind!r}")
