"""``PolicyInternet``: a routable internet grown from an AS graph.

Drop-in for :class:`repro.mlab.internet.SyntheticInternet`: it exposes
the same surface (``servers``/``clients``/``isps``/``route``/
``isp_of``/``find_client``/``transit_routers``), so the scamper
traceroute model, annotation databases, topology construction,
post-replay verification, and the coordinator all run unchanged --
but routes come from Gao-Rexford policy routing over a seeded
CAIDA-style graph, and they *move*: attach a
:class:`~repro.inet.dynamics.RouteDynamics` schedule and advance the
clock, and paths fail over, converge, and flip underneath whatever is
measuring them.

Router-level expansion is deterministic: each transit AS on a path
contributes one router chosen by the ingress neighbor (two paths
entering an AS from the same neighbor share the router -- the shared
node outside the ISP that topology construction must reject), and the
destination ISP contributes a border keyed by the entry provider, the
client's aggregation router, and the last-mile router -- so paths
entering through different providers converge exactly once, inside
the ISP, which is precisely Section 3.3's suitable topology.

During a convergence window a (server, client) pair keeps using its
old path; if that path crosses a failed link the router expansion
truncates there, the traceroute dies in transit, and completeness
filter (a) rejects it -- the same observable a real blackholed BGP
transient produces.
"""

from repro.inet.policy import as_path as _as_path
from repro.inet.policy import compute_routes
from repro.inet.dynamics import convergence_fraction
from repro.mlab.internet import Client, Isp, Router, Server, _ip
from repro.obs import metrics as _obs


class PolicyInternet:
    """Build a routable internet over a policy-routed AS graph.

    Parameters:
        graph: an :class:`~repro.inet.asgraph.ASGraph`; generated from
            ``seed``/``n_ases`` when omitted.
        rng: numpy Generator for site/ISP selection and messiness
            draws; derived from ``seed`` when omitted.
        n_sites: M-Lab sites (one content-stub AS each).
        servers_per_site: servers per site.
        n_client_isps: stub ASes promoted to client ISPs.
        clients_per_isp: clients attached to each ISP.
        routers_per_as: routers per transit/tier-1 AS (ingress
            diversity of the router-level expansion).
        icmp_block_fraction / alias_fraction: the Section-3.3
            messiness knobs, same semantics as ``SyntheticInternet``.
        dynamics: optional :class:`~repro.inet.dynamics.RouteDynamics`;
            attach later with :meth:`attach_dynamics` if preferred.
    """

    def __init__(
        self,
        graph=None,
        seed=0,
        n_ases=200,
        rng=None,
        n_sites=4,
        servers_per_site=2,
        n_client_isps=8,
        clients_per_isp=3,
        routers_per_as=2,
        icmp_block_fraction=0.0,
        alias_fraction=0.0,
        dynamics=None,
    ):
        if n_sites < 2:
            raise ValueError("need at least two M-Lab sites")
        if graph is None:
            from repro.inet.asgraph import generate_as_graph

            graph = generate_as_graph(seed, n_ases=n_ases)
        if rng is None:
            import numpy as np

            rng = np.random.default_rng([int(seed), 0x1E7])
        self.graph = graph
        self.rng = rng
        self.now = 0.0
        self.dynamics = None
        self.telemetry = {"path_changes": 0, "events_applied": 0}

        stubs = [a for a in graph.asns if graph.tiers[a] == "stub"]
        content = [a for a in graph.asns if graph.tiers[a] == "content"]
        if not content:
            content, stubs = stubs[: max(n_sites, 1)], stubs[max(n_sites, 1):]
        if n_sites > len(content):
            raise ValueError(
                f"graph has {len(content)} content stubs; need {n_sites} sites"
            )

        # Server sites: deterministic rng pick among content stubs.
        site_picks = rng.permutation(len(content))[:n_sites]
        self.site_asns = sorted(content[int(i)] for i in site_picks)
        self.servers = []
        for site_index, asn in enumerate(self.site_asns):
            for k in range(servers_per_site):
                self.servers.append(
                    Server(
                        f"mlab{site_index}-{k}",
                        _ip(10, site_index, 0, 10 + k),
                        asn,
                        f"site-{site_index}",
                    )
                )

        # Client ISPs: multihomed stubs first (the interesting failover
        # cases), then single-homed to fill.
        multi = [a for a in stubs if len(graph.providers(a)) >= 2]
        single = [a for a in stubs if len(graph.providers(a)) < 2]
        ordered = [multi[int(i)] for i in rng.permutation(len(multi))] + [
            single[int(i)] for i in rng.permutation(len(single))
        ]
        ordered = [a for a in ordered if a not in self.site_asns]
        if n_client_isps > len(ordered):
            raise ValueError(
                f"graph has {len(ordered)} candidate stubs; "
                f"need {n_client_isps} client ISPs"
            )
        self.isp_asns = sorted(ordered[:n_client_isps])

        self.isps = []
        self.clients = []
        self._isps_by_name = {}
        self._isps_by_asn = {}
        self._clients_by_name = {}
        self._borders_by_neighbor = {}  # isp asn -> {provider asn -> Router}
        self._client_agg = {}  # client name -> Router
        for i, asn in enumerate(self.isp_asns):
            isp = Isp(
                name=f"isp-{i}",
                asn=asn,
                blocks_icmp=bool(rng.random() < icmp_block_fraction),
            )
            octet = 200 + i // 200
            by_neighbor = {}
            # One border per provider edge (link state does not remove
            # the hardware, just the route through it).
            for b, provider in enumerate(sorted(graph._providers[asn])):
                border = Router(
                    f"{isp.name}-border{b}",
                    asn,
                    tuple(_ip(octet, i % 200, b, 1 + k) for k in range(3)),
                    aliased=bool(rng.random() < alias_fraction),
                )
                isp.borders.append(border)
                by_neighbor[provider] = border
            self._borders_by_neighbor[asn] = by_neighbor
            for a in range(2):
                isp.aggregations.append(
                    Router(
                        f"{isp.name}-agg{a}",
                        asn,
                        tuple(_ip(octet, i % 200, 10 + a, 1 + k) for k in range(3)),
                        aliased=bool(rng.random() < alias_fraction),
                    )
                )
            for c in range(clients_per_isp):
                client = Client(
                    f"{isp.name}-client{c}",
                    _ip(octet, i % 200, 100 + c, 7),
                    asn,
                    isp.name,
                )
                isp.last_miles[client.name] = Router(
                    f"{isp.name}-lm{c}",
                    asn,
                    (_ip(octet, i % 200, 100 + c, 1),),
                )
                self._client_agg[client.name] = isp.aggregations[
                    c % len(isp.aggregations)
                ]
                self.clients.append(client)
                self._clients_by_name[client.name] = client
            self.isps.append(isp)
            self._isps_by_name[isp.name] = isp
            self._isps_by_asn[asn] = isp

        # Routers for every AS that can appear mid-path (everything
        # except client ISPs, whose internals are modelled above).
        self.transit_routers = {}
        isp_set = set(self.isp_asns)
        backbone = [a for a in graph.asns if a not in isp_set]
        for index, asn in enumerate(backbone):
            self.transit_routers[asn] = [
                Router(
                    f"as{asn}-r{j}",
                    asn,
                    (_ip(60 + index // 250, index % 250, j, 1),),
                )
                for j in range(routers_per_as)
            ]

        self._trees = {}  # dest asn -> {asn: Route}
        self._stale = {}  # (server name, client name) -> (deadline, as_path)
        if dynamics is not None:
            self.attach_dynamics(dynamics)

    # -- compatibility surface ---------------------------------------

    def isp_of(self, client):
        try:
            return self._isps_by_name[client.isp]
        except KeyError:
            raise KeyError(client.isp) from None

    def find_client(self, name):
        try:
            return self._clients_by_name[name]
        except KeyError:
            raise KeyError(name) from None

    # -- routing ------------------------------------------------------

    def _tree(self, dest_asn):
        tree = self._trees.get(dest_asn)
        if tree is None:
            tree = self._trees[dest_asn] = compute_routes(self.graph, dest_asn)
        return tree

    def current_as_path(self, server, client):
        """The converged AS path (ignores convergence-window staleness)."""
        return _as_path(self._tree(client.asn), server.asn, client.asn)

    def effective_as_path(self, server, client):
        """The AS path actually forwarding *now* (stale during windows)."""
        stale = self._stale.get((server.name, client.name))
        if stale is not None:
            deadline, old_path = stale
            if self.now < deadline:
                return old_path
            del self._stale[(server.name, client.name)]
        return self.current_as_path(server, client)

    def _expand(self, path):
        """Router-level expansion of an AS path, truncated at any
        failed link the (stale) path still crosses."""
        if not path:
            return []
        routers = []
        graph = self.graph
        prev = path[0]
        for asn in path[1:]:
            if not graph.link_is_up(prev, asn):
                return routers  # blackhole: the probe dies here
            isp = self._isps_by_asn.get(asn)
            if isp is not None:
                border = self._borders_by_neighbor[asn].get(prev)
                if border is None:  # entered via a non-provider edge
                    border = isp.borders[prev % len(isp.borders)]
                routers.append(border)
                return routers  # caller appends agg + last mile
            pool = self.transit_routers[asn]
            routers.append(pool[prev % len(pool)])
            prev = asn
        return routers

    def route(self, server, client):
        """The router-level path from ``server`` to ``client``.

        An unreachable or mid-convergence-blackholed destination yields
        a truncated (possibly empty) path; the traceroute layer turns
        that into an incomplete record, exactly like a real probe into
        a withdrawn prefix.
        """
        path = self.effective_as_path(server, client)
        if path is None:
            return []
        routers = self._expand(path)
        isp = self._isps_by_asn[client.asn]
        if routers and routers[-1].asn == client.asn:
            routers.append(self._client_agg[client.name])
            routers.append(isp.last_miles[client.name])
        return routers

    # -- dynamics -----------------------------------------------------

    def attach_dynamics(self, dynamics):
        if self.dynamics is not None:
            raise RuntimeError("dynamics already attached")
        self.dynamics = dynamics

    def advance_to(self, t):
        """Advance the clock, applying every due dynamics event.

        Each event snapshots the *effective* path of every
        (server, client) pair, mutates the graph, recomputes, and
        registers a per-pair convergence deadline for every changed
        path -- until the deadline the pair keeps forwarding over the
        old (possibly now-broken) path.
        """
        if t < self.now:
            raise ValueError("time moves forward only")
        if self.dynamics is None:
            self.now = float(t)
            return
        for event in self.dynamics.due_events(t):
            self.now = event.time
            event_index = self.telemetry["events_applied"]
            before = {
                (server.name, client.name): self.effective_as_path(server, client)
                for server in self.servers
                for client in self.clients
            }
            self.dynamics.apply_to_graph(self.graph, event)
            self._trees.clear()
            changed = 0
            for server in self.servers:
                for client in self.clients:
                    old = before[(server.name, client.name)]
                    new = self.current_as_path(server, client)
                    if old == new:
                        continue
                    changed += 1
                    frac = convergence_fraction(
                        server.asn, client.asn, event_index
                    )
                    deadline = event.time + frac * event.convergence_s
                    self._stale[(server.name, client.name)] = (deadline, old)
            self.telemetry["path_changes"] += changed
            self.telemetry["events_applied"] += 1
            if _obs.ENABLED:
                _obs.SINK.inc("inet.path_changes", changed)
                _obs.SINK.inc("inet.dynamics_events")
        self.now = float(t)

    @property
    def converged(self):
        """True when no pair is inside a convergence window."""
        return all(deadline <= self.now for deadline, _ in self._stale.values())
