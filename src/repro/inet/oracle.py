"""Ground-truth oracle for topology construction over a PolicyInternet.

Topology construction works from traceroute *observations*; the oracle
works from the internet itself.  It walks the same effective
router-level forwarding paths the internet serves (including stale
paths inside convergence windows) and derives the *true* suitable
server pairs per client -- by canonical router identity, so IP
aliasing and ICMP blocking cannot fool it.  Scoring a
:class:`~repro.mlab.topology_construction.TopologyDatabase` against
the oracle yields the precision/recall numbers the acceptance gate
pins: what fraction of TC's pairs are really suitable (precision), and
what fraction of the really-suitable pairs TC found (recall).

Because the oracle reads *effective* forwarding, it shifts together
with route dynamics: score before an event, during its convergence
window, and after healing, and the trajectory shows exactly which
database entries went stale and whether invalidation caught them.
"""

from repro.mlab.topology_construction import prefix_of


class TopologyOracle:
    """Derives true suitable server pairs from a ``PolicyInternet``."""

    def __init__(self, internet):
        self.internet = internet
        self._servers_by_name = {s.name: s for s in internet.servers}

    # -- ground truth per pair ----------------------------------------

    def _complete_route(self, server, client):
        """The forwarding path, or None if it never reaches the client."""
        route = self.internet.route(server, client)
        isp = self.internet.isp_of(client)
        if not route or route[-1] is not isp.last_miles.get(client.name):
            return None
        return route

    def pair_suitable(self, server_name_1, server_name_2, client_name):
        """True iff the two servers' paths to the client converge
        inside the client's ISP and nowhere else -- by canonical router
        identity, on the paths being forwarded *right now*."""
        if server_name_1 == server_name_2:
            return False
        client = self.internet.find_client(client_name)
        route_1 = self._complete_route(
            self._servers_by_name[server_name_1], client
        )
        route_2 = self._complete_route(
            self._servers_by_name[server_name_2], client
        )
        if route_1 is None or route_2 is None:
            return False
        nodes_1 = {router.name: router for router in route_1}
        nodes_2 = {router.name: router for router in route_2}
        common = nodes_1.keys() & nodes_2.keys()
        if not common:
            return False
        return all(nodes_1[name].asn == client.asn for name in common)

    def true_pairs(self, client):
        """All truly suitable server-name pairs for ``client``."""
        names = sorted(self._servers_by_name)
        pairs = set()
        for i, name_1 in enumerate(names):
            for name_2 in names[i + 1:]:
                if self.pair_suitable(name_1, name_2, client.name):
                    pairs.add((name_1, name_2))
        return pairs

    def pair_suitable_now(self, entry, client_name):
        """Is a TC database entry's server pair still truly suitable?

        The coordinator-facing form of :meth:`pair_suitable`: feed it
        the :class:`~repro.mlab.topology_construction.SuitableTopology`
        the coordinator is about to act on, and it says whether acting
        on it now would use a genuinely suitable pair.
        """
        name_1, name_2 = entry.server_pair
        return self.pair_suitable(name_1, name_2, client_name)

    # -- scoring a TC database ----------------------------------------

    def score(self, database, clients=None):
        """Precision/recall of ``database`` against the ground truth.

        Precision: of the server pairs the database claims suitable,
        how many are.  Recall: of the truly suitable pairs, how many
        the database found.  Both computed over ``clients`` (default:
        every client in the internet).
        """
        if clients is None:
            clients = self.internet.clients
        tp = fp = fn = 0
        per_client = {}
        for client in clients:
            truth = self.true_pairs(client)
            predicted = {
                tuple(sorted(entry.server_pair))
                for entry in database.lookup(client.ip, client.asn)
            }
            client_tp = len(predicted & truth)
            tp += client_tp
            fp += len(predicted - truth)
            fn += len(truth - predicted)
            per_client[client.name] = {
                "true": len(truth),
                "predicted": len(predicted),
                "tp": client_tp,
            }
        predicted_total = tp + fp
        truth_total = tp + fn
        return {
            "tp": tp,
            "fp": fp,
            "fn": fn,
            "predicted_pairs": predicted_total,
            "true_pairs": truth_total,
            "precision": tp / predicted_total if predicted_total else 1.0,
            "recall": tp / truth_total if truth_total else 1.0,
            "per_client": per_client,
        }

    def stale_entries(self, database):
        """Database entries whose pair is no longer truly suitable.

        These are the entries post-replay verification should catch and
        :meth:`~repro.mlab.topology_construction.TopologyDatabase.invalidate`
        should heal after a route-dynamics event.
        """
        stale = []
        clients_by_key = {
            (prefix_of(client.ip), client.asn): client
            for client in self.internet.clients
        }
        for key, entries in database.entries.items():
            client = clients_by_key.get(key)
            if client is None:
                continue
            for entry in entries:
                if not self.pair_suitable_now(entry, client.name):
                    stale.append((entry, client.name))
        return stale
