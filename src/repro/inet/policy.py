"""Gao-Rexford policy routing over an :class:`~repro.inet.asgraph.ASGraph`.

Route computation follows the standard three-stage construction of the
Gao-Rexford stable routing tree for one destination:

1. **Customer routes** propagate *up* provider edges from the
   destination (every AS on an all-uphill path learns the route from a
   customer, and will export it to all neighbors).
2. **Peer routes**: an AS whose peer selected a customer route (or is
   the origin) learns the route across the peering edge; peer-learned
   routes are only exported to customers, so they propagate no further
   laterally.
3. **Provider routes** propagate *down* customer edges from every AS
   routed so far (providers export their best route to customers,
   whatever its class).

Selection at each AS is local-pref first (customer > peer > provider),
then shortest AS path, then lowest next-hop ASN -- a total order, so
the tree is unique and deterministic.  The resulting paths are
valley-free by construction; ``tests/inet`` re-verifies both the
valley-free shape and export-rule compliance independently.

A per-AS *provider preference* (``graph.provider_pref``) models the
local-pref overrides ISPs actually configure: a stub that prefers one
of its providers takes that provider's route regardless of path
length.  Dynamics events flip it mid-test.
"""

from dataclasses import dataclass

from repro.inet.asgraph import CUSTOMER_PROVIDER
from repro.obs import metrics as _obs

#: Route classes, in selection-preference order.
ORIGIN = "origin"
FROM_CUSTOMER = "customer"
FROM_PEER = "peer"
FROM_PROVIDER = "provider"


@dataclass(frozen=True)
class Route:
    """One AS's selected route toward the tree's destination."""

    next_hop: int  # None at the origin
    learned_from: str  # ORIGIN / FROM_CUSTOMER / FROM_PEER / FROM_PROVIDER
    path_len: int


def compute_routes(graph, dest):
    """The stable routing tree toward ``dest``: ``{asn: Route}``.

    ASes absent from the result have no policy-compliant route (for
    example a stub whose only provider link is down).
    """
    routes = {dest: Route(None, ORIGIN, 0)}

    # Stage 1: customer routes, BFS up provider edges.  Level k+1 ASes
    # are providers of level-k ASes; the minimum next-hop ASN wins ties
    # within a level.
    frontier = [dest]
    while frontier:
        chosen = {}
        for asn in sorted(frontier):
            for provider in graph.providers(asn):
                if provider in routes:
                    continue
                if provider not in chosen or asn < chosen[provider]:
                    chosen[provider] = asn
        for provider, next_hop in chosen.items():
            routes[provider] = Route(
                next_hop, FROM_CUSTOMER, routes[next_hop].path_len + 1
            )
        frontier = list(chosen)

    # Stage 2: peer routes.  Only customer routes (and the origin) are
    # exported across peering edges, and only ASes without a customer
    # route accept one.  Assignment is simultaneous: peer routes never
    # chain through other peer routes.
    peer_routes = {}
    for asn in graph.asns:
        if asn in routes:
            continue
        best = None
        for peer in graph.peers(asn):
            route = routes.get(peer)
            if route is None or route.learned_from not in (ORIGIN, FROM_CUSTOMER):
                continue
            key = (route.path_len + 1, peer)
            if best is None or key < best:
                best = key
        if best is not None:
            peer_routes[asn] = Route(best[1], FROM_PEER, best[0])
    routes.update(peer_routes)

    # Stage 3: provider routes, multi-source BFS down customer edges.
    # Every routed AS exports its best route to its customers; buckets
    # process sources in increasing path length so each unrouted AS
    # gets the shortest provider route, lowest provider ASN on ties.
    buckets = {}
    for asn, route in routes.items():
        buckets.setdefault(route.path_len, []).append(asn)
    level = 0
    max_level = max(buckets) if buckets else 0
    while level <= max_level:
        chosen = {}
        for asn in sorted(buckets.get(level, ())):
            for customer in graph.customers(asn):
                if customer in routes:
                    continue
                if customer not in chosen or asn < chosen[customer]:
                    chosen[customer] = asn
        for customer, provider in chosen.items():
            routes[customer] = Route(
                provider, FROM_PROVIDER, routes[provider].path_len + 1
            )
            new_level = routes[customer].path_len
            buckets.setdefault(new_level, []).append(customer)
            if new_level > max_level:
                max_level = new_level
        level += 1

    # Local-pref overrides: an AS that prefers one of its providers
    # takes that provider's route even when it is longer.  Applied as a
    # post-pass, and only to ASes whose selected route is already
    # provider-class (customer > peer > provider preference is
    # unaffected).  The dynamics generator restricts preferences to
    # stub ASes with no customers, so the override never re-ranks a
    # route someone downstream already selected.
    for asn, preferred in graph.provider_pref.items():
        route = routes.get(asn)
        if route is None or route.learned_from != FROM_PROVIDER:
            continue
        if route.next_hop == preferred:
            continue
        upstream = routes.get(preferred)
        if upstream is None or not graph.link_is_up(asn, preferred):
            continue
        routes[asn] = Route(preferred, FROM_PROVIDER, upstream.path_len + 1)

    if _obs.ENABLED:
        _obs.SINK.inc("inet.routes_computed", len(routes))
    return routes


def as_path(routes, src, dest):
    """The AS path ``src -> ... -> dest`` through a routing tree.

    Returns a tuple of ASNs, or ``None`` when ``src`` has no route.
    """
    if src == dest:
        return (dest,)
    route = routes.get(src)
    if route is None:
        return None
    path = [src]
    asn = src
    while asn != dest:
        asn = routes[asn].next_hop
        path.append(asn)
        if len(path) > len(routes) + 1:
            raise RuntimeError("routing loop -- the tree is corrupt")
    return tuple(path)


def step_relationship(graph, a, b):
    """Classify the forwarding step a->b: "up", "down", or "peer"."""
    kind, customer, provider = graph.relationship(a, b)
    if kind == "peer":
        return "peer"
    return "up" if customer == a else "down"


def is_valley_free(graph, path):
    """True iff ``path`` matches the up* peer? down* shape."""
    phase = 0  # 0 = climbing, 1 = crossed the peak peer edge, 2 = descending
    for a, b in zip(path, path[1:]):
        step = step_relationship(graph, a, b)
        if step == "up":
            if phase != 0:
                return False
        elif step == "peer":
            if phase != 0:
                return False
            phase = 1
        else:  # down
            phase = 2
    return True


def is_export_compliant(graph, path):
    """True iff every advertisement along ``path`` was allowed.

    For the step ``a -> b`` (``a`` forwards via ``b``), ``b``
    advertised its route to ``a``; that is allowed iff ``a`` is a
    customer of ``b``, or ``b``'s own route is customer-learned or the
    origin (``b`` is the destination, or ``b``'s next hop is one of
    its customers).
    """
    dest = path[-1]
    for i in range(len(path) - 1):
        a, b = path[i], path[i + 1]
        kind, customer, provider = graph.relationship(a, b)
        if kind == CUSTOMER_PROVIDER and customer == a:
            continue  # b exports everything to its customer a
        if b == dest:
            continue  # origin exports to everyone
        c = path[i + 2]
        b_kind, b_customer, _ = graph.relationship(b, c)
        if b_kind == CUSTOMER_PROVIDER and b_customer == c:
            continue  # b's route is customer-learned
        return False
    return True
