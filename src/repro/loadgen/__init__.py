"""``repro.loadgen`` -- seeded load generation for the WeHeY service.

Three layers, each importable on its own:

- :mod:`repro.loadgen.arrivals` -- per-tenant modulated-Poisson arrival
  traces with heavy-tail bursts (the netsim background model's
  statistics, applied to request load);
- :mod:`repro.loadgen.driver` -- the virtual-time driver that replays a
  trace through a sans-IO :class:`~repro.service.core.ServiceCore` and
  summarizes the outcome;
- :mod:`repro.loadgen.scenarios` -- canned overload scenarios (ramp,
  spike, sustained 2x, one-hot tenant) and the ``BENCH_service.json``
  writer.

CLI: ``python -m repro.loadgen`` (see ``--help``).

Everything is deterministic by construction: seeded numpy arrival
draws, SHA-256 chaos schedules, a virtual clock, and a core that never
reads wall time -- the same scenario and seed produce the same
admission decisions, byte for byte.
"""

from repro.loadgen.arrivals import ArrivalProcess, TenantLoad, generate_trace
from repro.loadgen.driver import LoadResult, VirtualService, summarize
from repro.loadgen.scenarios import (
    SCENARIOS,
    build_scenario,
    capacity_rps,
    decision_sequence,
    run_scenario,
    service_config,
    write_bench,
)

__all__ = [
    "ArrivalProcess",
    "LoadResult",
    "SCENARIOS",
    "TenantLoad",
    "VirtualService",
    "build_scenario",
    "capacity_rps",
    "decision_sequence",
    "generate_trace",
    "run_scenario",
    "service_config",
    "summarize",
    "write_bench",
]
