"""CLI: ``python -m repro.loadgen`` -- run overload scenarios.

Examples::

    python -m repro.loadgen                          # full set -> BENCH_service.json
    python -m repro.loadgen --scenario sustained2x --duration 30
    python -m repro.loadgen --chaos smoke --seed 7   # with client misbehaviour
"""

import argparse
import json
import sys

from repro.faults.chaos import ServiceChaosProfile
from repro.loadgen.scenarios import SCENARIOS, run_scenario, write_bench


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.loadgen",
        description="Replay seeded overload scenarios against the WeHeY "
        "service core in virtual time.",
    )
    parser.add_argument(
        "--scenario",
        choices=SCENARIOS,
        help="run one scenario and print its summary (default: run the "
        "full set twice and write the bench file)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--duration", type=float, default=60.0,
                        help="scenario length in virtual seconds")
    parser.add_argument("--chaos", default="",
                        help="service chaos spec (e.g. 'smoke' or "
                        "'malformed=0.1,disconnect=0.05,seed=3')")
    parser.add_argument("--out", default="BENCH_service.json",
                        help="bench output path (full-set mode)")
    args = parser.parse_args(argv)

    chaos = ServiceChaosProfile.parse(args.chaos)
    if args.scenario:
        summary, _result, _core = run_scenario(
            args.scenario, seed=args.seed, duration_s=args.duration,
            chaos=chaos,
        )
        json.dump(summary, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    bench = write_bench(
        args.out, seed=args.seed, duration_s=args.duration, chaos=chaos
    )
    statuses = {
        name: summary["responses"]
        for name, summary in sorted(bench["scenarios"].items())
    }
    print(f"wrote {args.out} (deterministic={bench['deterministic']})")
    for name, counts in statuses.items():
        print(f"  {name}: {counts}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
