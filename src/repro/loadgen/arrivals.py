"""Seeded arrival traces: modulated Poisson per tenant, heavy-tail bursts.

The same statistical machinery the netsim background model uses for
cross traffic (:mod:`repro.netsim.background`) generates the service's
*request* load: per-tenant Poisson arrivals whose log-rate follows
mean-reverting AR(1) components (the diurnal/With-the-minutes trend,
here compressed to test timescales) plus occasional Pareto-sized
flash-crowd bursts (the heavy tail).  Everything is drawn from a
``numpy`` generator seeded per tenant, so a trace is a pure function of
``(seed, tenant, scenario shape)`` -- replaying it twice through the
virtual-time driver must (and does, see ``tests/loadgen/``) produce
identical admission decisions.
"""

import math
from dataclasses import dataclass, field

import numpy as np

#: Request-rate modulation components, ``(period_s, sigma, rho)`` --
#: the seconds-scale pair of :data:`repro.netsim.background.DEFAULT_MODULATION`,
#: standing in for diurnal load swings at test-compatible timescales.
DEFAULT_MODULATION = (
    (1.0, 0.35, 0.85),
    (5.0, 0.35, 0.9),
)

#: Cap on one flash-crowd burst (requests beyond the triggering one).
BURST_CAP = 32


class ArrivalProcess:
    """Modulated-Poisson arrival times with optional Pareto bursts.

    Parameters:
        rate_rps: long-run mean arrival rate (requests/second).
        seed: trace seed; combined with a fixed tag so arrival streams
            never collide with netsim streams.
        rate_fn: optional ``f(t) -> factor`` shaping the mean rate over
            time (the scenario envelope: ramp, spike, ...).
        modulation: AR(1) components as ``(period, sigma, rho)``; pass
            ``()`` for plain (shaped) Poisson.
        burst_prob: per-arrival probability of a flash-crowd burst of
            ``min(int(pareto(alpha)), BURST_CAP)`` extra arrivals.
    """

    def __init__(
        self,
        rate_rps,
        seed,
        rate_fn=None,
        modulation=DEFAULT_MODULATION,
        burst_prob=0.0,
        burst_alpha=1.2,
    ):
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if not 0.0 <= burst_prob <= 1.0:
            raise ValueError("burst_prob must be in [0, 1]")
        self.rate_rps = rate_rps
        self.seed = seed
        self.rate_fn = rate_fn
        self.modulation = tuple(modulation)
        self.burst_prob = burst_prob
        self.burst_alpha = burst_alpha

    def _rate_ceiling(self, duration_s):
        """An upper bound on the instantaneous rate for thinning."""
        envelope = 1.0
        if self.rate_fn is not None:
            steps = max(int(duration_s * 10), 1)
            envelope = max(
                max(self.rate_fn(duration_s * i / steps), 0.0)
                for i in range(steps + 1)
            )
            if envelope <= 0:
                return 0.0
        total_var = sum(sigma**2 for _p, sigma, _r in self.modulation)
        # 3-sigma bound on the log-normal modulation factor; the accept
        # probability is clamped at 1, so rarer excursions merely flatten
        # the extreme tail instead of breaking the draw.
        mod_bound = math.exp(3.0 * math.sqrt(total_var)) if total_var else 1.0
        return self.rate_rps * envelope * mod_bound

    def times(self, duration_s):
        """Arrival times in [0, duration_s), sorted ascending.

        Non-homogeneous Poisson via Lewis-Shedler thinning: candidate
        arrivals are drawn at a constant ceiling rate, then accepted
        with probability ``rate(t) / ceiling`` -- exact for any rate
        envelope, including ones that start at zero (a ramp).
        """
        rng = np.random.default_rng(np.random.SeedSequence([0x10AD, self.seed]))
        ceiling = self._rate_ceiling(duration_s)
        if ceiling <= 0:
            return []
        states = [rng.normal(0.0, sigma) for _period, sigma, _rho in self.modulation]
        next_step = [0.0 for _ in self.modulation]
        total_var = sum(sigma**2 for _p, sigma, _r in self.modulation)
        arrivals = []
        t = 0.0
        while True:
            t += rng.exponential(1.0 / ceiling)
            if t >= duration_s:
                return arrivals
            for i, (period, sigma, rho) in enumerate(self.modulation):
                while next_step[i] <= t:
                    innovation = rng.normal(0.0, sigma * math.sqrt(1.0 - rho**2))
                    states[i] = rho * states[i] + innovation
                    next_step[i] += period
            factor = math.exp(sum(states) - total_var / 2.0)
            if self.rate_fn is not None:
                factor *= max(self.rate_fn(t), 0.0)
            rate = self.rate_rps * factor
            if rng.random() >= min(rate / ceiling, 1.0):
                continue  # thinned out
            arrivals.append(t)
            if self.burst_prob and rng.random() < self.burst_prob:
                extra = min(int(rng.pareto(self.burst_alpha)), BURST_CAP)
                arrivals.extend([t] * extra)


@dataclass(frozen=True)
class TenantLoad:
    """One tenant's traffic shape within a scenario.

    ``seed_space`` bounds the scenario-seed knob drawn per request:
    a small space means repeated cache keys (exercising the memo /
    DEGRADED path), a large one means mostly-fresh work.
    """

    tenant: str
    rate_rps: float
    n_clients: int = 4
    apps: tuple = ("netflix", "youtube")
    deadline_s: float = 60.0
    duration_knob_s: float = 8.0
    seed_space: int = 10_000
    burst_prob: float = 0.0
    limiters: tuple = ("common", None)
    knobs: dict = field(default_factory=dict)


def generate_trace(
    tenants,
    duration_s,
    seed,
    rate_fn=None,
    modulation=DEFAULT_MODULATION,
):
    """The merged arrival trace: sorted ``(time, raw_submission)`` pairs.

    Each tenant gets an independent substream (seeded by ``(seed,
    tenant name)``), so adding a tenant never perturbs another tenant's
    arrivals -- scenario variants stay comparable.  The raw submissions
    are protocol-level dicts, ready for ``parse_submission``.
    """
    trace = []
    for load in tenants:
        tenant_seed = seed * 1_000_003 + (hash_name(load.tenant) % 1_000_003)
        process = ArrivalProcess(
            load.rate_rps,
            tenant_seed,
            rate_fn=rate_fn,
            modulation=modulation,
            burst_prob=load.burst_prob,
        )
        draw = np.random.default_rng(
            np.random.SeedSequence([0x5B17, tenant_seed])
        )
        for t in process.times(duration_s):
            knobs = {
                "limiter": load.limiters[int(draw.integers(len(load.limiters)))],
                "seed": int(draw.integers(load.seed_space)),
                "duration": load.duration_knob_s,
            }
            knobs.update(load.knobs)
            trace.append((
                t,
                {
                    "tenant": load.tenant,
                    "client": f"{load.tenant}-client-{int(draw.integers(load.n_clients))}",
                    "app": load.apps[int(draw.integers(len(load.apps)))],
                    "deadline_s": load.deadline_s,
                    "knobs": knobs,
                },
            ))
    trace.sort(key=lambda pair: (pair[0], pair[1]["tenant"], pair[1]["client"]))
    return trace


def hash_name(name):
    """Stable small integer for a tenant name (not Python's ``hash``,
    which is salted per process and would break reproducibility)."""
    value = 0
    for char in name:
        value = (value * 131 + ord(char)) % 1_000_000_007
    return value
