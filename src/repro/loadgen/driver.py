"""The virtual-time driver: replay an arrival trace through a ServiceCore.

No sockets, no threads, no wall clock: a heapq event loop advances
virtual time through three event kinds (``arrival``, ``batch_done``,
``tick``) and calls the same sans-IO core methods the asyncio shell
calls.  Engine "execution" is a duration query (the synthetic engine's
deterministic cell-time model), so a 30-minute overload scenario
replays in milliseconds -- and, because every input is seeded and every
decision is the core's, two runs of the same scenario produce
*identical* admission-decision sequences (asserted by the acceptance
tests and the determinism check in :mod:`repro.loadgen.scenarios`).

Chaos: a :class:`repro.faults.chaos.ServiceChaosProfile` maps request
indices to client misbehaviours -- ``malformed`` arrivals reach the
core as garbage, ``slow_client`` arrivals are delayed by the profile's
stall, ``disconnect`` submissions lose their response (delivery fails;
the core's terminal accounting must still cover them).
"""

import heapq
from dataclasses import dataclass, field

from repro.service.protocol import MalformedSubmission, Status, parse_submission


@dataclass
class LoadResult:
    """Everything a scenario run produced.

    ``completions`` is ``(virtual_time, Response, delivered)`` in
    completion order -- ``delivered`` is False for responses whose
    client had chaos-disconnected.  ``submitted`` maps request id ->
    arrival time for every request that reached the core.
    """

    completions: list = field(default_factory=list)
    submitted: dict = field(default_factory=dict)
    duration_s: float = 0.0

    def by_status(self):
        counts = {}
        for _t, response, _delivered in self.completions:
            counts[response.status] = counts.get(response.status, 0) + 1
        return counts

    def check_one_terminal_response_each(self):
        """The accounting invariant: exactly one terminal response per
        submission.  Raises AssertionError with the delta otherwise."""
        seen = {}
        for _t, response, _delivered in self.completions:
            seen[response.id] = seen.get(response.id, 0) + 1
        missing = [rid for rid in self.submitted if rid not in seen]
        duplicated = [rid for rid, n in seen.items() if n > 1]
        unknown = [rid for rid in seen if rid not in self.submitted]
        if missing or duplicated or unknown:
            raise AssertionError(
                f"response accounting broken: missing={missing[:5]} "
                f"duplicated={duplicated[:5]} unknown={unknown[:5]}"
            )
        return len(seen)


class VirtualService:
    """Drive one core + synthetic engine through a trace in virtual time.

    Parameters:
        core: a fresh :class:`~repro.service.core.ServiceCore`.
        engine: an engine exposing ``outcomes(batch)`` and
            ``duration(batch)`` (i.e. :class:`SyntheticEngine`).
        tick_interval_s: virtual cadence of ``core.tick`` -- drives
            deadline expiry, governor recovery, and breaker cooldowns
            when no traffic arrives.
        chaos: optional :class:`ServiceChaosProfile`.
    """

    def __init__(self, core, engine, tick_interval_s=0.5, chaos=None):
        self.core = core
        self.engine = engine
        self.tick_interval_s = tick_interval_s
        self.chaos = chaos

    def run(self, trace, settle_s=120.0):
        """Replay ``trace`` (sorted ``(time, raw_submission)`` pairs).

        After the last arrival the clock keeps ticking up to
        ``settle_s`` longer so queued work either completes or expires
        -- the run only ends when every submission is terminal (or the
        settle budget is exhausted, which the invariant check would
        then flag).
        """
        result = LoadResult()
        heap = []
        seq = 0
        dropped = set()

        def push(t, kind, payload):
            nonlocal seq
            seq += 1
            heapq.heappush(heap, (t, seq, kind, payload))

        horizon = 0.0
        for index, (t, raw) in enumerate(trace):
            plan = self.chaos.plan(index) if self.chaos else None
            if plan == "slow_client":
                t = t + self.chaos.slow_seconds
            push(t, "arrival", (raw, plan))
            horizon = max(horizon, t)
        result.duration_s = horizon
        push(self.tick_interval_s, "tick", None)
        deadline_horizon = horizon + settle_s

        def dispatch(now):
            while True:
                batch = self.core.next_batch(now)
                if batch is None:
                    return
                outcomes = self.engine.outcomes(batch)
                push(now + self.engine.duration(batch), "batch_done",
                     (batch, outcomes))

        def collect(now):
            for response in self.core.take_responses():
                result.completions.append(
                    (now, response, response.id not in dropped)
                )

        while heap:
            now, _seq, kind, payload = heapq.heappop(heap)
            if kind == "arrival":
                raw, plan = payload
                if plan == "malformed":
                    rid = self.core.malformed(
                        None, "chaos-injected garbage frame",
                        tenant=raw.get("tenant", ""),
                    )
                else:
                    try:
                        submission = parse_submission(raw)
                    except MalformedSubmission as exc:
                        rid = self.core.malformed(
                            raw.get("id"), exc.reason,
                            tenant=str(raw.get("tenant", "")),
                        )
                    else:
                        rid = self.core.submit(submission, now)
                        if plan == "disconnect":
                            dropped.add(rid)
                result.submitted[rid] = now
            elif kind == "batch_done":
                batch, outcomes = payload
                self.core.batch_done(batch, outcomes, now)
            elif kind == "tick":
                self.core.tick(now)
                pending = len(self.core.queue) or self.core.inflight
                if now < horizon or (pending and now < deadline_horizon):
                    push(now + self.tick_interval_s, "tick", None)
            dispatch(now)
            collect(now)
        return result


def summarize(result, core):
    """Plain-JSON metrics for one run (the BENCH_service.json payload)."""
    by_status = result.by_status()
    latencies = sorted(
        response.queued_s + response.service_s
        for _t, response, _d in result.completions
        if response.status == Status.VERDICT and not response.cached
    )

    def quantile(values, q):
        if not values:
            return 0.0
        return values[min(len(values) - 1, int(q * len(values)))]

    reject_reasons = {}
    per_tenant = {}
    for _t, response, _d in result.completions:
        if response.status == Status.REJECTED_OVERLOAD:
            reject_reasons[response.reason] = (
                reject_reasons.get(response.reason, 0) + 1
            )
        if response.tenant:
            tenant = per_tenant.setdefault(
                response.tenant, {"statuses": {}, "latencies": []}
            )
            tenant["statuses"][response.status] = (
                tenant["statuses"].get(response.status, 0) + 1
            )
            if response.status == Status.VERDICT and not response.cached:
                tenant["latencies"].append(
                    response.queued_s + response.service_s
                )
    tenants = {}
    for name, data in sorted(per_tenant.items()):
        values = sorted(data["latencies"])
        tenants[name] = {
            "statuses": data["statuses"],
            "served": len(values),
            "p50_s": round(quantile(values, 0.5), 6),
            "p99_s": round(quantile(values, 0.99), 6),
        }
    duration = max(result.duration_s, 1e-9)
    degraded_spells = sum(
        1 for _t, _old, new, _why in core.governor.transitions
        if new != "healthy"
    )
    recovered = any(
        new == "healthy" for _t, _old, new, _why in core.governor.transitions
    )
    return {
        "submissions": len(result.submitted),
        "responses": by_status,
        "reject_reasons": reject_reasons,
        "throughput_rps": round(by_status.get(Status.VERDICT, 0) / duration, 6),
        "p50_s": round(quantile(latencies, 0.5), 6),
        "p99_s": round(quantile(latencies, 0.99), 6),
        "tenants": tenants,
        "governor_transitions": [
            [round(t, 3), old, new, why]
            for t, old, new, why in core.governor.transitions
        ],
        "degraded_spells": degraded_spells,
        "recovered_to_healthy": recovered,
        "breaker_trips": core.breaker.trips,
        "decisions": len(core.decision_log),
    }
