"""Canned overload scenarios and the BENCH_service.json writer.

Each scenario is a named recipe: a tenant mix, a rate envelope over
time, and a service configuration sized so the interesting regime
actually occurs (a spike that never exceeds capacity teaches nothing).
Rates are quoted as multiples of the service's estimated capacity, so
changing the engine's speed rescales every scenario coherently:

- ``ramp``        -- one tenant ramping linearly 0 -> 2x capacity;
  watches the governor walk HEALTHY -> DEGRADED -> SHEDDING in order.
- ``spike``       -- steady half-capacity load with a short 4x burst;
  watches rejection during the burst and dwell-damped recovery after.
- ``sustained2x`` -- three tenants jointly holding 2x capacity;
  the steady-state overload case: throughput stays ~capacity, the
  excess is explicitly rejected, nothing queues unboundedly.
- ``onehot``      -- one hot tenant (1.6x capacity alone) among four
  light ones, with per-tenant rate caps: the fairness case.  The hot
  tenant is capped near its share; light tenants barely notice.
- ``baseline``    -- the ``onehot`` light tenants *without* the hot
  one: the uncontended reference for the fairness acceptance check.

``run_scenario`` replays a recipe deterministically (same seed -> same
admission-decision sequence -- checked here, asserted in tests);
``write_bench`` runs the standard set twice and writes the metrics plus
the determinism verdict to ``BENCH_service.json``.
"""

import json

from repro.loadgen.arrivals import TenantLoad, generate_trace
from repro.loadgen.driver import LoadResult, VirtualService, summarize
from repro.service.core import ServiceConfig, ServiceCore
from repro.service.engine import SyntheticEngine

SCENARIOS = ("ramp", "spike", "sustained2x", "onehot", "baseline")

#: Engine speed used by every scenario (seconds per reference cell).
MEAN_SERVICE_S = 0.5


def service_config(tenant_rate=None):
    """The scenario-standard service configuration."""
    return ServiceConfig(
        max_queue=48,
        tenant_rate=tenant_rate,
        tenant_burst=6.0,
        # Small batches over more slots: same capacity as 4x2, but a
        # quarter of the head-of-line blocking -- the light tenants'
        # p99 under a hot tenant rides on this.
        batch_max=2,
        max_concurrent_batches=4,
        drr_quantum=8.0,
        recover_dwell_s=1.0,
        breaker_threshold=3,
        breaker_cooldown_s=10.0,
    )


def capacity_rps(config):
    """Estimated sustainable verdict rate for ``config`` + the standard
    engine: concurrent batches x batch size / mean batch duration."""
    return config.max_concurrent_batches * config.batch_max / MEAN_SERVICE_S


def _light_tenants(capacity):
    return [
        TenantLoad(
            tenant=f"light-{i}",
            rate_rps=0.1 * capacity,
            deadline_s=30.0,
            seed_space=100_000,
        )
        for i in range(4)
    ]


def build_scenario(name, duration_s=60.0):
    """``(tenants, rate_fn, config)`` for one scenario name."""
    config = service_config()
    capacity = capacity_rps(config)
    if name == "ramp":
        tenants = [
            TenantLoad("rampco", rate_rps=capacity, deadline_s=30.0,
                       seed_space=100_000)
        ]
        return tenants, (lambda t: 2.0 * t / duration_s), config
    if name == "spike":
        spike_start = duration_s / 3.0
        spike_end = spike_start + duration_s / 6.0
        tenants = [
            TenantLoad("spikeco", rate_rps=0.5 * capacity, deadline_s=30.0,
                       seed_space=100_000, burst_prob=0.02)
        ]
        return (
            tenants,
            (lambda t: 8.0 if spike_start <= t < spike_end else 1.0),
            config,
        )
    if name == "sustained2x":
        share = 2.0 * capacity / 3.0
        tenants = [
            TenantLoad(f"steady-{i}", rate_rps=share, deadline_s=30.0,
                       seed_space=100_000)
            for i in range(3)
        ]
        return tenants, None, config
    if name == "onehot":
        config = service_config(tenant_rate=0.25 * capacity)
        tenants = [
            TenantLoad("hot", rate_rps=1.6 * capacity, deadline_s=30.0,
                       seed_space=100_000)
        ] + _light_tenants(capacity)
        return tenants, None, config
    if name == "baseline":
        config = service_config(tenant_rate=0.25 * capacity)
        return _light_tenants(capacity), None, config
    raise ValueError(f"unknown scenario {name!r}; expected one of {SCENARIOS}")


def run_scenario(name, seed=0, duration_s=60.0, chaos=None):
    """Replay one scenario; returns ``(summary, LoadResult, core)``.

    The summary includes the scenario's admission-decision sequence
    digestable form (the full log lives on ``core.decision_log``) so
    callers can compare runs without holding both cores.
    """
    tenants, rate_fn, config = build_scenario(name, duration_s=duration_s)
    trace = generate_trace(tenants, duration_s, seed, rate_fn=rate_fn)
    core = ServiceCore(config)
    engine = SyntheticEngine(mean_service_s=MEAN_SERVICE_S, jitter=0.4, seed=seed)
    driver = VirtualService(core, engine, chaos=chaos)
    result = driver.run(trace)
    result.check_one_terminal_response_each()
    summary = summarize(result, core)
    summary["scenario"] = name
    summary["seed"] = seed
    summary["duration_s"] = duration_s
    summary["capacity_rps"] = capacity_rps(config)
    summary["offered_requests"] = len(trace)
    return summary, result, core


def decision_sequence(core):
    """The admission-decision sequence as comparable tuples."""
    return list(core.decision_log)


def write_bench(path, seed=0, duration_s=60.0, scenarios=SCENARIOS, chaos=None):
    """Run the scenario set (twice each, for the determinism verdict)
    and write ``BENCH_service.json``; returns the bench dict."""
    bench = {"seed": seed, "duration_s": duration_s, "scenarios": {}}
    deterministic = True
    for name in scenarios:
        summary, _result, core = run_scenario(
            name, seed=seed, duration_s=duration_s, chaos=chaos
        )
        _summary2, _result2, core2 = run_scenario(
            name, seed=seed, duration_s=duration_s, chaos=chaos
        )
        same = decision_sequence(core) == decision_sequence(core2)
        deterministic = deterministic and same
        summary["deterministic_rerun"] = same
        bench["scenarios"][name] = summary
    bench["deterministic"] = deterministic
    if path:
        with open(path, "w") as handle:
            json.dump(bench, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return bench


__all__ = [
    "LoadResult",
    "SCENARIOS",
    "build_scenario",
    "capacity_rps",
    "decision_sequence",
    "run_scenario",
    "service_config",
    "write_bench",
]
