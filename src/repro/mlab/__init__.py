"""The M-Lab measurement-platform substrate.

WeHeY's topology-construction module (Section 3.3) ingests M-Lab's
traceroute BigQuery tables, annotated with ASN/geo data from MaxMind,
IPinfo.io and RouteViews, and finds -- for every traceroute destination
-- pairs of M-Lab servers whose paths to that destination converge
exactly once, inside the destination's ISP.

Offline we cannot query BigQuery, so this subpackage provides the whole
chain as a faithful substitute:

- :mod:`~repro.mlab.internet` -- a synthetic Internet: server ASes,
  transit ASes, client ISPs with internal router hierarchies, clients;
  including the messiness TC must filter (ICMP-blocking ISPs and IP
  aliasing);
- :mod:`~repro.mlab.traceroute` -- scamper-like traceroute records;
- :mod:`~repro.mlab.annotations` -- the ASN/geo annotation databases;
- :mod:`~repro.mlab.tables` -- a tiny joinable record store standing in
  for the two BigQuery tables;
- :mod:`~repro.mlab.topology_construction` -- the TC algorithm itself.
"""

from repro.mlab.internet import SyntheticInternet
from repro.mlab.topology_construction import (
    TopologyConstructor,
    TopologyDatabase,
    build_topology_from_tables,
)
from repro.mlab.traceroute import TracerouteRecord, run_traceroute

__all__ = [
    "SyntheticInternet",
    "TracerouteRecord",
    "run_traceroute",
    "TopologyConstructor",
    "TopologyDatabase",
    "build_topology_from_tables",
]
