"""IP annotation databases (MaxMind / IPinfo.io / RouteViews stand-in).

M-Lab publishes a second BigQuery table with per-hop ASN and
geolocation annotations; TC merges it with the traceroute table.  Here
the database is built from the synthetic internet's ground truth, with
an optional miss rate (real annotation databases are incomplete).
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class IpAnnotation:
    """Annotation for one IP address."""

    ip: str
    asn: int
    country: str


class AnnotationDatabase:
    """ASN/geo lookups for every IP in a synthetic internet."""

    def __init__(self, internet, rng=None, miss_rate=0.0):
        if miss_rate and rng is None:
            raise ValueError("a miss rate requires an rng")
        self._annotations = {}
        entries = []
        for server in internet.servers:
            entries.append((server.ip, server.asn, "US"))
        for routers in internet.transit_routers.values():
            for router in routers:
                entries.extend(
                    (ip, router.asn, "US") for ip in router.interfaces
                )
        for isp in internet.isps:
            for router in (
                isp.borders + isp.aggregations + list(isp.last_miles.values())
            ):
                entries.extend(
                    (ip, router.asn, "US") for ip in router.interfaces
                )
        for client in internet.clients:
            entries.append((client.ip, client.asn, "US"))
        for ip, asn, country in entries:
            if miss_rate and rng.random() < miss_rate:
                continue
            self._annotations[ip] = IpAnnotation(ip=ip, asn=asn, country=country)

    def lookup(self, ip):
        """Annotation for ``ip``, or None when the databases miss it."""
        return self._annotations.get(ip)

    def asn(self, ip):
        """ASN for ``ip``, or None."""
        annotation = self._annotations.get(ip)
        return annotation.asn if annotation else None

    def __len__(self):
        return len(self._annotations)
