"""A synthetic Internet for exercising topology construction.

The model has three tiers:

- *server ASes*: M-Lab hosting sites, each with a handful of servers;
- *transit ASes*: carriers interconnecting everything;
- *client ISPs*: access networks with an internal router hierarchy
  (border -> aggregation -> last-mile) and attached clients.

Routing is deterministic given the rng: each (server, client) pair gets
a router-level path: server-side routers, one or two transit ASes, an
ISP border router, an aggregation router, and the client's last-mile
router.  Two servers reaching the same client through *different*
borders converge at the aggregation router -- inside the ISP -- which is
precisely the "suitable topology" Section 3.3 looks for.  Servers
entering through the *same* transit chain share nodes outside the ISP
and must be rejected by TC.

Real-world messiness TC must survive is injected per ISP/router:

- ``blocks_icmp``: the ISP drops ICMP near the client, so traceroutes
  end before the destination (condition (a) of Section 3.3);
- *IP aliasing*: some routers answer from a different interface IP per
  incoming link, so consecutive traceroute links do not meet at the
  same IP (condition (b)).
"""

from dataclasses import dataclass, field


def _ip(a, b, c, d):
    return f"{a}.{b}.{c}.{d}"


@dataclass
class Router:
    """One router; may expose several interface IPs (aliasing)."""

    name: str
    asn: int
    interfaces: tuple
    aliased: bool = False

    @property
    def canonical_ip(self):
        return self.interfaces[0]

    def ip_for(self, incoming_index):
        """Interface IP used when answering a probe arriving on a link.

        Non-aliased routers always answer from their canonical IP;
        aliased routers answer from a per-link interface, which is what
        breaks naive IP-level node comparison.
        """
        if not self.aliased:
            return self.interfaces[0]
        return self.interfaces[incoming_index % len(self.interfaces)]


@dataclass
class Client:
    """An end host inside a client ISP."""

    name: str
    ip: str
    asn: int
    isp: str


@dataclass
class Server:
    """An M-Lab measurement server."""

    name: str
    ip: str
    asn: int
    site: str


@dataclass
class Isp:
    """A client ISP with its internal router hierarchy."""

    name: str
    asn: int
    borders: list = field(default_factory=list)
    aggregations: list = field(default_factory=list)
    last_miles: dict = field(default_factory=dict)  # client name -> Router
    blocks_icmp: bool = False


class SyntheticInternet:
    """Build a routable synthetic internet.

    Parameters:
        rng: numpy Generator.
        n_sites: M-Lab sites (each with ``servers_per_site`` servers).
        n_transit: transit ASes.
        n_isps: client ISPs.
        clients_per_isp: clients attached to each ISP.
        icmp_block_fraction: fraction of ISPs that block ICMP near the
            client (their traceroutes are incomplete).
        alias_fraction: fraction of aggregation/border routers that are
            IP-aliased.
    """

    def __init__(
        self,
        rng,
        n_sites=4,
        servers_per_site=2,
        n_transit=3,
        n_isps=6,
        clients_per_isp=5,
        icmp_block_fraction=0.25,
        alias_fraction=0.15,
    ):
        if n_sites < 2:
            raise ValueError("need at least two M-Lab sites")
        self.rng = rng
        self.servers = []
        self.transit_routers = {}  # asn -> [Router]
        self.isps = []
        self.clients = []
        self._isps_by_name = {}
        self._clients_by_name = {}
        self._routes = {}  # (server name, client name) -> [Router]

        # Server ASes: ASN 100+site; transit: 200+i; ISPs: 300+i.
        for site in range(n_sites):
            asn = 100 + site
            for k in range(servers_per_site):
                ip = _ip(10, site, 0, 10 + k)
                self.servers.append(
                    Server(f"mlab{site}-{k}", ip, asn, f"site-{site}")
                )

        for t in range(n_transit):
            asn = 200 + t
            routers = [
                Router(f"tr{t}-{j}", asn, (_ip(20, t, j, 1),))
                for j in range(3)
            ]
            self.transit_routers[asn] = routers

        for i in range(n_isps):
            asn = 300 + i
            isp = Isp(
                name=f"isp-{i}",
                asn=asn,
                blocks_icmp=bool(rng.random() < icmp_block_fraction),
            )
            for b in range(2):
                isp.borders.append(
                    Router(
                        f"{isp.name}-border{b}",
                        asn,
                        tuple(_ip(30, i, b, 1 + k) for k in range(3)),
                        aliased=bool(rng.random() < alias_fraction),
                    )
                )
            for a in range(2):
                isp.aggregations.append(
                    Router(
                        f"{isp.name}-agg{a}",
                        asn,
                        tuple(_ip(30, i, 10 + a, 1 + k) for k in range(3)),
                        aliased=bool(rng.random() < alias_fraction),
                    )
                )
            for c in range(clients_per_isp):
                client = Client(
                    f"{isp.name}-client{c}", _ip(30, i, 100 + c, 7), asn, isp.name
                )
                isp.last_miles[client.name] = Router(
                    f"{isp.name}-lm{c}", asn, (_ip(30, i, 100 + c, 1),)
                )
                self.clients.append(client)
                self._clients_by_name[client.name] = client
            self.isps.append(isp)
            self._isps_by_name[isp.name] = isp

        self._build_routes()

    def isp_of(self, client):
        try:
            return self._isps_by_name[client.isp]
        except KeyError:
            raise KeyError(client.isp) from None

    def _build_routes(self):
        """Assign each (server, client) pair a router-level path."""
        rng = self.rng
        transit_asns = sorted(self.transit_routers)
        for client in self.clients:
            isp = self.isp_of(client)
            # Every client hangs off one aggregation router; servers
            # reach it through a border chosen per server site.
            agg = isp.aggregations[
                int(rng.integers(0, len(isp.aggregations)))
            ]
            for server in self.servers:
                transit_asn = transit_asns[
                    (server.asn + client.asn) % len(transit_asns)
                ]
                transit = self.transit_routers[transit_asn]
                border = isp.borders[server.asn % len(isp.borders)]
                path = [
                    transit[server.asn % len(transit)],
                    transit[(server.asn + 1) % len(transit)],
                    border,
                    agg,
                    isp.last_miles[client.name],
                ]
                self._routes[(server.name, client.name)] = path

    def route(self, server, client):
        """The router-level path from ``server`` to ``client``."""
        return self._routes[(server.name, client.name)]

    def find_client(self, name):
        try:
            return self._clients_by_name[name]
        except KeyError:
            raise KeyError(name) from None
