"""A tiny joinable record store standing in for M-Lab's BigQuery tables.

TC's input is two tables -- scamper traceroutes and per-hop annotations
-- that get merged on the hop IP (Section 3.3).  ``Table`` supports just
what that pipeline needs: append, scan with a predicate, equi-join, and
the two filters TC runs after the merge.

Two backends share this API: ``Table`` here (row dicts, the reference
implementation) and :class:`repro.inet.coltable.ColumnarTable` (numpy
column arrays, vectorized join and filters, for BigQuery-scale row
counts).  ``make_table`` picks one by name, and the builder functions
take a ``backend=`` so the whole TC pipeline can switch without code
changes -- ``tests/inet`` asserts both produce identical topology
databases.
"""


class Table:
    """An append-only table of dict rows with a fixed column set."""

    def __init__(self, name, columns):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.name = name
        self.columns = tuple(columns)
        self._colset = frozenset(columns)
        self._rows = []

    def __len__(self):
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)

    def insert(self, **values):
        # Exact schema match is the overwhelmingly common case; one set
        # comparison decides it, and the diagnostics are only computed
        # on the failure path.
        if values.keys() == self._colset:
            self._rows.append(values)
            return
        missing = self._colset - values.keys()
        extra = values.keys() - self._colset
        raise ValueError(
            f"row does not match schema of {self.name!r}: "
            f"missing={sorted(missing)} extra={sorted(extra)}"
        )

    def extend(self, rows):
        """Bulk append; every row must match the schema exactly."""
        append = self._rows.append
        colset = self._colset
        for row in rows:
            if row.keys() != colset:
                missing = colset - row.keys()
                extra = row.keys() - colset
                raise ValueError(
                    f"row does not match schema of {self.name!r}: "
                    f"missing={sorted(missing)} extra={sorted(extra)}"
                )
            append(dict(row))

    def scan(self, predicate=None):
        """Yield rows (optionally filtered)."""
        for row in self._rows:
            if predicate is None or predicate(row):
                yield row

    def materialize(self):
        """No-op, for API parity with the columnar backend.

        The columnar backend buffers appends and encodes them into
        arrays on first read; ``materialize`` lets callers take that
        cost eagerly at ingestion time.  Rows here are already their
        final representation.
        """

    def column(self, name):
        """One column's values as a list, in row order."""
        if name not in self._colset:
            raise KeyError(name)
        return [row[name] for row in self._rows]

    def where_equals(self, column, value):
        """Rows with ``row[column] == value``, as a new table."""
        return self._from_shared_rows(
            [row for row in self._rows if row[column] == value]
        )

    def where_columns_equal(self, column_a, column_b):
        """Rows where two columns agree, as a new table."""
        return self._from_shared_rows(
            [row for row in self._rows if row[column_a] == row[column_b]]
        )

    def renamed(self, mapping):
        """A copy with columns renamed per ``mapping``."""
        unknown = set(mapping) - self._colset
        if unknown:
            raise KeyError(f"no such columns: {sorted(unknown)}")
        new_columns = tuple(mapping.get(c, c) for c in self.columns)
        if len(set(new_columns)) != len(new_columns):
            raise ValueError("renaming collides column names")
        table = Table(self.name, new_columns)
        table._rows = [
            {mapping.get(c, c): row[c] for c in self.columns}
            for row in self._rows
        ]
        return table

    def _from_shared_rows(self, rows):
        table = Table(self.name, self.columns)
        table._rows = rows
        return table

    def join(self, other, on, how="inner"):
        """Equi-join on column ``on``; returns a list of merged dicts.

        ``how="left"`` keeps unmatched left rows with ``None`` fills for
        the right columns (annotation misses surface as None ASNs, as
        they do in the real merged M-Lab data).
        """
        if how not in ("inner", "left"):
            raise ValueError(f"unsupported join type {how!r}")
        index = {}
        for row in other._rows:
            index.setdefault(row[on], []).append(row)
        merged = []
        right_columns = [c for c in other.columns if c != on]
        for row in self._rows:
            matches = index.get(row[on], [])
            if matches:
                for match in matches:
                    combined = dict(row)
                    combined.update(
                        {c: match[c] for c in right_columns}
                    )
                    merged.append(combined)
            elif how == "left":
                combined = dict(row)
                combined.update({c: None for c in right_columns})
                merged.append(combined)
        return merged

    def join_table(self, other, on, how="inner"):
        """Equi-join returning a table (same rows as :meth:`join`)."""
        right_columns = tuple(c for c in other.columns if c != on)
        table = Table(
            f"{self.name}*{other.name}", self.columns + right_columns
        )
        table._rows = self.join(other, on, how=how)
        return table


def make_table(name, columns, backend="row"):
    """Construct a table on the requested backend."""
    if backend == "row":
        return Table(name, columns)
    if backend == "columnar":
        from repro.inet.coltable import ColumnarTable

        return ColumnarTable(name, columns)
    raise ValueError(f"unknown table backend {backend!r}")


TRACEROUTE_COLUMNS = (
    "traceroute_id",
    "server_name",
    "server_ip",
    "destination_ip",
    "hop_index",
    "hop_ip",
    "egress_ip",
    "rtt_ms",
)


def traceroute_table(records, backend="row"):
    """Flatten traceroute records into the scamper-style hop table.

    ``egress_ip`` is the interface the hop reported as the *source* of
    the next link; on a non-aliased router it equals ``hop_ip``, so
    Section 3.3's link-consistency filter (b) becomes the columnar
    predicate ``hop_ip == egress_ip``.
    """
    table = make_table("traceroutes", TRACEROUTE_COLUMNS, backend=backend)
    for traceroute_id, record in enumerate(records):
        links = record.links
        for hop_index, hop in enumerate(record.hops):
            egress = (
                links[hop_index + 1][0]
                if hop_index + 1 < len(links)
                else hop.ip
            )
            table.insert(
                traceroute_id=traceroute_id,
                server_name=record.server_name,
                server_ip=record.server_ip,
                destination_ip=record.destination_ip,
                hop_index=hop_index,
                hop_ip=hop.ip,
                egress_ip=egress,
                rtt_ms=hop.rtt_ms,
            )
    return table


def annotation_table(database, backend="row"):
    """The annotation side of the merge, keyed by hop IP."""
    table = make_table(
        "annotations", ("hop_ip", "asn", "country"), backend=backend
    )
    for annotation in database._annotations.values():
        table.insert(
            hop_ip=annotation.ip, asn=annotation.asn, country=annotation.country
        )
    return table
