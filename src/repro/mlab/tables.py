"""A tiny joinable record store standing in for M-Lab's BigQuery tables.

TC's input is two tables -- scamper traceroutes and per-hop annotations
-- that get merged on the hop IP (Section 3.3).  ``Table`` supports just
what that pipeline needs: append, scan with a predicate, and an
equi-join producing merged row dicts.
"""


class Table:
    """An append-only table of dict rows with a fixed column set."""

    def __init__(self, name, columns):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.name = name
        self.columns = tuple(columns)
        self._rows = []

    def __len__(self):
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)

    def insert(self, **values):
        missing = set(self.columns) - set(values)
        extra = set(values) - set(self.columns)
        if missing or extra:
            raise ValueError(
                f"row does not match schema of {self.name!r}: "
                f"missing={sorted(missing)} extra={sorted(extra)}"
            )
        self._rows.append(dict(values))

    def scan(self, predicate=None):
        """Yield rows (optionally filtered)."""
        for row in self._rows:
            if predicate is None or predicate(row):
                yield row

    def join(self, other, on, how="inner"):
        """Equi-join on column ``on``; returns a list of merged dicts.

        ``how="left"`` keeps unmatched left rows with ``None`` fills for
        the right columns (annotation misses surface as None ASNs, as
        they do in the real merged M-Lab data).
        """
        if how not in ("inner", "left"):
            raise ValueError(f"unsupported join type {how!r}")
        index = {}
        for row in other._rows:
            index.setdefault(row[on], []).append(row)
        merged = []
        right_columns = [c for c in other.columns if c != on]
        for row in self._rows:
            matches = index.get(row[on], [])
            if matches:
                for match in matches:
                    combined = dict(row)
                    combined.update(
                        {c: match[c] for c in right_columns}
                    )
                    merged.append(combined)
            elif how == "left":
                combined = dict(row)
                combined.update({c: None for c in right_columns})
                merged.append(combined)
        return merged


def traceroute_table(records):
    """Flatten traceroute records into the scamper-style hop table."""
    table = Table(
        "traceroutes",
        (
            "traceroute_id",
            "server_name",
            "server_ip",
            "destination_ip",
            "hop_index",
            "hop_ip",
            "rtt_ms",
        ),
    )
    for traceroute_id, record in enumerate(records):
        for hop_index, hop in enumerate(record.hops):
            table.insert(
                traceroute_id=traceroute_id,
                server_name=record.server_name,
                server_ip=record.server_ip,
                destination_ip=record.destination_ip,
                hop_index=hop_index,
                hop_ip=hop.ip,
                rtt_ms=hop.rtt_ms,
            )
    return table


def annotation_table(database):
    """The annotation side of the merge, keyed by hop IP."""
    table = Table("annotations", ("hop_ip", "asn", "country"))
    for annotation in database._annotations.values():
        table.insert(
            hop_ip=annotation.ip, asn=annotation.asn, country=annotation.country
        )
    return table
