"""The topology-construction (TC) module -- Section 3.3.

TC periodically ingests M-Lab's traceroute and annotation tables,
merges them, filters out unusable traceroutes, and then -- for each
traceroute destination -- finds the pairs of M-Lab servers whose paths
to that destination converge exactly once, inside the destination's
ISP.  Its output, the topology database, maps a destination's /24
prefix and ASN to the usable server pairs.

Filters (both applied before the pair search):

(a) the last reported hop must have the same ASN as the destination
    (otherwise the traceroute died early, e.g. the ISP blocks ICMP);
(b) two subsequent links must meet at the same IP address (IP aliasing
    otherwise makes node identities unreliable; the paper notes alias
    resolution could recover these but is not implemented -- neither do
    we).
"""

from dataclasses import dataclass, field

from repro.obs import metrics as _obs


def prefix_of(ip, length=24):
    """The /24 (or /48-style) prefix key of an IPv4 address."""
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"not an IPv4 address: {ip!r}")
    keep = {8: 1, 16: 2, 24: 3, 32: 4}.get(length)
    if keep is None:
        raise ValueError("prefix length must be one of 8, 16, 24, 32")
    return ".".join(parts[:keep]) + f".0/{length}" if length < 32 else ip


@dataclass(frozen=True)
class SuitableTopology:
    """One usable server pair for a destination."""

    destination_prefix: str
    destination_asn: int
    server_pair: tuple  # (server_name_1, server_name_2)
    common_candidates: tuple  # in-ISP IPs where the paths converge


@dataclass
class TopologyDatabase:
    """TC's output table: destination -> suitable server pairs."""

    entries: dict = field(default_factory=dict)

    def add(self, topology):
        key = (topology.destination_prefix, topology.destination_asn)
        self.entries.setdefault(key, []).append(topology)
        if _obs.ENABLED:
            _obs.SINK.inc("mlab.tc.pairs_found")

    def lookup(self, destination_ip, destination_asn):
        """Server pairs usable for a client at ``destination_ip``.

        Returns a *copy*; removing entries goes through
        :meth:`invalidate`, never by mutating the returned list.
        """
        key = (prefix_of(destination_ip), destination_asn)
        return list(self.entries.get(key, []))

    def invalidate(self, topology):
        """Drop ``topology`` from the database (Section 3.4, step 4).

        Called when post-replay verification finds the routes changed,
        or when an entry turns out to be stale.  Returns True iff the
        entry was present.
        """
        key = (topology.destination_prefix, topology.destination_asn)
        entries = self.entries.get(key)
        if not entries or topology not in entries:
            return False
        entries.remove(topology)
        if not entries:
            del self.entries[key]
        if _obs.ENABLED:
            _obs.SINK.inc("mlab.tc.entries_invalidated")
        return True

    def __len__(self):
        return sum(len(v) for v in self.entries.values())

    @property
    def destinations(self):
        return list(self.entries)


class TopologyConstructor:
    """Runs the Section-3.3 pipeline over traceroute records."""

    def __init__(self, annotations):
        self.annotations = annotations

    # -- filtering ----------------------------------------------------

    def is_complete(self, record):
        """Filter (a): last hop shares the destination's ASN."""
        if not record.hops:
            return False
        last_asn = self.annotations.asn(record.last_hop_ip)
        dest_asn = self.annotations.asn(record.destination_ip)
        if last_asn is None or dest_asn is None:
            return False
        return last_asn == dest_asn

    @staticmethod
    def links_consistent(record):
        """Filter (b): subsequent links meet at the same IP."""
        links = record.links
        return all(
            links[i][1] == links[i + 1][0] for i in range(len(links) - 1)
        )

    def usable(self, record):
        return self.is_complete(record) and self.links_consistent(record)

    # -- the four steps per destination -------------------------------

    def candidate_intermediate_nodes(self, record, destination_asn):
        """Step 2: hops located in the destination's ISP."""
        return tuple(
            hop.ip
            for hop in record.hops
            if self.annotations.asn(hop.ip) == destination_asn
            and hop.ip != record.destination_ip
        )

    def pair_is_suitable(self, record_1, record_2, destination_asn):
        """Step 3: >=1 common in-ISP candidate; no common node outside.

        Node comparison is by raw IP (no alias resolution), as in the
        paper's implementation.
        """
        hops_1 = {hop.ip for hop in record_1.hops} - {record_1.destination_ip}
        hops_2 = {hop.ip for hop in record_2.hops} - {record_2.destination_ip}
        common = hops_1 & hops_2
        if not common:
            return False, ()
        common_inside = {
            ip for ip in common if self.annotations.asn(ip) == destination_asn
        }
        common_outside = common - common_inside
        if common_outside or not common_inside:
            return False, ()
        return True, tuple(sorted(common_inside))

    def build(self, records):
        """Run the full pipeline; returns a :class:`TopologyDatabase`."""
        database = TopologyDatabase()
        if _obs.ENABLED:
            _obs.SINK.inc("mlab.tc.rows_scanned", len(records))
        usable_records = [r for r in records if self.usable(r)]
        by_destination = {}
        for record in usable_records:
            by_destination.setdefault(record.destination_ip, []).append(record)

        for destination_ip, dest_records in by_destination.items():
            destination_asn = self.annotations.asn(destination_ip)
            if destination_asn is None:
                continue
            # Step 1 fallback: if a destination had no traceroutes we
            # could reuse same-ASN destinations; with per-destination
            # grouping this arises only for clients absent from the
            # records, handled by lookup-time ASN fallback if desired.
            seen_pairs = set()
            for i, record_1 in enumerate(dest_records):
                for record_2 in dest_records[i + 1 :]:
                    if record_1.server_name == record_2.server_name:
                        continue
                    pair = tuple(
                        sorted((record_1.server_name, record_2.server_name))
                    )
                    if pair in seen_pairs:
                        continue
                    suitable, common = self.pair_is_suitable(
                        record_1, record_2, destination_asn
                    )
                    if suitable:
                        seen_pairs.add(pair)
                        database.add(
                            SuitableTopology(
                                destination_prefix=prefix_of(destination_ip),
                                destination_asn=destination_asn,
                                server_pair=pair,
                                common_candidates=common,
                            )
                        )
        return database

    # -- coverage statistics (Section 3.3's 52% / 74% numbers) --------

    def coverage(self, records):
        """Fraction of clients with complete traceroutes, and of those,
        the fraction with at least one suitable topology."""
        destinations = {r.destination_ip for r in records}
        complete = {
            r.destination_ip for r in records if self.usable(r)
        }
        database = self.build(records)
        with_topology = {
            prefix for prefix, _asn in database.entries
        }
        complete_with_topology = sum(
            1 for ip in complete if prefix_of(ip) in with_topology
        )
        return {
            "clients": len(destinations),
            "complete_fraction": len(complete) / len(destinations)
            if destinations
            else 0.0,
            "suitable_fraction": complete_with_topology / len(complete)
            if complete
            else 0.0,
        }


def build_topology_from_tables(traceroutes, annotations):
    """Run the Section-3.3 pipeline from the *tables* instead of records.

    This is the BigQuery-shaped formulation: the hop table is
    left-joined with the annotation table on ``hop_ip``, then with the
    annotation table again (renamed) on ``destination_ip``, and the
    filters and pair search run over the merged rows.  It accepts
    either table backend (``repro.mlab.tables.Table`` or
    ``repro.inet.coltable.ColumnarTable``) and produces a database
    identical to :meth:`TopologyConstructor.build` on the records the
    tables were built from -- the grouping and pair logic below is
    deliberately backend-agnostic python so any divergence between
    backends is the join's fault, which is exactly what the parity
    tests pin.
    """
    annotated = traceroutes.join_table(annotations, on="hop_ip", how="left")
    destination_side = annotations.renamed(
        {
            "hop_ip": "destination_ip",
            "asn": "destination_asn",
            "country": "destination_country",
        }
    )
    merged = annotated.join_table(
        destination_side, on="destination_ip", how="left"
    )
    if _obs.ENABLED:
        _obs.SINK.inc("mlab.tc.rows_scanned", len(merged))

    # Regroup the merged rows into per-traceroute hop lists.  Hop rows
    # were inserted in (traceroute, hop_index) order and both join
    # backends preserve left-row order, so groups come out contiguous
    # and ordered.
    tids = merged.column("traceroute_id")
    servers = merged.column("server_name")
    dest_ips = merged.column("destination_ip")
    dest_asns = merged.column("destination_asn")
    hop_ips = merged.column("hop_ip")
    egress_ips = merged.column("egress_ip")
    hop_asns = merged.column("asn")

    order = []  # tids in first-seen order
    groups = {}
    for i, tid in enumerate(tids):
        group = groups.get(tid)
        if group is None:
            group = groups[tid] = []
            order.append(tid)
        group.append(i)

    database = TopologyDatabase()
    by_destination = {}
    for tid in order:
        rows = groups[tid]
        last = rows[-1]
        dest_asn = dest_asns[last]
        # Filter (a): the last hop must resolve to the destination ASN.
        if dest_asn is None or hop_asns[last] != dest_asn:
            continue
        # Filter (b): every reported hop must use one interface for
        # both adjacent links (hop_ip == egress_ip; see
        # ``traceroute_table``).
        if any(hop_ips[i] != egress_ips[i] for i in rows):
            continue
        record = (
            servers[last],
            dest_ips[last],
            tuple((hop_ips[i], hop_asns[i]) for i in rows),
        )
        by_destination.setdefault(dest_ips[last], (dest_asn, []))[1].append(
            record
        )

    for destination_ip, (destination_asn, dest_records) in by_destination.items():
        seen_pairs = set()
        for i, record_1 in enumerate(dest_records):
            server_1, _, hops_1 = record_1
            for record_2 in dest_records[i + 1 :]:
                server_2, _, hops_2 = record_2
                if server_1 == server_2:
                    continue
                pair = tuple(sorted((server_1, server_2)))
                if pair in seen_pairs:
                    continue
                ips_1 = {ip for ip, _ in hops_1} - {destination_ip}
                ips_2 = {ip for ip, _ in hops_2} - {destination_ip}
                common = ips_1 & ips_2
                if not common:
                    continue
                asn_of = dict(hops_1)
                asn_of.update(dict(hops_2))
                common_inside = {
                    ip for ip in common if asn_of[ip] == destination_asn
                }
                if (common - common_inside) or not common_inside:
                    continue
                seen_pairs.add(pair)
                database.add(
                    SuitableTopology(
                        destination_prefix=prefix_of(destination_ip),
                        destination_asn=destination_asn,
                        server_pair=pair,
                        common_candidates=tuple(sorted(common_inside)),
                    )
                )
    return database
