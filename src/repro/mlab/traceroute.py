"""Scamper-like traceroute records over the synthetic internet.

A record is a list of *links*: ``(from_ip, to_ip)`` pairs as scamper
reports them.  Topology construction requires that two subsequent links
meet at the same IP (Section 3.3, condition (b)); aliased routers break
this because they answer from a different interface per incoming link.

ISPs that block ICMP near the client produce truncated traceroutes
whose last hop is still in a transit AS (condition (a) fails).
"""

from dataclasses import dataclass

from repro.faults import FaultSite, TracerouteTimeoutError, maybe_fire


@dataclass(frozen=True)
class Hop:
    """One reported hop."""

    ip: str
    rtt_ms: float


@dataclass(frozen=True)
class TracerouteRecord:
    """One scamper run: server -> destination."""

    server_name: str
    server_ip: str
    destination_ip: str
    hops: tuple
    links: tuple  # ((from_ip, to_ip), ...)
    reached_destination: bool

    @property
    def last_hop_ip(self):
        if not self.hops:
            return None
        return self.hops[-1].ip


def run_traceroute(internet, server, client, rng, fault_injector=None):
    """Run a traceroute from ``server`` to ``client``.

    Returns a :class:`TracerouteRecord`.  Per-hop RTTs grow along the
    path with jitter; they are cosmetic (TC ignores them) but keep the
    records realistic.

    ``fault_injector`` (a :class:`~repro.faults.FaultInjector`) can
    make the probe time out (raises :class:`TracerouteTimeoutError`)
    or return an empty-hop record -- the two failure shapes scamper
    produces in the wild.
    """
    if maybe_fire(fault_injector, FaultSite.TRACEROUTE_TIMEOUT):
        raise TracerouteTimeoutError(
            f"traceroute {server.name} -> {client.name} timed out"
        )
    if maybe_fire(fault_injector, FaultSite.TRACEROUTE_EMPTY):
        return TracerouteRecord(
            server_name=server.name,
            server_ip=server.ip,
            destination_ip=client.ip,
            hops=(),
            links=(),
            reached_destination=False,
        )
    isp = internet.isp_of(client)
    route = internet.route(server, client)
    hops = []
    rtt = float(rng.uniform(2.0, 8.0))
    truncate_at = len(route)
    if isp.blocks_icmp:
        # Drop the in-ISP hops: the probe dies at the ISP edge.
        truncate_at = next(
            (i for i, router in enumerate(route) if router.asn == isp.asn),
            len(route),
        )
    # Scamper reports per-link data; an aliased router may answer with
    # one interface IP as a link destination and another as the next
    # link's source, so the two reported IPs are drawn independently.
    node_ips = [(server.ip, server.ip)]
    for router in route[:truncate_at]:
        as_destination = router.ip_for(int(rng.integers(0, 3)))
        as_source = router.ip_for(int(rng.integers(0, 3)))
        node_ips.append((as_destination, as_source))
        rtt += float(rng.uniform(1.0, 6.0))
        hops.append(Hop(ip=as_destination, rtt_ms=rtt))
    # The probe only reaches the client if the route actually ends at
    # the client's last-mile router: a route truncated in transit (a
    # blackholed path during route convergence) never arrives, even
    # though no hop was dropped by ICMP filtering.
    reached = (
        truncate_at == len(route)
        and not isp.blocks_icmp
        and bool(route)
        and route[-1] is isp.last_miles.get(client.name)
    )
    if reached:
        rtt += float(rng.uniform(1.0, 4.0))
        hops.append(Hop(ip=client.ip, rtt_ms=rtt))
        node_ips.append((client.ip, client.ip))
    links = tuple(
        (node_ips[i][1], node_ips[i + 1][0]) for i in range(len(node_ips) - 1)
    )
    return TracerouteRecord(
        server_name=server.name,
        server_ip=server.ip,
        destination_ip=client.ip,
        hops=tuple(hops),
        links=links,
        reached_destination=reached,
    )


def collect_month(internet, rng, tests_per_client=None):
    """Simulate a month of WeHe-triggered traceroutes.

    Every client is traced from a random subset of servers (M-Lab
    favours nearby servers, so not all vantage points appear for every
    client -- the paper calls this out as the reason its topology counts
    are lower bounds).
    """
    records = []
    for client in internet.clients:
        n_servers = (
            tests_per_client
            if tests_per_client is not None
            else int(rng.integers(2, len(internet.servers) + 1))
        )
        chosen = rng.choice(
            len(internet.servers), size=min(n_servers, len(internet.servers)),
            replace=False,
        )
        for index in chosen:
            records.append(
                run_traceroute(internet, internet.servers[int(index)], client, rng)
            )
    return records
