"""Post-replay topology verification (Section 3.4, step 4).

At the end of both simultaneous replays, each server traceroutes the
client again and the measurement-gathering server checks that the
topology is *still* suitable (paths converge once, inside the ISP).
Routes change; when verification fails the measurements are discarded
and the topology database entry is invalidated.

``TopologyVerifier`` re-runs the traceroutes over the synthetic
internet; ``route_change_probability`` injects BGP-style path changes
(the client's aggregation router is re-drawn) so the discard path is
exercisable.
"""

from repro.mlab.topology_construction import TopologyConstructor
from repro.mlab.traceroute import run_traceroute


class TopologyVerifier:
    """Re-validates a suitable topology after the replays."""

    def __init__(self, internet, annotations, rng, route_change_probability=0.0):
        if not 0.0 <= route_change_probability <= 1.0:
            raise ValueError("route_change_probability must be in [0, 1]")
        self.internet = internet
        self.annotations = annotations
        self.rng = rng
        self.route_change_probability = route_change_probability
        self._constructor = TopologyConstructor(annotations)

    def _maybe_perturb_routes(self, client):
        """Simulate a route change affecting this client."""
        if self.rng.random() >= self.route_change_probability:
            return
        isp = self.internet.isp_of(client)
        new_aggregation = isp.aggregations[
            int(self.rng.integers(0, len(isp.aggregations)))
        ]
        transit_asns = sorted(self.internet.transit_routers)
        for server in self.internet.servers:
            route = self.internet._routes[(server.name, client.name)]
            # Re-draw the transit chain: after a route change, two
            # servers may share transit routers, which makes the pair
            # unsuitable (common node outside the ISP).
            transit = self.internet.transit_routers[
                transit_asns[int(self.rng.integers(0, len(transit_asns)))]
            ]
            start = int(self.rng.integers(0, len(transit)))
            route[0] = transit[start]
            route[1] = transit[(start + 1) % len(transit)]
            # The aggregation hop sits just before the last-mile router.
            route[-2] = new_aggregation
            route[-3] = isp.borders[
                int(self.rng.integers(0, len(isp.borders)))
            ]

    def verify(self, topology_entry, client_name):
        """True iff the server pair still forms a suitable topology."""
        client = self.internet.find_client(client_name)
        self._maybe_perturb_routes(client)
        servers = {s.name: s for s in self.internet.servers}
        records = []
        for server_name in topology_entry.server_pair:
            server = servers.get(server_name)
            if server is None:
                return False
            record = run_traceroute(self.internet, server, client, self.rng)
            if not self._constructor.usable(record):
                return False
            records.append(record)
        suitable, _ = self._constructor.pair_is_suitable(
            records[0], records[1], topology_entry.destination_asn
        )
        return suitable
