"""Packet-level discrete-event network simulator.

This subpackage replaces the paper's ns-3 simulations and tc-based
wide-area testbed.  It provides:

- :class:`~repro.netsim.engine.Simulator` -- the event loop,
- :class:`~repro.netsim.link.Link` -- bandwidth/delay links with a
  pluggable queueing discipline,
- :class:`~repro.netsim.queues.DropTailQueue` and
  :class:`~repro.netsim.token_bucket.TokenBucketFilter` /
  :class:`~repro.netsim.token_bucket.DualClassQdisc` -- the rate-limiter
  of the paper's Appendix C.1 (classifier + FIFO + TBF + round-robin),
- :class:`~repro.netsim.tcp.TcpSender` -- a Cubic/Reno congestion
  controlled sender with pacing, fast retransmit, and RTO recovery,
- :class:`~repro.netsim.udp.UdpSender` -- trace-driven and Poisson UDP,
- :mod:`~repro.netsim.background` -- CAIDA-like background traffic,
- :class:`~repro.netsim.topology.FigureOneTopology` -- the paper's
  Figure-1 two-path topology builder.
"""

from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.multipath import MultipathLink, ecmp_hash
from repro.netsim.packet import ACK, DATA, Packet
from repro.netsim.path import Path
from repro.netsim.queues import DropTailQueue
from repro.netsim.tcp import TcpReceiver, TcpSender
from repro.netsim.token_bucket import DualClassQdisc, TokenBucketFilter
from repro.netsim.topology import FigureOneTopology, TopologyConfig
from repro.netsim.udp import UdpReceiver, UdpSender

__all__ = [
    "Simulator",
    "Link",
    "MultipathLink",
    "ecmp_hash",
    "Packet",
    "DATA",
    "ACK",
    "Path",
    "DropTailQueue",
    "TokenBucketFilter",
    "DualClassQdisc",
    "TcpSender",
    "TcpReceiver",
    "UdpSender",
    "UdpReceiver",
    "FigureOneTopology",
    "TopologyConfig",
]
