"""Background (cross) traffic.

The paper replays CAIDA equinix-chicago segments behind its rate
limiters: an aggregate with heavy-tailed flows whose arrival rate
fluctuates on the timescale of seconds.  Those fluctuations are what
make the loss rate of a shared bottleneck *trend* over time -- the very
signal Algorithm 1 correlates.  We reproduce the two properties that
matter:

- ``ModulatedPoissonBackground``: a UDP aggregate whose instantaneous
  rate follows a mean-reverting log-AR(1) process (seconds-scale trend),
  with CAIDA-like packet-size mixture, a fraction of which is marked
  ``dscp=1`` (same-service traffic competing inside the rate limiter);
- ``TcpBackgroundPool``: long-lived plus Poisson-arriving short TCP
  flows with Pareto sizes, adding realistic congestion-controlled
  dynamics.

Every generator takes its own ``numpy.random.Generator`` so that two
instances are statistically independent -- the false-positive
experiments (identical limiters on the two non-common links) depend on
this.
"""

import numpy as np

from repro.netsim.packet import DATA, Packet
from repro.netsim.path import DirectPath, Path
from repro.netsim.tcp import TcpReceiver, TcpSender

#: CAIDA-like packet-size mixture (bytes, probability).
PACKET_SIZE_MIX = ((1500, 0.55), (576, 0.25), (72, 0.20))


class CountingSink:
    """Terminal sink for background traffic; counts what it swallows."""

    def __init__(self):
        self.packets = 0
        self.bytes = 0

    def receive(self, packet):
        self.packets += 1
        self.bytes += packet.size


#: Default multi-timescale modulation: (update period s, stationary sigma,
#: AR(1) rho per period).  Superposing components at sub-second, seconds
#: and tens-of-seconds scales approximates the long-range-dependent rate
#: fluctuations of CAIDA traffic -- the common bottleneck's loss rate then
#: trends at every interval size Algorithm 1 sweeps.
DEFAULT_MODULATION = (
    (0.2, 0.3, 0.8),
    (1.0, 0.35, 0.85),
    (5.0, 0.35, 0.9),
)


class _Ar1Component:
    """One log-rate AR(1) component of the modulation process."""

    __slots__ = ("period", "sigma", "rho", "state")

    def __init__(self, period, sigma, rho, rng):
        self.period = period
        self.sigma = sigma
        self.rho = rho
        self.state = rng.normal(0.0, sigma)

    def step(self, rng):
        innovation = rng.normal(0.0, self.sigma * np.sqrt(1.0 - self.rho**2))
        self.state = self.rho * self.state + innovation


class ModulatedPoissonBackground:
    """UDP aggregate with multi-timescale modulated Poisson arrivals.

    The log-rate is a sum of independent AR(1) components at different
    timescales (see :data:`DEFAULT_MODULATION`), giving the aggregate
    CAIDA-like slow *and* fast rate fluctuations.

    Parameters:
        sim: simulator.
        rng: private ``numpy.random.Generator``.
        path: forward path the aggregate traverses.
        mean_rate_bps: long-run average rate.
        dscp1_fraction: probability a packet is marked for throttling.
        modulation: tuple of ``(period, sigma, rho)`` components.
    """

    def __init__(
        self,
        sim,
        rng,
        path,
        mean_rate_bps,
        dscp1_fraction=0.5,
        modulation=None,
        start_at=0.0,
        stop_at=None,
        flow_id="bg-udp",
    ):
        if mean_rate_bps <= 0:
            raise ValueError("background rate must be positive")
        if not 0.0 <= dscp1_fraction <= 1.0:
            raise ValueError("dscp1_fraction must be in [0, 1]")
        self.sim = sim
        self.rng = rng
        self.path = path
        self.mean_rate_bps = mean_rate_bps
        self.dscp1_fraction = dscp1_fraction
        self.stop_at = stop_at
        self.flow_id = flow_id
        self.packets_sent = 0

        sizes, probs = zip(*PACKET_SIZE_MIX)
        self._sizes = np.array(sizes)
        self._probs = np.array(probs)
        self._mean_size = float(np.dot(self._sizes, self._probs))
        # Precomputed CDF: drawing via searchsorted over one uniform is
        # bit-identical to ``rng.choice(sizes, p=probs)`` (same stream
        # consumption) at a fraction of the per-call overhead.
        self._size_cdf = self._probs.cumsum()
        self._size_cdf /= self._size_cdf[-1]
        if modulation is None:
            modulation = DEFAULT_MODULATION
        self._components = [
            _Ar1Component(period, sigma, rho, rng)
            for period, sigma, rho in modulation
        ]
        self._total_variance = sum(c.sigma**2 for c in self._components)
        self._seq = 0
        # The modulation state only changes at remodulation ticks, so the
        # instantaneous rate is cached there instead of being recomputed
        # (a Python sum plus an exp) for every generated packet.
        self._cached_rate_bps = self._compute_rate_bps()
        for component in self._components:
            sim.schedule_at(start_at, self._remodulate, component)
        sim.schedule_at(start_at, self._send_next)

    def _compute_rate_bps(self):
        log_x = sum(c.state for c in self._components)
        # Subtracting half the total variance keeps the mean rate at 1x.
        return self.mean_rate_bps * float(np.exp(log_x - self._total_variance / 2.0))

    def current_rate_bps(self):
        """Instantaneous target rate given the modulation state."""
        return self._cached_rate_bps

    def _remodulate(self, component):
        if self.stop_at is not None and self.sim.now >= self.stop_at:
            return
        component.step(self.rng)
        self._cached_rate_bps = self._compute_rate_bps()
        self.sim.schedule(component.period, self._remodulate, component)

    def _send_next(self):
        if self.stop_at is not None and self.sim.now >= self.stop_at:
            return
        rng = self.rng
        rate_pps = self._cached_rate_bps / (8.0 * self._mean_size)
        gap = rng.exponential(1.0 / rate_pps)
        size = int(self._sizes[self._size_cdf.searchsorted(rng.random(), "right")])
        dscp = 1 if rng.random() < self.dscp1_fraction else 0
        packet = Packet(
            self.flow_id, DATA, self._seq, size, dscp=dscp, sent_at=self.sim.now
        )
        self._seq += 1
        self.packets_sent += 1
        self.path.inject(packet)
        self.sim.schedule(gap, self._send_next)


class SteadyAppSource:
    """Constant-rate application source for long-lived TCP flows.

    Long-lived flows in real traffic mixes (video, large syncs) are
    application-paced, not greedy bulk transfers; modelling them this
    way keeps them from starving everything else at a shared policer.
    """

    def __init__(self, rate_bps, start_at=0.0, chunk_bytes=16_000):
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.rate_bps = rate_bps
        self.start_at = start_at
        self.chunk_bytes = chunk_bytes

    def available_bytes(self, now):
        elapsed = max(0.0, now - self.start_at)
        # Data is written in chunks, so availability moves in steps.
        written = elapsed * self.rate_bps / 8.0
        return (written // self.chunk_bytes) * self.chunk_bytes + self.chunk_bytes

    def next_release_after(self, now):
        chunk_interval = self.chunk_bytes * 8.0 / self.rate_bps
        elapsed = max(0.0, now - self.start_at)
        n_chunks = int(elapsed / chunk_interval) + 1
        release = self.start_at + n_chunks * chunk_interval
        # Float rounding must never produce a wake-up in the past or at
        # exactly `now` (that would livelock the sender's wait loop).
        while release <= now + 1e-9:
            release += chunk_interval
        return release


class TcpBackgroundPool:
    """Long-lived and short-lived background TCP flows.

    ``n_longlived`` application-paced flows (rate
    ``longlived_rate_bps`` each) run for the whole experiment; short
    flows arrive Poisson at ``short_flow_rate`` per second with Pareto
    sizes (shape 1.2, scale ``short_flow_min_bytes``).
    ``dscp1_fraction`` of the flows are marked as belonging to the
    throttled service.
    """

    def __init__(
        self,
        sim,
        rng,
        links,
        n_longlived=2,
        longlived_rate_bps=1.5e6,
        short_flow_rate=1.0,
        short_flow_min_bytes=30_000,
        dscp1_fraction=0.5,
        rtt_range=(0.02, 0.08),
        start_at=0.0,
        stop_at=None,
        flow_prefix="bg-tcp",
    ):
        self.sim = sim
        self.rng = rng
        self.links = list(links)
        self.longlived_rate_bps = longlived_rate_bps
        self.short_flow_rate = short_flow_rate
        self.short_flow_min_bytes = short_flow_min_bytes
        self.dscp1_fraction = dscp1_fraction
        self.rtt_range = rtt_range
        self.stop_at = stop_at
        self.flow_prefix = flow_prefix
        self.senders = []
        self._counter = 0

        for _ in range(n_longlived):
            self._spawn(
                total_bytes=None,
                start_at=start_at,
                stop_at=stop_at,
                app_source=SteadyAppSource(longlived_rate_bps, start_at),
            )
        if short_flow_rate > 0:
            sim.schedule_at(
                start_at + rng.exponential(1.0 / short_flow_rate), self._spawn_short
            )

    def _spawn_short(self):
        if self.stop_at is not None and self.sim.now >= self.stop_at:
            return
        # Pareto(shape=1.2): heavy-tailed flow sizes as in CAIDA traffic.
        size = int(self.short_flow_min_bytes * (1.0 + self.rng.pareto(1.2)))
        self._spawn(total_bytes=size, start_at=self.sim.now, stop_at=self.stop_at)
        self.sim.schedule(
            self.rng.exponential(1.0 / self.short_flow_rate), self._spawn_short
        )

    def _spawn(self, total_bytes, start_at, stop_at, app_source=None):
        self._counter += 1
        flow_id = f"{self.flow_prefix}-{self._counter}"
        dscp = 1 if self.rng.random() < self.dscp1_fraction else 0
        receiver = TcpReceiver(self.sim, flow_id)
        path = Path(self.links, receiver)
        rtt = self.rng.uniform(*self.rtt_range)
        reverse = DirectPath(self.sim, rtt / 2.0, _SenderProxy())
        sender = TcpSender(
            self.sim,
            flow_id,
            path,
            receiver,
            reverse,
            dscp=dscp,
            pacing=False,
            total_bytes=total_bytes,
            start_at=max(start_at, self.sim.now),
            stop_at=stop_at,
            app_source=app_source,
        )
        reverse.sink.sender = sender
        self.senders.append(sender)


class _SenderProxy:
    """Late-bound sink so the reverse path can be built before the sender."""

    def __init__(self):
        self.sender = None

    def receive(self, packet):
        if self.sender is not None:
            self.sender.receive(packet)
