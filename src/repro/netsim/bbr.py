"""A BBR-like sender (the Section-7 open question).

The paper evaluates WeHeY on TCP Cubic and leaves BBR open: "On the
one hand, BBR uses pacing like our approach.  On the other hand, BBR
adjusts its sending rate such that loss should occur only during the
probe-bandwidth phase."  ``BbrSender`` is a compact model of BBRv1's
behaviour sufficient to study that question in the harness:

- model-based rates: pacing at ``gain x btl_bw`` with a windowed-max
  bottleneck-bandwidth estimate and a windowed-min RTT estimate;
- phases: STARTUP (2.89x gain until the bandwidth estimate plateaus),
  DRAIN, then the 8-phase PROBE_BW gain cycle
  (1.25, 0.75, 1, 1, 1, 1, 1, 1);
- loss does *not* collapse the window -- retransmissions still happen
  (so server-side loss measurement works), but the sending rate is
  governed by the model, exactly the property that changes WeHeY's
  loss-pattern landscape.

The benchmark ``benchmarks/test_ablations.py`` compares Algorithm 1's
behaviour under Cubic and BBR replays.
"""

from collections import deque

from repro.netsim.tcp import MSS, TcpSender

STARTUP_GAIN = 2.89
DRAIN_GAIN = 1.0 / 2.89
PROBE_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
BW_WINDOW_RTTS = 10


class BbrSender(TcpSender):
    """TCP sender with BBR-style model-based rate control."""

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("pacing", True)
        kwargs["cc"] = "cubic"  # base-class bookkeeping only; unused
        super().__init__(*args, **kwargs)
        self._bw_samples = deque()  # (time, bytes/s)
        self._btl_bw = 0.0
        self._delivered = 0
        self._last_sample_time = None
        self._last_sample_delivered = 0
        self._phase = "startup"
        self._probe_index = 0
        self._phase_started = 0.0
        self._full_bw = 0.0
        self._full_bw_count = 0

    # -- rate model ----------------------------------------------------

    def _gain(self):
        if self._phase == "startup":
            return STARTUP_GAIN
        if self._phase == "drain":
            return DRAIN_GAIN
        return PROBE_GAINS[self._probe_index]

    def _pacing_interval(self):
        if self._btl_bw <= 0:
            return super()._pacing_interval()
        rate_bps = self._gain() * self._btl_bw * 8.0
        return (MSS + 52) * 8.0 / max(rate_bps, 1e3)

    def _bdp_packets(self):
        if self._btl_bw <= 0 or self.min_rtt is None:
            return 10.0
        return max(self._btl_bw * self.min_rtt / MSS, 4.0)

    # -- ACK processing hooks -------------------------------------------

    def _on_ack(self, packet):
        before = self.snd_una
        super()._on_ack(packet)
        newly = self.snd_una - before
        if newly > 0:
            self._delivered += newly
            self._sample_bandwidth()
            self._advance_phase()
            # cwnd is the model's: 2 x BDP, never loss-collapsed.
            self.cwnd = 2.0 * self._bdp_packets()

    def _sample_bandwidth(self):
        now = self.sim.now
        rtt = self.srtt or 0.05
        if self._last_sample_time is None:
            self._last_sample_time = now
            self._last_sample_delivered = self._delivered
            return
        elapsed = now - self._last_sample_time
        if elapsed < rtt:
            return
        if elapsed > 3.0 * rtt:
            # The sender idled (app/window-limited); a rate computed
            # across the gap would poison the max filter downward.
            self._last_sample_time = now
            self._last_sample_delivered = self._delivered
            return
        sample = (self._delivered - self._last_sample_delivered) / elapsed
        self._last_sample_time = now
        self._last_sample_delivered = self._delivered
        if self._btl_bw > 0:
            # Post-recovery cumulative-ACK jumps deliver "old" data all
            # at once; cap the sample so they cannot spike the filter.
            sample = min(sample, 3.0 * self._btl_bw)
        self._bw_samples.append((now, sample))
        horizon = now - BW_WINDOW_RTTS * rtt
        while self._bw_samples and self._bw_samples[0][0] < horizon:
            self._bw_samples.popleft()
        window_max = max(s for _, s in self._bw_samples)
        self._max_ever = max(getattr(self, "_max_ever", 0.0), window_max)
        # Loss-recovery stalls can empty the sample window and spiral
        # the model's rate to zero; a floor relative to the historical
        # maximum keeps the model sane (simplification vs. real BBR,
        # which re-probes its way out).
        self._btl_bw = max(window_max, 0.25 * self._max_ever)

    def _advance_phase(self):
        now = self.sim.now
        rtt = self.srtt or 0.05
        if self._phase == "startup":
            # Plateau detection: bandwidth grew <25% for 3 consecutive
            # samples (and only once the estimator has real samples).
            if len(self._bw_samples) < 5:
                return
            if self._btl_bw > self._full_bw * 1.25:
                self._full_bw = self._btl_bw
                self._full_bw_count = 0
            else:
                self._full_bw_count += 1
                if self._full_bw_count >= 3:
                    self._phase = "drain"
                    self._phase_started = now
        elif self._phase == "drain":
            if now - self._phase_started >= rtt:
                self._phase = "probe"
                self._probe_index = 2
                self._phase_started = now
        else:
            if now - self._phase_started >= rtt:
                self._probe_index = (self._probe_index + 1) % len(PROBE_GAINS)
                self._phase_started = now

    # -- loss response ---------------------------------------------------

    def _fast_retransmit(self):
        """Retransmit, but do not collapse the window (BBR ignores loss)."""
        self.in_recovery = True
        self.recover = self.snd_nxt
        self._retransmitted.clear()
        self._queue_retransmit(self.snd_una, "fast")
        self._kick_sending()

    def _on_rto(self):
        # Keep the go-back-N machinery but restore the model window
        # right after; BBR does not crash to cwnd = 1 on loss.
        super()._on_rto()
        self.cwnd = max(2.0 * self._bdp_packets(), 4.0)
