"""Measurement capture.

``FlowCapture`` is the client-side tap: it records per-arrival
timestamps and bytes, from which the harness derives the 100-interval
throughput samples WeHe compares (Section 2.1) and the X / Y sets of the
throughput-comparison algorithm (Section 4.1).

``PathMeasurements`` is what the common-bottleneck detectors consume:
per-path transmission timestamps plus loss-event timestamps (server-side
retransmissions for TCP, client-side gaps for UDP), convertible into the
per-interval (lost, transmitted) time series of Algorithm 1.
"""

import numpy as np


class FlowCapture:
    """Per-flow arrival log with throughput binning helpers."""

    def __init__(self):
        self.times = []
        self.bytes = []
        self.mark_times = []  # arrivals carrying an ECN congestion mark

    def on_arrival(self, now, nbytes, marked=False):
        self.times.append(now)
        self.bytes.append(nbytes)
        if marked:
            self.mark_times.append(now)

    @property
    def total_bytes(self):
        return float(sum(self.bytes))

    @property
    def marks(self):
        """Number of ECN-marked arrivals seen so far."""
        return len(self.mark_times)

    def mark_fraction(self):
        """Fraction of arrivals carrying an ECN mark (0.0 when empty)."""
        if not self.times:
            return 0.0
        return len(self.mark_times) / len(self.times)

    def duration(self):
        if not self.times:
            return 0.0
        return self.times[-1] - self.times[0]

    def throughput_samples(self, n_intervals=100, t_start=None, t_end=None):
        """Per-interval throughput in bits/s, WeHe-style (100 intervals).

        Empty captures return an empty array.  ``t_start``/``t_end``
        default to the first/last arrival.
        """
        if not self.times:
            return np.array([])
        times = np.asarray(self.times)
        nbytes = np.asarray(self.bytes, dtype=float)
        lo = times[0] if t_start is None else t_start
        hi = times[-1] if t_end is None else t_end
        if hi <= lo:
            return np.array([])
        edges = np.linspace(lo, hi, n_intervals + 1)
        sums, _ = np.histogram(times, bins=edges, weights=nbytes)
        width = edges[1] - edges[0]
        return sums * 8.0 / width

    def mean_throughput(self):
        """Average throughput in bits/s over the capture's span."""
        span = self.duration()
        if span <= 0:
            return 0.0
        return self.total_bytes * 8.0 / span


class PathMeasurements:
    """Loss/transmission logs for one path of a simultaneous replay.

    Attributes:
        send_times: timestamps of every transmitted packet.
        loss_times: timestamps at which loss events were *registered*
            (server-side retransmission detections for TCP; expected
            arrival times of missing datagrams for UDP).
        rtt: representative round-trip time, used by Algorithm 1 to set
            its interval-size sweep.
    """

    def __init__(self, send_times, loss_times, rtt):
        self.send_times = np.asarray(sorted(send_times), dtype=float)
        self.loss_times = np.asarray(sorted(loss_times), dtype=float)
        if rtt <= 0:
            raise ValueError("rtt must be positive")
        self.rtt = rtt

    @property
    def packets_sent(self):
        return len(self.send_times)

    @property
    def packets_lost(self):
        return len(self.loss_times)

    @property
    def loss_rate(self):
        if self.packets_sent == 0:
            return 0.0
        return self.packets_lost / self.packets_sent

    def time_span(self):
        times = []
        if len(self.send_times):
            times.extend((self.send_times[0], self.send_times[-1]))
        if len(self.loss_times):
            times.extend((self.loss_times[0], self.loss_times[-1]))
        if not times:
            return 0.0, 0.0
        return min(times), max(times)


def binned_loss_series(measurements_1, measurements_2, interval, min_packets=10):
    """Create the paired loss-rate time series of Algorithm 1, line 4.

    Divides the common time span into intervals of ``interval`` seconds,
    counts transmitted and lost packets per interval and per path, then
    discards intervals where either path transmitted fewer than
    ``min_packets`` packets or where neither path lost anything.

    Returns ``(loss_rate_1, loss_rate_2)`` as numpy arrays (possibly
    empty).
    """
    lo1, hi1 = measurements_1.time_span()
    lo2, hi2 = measurements_2.time_span()
    lo, hi = min(lo1, lo2), max(hi1, hi2)
    if hi - lo < interval:
        return np.array([]), np.array([])
    n_bins = int((hi - lo) / interval)
    edges = lo + np.arange(n_bins + 1) * interval

    txed1, _ = np.histogram(measurements_1.send_times, bins=edges)
    txed2, _ = np.histogram(measurements_2.send_times, bins=edges)
    lost1, _ = np.histogram(measurements_1.loss_times, bins=edges)
    lost2, _ = np.histogram(measurements_2.loss_times, bins=edges)

    keep = (
        (txed1 >= min_packets)
        & (txed2 >= min_packets)
        & ((lost1 > 0) | (lost2 > 0))
    )
    if not np.any(keep):
        return np.array([]), np.array([])
    rate1 = lost1[keep] / txed1[keep]
    rate2 = lost2[keep] / txed2[keep]
    return rate1, rate2
