"""Discrete-event simulation engine.

A minimal, fast event loop: events are ``(time, sequence, handle,
callback, args)`` entries on a binary heap.  The sequence number breaks
ties deterministically, so two runs with the same seed and the same
schedule order produce identical results.

Scheduling is split into two tiers so the hot path stays allocation-free:

- :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` are
  fire-and-forget.  They push a heap entry whose handle slot is ``None``
  and return nothing -- the overwhelming majority of events (every
  packet transmission, propagation, background arrival) never needs to
  be cancelled, so they never pay for an :class:`EventHandle`.
- :meth:`Simulator.schedule_cancellable` /
  :meth:`Simulator.schedule_at_cancellable` allocate a real handle and
  return it.  Only timer-like callers (TCP RTO/pacing timers, link
  wake-ups) use these.
"""

import heapq

from repro.obs import metrics as _obs

# Bound once at module level: the schedule methods are the hottest
# non-loop call sites in the engine, and LOAD_GLOBAL(heapq) +
# LOAD_ATTR(heappush) per event is measurable at millions of events.
_heappush = heapq.heappush


class EventHandle:
    """Handle returned by the ``*_cancellable`` scheduling methods."""

    __slots__ = ("cancelled", "_sim")

    def __init__(self, sim):
        self.cancelled = False
        self._sim = sim

    def cancel(self):
        """Mark the event so the engine skips it when it is popped."""
        if not self.cancelled:
            self.cancelled = True
            self._sim._n_cancelled += 1


class Simulator:
    """A discrete-event simulator with a monotonically advancing clock.

    Time is in seconds (float).  Callbacks run exactly once, at the
    simulated time they were scheduled for, in schedule order for ties.
    """

    __slots__ = (
        "_now",
        "_heap",
        "_counter",
        "_running",
        "_n_cancelled",
        "events_processed",
    )

    def __init__(self):
        self._now = 0.0
        self._heap = []
        # Tie-break sequence: a plain int beats itertools.count() here
        # because the increment inlines into the schedule methods while
        # next() pays a call per event.  Ordering is unchanged.
        self._counter = 0
        self._running = False
        self._n_cancelled = 0
        #: Events executed by :meth:`run` over this simulator's lifetime
        #: (cancelled events are not counted).  ``repro.perf`` reads the
        #: module-level aggregate via :func:`events_processed_total`.
        self.events_processed = 0

    @property
    def now(self):
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay, callback, *args):
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Fire-and-forget: returns ``None``.  Use
        :meth:`schedule_cancellable` when the event may need cancelling.
        Negative delays are a programming error and raise ``ValueError``.
        """
        when = self._now + delay
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        seq = self._counter
        self._counter = seq + 1
        _heappush(self._heap, (when, seq, None, callback, args))

    def schedule_at(self, when, callback, *args):
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise ValueError(
                f"cannot schedule at {when}; current time is {self._now}"
            )
        seq = self._counter
        self._counter = seq + 1
        _heappush(self._heap, (when, seq, None, callback, args))

    def schedule_cancellable(self, delay, callback, *args):
        """Like :meth:`schedule`, but returns a cancellable handle."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at_cancellable(self._now + delay, callback, *args)

    def schedule_at_cancellable(self, when, callback, *args):
        """Like :meth:`schedule_at`, but returns a cancellable handle."""
        if when < self._now:
            raise ValueError(
                f"cannot schedule at {when}; current time is {self._now}"
            )
        handle = EventHandle(self)
        seq = self._counter
        self._counter = seq + 1
        _heappush(self._heap, (when, seq, handle, callback, args))
        return handle

    def run(self, until=None):
        """Run events until the heap is empty or the clock passes ``until``.

        When ``until`` is given, the clock is left exactly at ``until``
        even if the last event fired earlier, so repeated ``run`` calls
        compose predictably.
        """
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        while heap and self._running:
            entry = heap[0]
            when = entry[0]
            if until is not None and when > until:
                break
            pop(heap)
            handle = entry[2]
            if handle is not None and handle.cancelled:
                self._n_cancelled -= 1
                continue
            self._now = when
            entry[3](*entry[4])
            executed += 1
        if until is not None and self._now < until:
            self._now = until
        self._running = False
        self.events_processed += executed
        _STATS["events"] += executed
        # Once per run() call, not per event -- the loop above stays
        # instrumentation-free.
        if _obs.ENABLED:
            _obs.SINK.inc("netsim.engine.events", executed)
            _obs.SINK.inc("netsim.engine.runs")

    def stop(self):
        """Stop the event loop after the currently running callback."""
        self._running = False

    def pending(self):
        """Number of *live* events still queued.

        Cancelled events stay on the heap until popped, but a live
        counter subtracts them, so this reports real pending work.
        """
        return len(self._heap) - self._n_cancelled


#: Process-wide event counter; ``repro.perf`` reads it to derive
#: events/sec across simulators that live and die inside a workload.
_STATS = {"events": 0}


def events_processed_total():
    """Total events executed by every simulator in this process."""
    return _STATS["events"]
