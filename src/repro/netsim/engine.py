"""Discrete-event simulation engine.

A minimal, fast event loop: events are ``(time, sequence, callback)``
entries on a binary heap.  The sequence number breaks ties
deterministically, so two runs with the same seed and the same schedule
order produce identical results.
"""

import heapq
import itertools


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("cancelled",)

    def __init__(self):
        self.cancelled = False

    def cancel(self):
        """Mark the event so the engine skips it when it is popped."""
        self.cancelled = True


class Simulator:
    """A discrete-event simulator with a monotonically advancing clock.

    Time is in seconds (float).  Callbacks run exactly once, at the
    simulated time they were scheduled for, in schedule order for ties.
    """

    def __init__(self):
        self._now = 0.0
        self._heap = []
        self._counter = itertools.count()
        self._running = False

    @property
    def now(self):
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay, callback, *args):
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns an :class:`EventHandle` that can be cancelled.  Negative
        delays are a programming error and raise ``ValueError``.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, when, callback, *args):
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise ValueError(
                f"cannot schedule at {when}; current time is {self._now}"
            )
        handle = EventHandle()
        heapq.heappush(self._heap, (when, next(self._counter), handle, callback, args))
        return handle

    def run(self, until=None):
        """Run events until the heap is empty or the clock passes ``until``.

        When ``until`` is given, the clock is left exactly at ``until``
        even if the last event fired earlier, so repeated ``run`` calls
        compose predictably.
        """
        self._running = True
        heap = self._heap
        while heap and self._running:
            when, _seq, handle, callback, args = heap[0]
            if until is not None and when > until:
                break
            heapq.heappop(heap)
            if handle.cancelled:
                continue
            self._now = when
            callback(*args)
        if until is not None and self._now < until:
            self._now = until
        self._running = False

    def stop(self):
        """Stop the event loop after the currently running callback."""
        self._running = False

    def pending(self):
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)
