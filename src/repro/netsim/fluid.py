"""Hybrid fluid/mean-rate background model (``fidelity="hybrid"``).

Full-DES experiments spend the overwhelming majority of their event
budget on *background* packets, while only the background's aggregate
rate trajectory matters to the detection and localization verdicts: the
loss-trend signal Algorithm 1 correlates is driven by seconds-scale
fluctuations of the background rate, not by individual cross-traffic
packets.  This module replaces the per-packet background generators
with piecewise-constant *fluid* rate processes sampled from the same
seeded AR(1) + Pareto draw machinery, so rate trajectories stay
deterministic per seed while the event count collapses to a handful of
rate-change ticks per second.

Only foreground replay packets (and their ACKs) remain exact DES
events.  Background load shows up as a **virtual load term** inside the
queueing disciplines:

- :class:`FluidDropTailQueue` -- a drop-tail FIFO whose serialization
  capacity is shared with a fluid background aggregate.  Virtual
  backlog ``V`` evolves in closed form between foreground events; a
  foreground packet is dropped when real + virtual occupancy exceeds
  the capacity, and the head-of-line packet waits until the virtual
  bytes *ahead of it* (FIFO order, tracked by per-packet arrival marks)
  have been served.
- :class:`FluidTokenBucketFilter` -- a token bucket whose tokens are
  continuously depleted by the marked (dscp=1) fluid share.  Token
  depletion, virtual queue occupancy and the head-of-line wake time are
  computed from the fluid rate between foreground events instead of
  from simulated background packets.
- :class:`FluidDualClassQdisc` / :class:`FluidPerFlowQdisc` -- the
  classful devices of Appendix C.1 and Section 7 assembled from the two
  fluid parts.

Fluid state advances lazily: every foreground interaction and every
source rate-change tick calls ``_advance(now)``, which integrates the
piecewise-constant arrival and service processes in closed form.  The
integration applies each window's arrivals and service as bulk
quantities, so ordering error within a window is bounded by the window
length -- at most the finest modulation period (0.2 s by default).

Approximations (validated by the verdict-invariance gate in
``repro.perf`` and CI's fidelity-gate job):

- the per-packet Bernoulli dscp marking becomes a deterministic
  mean-rate split of the aggregate;
- multi-hop propagation clips a source's rate at each upstream link's
  bandwidth instead of modelling per-hop queueing of background by
  background;
- background TCP flows do not back off under loss -- their offered
  fluid rate is app-paced (long-lived) or a slow-start-aware pulse
  (short flows), and the excess is absorbed as virtual drops, exactly
  like the UDP aggregate.

Byte conservation is exact by construction:
``bytes_offered == bytes_served + bytes_dropped + virtual_backlog``
for every fluid queue, and ``tests/netsim/test_fluid.py`` plus the
``netsim.fluid.*`` observability counters double-book it.
"""

import math
from collections import deque

import numpy as np

from repro.netsim.background import (
    DEFAULT_MODULATION,
    PACKET_SIZE_MIX,
    _Ar1Component,
)
from repro.netsim.qdisc import Qdisc, register, standard_sizing
from repro.netsim.queues import DropTailQueue
from repro.netsim.token_bucket import DualClassQdisc, _dscp_classifier
from repro.obs import metrics as _obs

#: Wire bytes per payload byte for background TCP (MSS 1448 + 52 header).
TCP_WIRE_OVERHEAD = (1448.0 + 52.0) / 1448.0

#: Peak effective rate of one short background TCP flow (bits/s): the
#: approximate fair share such a flow reaches on the paper's topologies
#: before it completes.
SHORT_FLOW_PEAK_BPS = 3e6

#: Pure-TCP segment payload used by the short-flow slow-start estimate.
_SHORT_FLOW_MSS = 1448.0

#: Tolerance (bytes) below which a virtual backlog counts as drained.
_EPS_BYTES = 1e-6

#: Guard added to computed wake times so float rounding cannot livelock
#: a link retry loop (same convention as TokenBucketFilter.dequeue).
_WAKE_GUARD = 1e-9


class FluidDropTailQueue(DropTailQueue):
    """A drop-tail FIFO sharing its serialization capacity with fluid.

    The queue belongs to a link serving ``service_bps``; the link's
    constructor wires that rate in through :meth:`set_service_rate`.
    Real (foreground) packets and the virtual background interleave in
    FIFO order: each real packet is stamped with the cumulative admitted
    background byte count at its arrival, and it may only be transmitted
    once the background bytes ahead of it have drained.
    """

    __slots__ = (
        "service_bps",
        "_fluid_rates",
        "_fluid_rate_Bps",
        "_last_fluid",
        "_v",
        "_marks",
        "_bg_pos",
        "bg_bytes_offered",
        "bg_bytes_served",
        "bg_bytes_dropped",
        "_real_out",
        "_real_out_mark",
        "fluid_deferrals",
    )

    def __init__(self, capacity_bytes=200_000, service_bps=None):
        super().__init__(capacity_bytes)
        self.service_bps = service_bps
        self._fluid_rates = {}  # source -> bits/s entering this queue
        self._fluid_rate_Bps = 0.0  # aggregate, bytes/s
        self._last_fluid = 0.0
        self._v = 0.0  # virtual background backlog (bytes)
        self._marks = deque()  # admitted-bg position per queued packet
        self._bg_pos = 0.0  # cumulative admitted background bytes
        self.bg_bytes_offered = 0.0
        self.bg_bytes_served = 0.0
        self.bg_bytes_dropped = 0.0
        self._real_out = 0.0  # cumulative real bytes dequeued
        self._real_out_mark = 0.0
        self.fluid_deferrals = 0

    # -- fluid plumbing ----------------------------------------------

    def set_service_rate(self, bps):
        """Called by the owning link: the serialization rate fluid shares."""
        self.service_bps = bps

    def set_source_rate(self, now, source, marked_bps, unmarked_bps, n_flows=1):
        """Update one source's piecewise-constant rate through this queue.

        A neutral link does not classify, so marked and unmarked shares
        are folded into one aggregate.
        """
        self._advance(now)
        rate = marked_bps + unmarked_bps
        previous = self._fluid_rates.get(source, 0.0)
        if rate != previous:
            self._fluid_rates[source] = rate
            self._fluid_rate_Bps += (rate - previous) / 8.0
            if self._fluid_rate_Bps < 0.0:
                self._fluid_rate_Bps = 0.0

    @property
    def virtual_backlog_bytes(self):
        return self._v

    def fluid_stats(self):
        """Byte-conservation snapshot (offered == served + dropped + V)."""
        return {
            "bg_bytes_offered": self.bg_bytes_offered,
            "bg_bytes_served": self.bg_bytes_served,
            "bg_bytes_dropped": self.bg_bytes_dropped,
            "virtual_backlog_bytes": self._v,
            "fluid_deferrals": self.fluid_deferrals,
        }

    def _advance(self, now):
        """Integrate the fluid between the last interaction and ``now``.

        Service capacity unused by real transmissions drains background
        in FIFO order: only the virtual bytes *ahead of the real head*
        (or the whole backlog when no real packet is queued) may be
        served.  Arrivals behind a queued real packet never starve it.
        """
        dt = now - self._last_fluid
        if dt <= 0.0:
            return
        self._last_fluid = now
        arrivals = self._fluid_rate_Bps * dt
        if arrivals == 0.0 and self._v <= _EPS_BYTES:
            self._real_out_mark = self._real_out
            return
        real_out = self._real_out - self._real_out_mark
        self._real_out_mark = self._real_out
        service = (self.service_bps / 8.0) * dt - real_out
        if service < 0.0:
            service = 0.0
        self.bg_bytes_offered += arrivals
        if self._queue:
            # Bytes ahead of the real head are servable; new arrivals
            # queue behind every real packet already present.
            servable = self._marks[0] - (self._bg_pos - self._v)
            if servable > self._v:
                servable = self._v
            served = servable if servable < service else service
            if served > 0.0:
                self._v -= served
                self.bg_bytes_served += served
            headroom = self.capacity_bytes - self._bytes - self._v
            admitted = arrivals if arrivals < headroom else max(headroom, 0.0)
            self._v += admitted
            self._bg_pos += admitted
            dropped = arrivals - admitted
        else:
            served = self._v if self._v < service else service
            if served > 0.0:
                self._v -= served
                self.bg_bytes_served += served
                service -= served
            direct = arrivals if arrivals < service else service
            remaining = arrivals - direct
            headroom = self.capacity_bytes - self._v
            admitted = remaining if remaining < headroom else max(headroom, 0.0)
            self._v += admitted
            self._bg_pos += direct + admitted
            self.bg_bytes_served += direct
            dropped = remaining - admitted
        if dropped > 0.0:
            self.bg_bytes_dropped += dropped
            if _obs.ENABLED:
                _obs.SINK.inc("netsim.fluid.virtual_drop_bytes", dropped)

    # -- queue interface ---------------------------------------------

    def enqueue(self, packet, now):
        self._advance(now)
        if self._bytes + self._v + packet.size > self.capacity_bytes:
            self.drops += 1
            self.drops_bytes += packet.size
            if _obs.ENABLED:
                _obs.SINK.inc("netsim.queue.drops")
                _obs.SINK.observe(
                    "netsim.queue.occupancy_at_drop_bytes", self._bytes + self._v
                )
            return False
        packet.enqueued_at = now
        self._queue.append(packet)
        self._marks.append(self._bg_pos)
        self._bytes += packet.size
        self.enqueued += 1
        return True

    def dequeue(self, now):
        self._advance(now)
        if not self._queue:
            return None, None
        ahead = self._marks[0] - (self._bg_pos - self._v)
        if ahead > _EPS_BYTES:
            # The head must wait for the background ahead of it; later
            # background arrivals land behind it, so the wake is exact.
            self.fluid_deferrals += 1
            if _obs.ENABLED:
                _obs.SINK.inc("netsim.fluid.deferrals")
            return None, now + ahead * 8.0 / self.service_bps + _WAKE_GUARD
        self._marks.popleft()
        packet = self._queue.popleft()
        self._bytes -= packet.size
        self.delay_sum += now - packet.enqueued_at
        self.delay_samples += 1
        self._real_out += packet.size
        return packet, None


class FluidTokenBucketFilter(Qdisc):
    """A token bucket whose tokens are also depleted by a fluid share.

    Mirrors :class:`~repro.netsim.token_bucket.TokenBucketFilter`'s
    interface and accounting exactly (drops/enqueued/mean_delay/
    backlog_bytes, the ``netsim.tbf.*`` counters), but the marked
    background arrives as a rate process instead of packets: between
    foreground events, generated tokens first serve the virtual backlog
    in FIFO order, and foreground drop/wake decisions are computed from
    the combined real + virtual occupancy.
    """

    __slots__ = (
        "rate_bps",
        "burst_bytes",
        "limit_bytes",
        "_queue",
        "_tokens",
        "_last_update",
        "_fluid_rates",
        "_fluid_rate_Bps",
        "_v",
        "_marks",
        "_bg_pos",
        "bg_bytes_offered",
        "bg_bytes_served",
        "bg_bytes_dropped",
        "fluid_deferrals",
    )

    def __init__(self, rate_bps, burst_bytes, limit_bytes):
        if rate_bps <= 0:
            raise ValueError("TBF rate must be positive")
        if burst_bytes <= 0:
            raise ValueError("TBF burst must be positive")
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self.limit_bytes = max(limit_bytes, 1)
        self._queue = DropTailQueue(self.limit_bytes)
        self._tokens = float(burst_bytes)
        self._last_update = 0.0
        self._fluid_rates = {}
        self._fluid_rate_Bps = 0.0
        self._v = 0.0
        self._marks = deque()
        self._bg_pos = 0.0
        self.bg_bytes_offered = 0.0
        self.bg_bytes_served = 0.0
        self.bg_bytes_dropped = 0.0
        self.fluid_deferrals = 0

    def __len__(self):
        return len(self._queue)

    @property
    def drops(self):
        return self._queue.drops

    @property
    def drops_bytes(self):
        return self._queue.drops_bytes

    @property
    def enqueued(self):
        return self._queue.enqueued

    @property
    def mean_delay(self):
        return self._queue.mean_delay

    @property
    def backlog_bytes(self):
        return self._queue.backlog_bytes

    @property
    def virtual_backlog_bytes(self):
        return self._v

    def fluid_stats(self):
        return {
            "bg_bytes_offered": self.bg_bytes_offered,
            "bg_bytes_served": self.bg_bytes_served,
            "bg_bytes_dropped": self.bg_bytes_dropped,
            "virtual_backlog_bytes": self._v,
            "fluid_deferrals": self.fluid_deferrals,
        }

    def set_fluid_rate(self, now, source, bps):
        """Update one source's marked-share rate entering this bucket."""
        self._advance(now)
        previous = self._fluid_rates.get(source, 0.0)
        if bps != previous:
            self._fluid_rates[source] = bps
            self._fluid_rate_Bps += (bps - previous) / 8.0
            if self._fluid_rate_Bps < 0.0:
                self._fluid_rate_Bps = 0.0

    def tokens(self, now):
        """Tokens available at ``now`` after fluid depletion (bytes)."""
        self._advance(now)
        return self._tokens

    def _advance(self, now):
        dt = now - self._last_update
        if dt <= 0.0:
            return
        self._last_update = now
        generated = (self.rate_bps / 8.0) * dt
        arrivals = self._fluid_rate_Bps * dt
        if arrivals == 0.0 and self._v <= _EPS_BYTES:
            tokens = self._tokens + generated
            self._tokens = tokens if tokens < self.burst_bytes else float(
                self.burst_bytes
            )
            return
        # Token pool for this window: banked tokens plus everything
        # generated during it.  Backlogged background consumes tokens
        # the instant they appear, so the burst cap only applies to
        # whatever is left at the end of the window.
        pool = self._tokens + generated
        real_bytes = self._queue.backlog_bytes
        self.bg_bytes_offered += arrivals
        if self._queue._queue:
            servable = self._marks[0] - (self._bg_pos - self._v)
            if servable > self._v:
                servable = self._v
            served = servable if servable < pool else pool
            if served > 0.0:
                self._v -= served
                self.bg_bytes_served += served
                pool -= served
            headroom = self.limit_bytes - real_bytes - self._v
            admitted = arrivals if arrivals < headroom else max(headroom, 0.0)
            self._v += admitted
            self._bg_pos += admitted
            dropped = arrivals - admitted
        else:
            served = self._v if self._v < pool else pool
            if served > 0.0:
                self._v -= served
                self.bg_bytes_served += served
                pool -= served
            direct = arrivals if arrivals < pool else pool
            remaining = arrivals - direct
            headroom = self.limit_bytes - self._v
            admitted = remaining if remaining < headroom else max(headroom, 0.0)
            self._v += admitted
            self._bg_pos += direct + admitted
            self.bg_bytes_served += direct
            pool -= direct
            dropped = remaining - admitted
        if dropped > 0.0:
            self.bg_bytes_dropped += dropped
            if _obs.ENABLED:
                _obs.SINK.inc("netsim.fluid.virtual_drop_bytes", dropped)
        self._tokens = pool if pool < self.burst_bytes else float(self.burst_bytes)

    def enqueue(self, packet, now):
        self._advance(now)
        if (
            self._queue.backlog_bytes + self._v + packet.size
            > self.limit_bytes
        ):
            # Count through the inner queue so the ``drops`` property
            # and the harvested ``netsim.tbf.drops_total`` stay one
            # accounting path, exactly as in the packet-mode TBF.
            self._queue.drops += 1
            self._queue.drops_bytes += packet.size
            if _obs.ENABLED:
                _obs.SINK.inc("netsim.queue.drops")
                _obs.SINK.observe(
                    "netsim.queue.occupancy_at_drop_bytes",
                    self._queue.backlog_bytes + self._v,
                )
                _obs.SINK.inc("netsim.tbf.drops")
            return False
        accepted = self._queue.enqueue(packet, now)
        if accepted:
            self._marks.append(self._bg_pos)
        return accepted

    def dequeue(self, now):
        self._advance(now)
        head = self._queue.peek()
        if head is None:
            return None, None
        size = head.size
        ahead = self._marks[0] - (self._bg_pos - self._v)
        if ahead < 0.0:
            ahead = 0.0
        tokens = self._tokens
        if ahead <= _EPS_BYTES and tokens + 1e-9 >= size:
            self._tokens = tokens - size if tokens > size else 0.0
            self._marks.popleft()
            return self._queue.dequeue(now)
        self.fluid_deferrals += 1
        if _obs.ENABLED:
            _obs.SINK.inc("netsim.tbf.deferrals")
            _obs.SINK.inc("netsim.fluid.deferrals")
            _obs.SINK.observe("netsim.tbf.token_debt_bytes", ahead + size - tokens)
            _obs.SINK.observe(
                "netsim.tbf.occupancy_at_deferral_bytes",
                self._queue.backlog_bytes + self._v,
            )
        # The head waits for the background ahead of it plus its own
        # tokens; later background arrivals queue behind it, so the
        # wake never recedes.
        need = ahead + size - tokens
        return None, now + need * 8.0 / self.rate_bps + _WAKE_GUARD


class FluidDualClassQdisc(DualClassQdisc):
    """Classifier + fluid FIFO + fluid TBF + round-robin scheduler.

    The marked fluid share competes inside the token bucket; the
    unmarked share competes for the FIFO class's serialization.  The
    round-robin scheduler itself is unchanged -- both classes already
    speak the ``(packet | None, wake | None)`` dequeue protocol.
    """

    __slots__ = ()

    def set_service_rate(self, bps):
        self.fifo.set_service_rate(bps)

    def set_source_rate(self, now, source, marked_bps, unmarked_bps, n_flows=1):
        self.tbf.set_fluid_rate(now, source, marked_bps)
        self.fifo.set_source_rate(now, source, 0.0, unmarked_bps)

    def fluid_stats(self):
        return _merge_stats(self.tbf.fluid_stats(), self.fifo.fluid_stats())


class FluidDualTokenBucketFilter(FluidTokenBucketFilter):
    """Fluid twin of :class:`~repro.netsim.shapers.DualTokenBucketFilter`.

    A second (peak-rate) bucket gates both the foreground packets and
    the fluid background: the window's service pool exposed to the base
    integration is the *minimum* of the committed and peak pools, and
    both buckets are settled from the bytes actually served.
    """

    __slots__ = ("peak_rate_bps", "peak_burst_bytes", "_peak_tokens", "peak_deferrals")

    def __init__(self, rate_bps, burst_bytes, limit_bytes, peak_rate_bps, peak_burst_bytes):
        super().__init__(rate_bps, burst_bytes, limit_bytes)
        if peak_rate_bps <= rate_bps:
            raise ValueError("peak rate must exceed the committed rate")
        if peak_burst_bytes <= 0:
            raise ValueError("peak burst must be positive")
        self.peak_rate_bps = peak_rate_bps
        self.peak_burst_bytes = peak_burst_bytes
        self._peak_tokens = float(peak_burst_bytes)
        self.peak_deferrals = 0

    def shaper_stats(self):
        return {"tbf.peak_deferrals_total": self.peak_deferrals}

    def _advance(self, now):
        dt = now - self._last_update
        if dt <= 0.0:
            return
        pool_c = self._tokens + (self.rate_bps / 8.0) * dt
        pool_p = self._peak_tokens + (self.peak_rate_bps / 8.0) * dt
        served_before = self.bg_bytes_served
        # Expose min(committed, peak) to the base integration by
        # pre-debiting the committed bucket; the base then recomputes
        # its pool as exactly that minimum.
        if pool_p < pool_c:
            self._tokens -= pool_c - pool_p
        super()._advance(now)
        used = self.bg_bytes_served - served_before
        cap_c = float(self.burst_bytes)
        cap_p = float(self.peak_burst_bytes)
        left_c = pool_c - used
        left_p = pool_p - used
        self._tokens = left_c if left_c < cap_c else cap_c
        self._peak_tokens = left_p if left_p < cap_p else cap_p

    def dequeue(self, now):
        self._advance(now)
        head = self._queue.peek()
        if head is None:
            return None, None
        size = head.size
        ahead = self._marks[0] - (self._bg_pos - self._v)
        if ahead < 0.0:
            ahead = 0.0
        tokens = self._tokens
        peak = self._peak_tokens
        if ahead <= _EPS_BYTES and tokens + 1e-9 >= size and peak + 1e-9 >= size:
            self._tokens = tokens - size if tokens > size else 0.0
            self._peak_tokens = peak - size if peak > size else 0.0
            self._marks.popleft()
            return self._queue.dequeue(now)
        self.fluid_deferrals += 1
        if peak + 1e-9 < size:
            self.peak_deferrals += 1
            if _obs.ENABLED:
                _obs.SINK.inc("netsim.tbf.peak_deferrals")
        if _obs.ENABLED:
            _obs.SINK.inc("netsim.tbf.deferrals")
            _obs.SINK.inc("netsim.fluid.deferrals")
            _obs.SINK.observe(
                "netsim.tbf.token_debt_bytes",
                max(ahead + size - tokens, size - peak, 0.0),
            )
            _obs.SINK.observe(
                "netsim.tbf.occupancy_at_deferral_bytes",
                self._queue.backlog_bytes + self._v,
            )
        need_c = ahead + size - tokens
        wait_c = need_c * 8.0 / self.rate_bps if need_c > 0.0 else 0.0
        need_p = ahead + size - peak
        wait_p = need_p * 8.0 / self.peak_rate_bps if need_p > 0.0 else 0.0
        return None, now + max(wait_c, wait_p) + _WAKE_GUARD


class FluidConditionalTokenBucket(FluidTokenBucketFilter):
    """Fluid twin of :class:`~repro.netsim.shapers.ConditionalTokenBucket`.

    Pre-trigger, the class is unthrottled: fluid background drains
    completely each window (link serialization is the outer FIFO's job)
    and real packets pass straight through; marked bytes -- fluid and
    packet alike -- count toward the byte trigger.  On tripping, the
    bucket starts full and the base fluid TBF takes over.
    """

    __slots__ = (
        "trigger_bytes",
        "trigger_after_s",
        "seen_bytes",
        "tripped",
        "tripped_at",
    )

    def __init__(
        self,
        rate_bps,
        burst_bytes,
        limit_bytes,
        trigger_bytes=None,
        trigger_after_s=None,
    ):
        super().__init__(rate_bps, burst_bytes, limit_bytes)
        if trigger_bytes is None and trigger_after_s is None:
            raise ValueError(
                "conditional shaper needs trigger_bytes and/or trigger_after_s"
            )
        self.trigger_bytes = trigger_bytes
        self.trigger_after_s = trigger_after_s
        self.seen_bytes = 0.0
        self.tripped = False
        self.tripped_at = None
        if trigger_bytes is not None and trigger_bytes <= 0:
            self._trip(0.0)

    def shaper_stats(self):
        return {
            "conditional.trips_total": 1 if self.tripped else 0,
            "conditional.trigger_seen_bytes": self.seen_bytes,
        }

    def _trip(self, now):
        self.tripped = True
        self.tripped_at = now
        self._tokens = float(self.burst_bytes)
        if _obs.ENABLED:
            _obs.SINK.inc("netsim.conditional.trips")

    def _advance(self, now):
        if not self.tripped:
            if self.trigger_after_s is not None and now >= self.trigger_after_s:
                self._trip(now)
        if self.tripped:
            super()._advance(now)
            return
        dt = now - self._last_update
        if dt <= 0.0:
            return
        self._last_update = now
        arrivals = self._fluid_rate_Bps * dt
        if arrivals > 0.0 or self._v > _EPS_BYTES:
            # Unthrottled: everything offered is served immediately.
            self.bg_bytes_offered += arrivals
            self.bg_bytes_served += self._v + arrivals
            self._bg_pos += arrivals
            self._v = 0.0
            self.seen_bytes += arrivals
            if (
                self.trigger_bytes is not None
                and self.seen_bytes >= self.trigger_bytes
            ):
                self._trip(now)

    def enqueue(self, packet, now):
        self._advance(now)
        if not self.tripped:
            self.seen_bytes += packet.size
            if self.trigger_bytes is not None and self.seen_bytes >= self.trigger_bytes:
                self._trip(now)
        return super().enqueue(packet, now)

    def dequeue(self, now):
        self._advance(now)
        if self.tripped:
            return super().dequeue(now)
        if self._queue.peek() is None:
            return None, None
        self._marks.popleft()
        return self._queue.dequeue(now)


class FluidPerFlowQdisc(Qdisc):
    """Per-flow limiter with a virtual background load term (Section 7).

    Marked background traverses its *own* per-flow buckets, never the
    foreground's, so its only effect on the foreground is link
    serialization of whatever the per-flow policers admit.  The
    admitted marked rate is ``min(rate, n_flows x per-flow rate)``
    (the UDP aggregate is a single flow id -- one bucket); the policed
    excess is booked as virtual drops.  Foreground packets still get
    real per-flow token buckets, exactly as in packet mode.
    """

    __slots__ = (
        "rate_bps",
        "burst_bytes",
        "limit_bytes",
        "flow_key",
        "fifo",
        "_flows",
        "_rr_order",
        "_rr_index",
        "_policed_rates",
        "_policed_rate_Bps",
        "_last_policed",
        "bg_bytes_policed",
    )

    def __init__(
        self,
        rate_bps,
        burst_bytes,
        limit_bytes,
        flow_key=None,
        fifo_capacity=500_000,
    ):
        if rate_bps <= 0:
            raise ValueError("per-flow rate must be positive")
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self.limit_bytes = limit_bytes
        self.flow_key = flow_key if flow_key is not None else _flow_id_key
        self.fifo = FluidDropTailQueue(fifo_capacity)
        self._flows = {}
        self._rr_order = []
        self._rr_index = 0
        self._policed_rates = {}
        self._policed_rate_Bps = 0.0
        self._last_policed = 0.0
        self.bg_bytes_policed = 0.0

    def __len__(self):
        return len(self.fifo) + sum(len(tbf) for tbf in self._flows.values())

    @property
    def drops(self):
        return self.fifo.drops + sum(tbf.drops for tbf in self._flows.values())

    @property
    def drops_bytes(self):
        return self.fifo.drops_bytes + sum(
            tbf.drops_bytes for tbf in self._flows.values()
        )

    @property
    def backlog_bytes(self):
        return self.fifo.backlog_bytes + sum(
            tbf.backlog_bytes for tbf in self._flows.values()
        )

    @property
    def n_flows(self):
        return len(self._flows)

    def set_service_rate(self, bps):
        self.fifo.set_service_rate(bps)

    def set_source_rate(self, now, source, marked_bps, unmarked_bps, n_flows=1):
        """Marked fluid is per-flow policed before it loads the link."""
        self._settle_policed(now)
        admitted = min(marked_bps, max(n_flows, 1) * self.rate_bps)
        policed = marked_bps - admitted
        previous = self._policed_rates.get(source, 0.0)
        if policed != previous:
            self._policed_rates[source] = policed
            self._policed_rate_Bps += (policed - previous) / 8.0
            if self._policed_rate_Bps < 0.0:
                self._policed_rate_Bps = 0.0
        self.fifo.set_source_rate(now, source, admitted, unmarked_bps)

    def _settle_policed(self, now):
        dt = now - self._last_policed
        if dt > 0.0:
            settled = self._policed_rate_Bps * dt
            self.bg_bytes_policed += settled
            self._last_policed = now
            if settled > 0.0 and _obs.ENABLED:
                # Policer drops are virtual drops too; keep the live
                # counter in lockstep with fluid_stats() bookkeeping.
                _obs.SINK.inc("netsim.fluid.virtual_drop_bytes", settled)

    def fluid_stats(self):
        self._settle_policed(self.fifo._last_fluid)
        stats = dict(self.fifo.fluid_stats())
        stats["bg_bytes_offered"] += self.bg_bytes_policed
        stats["bg_bytes_dropped"] += self.bg_bytes_policed
        return stats

    def _bucket_for(self, key):
        bucket = self._flows.get(key)
        if bucket is None:
            from repro.netsim.token_bucket import TokenBucketFilter

            bucket = TokenBucketFilter(
                self.rate_bps, self.burst_bytes, self.limit_bytes
            )
            self._flows[key] = bucket
            self._rr_order.append(key)
        return bucket

    def enqueue(self, packet, now):
        if packet.dscp != 1:
            return self.fifo.enqueue(packet, now)
        return self._bucket_for(self.flow_key(packet)).enqueue(packet, now)

    def dequeue(self, now):
        queues = [self.fifo] + [self._flows[k] for k in self._rr_order]
        n = len(queues)
        earliest_wake = None
        for offset in range(n):
            queue = queues[(self._rr_index + offset) % n]
            packet, wake = queue.dequeue(now)
            if packet is not None:
                self._rr_index = (self._rr_index + offset + 1) % n
                return packet, None
            if wake is not None and (earliest_wake is None or wake < earliest_wake):
                earliest_wake = wake
        return None, earliest_wake


def _flow_id_key(packet):
    return packet.flow_id


def _merge_stats(*parts):
    merged = {
        "bg_bytes_offered": 0.0,
        "bg_bytes_served": 0.0,
        "bg_bytes_dropped": 0.0,
        "virtual_backlog_bytes": 0.0,
        "fluid_deferrals": 0,
    }
    for part in parts:
        for key in merged:
            merged[key] += part[key]
    return merged


def _build_fluid_tbf_device(
    rate_bps, rtt_s=0.035, queue_factor=0.5, fifo_capacity=500_000
):
    """Fluid twin of the ``"tbf"`` device (same sizing rules)."""
    burst, limit = standard_sizing(rate_bps, rtt_s, queue_factor)
    tbf = FluidTokenBucketFilter(rate_bps, burst, limit)
    return FluidDualClassQdisc(
        tbf, FluidDropTailQueue(fifo_capacity), _dscp_classifier
    )


def _build_fluid_perflow_device(
    rate_bps,
    rtt_s=0.035,
    queue_factor=0.5,
    fifo_capacity=500_000,
    shaper="tbf",
    seed=0,
    **params,
):
    """Fluid twin of the ``"perflow"`` device (tbf buckets only)."""
    if shaper != "tbf" or params:
        from repro.netsim.qdisc import QdiscFidelityError

        raise QdiscFidelityError(
            "fluid per-flow supports only default tbf buckets; "
            f"shaper={shaper!r} has no fluid per-flow twin"
        )
    burst, limit = standard_sizing(rate_bps, rtt_s, queue_factor)
    return FluidPerFlowQdisc(rate_bps, burst, limit, fifo_capacity=fifo_capacity)


def _build_fluid_dual_tbf_device(
    rate_bps,
    rtt_s=0.035,
    queue_factor=0.5,
    fifo_capacity=500_000,
    peak_factor=2.0,
    boost_bytes=1_500_000,
):
    """Fluid twin of the ``"dual_tbf"`` device (same sizing as shapers.py)."""
    burst, limit = standard_sizing(rate_bps, rtt_s, queue_factor)
    peak_rate = peak_factor * rate_bps
    peak_burst = max(int(peak_rate * rtt_s / 8.0), 3000)
    cir_burst = max(int(boost_bytes), burst)
    tbf = FluidDualTokenBucketFilter(rate_bps, cir_burst, limit, peak_rate, peak_burst)
    return FluidDualClassQdisc(
        tbf, FluidDropTailQueue(fifo_capacity), _dscp_classifier
    )


def _build_fluid_conditional_device(
    rate_bps,
    rtt_s=0.035,
    queue_factor=0.5,
    fifo_capacity=500_000,
    trigger_bytes=4_000_000.0,
    trigger_after_s=None,
):
    """Fluid twin of the ``"conditional"`` device (same sizing as shapers.py)."""
    burst, limit = standard_sizing(rate_bps, rtt_s, queue_factor)
    tbf = FluidConditionalTokenBucket(
        rate_bps, burst, limit,
        trigger_bytes=trigger_bytes, trigger_after_s=trigger_after_s,
    )
    return FluidDualClassQdisc(
        tbf, FluidDropTailQueue(fifo_capacity), _dscp_classifier
    )


# Attach the fluid halves to the mechanisms registered elsewhere.  The
# AQMs (red/ecn/codel/pie) deliberately have none: their drop processes
# depend on instantaneous queue state in a way the closed-form fluid
# integration cannot reproduce, so make_qdisc raises QdiscFidelityError
# for them under fidelity="hybrid".
register("droptail", fluid=FluidDropTailQueue)
register("tbf", fluid=_build_fluid_tbf_device)
register("perflow", fluid=_build_fluid_perflow_device)
register("dual_tbf", fluid=_build_fluid_dual_tbf_device)
register("conditional", fluid=_build_fluid_conditional_device)


def make_fluid_rate_limiter(
    rate_bps, rtt_s, queue_factor=0.5, fifo_capacity=500_000
):
    """Deprecated alias for ``make_qdisc("tbf", fidelity="hybrid", ...)``."""
    import warnings

    warnings.warn(
        "make_fluid_rate_limiter is deprecated; use "
        "repro.netsim.qdisc.make_qdisc('tbf', fidelity='hybrid', ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _build_fluid_tbf_device(rate_bps, rtt_s, queue_factor, fifo_capacity)


def make_fluid_per_flow_limiter(
    rate_bps, rtt_s, queue_factor=0.5, fifo_capacity=500_000
):
    """Deprecated alias for ``make_qdisc("perflow", fidelity="hybrid", ...)``."""
    import warnings

    warnings.warn(
        "make_fluid_per_flow_limiter is deprecated; use "
        "repro.netsim.qdisc.make_qdisc('perflow', fidelity='hybrid', ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _build_fluid_perflow_device(rate_bps, rtt_s, queue_factor, fifo_capacity)


# -- fluid background sources ---------------------------------------


class _FluidSource:
    """Shared hop plumbing for fluid background generators.

    A source pushes its per-class rates to every qdisc along its link
    sequence; the rate entering hop ``k+1`` is clipped at hop ``k``'s
    bandwidth (a link cannot emit faster than it serializes).  Pushes
    happen only at rate-change ticks, so the event cost of a fluid
    source is a handful of events per second regardless of its rate.
    """

    def __init__(self, sim, links, stop_at, flow_id):
        self.sim = sim
        self.stop_at = stop_at
        self.flow_id = flow_id
        self._hops = [(link.qdisc, link.bandwidth_bps) for link in links]
        self.bytes_offered = 0.0
        self._offer_rate_Bps = 0.0
        self._offer_mark = sim.now

    def _push(self, marked_bps, unmarked_bps, n_flows=1):
        now = self.sim.now
        self.bytes_offered += self._offer_rate_Bps * (now - self._offer_mark)
        self._offer_mark = now
        self._offer_rate_Bps = (marked_bps + unmarked_bps) / 8.0
        rate_m, rate_u = marked_bps, unmarked_bps
        for qdisc, bandwidth in self._hops:
            qdisc.set_source_rate(now, self, rate_m, rate_u, n_flows)
            total = rate_m + rate_u
            if total > bandwidth:
                scale = bandwidth / total
                rate_m *= scale
                rate_u *= scale
        if _obs.ENABLED:
            _obs.SINK.inc("netsim.fluid.rate_segments")

    def _stopped(self):
        return self.stop_at is not None and self.sim.now >= self.stop_at


class FluidPoissonBackground(_FluidSource):
    """Fluid twin of :class:`~repro.netsim.background.ModulatedPoissonBackground`.

    The log-rate follows the *same* multi-timescale AR(1) process with
    the same per-tick ``rng.normal`` draws, so the rate trajectory is
    deterministic per seed; only the per-packet draws (exponential
    gaps, size mixture, dscp Bernoulli) disappear.  The dscp split
    becomes the deterministic mean-rate split.

    A perfectly smooth fluid would *understate* loss variability: the
    Poisson packet process carries shot noise -- the packet count in a
    window of ``k`` expected packets has relative variance ``1/k`` --
    and that sub-second burstiness is what spreads the bottleneck's
    drops across measurement intervals instead of concentrating them
    into deterministic saturation phases.  The fluid restores it with a
    seeded *dither*: every ``dither_period`` the pushed rate is the
    AR(1) rate times a ``Gamma(k, 1/k)`` factor (mean 1, variance
    ``1/k``), matching the Poisson window-count statistics.
    """

    def __init__(
        self,
        sim,
        rng,
        links,
        mean_rate_bps,
        dscp1_fraction=0.5,
        modulation=None,
        start_at=0.0,
        stop_at=None,
        flow_id="bg-udp",
        dither_period=0.05,
    ):
        if mean_rate_bps <= 0:
            raise ValueError("background rate must be positive")
        if not 0.0 <= dscp1_fraction <= 1.0:
            raise ValueError("dscp1_fraction must be in [0, 1]")
        super().__init__(sim, links, stop_at, flow_id)
        self.rng = rng
        self.mean_rate_bps = mean_rate_bps
        self.dscp1_fraction = dscp1_fraction
        self.dither_period = dither_period
        sizes, probs = zip(*PACKET_SIZE_MIX)
        self._mean_size = float(
            sum(s * p for s, p in zip(sizes, probs)) / sum(probs)
        )
        self._dither = 1.0
        if modulation is None:
            modulation = DEFAULT_MODULATION
        self._components = [
            _Ar1Component(period, sigma, rho, rng)
            for period, sigma, rho in modulation
        ]
        self._total_variance = sum(c.sigma**2 for c in self._components)
        for component in self._components:
            sim.schedule_at(start_at, self._remodulate, component)
        if dither_period and dither_period > 0.0:
            sim.schedule_at(start_at, self._dither_tick)
        else:
            sim.schedule_at(start_at, self._emit)
        if stop_at is not None:
            sim.schedule_at(stop_at, self._halt)

    def current_rate_bps(self):
        log_x = sum(c.state for c in self._components)
        return self.mean_rate_bps * float(
            np.exp(log_x - self._total_variance / 2.0)
        )

    def _emit(self):
        rate = self.current_rate_bps() * self._dither
        marked = rate * self.dscp1_fraction
        self._push(marked, rate - marked)

    def _remodulate(self, component):
        if self._stopped():
            return
        component.step(self.rng)
        self._emit()
        self.sim.schedule(component.period, self._remodulate, component)

    def _dither_tick(self):
        if self._stopped():
            return
        # Expected packets this window under the current AR(1) rate.
        k = (
            self.current_rate_bps()
            * self.dither_period
            / (8.0 * self._mean_size)
        )
        if k > 1e-9:
            self._dither = float(self.rng.gamma(k)) / k
        else:
            self._dither = 1.0
        self._emit()
        self.sim.schedule(self.dither_period, self._dither_tick)

    def _halt(self):
        self._dither = 0.0
        self._push(0.0, 0.0)


class FluidTcpBackground(_FluidSource):
    """Fluid twin of :class:`~repro.netsim.background.TcpBackgroundPool`.

    Long-lived flows are application-paced, so their fluid rate is the
    paced rate (plus wire overhead).  Short flows keep the Poisson
    arrival and Pareto size draws and become rate *pulses*: a flow of
    ``size`` bytes at RTT ``rtt`` transmits for a slow-start-aware
    duration and its effective rate is ``size / duration``, preserving
    the heavy-tailed burst structure that makes the background trend.
    Per-flow dscp marking keeps the same Bernoulli draws; a flow's whole
    rate goes to the class its draw chose.
    """

    def __init__(
        self,
        sim,
        rng,
        links,
        n_longlived=2,
        longlived_rate_bps=1.5e6,
        short_flow_rate=1.0,
        short_flow_min_bytes=30_000,
        dscp1_fraction=0.5,
        rtt_range=(0.02, 0.08),
        start_at=0.0,
        stop_at=None,
        flow_prefix="bg-tcp",
    ):
        super().__init__(sim, links, stop_at, flow_prefix)
        self.rng = rng
        self.short_flow_rate = short_flow_rate
        self.short_flow_min_bytes = short_flow_min_bytes
        self.dscp1_fraction = dscp1_fraction
        self.rtt_range = rtt_range
        self._marked_bps = 0.0
        self._unmarked_bps = 0.0
        self._active_flows = 0
        self.flows_spawned = 0
        for _ in range(n_longlived):
            # Same draw order as TcpBackgroundPool._spawn: dscp, then RTT.
            dscp = 1 if rng.random() < dscp1_fraction else 0
            rng.uniform(*rtt_range)
            rate = longlived_rate_bps * TCP_WIRE_OVERHEAD
            if dscp == 1:
                self._marked_bps += rate
            else:
                self._unmarked_bps += rate
            self._active_flows += 1
            self.flows_spawned += 1
        sim.schedule_at(start_at, self._emit)
        if short_flow_rate > 0:
            sim.schedule_at(
                start_at + rng.exponential(1.0 / short_flow_rate),
                self._spawn_short,
            )
        if stop_at is not None:
            sim.schedule_at(stop_at, self._halt)

    def _emit(self):
        self._push(self._marked_bps, self._unmarked_bps, self._active_flows)

    def _spawn_short(self):
        if self._stopped():
            return
        rng = self.rng
        # Pareto(shape=1.2) sizes, then dscp, then RTT -- the same draw
        # sequence as TcpBackgroundPool._spawn_short/_spawn.
        size = int(self.short_flow_min_bytes * (1.0 + rng.pareto(1.2)))
        dscp = 1 if rng.random() < self.dscp1_fraction else 0
        rtt = float(rng.uniform(*self.rtt_range))
        rate, duration = short_flow_pulse(size, rtt)
        self.flows_spawned += 1
        self._active_flows += 1
        if dscp == 1:
            self._marked_bps += rate
        else:
            self._unmarked_bps += rate
        self._emit()
        self.sim.schedule(duration, self._end_pulse, rate, dscp)
        self.sim.schedule(
            rng.exponential(1.0 / self.short_flow_rate), self._spawn_short
        )

    def _end_pulse(self, rate, dscp):
        self._active_flows -= 1
        if dscp == 1:
            self._marked_bps = max(0.0, self._marked_bps - rate)
        else:
            self._unmarked_bps = max(0.0, self._unmarked_bps - rate)
        self._emit()

    def _halt(self):
        self._marked_bps = 0.0
        self._unmarked_bps = 0.0
        self._active_flows = 0
        self._emit()


def short_flow_pulse(size_bytes, rtt_s, peak_bps=SHORT_FLOW_PEAK_BPS):
    """Effective (rate_bps, duration_s) of one short TCP flow.

    Completion time is the larger of the slow-start round count
    (``log2`` of the segment count, one round per RTT) and the
    bandwidth-limited transfer at the flow's peak fair-share rate; the
    effective rate spreads the flow's wire bytes over that duration.
    Deterministic -- no RNG draws beyond the caller's size/rtt.
    """
    wire_bytes = size_bytes * TCP_WIRE_OVERHEAD
    segments = max(size_bytes / _SHORT_FLOW_MSS, 1.0)
    slowstart_s = (math.log2(segments + 1.0) + 1.0) * rtt_s
    capacity_s = wire_bytes * 8.0 / peak_bps
    duration = max(slowstart_s, capacity_s, 1e-3)
    return wire_bytes * 8.0 / duration, duration


def harvest_fluid(sink, topology):
    """Record the ``netsim.fluid.*`` aggregates of a finished run.

    Double-entry bookkeeping mirror of the live counters: the harvested
    ``netsim.fluid.bg_bytes_dropped_total`` must equal the live
    ``netsim.fluid.virtual_drop_bytes`` counter, and conservation
    (offered == served + dropped + backlog) must hold exactly.
    """
    totals = _merge_stats()
    for link in [topology.link_c, *topology.noncommon_links]:
        stats = getattr(link.qdisc, "fluid_stats", None)
        if stats is None:
            continue
        part = stats()
        for key in totals:
            totals[key] += part[key]
    sink.inc("netsim.fluid.bg_bytes_offered_total", totals["bg_bytes_offered"])
    sink.inc("netsim.fluid.bg_bytes_served_total", totals["bg_bytes_served"])
    sink.inc("netsim.fluid.bg_bytes_dropped_total", totals["bg_bytes_dropped"])
    sink.inc("netsim.fluid.deferrals_total", totals["fluid_deferrals"])
    sink.observe(
        "netsim.fluid.final_virtual_backlog_bytes",
        totals["virtual_backlog_bytes"],
    )
