"""Point-to-point links.

A link serializes packets at ``bandwidth_bps``, holds them in its
queueing discipline while busy, and delivers them ``delay_s`` later to
whatever the packet's path says comes next.  A link with a
:class:`~repro.netsim.token_bucket.DualClassQdisc` *is* the paper's
rate-limiting device.
"""

from repro.netsim.queues import DropTailQueue


class Link:
    """A unidirectional link with bandwidth, propagation delay and a qdisc."""

    __slots__ = (
        "sim",
        "name",
        "bandwidth_bps",
        "delay_s",
        "qdisc",
        "_busy",
        "_wake_handle",
        "bytes_sent",
        "packets_sent",
        "packets_offered",
    )

    def __init__(self, sim, name, bandwidth_bps, delay_s, qdisc=None):
        if bandwidth_bps <= 0:
            raise ValueError("link bandwidth must be positive")
        if delay_s < 0:
            raise ValueError("link delay must be non-negative")
        self.sim = sim
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.qdisc = qdisc if qdisc is not None else DropTailQueue(500_000)
        # Fluid-fidelity qdiscs share the link's serialization capacity
        # with a virtual background aggregate; tell them the rate once.
        set_rate = getattr(self.qdisc, "set_service_rate", None)
        if set_rate is not None:
            set_rate(bandwidth_bps)
        self._busy = False
        self._wake_handle = None
        # Statistics.  repro.obs.harvest duck-types against these names
        # (and utilization()) to build the per-run link metrics without
        # touching this hot path -- renaming them breaks the harvest.
        self.bytes_sent = 0
        self.packets_sent = 0
        self.packets_offered = 0

    @property
    def drops(self):
        return self.qdisc.drops

    def send(self, packet):
        """Offer a packet to this link; it may be queued or dropped."""
        self.packets_offered += 1
        if self.qdisc.enqueue(packet, self.sim._now):
            self._try_transmit()
        # A drop is silent, as on a real device; the transport discovers
        # it through missing ACKs or sequence gaps.

    def _try_transmit(self):
        if self._busy:
            return
        sim = self.sim
        packet, wake = self.qdisc.dequeue(sim._now)
        if packet is None:
            if wake is not None:
                self._schedule_wake(wake)
            return
        self._busy = True
        tx_time = packet.size * 8.0 / self.bandwidth_bps
        sim.schedule(tx_time, self._transmit_done, packet)

    def _schedule_wake(self, wake):
        # Keep at most one pending wake-up; earlier ones win.
        if self._wake_handle is not None and not self._wake_handle.cancelled:
            return
        self._wake_handle = self.sim.schedule_at_cancellable(
            max(wake, self.sim.now), self._on_wake
        )

    def _on_wake(self):
        self._wake_handle = None
        self._try_transmit()

    def _transmit_done(self, packet):
        self._busy = False
        self.bytes_sent += packet.size
        self.packets_sent += 1
        self.sim.schedule(self.delay_s, packet.path.advance, packet)
        self._try_transmit()

    def utilization(self, elapsed):
        """Fraction of ``elapsed`` seconds spent transmitting."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.bytes_sent * 8.0 / self.bandwidth_bps / elapsed)
