"""ECMP/flowlet multipath link bundles (ROADMAP item 5).

Inside real ISPs the "common link sequence" of the paper's Figure 1 is
frequently not one device but an ECMP bundle: N parallel member links,
with each five-tuple hashed onto one member (and, under flowlet
switching -- LetFlow, NSDI'17 -- re-hashed whenever the flow pauses
longer than the flowlet gap).  That turns WeHeY's common-bottleneck
assumption into a *probabilistic* property: the two simultaneous
replays co-hash onto the same member with probability 1/N, and
otherwise traverse different devices while still appearing to share
"the" common link.

:class:`MultipathLink` models the bundle.  It quacks like a
:class:`~repro.netsim.link.Link` (``send``, ``delay_s``, the statistics
the obs harvest duck-types against) but owns N member links, each with
its own qdisc so the shaper zoo composes per-member.  Routing is a pure
function of ``(seed, five-tuple, flowlet epoch)`` via SHA-256 -- never
Python's salted ``hash()`` -- so member assignment is machine- and
process-independent, a property ``tests/netsim`` pins.

A 1-member bundle is byte-identical to a plain link: ``send`` forwards
synchronously to the hashed member, adding no events and drawing no
randomness, so the degenerate bundle cannot perturb any pre-multipath
record.
"""

import hashlib
import zlib

from repro.netsim.link import Link
from repro.obs import metrics as _obs

#: Ephemeral (IANA dynamic) source-port range used when deriving a
#: default five-tuple for a flow that never registered one.
EPHEMERAL_PORT_LO = 49152
EPHEMERAL_PORT_HI = 65535


def ecmp_hash(key, seed=0, epoch=0):
    """Deterministic ECMP hash of a flow key.

    SHA-256 over the stringified ``(seed, epoch, key)`` tuple, folded
    to 64 bits -- stable across machines, processes and interpreter
    restarts, unlike ``hash()`` (salted per process via
    PYTHONHASHSEED).  CRC-32 is *not* usable here despite being the
    textbook ECMP hash: it is linear over GF(2), so for two fixed flow
    keys ``crc(a) ^ crc(b)`` is a constant independent of the seed
    prefix, and with a power-of-two member count the pair would either
    always co-hash or always split across every seed.  ``epoch`` is
    the flowlet epoch: bumping it re-draws the member, which is exactly
    what a flowlet switch does in hardware.
    """
    token = f"{seed}:{epoch}:{key}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(token).digest()[:8], "big")


def five_tuple(flow_id, sport=None, dport=443, proto="ip", src=None, dst="client"):
    """The (proto, src, sport, dst, dport) tuple hashed by ECMP.

    The simulator's flows have no real addresses; the source address
    defaults to the flow id (each replay/background flow originates at
    its own server) and the destination to the client.  A missing
    source port is *derived* from the flow id via CRC-32, so unports
    flows still hash deterministically -- and re-drawing the port (the
    coordinator's re-hash tactic) changes the tuple, hence the member.
    """
    if sport is None:
        span = EPHEMERAL_PORT_HI - EPHEMERAL_PORT_LO + 1
        sport = EPHEMERAL_PORT_LO + zlib.crc32(f"sport:{flow_id}".encode()) % span
    if src is None:
        src = flow_id
    return (proto, src, int(sport), dst, int(dport))


def five_tuple_key(tup):
    """Canonical string form of a five-tuple (the CRC-32 input)."""
    return ":".join(str(part) for part in tup)


def shaped_member_subset(n_members, n_shaped, seed):
    """Seeded choice of which member links carry the shaper.

    Real bundles are heterogeneous -- a throttling deployment may
    install the limiter on only some members.  The subset is drawn by
    ranking members on SHA-256 draws (the :mod:`repro.faults.chaos`
    machinery's trick, inlined here so netsim does not import faults):
    machine-independent and a pure function of ``(seed, n_members)``.
    """
    if n_shaped >= n_members:
        return tuple(range(n_members))
    def rank(i):
        digest = hashlib.sha256(f"{seed}:shaped:{i}".encode()).digest()
        return int.from_bytes(digest[:8], "big")
    order = sorted(range(n_members), key=rank)
    return tuple(sorted(order[:n_shaped]))


class MultipathLink:
    """An ECMP bundle of N parallel member links.

    Parameters:
        sim: the simulator.
        name: bundle name; members are named ``{name}.m{i}``.
        bandwidth_bps / delay_s: per-member serialization rate and
            propagation delay (a bundle's aggregate capacity is
            ``N * bandwidth_bps``).
        member_qdiscs: one qdisc per member, in member order -- the
            shaper zoo composes per-member, so a bundle can mix shaped
            and plain members.
        seed: ECMP hash seed (a device reboot re-seeds the hash; two
            bundles with different seeds assign flows independently).
        flowlet_gap_s: when set, a flow whose inter-packet gap exceeds
            this re-hashes with a bumped flowlet epoch (LetFlow); None
            disables flowlet switching (classic sticky ECMP).
    """

    def __init__(self, sim, name, bandwidth_bps, delay_s, member_qdiscs,
                 *, seed=0, flowlet_gap_s=None):
        if not member_qdiscs:
            raise ValueError("a multipath link needs at least one member")
        if flowlet_gap_s is not None and flowlet_gap_s <= 0:
            raise ValueError("flowlet_gap_s must be positive")
        self.sim = sim
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.seed = seed
        self.flowlet_gap_s = flowlet_gap_s
        self.members = tuple(
            Link(sim, f"{name}.m{i}", bandwidth_bps, delay_s, qdisc)
            for i, qdisc in enumerate(member_qdiscs)
        )
        self._up = list(range(len(self.members)))
        self._up_set = set(self._up)
        self._keys = {}    # flow_id -> five-tuple key string (registered ports)
        self._flows = {}   # flow_id -> [member_index, last_send_time, epoch]
        self.packets_offered = 0
        self.rehashes = 0
        self.flowlet_switches = 0
        #: per-flow flowlet-switch counts (lets callers distinguish a
        #: replay flow's mid-test split from background flows churning).
        self.flow_switches = {}
        #: per-flow assignment timeline: flow_id -> [(time, member)],
        #: one entry per (re)assignment.  Ground-truth consumers (the
        #: multipath benchmark) integrate it into a co-location
        #: fraction; a flow's assignment holds until its next entry.
        self.assignment_history = {}

    # -- statistics the obs harvest duck-types against -----------------

    @property
    def bytes_sent(self):
        return sum(member.bytes_sent for member in self.members)

    @property
    def packets_sent(self):
        return sum(member.packets_sent for member in self.members)

    @property
    def drops(self):
        return sum(member.qdisc.drops for member in self.members)

    def utilization(self, elapsed):
        """Fraction of the bundle's aggregate capacity used."""
        if elapsed <= 0:
            return 0.0
        capacity = self.bandwidth_bps * len(self.members)
        return min(1.0, self.bytes_sent * 8.0 / capacity / elapsed)

    # -- routing --------------------------------------------------------

    def flow_key(self, flow_id):
        """The five-tuple key this bundle hashes for ``flow_id``."""
        key = self._keys.get(flow_id)
        if key is None:
            key = five_tuple_key(five_tuple(flow_id))
            self._keys[flow_id] = key
        return key

    def register_flow(self, flow_id, sport, dport=443, proto="ip"):
        """Pin ``flow_id``'s five-tuple (the client chose its ports).

        The coordinator's re-hash recovery draws fresh ephemeral ports
        and registers them before the replay starts; an already-routed
        flow is re-routed on its next packet (counted as a re-hash if
        the member changed).
        """
        self._keys[flow_id] = five_tuple_key(
            five_tuple(flow_id, sport=sport, dport=dport, proto=proto)
        )
        state = self._flows.pop(flow_id, None)
        if state is not None and self._pick(self._keys[flow_id], 0) != state[0]:
            self._count_rehash()

    def current_assignment(self, flow_id):
        """Member index ``flow_id`` is currently routed on (None if unseen)."""
        state = self._flows.get(flow_id)
        return None if state is None else state[0]

    def predicted_assignment(self, flow_id, epoch=0):
        """Member index a (new) flow would hash onto -- pure, no state."""
        return self._pick(self.flow_key(flow_id), epoch)

    def _pick(self, key, epoch):
        up = self._up
        return up[ecmp_hash(key, self.seed, epoch) % len(up)]

    def _count_rehash(self):
        self.rehashes += 1
        if _obs.ENABLED:
            _obs.SINK.inc("netsim.multipath.rehashes")

    def _record_assignment(self, flow_id, now, member):
        self.assignment_history.setdefault(flow_id, []).append((now, member))

    def _route(self, flow_id):
        now = self.sim._now
        state = self._flows.get(flow_id)
        if state is None:
            member = self._pick(self.flow_key(flow_id), 0)
            self._flows[flow_id] = [member, now, 0]
            self._record_assignment(flow_id, now, member)
            return member
        member, last, epoch = state
        if self.flowlet_gap_s is not None and now - last > self.flowlet_gap_s:
            epoch += 1
            state[2] = epoch
            fresh = self._pick(self._keys[flow_id], epoch)
            if fresh != member:
                state[0] = member = fresh
                self.flowlet_switches += 1
                self.flow_switches[flow_id] = self.flow_switches.get(flow_id, 0) + 1
                self._record_assignment(flow_id, now, member)
                if _obs.ENABLED:
                    _obs.SINK.inc("netsim.multipath.flowlet_switches")
        elif member not in self._up_set:
            # The member went down mid-test (path flap): consistent
            # re-hash over the surviving members.
            state[0] = member = self._pick(self._keys[flow_id], epoch)
            self._record_assignment(flow_id, now, member)
            self._count_rehash()
        state[1] = now
        return member

    def send(self, packet):
        """Offer a packet to the bundle: hash, then forward to the member.

        Forwarding is synchronous -- the member link does all queueing
        and scheduling -- so a 1-member bundle adds zero events and the
        member's ``_transmit_done`` advances the packet past *this*
        hop's position in its path.
        """
        self.packets_offered += 1
        self.members[self._route(packet.flow_id)].send(packet)

    # -- failures --------------------------------------------------------

    def fail_member(self, index):
        """Take member ``index`` down (a path flap).

        Flows routed on it re-hash over the survivors on their next
        packet.  The last surviving member never fails -- a bundle with
        zero members is a partition, not a flap -- and failing it
        raises instead.
        """
        if index not in self._up_set:
            raise ValueError(f"member {index} is not up")
        if len(self._up) == 1:
            raise ValueError("cannot fail the last up member")
        self._up.remove(index)
        self._up_set.discard(index)

    @property
    def up_members(self):
        """Indices of the members currently carrying traffic."""
        return tuple(self._up)
