"""Packet model.

Packets are deliberately lean (``__slots__``) because an experiment moves
hundreds of thousands of them.  Sizes are in bytes and include the
link-layer framing the paper's rate limiters operate on.
"""

DATA = 0
ACK = 1

#: Bytes of TCP/IP header carried by every data segment.
HEADER_BYTES = 52
#: Wire size of a pure ACK.
ACK_BYTES = 52


class Packet:
    """A single packet traversing the simulated network.

    Attributes:
        flow_id: identifier of the owning flow.
        kind: ``DATA`` or ``ACK``.
        seq: for TCP data, the first payload byte; for UDP, packet index;
            for ACKs, the cumulative acknowledgement.
        size: wire size in bytes.
        dscp: differentiated-services code point.  The rate limiters of
            Appendix C.1 throttle ``dscp == 1`` and pass ``dscp == 0``.
        ecn: congestion-experienced mark (0 or 1), set by ECN-marking
            shapers; TCP receivers echo it on the ACK so senders back
            off without loss.
        sent_at: time the packet left the sender (for RTT samples).
        is_retx: True when this is a TCP retransmission.
        path: the :class:`~repro.netsim.path.Path` being traversed.
        hop: index of the next link on ``path``.
        enqueued_at: set by queues to measure queueing delay.
    """

    __slots__ = (
        "flow_id",
        "kind",
        "seq",
        "size",
        "dscp",
        "ecn",
        "sent_at",
        "is_retx",
        "sack",
        "path",
        "hop",
        "enqueued_at",
    )

    def __init__(
        self,
        flow_id,
        kind,
        seq,
        size,
        dscp=0,
        sent_at=0.0,
        is_retx=False,
        sack=None,
        ecn=0,
    ):
        self.flow_id = flow_id
        self.kind = kind
        self.seq = seq
        self.size = size
        self.dscp = dscp
        self.ecn = ecn
        self.sent_at = sent_at
        self.is_retx = is_retx
        self.sack = sack  # highest out-of-order byte held by the receiver
        self.path = None
        self.hop = 0
        self.enqueued_at = 0.0

    def __repr__(self):
        kind = "DATA" if self.kind == DATA else "ACK"
        return (
            f"Packet(flow={self.flow_id}, {kind}, seq={self.seq}, "
            f"size={self.size}, dscp={self.dscp})"
        )
