"""Paths: ordered sequences of links ending at a receiver.

Routing in the experiments is static -- every flow knows its path up
front (the paper's Figure-1 topologies are fixed for the duration of a
test).  A packet carries its path and current hop; links call
:meth:`Path.advance` after propagation to move it along.
"""


class Path:
    """An ordered list of :class:`~repro.netsim.link.Link` plus a sink.

    ``sink`` is any object with a ``receive(packet)`` method (a TCP or
    UDP receiver, or a measurement tap).
    """

    __slots__ = ("links", "sink")

    def __init__(self, links, sink):
        if not links:
            raise ValueError("a path needs at least one link")
        self.links = tuple(links)
        self.sink = sink

    def __len__(self):
        return len(self.links)

    def inject(self, packet):
        """Start a packet down this path (called by the sender)."""
        packet.path = self
        packet.hop = 0
        self.links[0].send(packet)

    def advance(self, packet):
        """Move a packet past the link it just crossed."""
        packet.hop += 1
        if packet.hop < len(self.links):
            self.links[packet.hop].send(packet)
        else:
            self.sink.receive(packet)

    @property
    def propagation_delay(self):
        """Sum of per-link propagation delays (no queueing)."""
        return sum(link.delay_s for link in self.links)


class DirectPath:
    """A queue-less path used for reverse (ACK) traffic.

    The paper's measurements are all about the forward direction; ACKs
    return over an uncongested reverse path.  ``DirectPath`` models that
    as a pure delay, which keeps the event count manageable without
    changing forward-path dynamics.
    """

    __slots__ = ("sim", "delay_s", "sink", "jitter")

    def __init__(self, sim, delay_s, sink, jitter=None):
        self.sim = sim
        self.delay_s = delay_s
        self.sink = sink
        self.jitter = jitter  # callable -> extra delay, or None

    def inject(self, packet):
        delay = self.delay_s
        if self.jitter is not None:
            delay += max(0.0, self.jitter())
        self.sim.schedule(delay, self.sink.receive, packet)
