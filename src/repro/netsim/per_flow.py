"""Per-flow rate limiting (the Section-7 limitation and its remedy).

WeHeY's common-bottleneck assumption breaks when an ISP throttles each
TCP/UDP flow *individually*: the two replay paths then traverse two
different token buckets and never share a bottleneck.  The paper's
proposed remedy is to modify the replayed trace instances so that they
appear to belong to the same flow -- both paths then land in the same
per-flow policer.

``PerFlowQdisc`` implements the differentiation device: one TBF per
flow key for throttled (dscp=1) traffic, a plain FIFO for the rest,
and round-robin service across all queues.  The flow key defaults to
``packet.flow_id``; WeHeY's flow-merging countermeasure works exactly
because two replays that share a flow id share a bucket.
"""

import warnings

from repro.netsim.qdisc import Qdisc, register, standard_sizing
from repro.netsim.queues import DropTailQueue
from repro.netsim.token_bucket import TokenBucketFilter


class PerFlowQdisc(Qdisc):
    """Classifier + per-flow TBFs + FIFO + round-robin scheduler.

    Parameters:
        rate_bps / burst_bytes / limit_bytes: configuration applied to
            every per-flow token bucket (created lazily on first
            packet of a flow).
        flow_key: maps a packet to its flow identity (default: the
            packet's ``flow_id``).
        fifo_capacity: byte capacity of the non-throttled FIFO.
        bucket_factory: zero-argument callable building one per-flow
            bucket (default: a :class:`TokenBucketFilter` with this
            qdisc's rate/burst/limit).  This is how the registry
            composes per-flow placement with any class-shaper
            mechanism (see :func:`repro.netsim.qdisc.class_shaper_factory`).
    """

    __slots__ = (
        "rate_bps",
        "burst_bytes",
        "limit_bytes",
        "flow_key",
        "fifo",
        "bucket_factory",
        "_flows",
        "_rr_order",
        "_rr_index",
    )

    def __init__(
        self,
        rate_bps,
        burst_bytes,
        limit_bytes,
        flow_key=None,
        fifo_capacity=500_000,
        bucket_factory=None,
    ):
        if rate_bps <= 0:
            raise ValueError("per-flow rate must be positive")
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self.limit_bytes = limit_bytes
        self.flow_key = flow_key if flow_key is not None else _default_flow_key
        self.fifo = DropTailQueue(fifo_capacity)
        self.bucket_factory = bucket_factory
        self._flows = {}  # key -> TokenBucketFilter (or bucket_factory product)
        self._rr_order = []  # stable round-robin order over flow keys
        self._rr_index = 0

    def __len__(self):
        return len(self.fifo) + sum(len(tbf) for tbf in self._flows.values())

    @property
    def drops(self):
        return self.fifo.drops + sum(tbf.drops for tbf in self._flows.values())

    @property
    def drops_bytes(self):
        return self.fifo.drops_bytes + sum(
            tbf.drops_bytes for tbf in self._flows.values()
        )

    @property
    def backlog_bytes(self):
        return self.fifo.backlog_bytes + sum(
            tbf.backlog_bytes for tbf in self._flows.values()
        )

    @property
    def n_flows(self):
        """Number of per-flow buckets instantiated so far."""
        return len(self._flows)

    def _bucket_for(self, key):
        bucket = self._flows.get(key)
        if bucket is None:
            if self.bucket_factory is not None:
                bucket = self.bucket_factory()
            else:
                bucket = TokenBucketFilter(
                    self.rate_bps, self.burst_bytes, self.limit_bytes
                )
            self._flows[key] = bucket
            self._rr_order.append(key)
        return bucket

    def enqueue(self, packet, now):
        if packet.dscp != 1:
            return self.fifo.enqueue(packet, now)
        return self._bucket_for(self.flow_key(packet)).enqueue(packet, now)

    def dequeue(self, now):
        """Round-robin across the FIFO and every flow bucket."""
        queues = [self.fifo] + [self._flows[k] for k in self._rr_order]
        n = len(queues)
        earliest_wake = None
        for offset in range(n):
            queue = queues[(self._rr_index + offset) % n]
            packet, wake = queue.dequeue(now)
            if packet is not None:
                self._rr_index = (self._rr_index + offset + 1) % n
                return packet, None
            if wake is not None and (earliest_wake is None or wake < earliest_wake):
                earliest_wake = wake
        return None, earliest_wake


def _default_flow_key(packet):
    return packet.flow_id


def _build_perflow_device(
    rate_bps,
    rtt_s=0.035,
    queue_factor=0.5,
    fifo_capacity=500_000,
    shaper="tbf",
    seed=0,
    **params,
):
    """Per-flow limiter with the paper's burst = rate x RTT convention.

    ``shaper`` selects the mechanism of each per-flow bucket -- per-flow
    placement composes with any registered class shaper.
    """
    burst, limit = standard_sizing(rate_bps, rtt_s, queue_factor)
    if shaper == "tbf" and not params:
        return PerFlowQdisc(rate_bps, burst, limit, fifo_capacity=fifo_capacity)
    from repro.netsim.qdisc import class_shaper_factory

    factory = class_shaper_factory(shaper, rate_bps, burst, limit, seed=seed, **params)
    return PerFlowQdisc(
        rate_bps, burst, limit, fifo_capacity=fifo_capacity, bucket_factory=factory
    )


register(
    "perflow",
    packet=_build_perflow_device,
    doc="per-flow buckets for dscp=1 traffic (Section-7 limitation device)",
)


def make_per_flow_limiter(rate_bps, rtt_s, queue_factor=0.5, fifo_capacity=500_000):
    """Deprecated alias for ``make_qdisc("perflow", ...)``."""
    warnings.warn(
        "make_per_flow_limiter is deprecated; use "
        "repro.netsim.qdisc.make_qdisc('perflow', ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _build_perflow_device(rate_bps, rtt_s, queue_factor, fifo_capacity)
