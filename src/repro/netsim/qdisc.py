"""The formal qdisc protocol and the shaper registry.

Every queueing discipline in ``repro.netsim`` implements the same small
contract, consumed by :class:`~repro.netsim.link.Link`:

- ``enqueue(packet, now) -> bool`` -- False means the packet was
  dropped at arrival.
- ``dequeue(now) -> (packet | None, wake | None)`` -- the next packet
  to transmit; ``(None, t)`` means a packet exists but is not yet
  eligible (retry at ``t``); ``(None, None)`` means empty.
- ``__len__`` -- number of queued packets.
- ``backlog_bytes`` -- bytes currently queued.

plus the statistics the experiment harness reads (``drops``,
``drops_bytes``, ``enqueued``, ``mean_delay``).  Disciplines that
support the hybrid fluid fidelity additionally expose
``set_service_rate`` / ``set_source_rate`` / ``fluid_stats`` (see
:mod:`repro.netsim.fluid`).

This module makes the contract explicit (:class:`Qdisc`) and provides a
seeded registry so topologies, scenario configs, and the CLI can name a
shaper mechanism (``"tbf"``, ``"red"``, ``"codel"``, ``"pie"``,
``"dual_tbf"``, ``"conditional"``, ``"ecn"``, ...) instead of importing
concrete classes.  Mechanisms are *orthogonal* to placement: a
:class:`~repro.experiments.scenarios.ScenarioConfig` picks where the
limiter sits (``limiter``) and separately what device it is
(``shaper``).

Registered device factories share a keyword vocabulary: rate-limiting
mechanisms take ``rate_bps``, ``rtt_s``, ``queue_factor`` and
``fifo_capacity`` (the sizing knobs of Appendix C.1) plus
mechanism-specific parameters; ``"droptail"`` takes ``capacity_bytes``.
Randomized mechanisms (RED's and PIE's drop draws) declare
``seeded=True`` and accept a ``seed`` parameter so every run is
reproducible.
"""


class QdiscFidelityError(ValueError):
    """Raised when a mechanism has no twin for the requested fidelity."""


class Qdisc:
    """Protocol base class for queueing disciplines.

    Subclasses keep ``__slots__`` economics (this base declares none)
    and must implement the four core methods below.  Statistics
    attributes (``drops``, ``drops_bytes``, ``enqueued``,
    ``mean_delay``) are part of the informal contract but are left to
    subclasses, which typically back them with plain slots.
    """

    __slots__ = ()

    def enqueue(self, packet, now):
        """Accept or drop ``packet`` arriving at ``now``; True = accepted."""
        raise NotImplementedError

    def dequeue(self, now):
        """Return ``(packet, None)``, ``(None, wake_time)`` or ``(None, None)``."""
        raise NotImplementedError

    def __len__(self):
        raise NotImplementedError

    @property
    def backlog_bytes(self):
        raise NotImplementedError


class QdiscSpec:
    """One registry entry: factories for each fidelity plus metadata.

    ``packet`` and ``fluid`` build the full limiter *device* (for the
    rate-limiting mechanisms: classifier + FIFO + shaper + scheduler).
    ``shaper`` builds the bare throttled-class queue
    (``shaper(rate_bps, burst_bytes, limit_bytes, **params)``) and is
    what the per-flow device composes per flow bucket.
    """

    __slots__ = ("name", "packet", "fluid", "shaper", "seeded", "doc")

    def __init__(self, name):
        self.name = name
        self.packet = None
        self.fluid = None
        self.shaper = None
        self.seeded = False
        self.doc = ""


_REGISTRY = {}
_BUILTINS_LOADED = False


def register(name, *, packet=None, fluid=None, shaper=None, seeded=False, doc=None):
    """Register (or extend) a qdisc mechanism under ``name``.

    Modules register themselves at import time; the packet and fluid
    halves of one mechanism may be registered from different modules
    (``token_bucket.py`` registers the packet ``"tbf"`` device,
    ``fluid.py`` attaches its fluid twin).  Re-registering a half that
    already exists is an error -- it would silently change behaviour.
    """
    spec = _REGISTRY.get(name)
    if spec is None:
        spec = QdiscSpec(name)
        _REGISTRY[name] = spec
    for attr, value in (("packet", packet), ("fluid", fluid), ("shaper", shaper)):
        if value is not None:
            if getattr(spec, attr) is not None:
                raise ValueError(f"qdisc {name!r} already has a {attr} factory")
            setattr(spec, attr, value)
    if seeded:
        spec.seeded = True
    if doc:
        spec.doc = doc
    return spec


def _ensure_builtins():
    """Import the modules that register the built-in disciplines."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    import repro.netsim.queues  # noqa: F401  (registers droptail)
    import repro.netsim.token_bucket  # noqa: F401  (registers tbf)
    import repro.netsim.per_flow  # noqa: F401  (registers perflow)
    import repro.netsim.shapers  # noqa: F401  (registers the zoo)
    import repro.netsim.fluid  # noqa: F401  (attaches fluid twins)


def registered_qdiscs():
    """Sorted names of every registered mechanism."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def qdisc_spec(name):
    """The :class:`QdiscSpec` for ``name`` (raises ValueError if unknown)."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown qdisc {name!r} (known: {known})") from None


def supports_fidelity(name, fidelity):
    """True when mechanism ``name`` can be built at ``fidelity``."""
    spec = qdisc_spec(name)
    if fidelity == "packet":
        return spec.packet is not None
    if fidelity == "hybrid":
        return spec.fluid is not None
    raise ValueError(f"unknown fidelity {fidelity!r}")


def make_qdisc(name, fidelity="packet", **params):
    """Build a registered queueing discipline.

    ``fidelity="packet"`` builds the exact per-packet device;
    ``"hybrid"`` builds its fluid twin (raises
    :class:`QdiscFidelityError` for mechanisms without one -- the AQMs'
    drop processes depend on instantaneous queue state in a way the
    closed-form fluid integration cannot reproduce).
    """
    spec = qdisc_spec(name)
    if fidelity == "packet":
        factory = spec.packet
    elif fidelity == "hybrid":
        factory = spec.fluid
    else:
        raise ValueError(f"unknown fidelity {fidelity!r}")
    if factory is None:
        raise QdiscFidelityError(
            f"qdisc {name!r} has no {fidelity} implementation"
        )
    try:
        return factory(**params)
    except TypeError as exc:
        raise ValueError(f"bad parameters for qdisc {name!r}: {exc}") from exc


def class_shaper_factory(name, rate_bps, burst_bytes, limit_bytes, seed=0, **params):
    """A zero-argument factory of bare class shapers (per-flow buckets).

    Seeded mechanisms get a distinct derived seed per bucket in creation
    order, so per-flow RED/PIE instances stay reproducible without
    sharing one RNG stream.
    """
    spec = qdisc_spec(name)
    if spec.shaper is None:
        raise ValueError(f"qdisc {name!r} cannot be used as a per-flow bucket")
    if spec.seeded:
        counter = iter(range(1 << 30))

        def build():
            return spec.shaper(
                rate_bps, burst_bytes, limit_bytes,
                seed=seed + 1009 * next(counter), **params
            )

        return build

    def build():
        return spec.shaper(rate_bps, burst_bytes, limit_bytes, **params)

    return build


def standard_sizing(rate_bps, rtt_s, queue_factor):
    """The paper's TBF sizing: burst = rate x RTT, limit = factor x burst."""
    burst = max(int(rate_bps * rtt_s / 8.0), 3000)
    limit = max(int(queue_factor * burst), 1600)
    return burst, limit
