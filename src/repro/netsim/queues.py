"""Queueing disciplines.

Every discipline implements the :class:`~repro.netsim.qdisc.Qdisc`
protocol consumed by :class:`~repro.netsim.link.Link`:

- ``enqueue(packet, now) -> bool`` -- False means the packet was dropped.
- ``dequeue(now) -> (packet | None, wake | None)`` -- returns the next
  packet to transmit, or ``(None, t)`` when a packet exists but is not
  yet eligible (the link should retry at time ``t``), or ``(None, None)``
  when the discipline is empty.
- ``__len__`` -- number of queued packets.

Disciplines also keep drop and delay statistics used by the experiment
harness.
"""

from collections import deque

from repro.netsim.qdisc import Qdisc, register
from repro.obs import metrics as _obs


class DropTailQueue(Qdisc):
    """A FIFO with a byte-capacity bound; arrivals that overflow are dropped."""

    __slots__ = (
        "capacity_bytes",
        "_queue",
        "_bytes",
        "drops",
        "drops_bytes",
        "enqueued",
        "delay_sum",
        "delay_samples",
    )

    def __init__(self, capacity_bytes=200_000):
        if capacity_bytes <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._queue = deque()
        self._bytes = 0
        self.drops = 0
        self.drops_bytes = 0
        self.enqueued = 0
        self.delay_sum = 0.0
        self.delay_samples = 0

    def __len__(self):
        return len(self._queue)

    @property
    def backlog_bytes(self):
        """Bytes currently queued."""
        return self._bytes

    def enqueue(self, packet, now):
        if self._bytes + packet.size > self.capacity_bytes:
            self.drops += 1
            self.drops_bytes += packet.size
            # Drops are rare relative to packet events, so this is the
            # only queue operation that pays an instrumentation branch.
            if _obs.ENABLED:
                _obs.SINK.inc("netsim.queue.drops")
                _obs.SINK.observe("netsim.queue.occupancy_at_drop_bytes", self._bytes)
            return False
        packet.enqueued_at = now
        self._queue.append(packet)
        self._bytes += packet.size
        self.enqueued += 1
        return True

    def dequeue(self, now):
        if not self._queue:
            return None, None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        self.delay_sum += now - packet.enqueued_at
        self.delay_samples += 1
        return packet, None

    def peek(self):
        """The head-of-line packet, or None."""
        return self._queue[0] if self._queue else None

    @property
    def mean_delay(self):
        """Average queueing delay over everything dequeued so far."""
        if self.delay_samples == 0:
            return 0.0
        return self.delay_sum / self.delay_samples


register(
    "droptail",
    packet=DropTailQueue,
    doc="plain FIFO with byte-capacity tail drop (no rate limiting)",
)
