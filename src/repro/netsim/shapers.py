"""The shaper zoo: AQM, two-rate, conditional, and ECN-marking devices.

The paper's differentiation device is a single token-bucket policer;
real bottlenecks deploy a wider range of mechanisms, and distinguishing
them is what :mod:`repro.stats.fingerprint` is for.  Every class here
is the *throttled-class* queue slotted into the Appendix-C.1 device
(classifier + FIFO + shaper + round-robin scheduler); the registered
factories build the complete device.

Mechanisms (all packet-exact):

- :class:`RedTokenBucket` -- Random Early Detection (Floyd/Jacobson):
  EWMA average queue, probabilistic early drop between ``min_th`` and
  ``max_th``, count-scaled so drops spread out.  With ``ecn=True`` it
  marks ECN-capable packets instead of dropping (the ``"ecn"``
  mechanism) -- senders then back off once per RTT without loss.
- :class:`CoDelTokenBucket` -- Controlled Delay (RFC 8289, simplified):
  head drops at dequeue when sojourn time stays above ``target`` for an
  ``interval``, then at ``interval/sqrt(count)`` spacing.
- :class:`PieTokenBucket` -- Proportional Integral controller Enhanced
  (RFC 8033, simplified: no burst allowance): drop probability updated
  every ``t_update`` from the queue-delay error and trend.
- :class:`DualTokenBucketFilter` -- two-rate policer (trTCM-style, RFC
  2698 shape): a large committed-rate bucket (the "boost" allowance)
  plus a small peak-rate bucket; throughput steps from PIR down to CIR
  once the boost is consumed.
- :class:`ConditionalTokenBucket` -- delayed throttling: pure FIFO
  until ``trigger_bytes`` of class traffic (or ``trigger_after_s``
  seconds) have passed, then an ordinary TBF.  Generalizes ISP5's
  delayed-trigger classifier to the qdisc itself.

AQM queue depth is configured in *time* (``buffer_s`` at the shaping
rate), as deployed AQMs are; the Table-2 ``queue_factor`` scales it
relative to its 0.5 default so queue-depth sweeps still bite.

Randomized mechanisms (RED/PIE/ECN draws) use a private
``random.Random(seed)`` so runs are exactly reproducible; the registry
marks them ``seeded`` and the topology builder derives per-device seeds
from the scenario seed.
"""

import math
import random

from repro.netsim.qdisc import register, standard_sizing
from repro.netsim.queues import DropTailQueue
from repro.netsim.token_bucket import DualClassQdisc, TokenBucketFilter
from repro.obs import metrics as _obs

MTU_BYTES = 1500


def _aqm_buffer_bytes(rate_bps, queue_factor, buffer_s):
    """Time-based AQM queue depth, scaled by the Table-2 queue factor."""
    depth = rate_bps * buffer_s / 8.0 * (queue_factor / 0.5)
    return max(int(depth), 6 * MTU_BYTES)


class RedTokenBucket(TokenBucketFilter):
    """TBF whose queue admission runs Random Early Detection.

    ``min_th``/``max_th`` are fractions of the queue limit; between
    them the early-drop (or ECN-mark) probability ramps linearly to
    ``max_p``, scaled by the count of packets since the last drop so
    drops spread out instead of clustering.  At or above ``max_th``
    every arrival is dropped/marked.  The EWMA average decays at the
    service rate while the queue idles.
    """

    __slots__ = (
        "min_th_bytes",
        "max_th_bytes",
        "max_p",
        "w_q",
        "ecn_capable",
        "_avg",
        "_count",
        "_last_arrival",
        "_rng",
        "early_drops",
        "early_drop_bytes",
        "ecn_marks",
        "ecn_mark_bytes",
    )

    def __init__(
        self,
        rate_bps,
        burst_bytes,
        limit_bytes,
        min_th=0.25,
        max_th=0.75,
        max_p=0.1,
        w_q=0.05,
        ecn=False,
        seed=0,
    ):
        super().__init__(rate_bps, burst_bytes, limit_bytes)
        if not 0.0 < min_th < max_th <= 1.0:
            raise ValueError("RED thresholds need 0 < min_th < max_th <= 1")
        if not 0.0 < max_p <= 1.0:
            raise ValueError("RED max_p must be in (0, 1]")
        limit = self._queue.capacity_bytes
        self.min_th_bytes = min_th * limit
        self.max_th_bytes = max_th * limit
        self.max_p = max_p
        self.w_q = w_q
        self.ecn_capable = bool(ecn)
        self._avg = 0.0
        self._count = -1
        self._last_arrival = 0.0
        self._rng = random.Random(seed)
        self.early_drops = 0
        self.early_drop_bytes = 0
        self.ecn_marks = 0
        self.ecn_mark_bytes = 0

    @property
    def drops(self):
        return self._queue.drops + self.early_drops

    @property
    def drops_bytes(self):
        return self._queue.drops_bytes + self.early_drop_bytes

    @property
    def avg_queue_bytes(self):
        """The EWMA average RED compares against its thresholds."""
        return self._avg

    def shaper_stats(self):
        return {
            "red.early_drops_total": self.early_drops,
            "red.early_drop_bytes_total": self.early_drop_bytes,
            "red.ecn_marks_total": self.ecn_marks,
        }

    def _red_verdict(self):
        """True when the arrival should be early-dropped (or marked)."""
        avg = self._avg
        if avg < self.min_th_bytes:
            self._count = -1
            return False
        if avg >= self.max_th_bytes:
            self._count = 0
            return True
        self._count += 1
        span = self.max_th_bytes - self.min_th_bytes
        p_b = self.max_p * (avg - self.min_th_bytes) / span
        denom = 1.0 - self._count * p_b
        p_a = 1.0 if denom <= 0.0 else min(p_b / denom, 1.0)
        if self._rng.random() < p_a:
            self._count = 0
            return True
        return False

    def enqueue(self, packet, now):
        q = self._queue.backlog_bytes
        if q == 0 and now > self._last_arrival:
            # Idle decay: while empty the average drains at the service
            # rate, measured in MTU-sized transmission slots.
            m = (now - self._last_arrival) * self.rate_bps / (8.0 * MTU_BYTES)
            self._avg *= (1.0 - self.w_q) ** min(m, 200.0)
        self._last_arrival = now
        self._avg += self.w_q * (q - self._avg)
        if self._red_verdict():
            if self.ecn_capable:
                packet.ecn = 1
                self.ecn_marks += 1
                self.ecn_mark_bytes += packet.size
                if _obs.ENABLED:
                    _obs.SINK.inc("netsim.red.ecn_marks")
            else:
                self.early_drops += 1
                self.early_drop_bytes += packet.size
                if _obs.ENABLED:
                    _obs.SINK.inc("netsim.red.early_drops")
                    _obs.SINK.observe("netsim.red.avg_at_drop_bytes", self._avg)
                return False
        return super().enqueue(packet, now)


class CoDelTokenBucket(TokenBucketFilter):
    """TBF whose queue runs the CoDel head-drop state machine.

    Sojourn time is measured at dequeue; once it exceeds ``target`` for
    a full ``interval`` the qdisc enters the dropping state and sheds
    heads at ``interval / sqrt(count)`` spacing until the sojourn falls
    back under target (or fewer than two MTUs remain queued).  Dropped
    heads consume no tokens.
    """

    __slots__ = (
        "target_s",
        "interval_s",
        "_first_above",
        "_dropping",
        "_drop_next",
        "_drop_count",
        "codel_drops",
        "codel_drop_bytes",
    )

    def __init__(self, rate_bps, burst_bytes, limit_bytes, target=0.005, interval=0.1):
        super().__init__(rate_bps, burst_bytes, limit_bytes)
        if target <= 0 or interval <= 0:
            raise ValueError("CoDel target and interval must be positive")
        self.target_s = target
        self.interval_s = interval
        self._first_above = 0.0
        self._dropping = False
        self._drop_next = 0.0
        self._drop_count = 0
        self.codel_drops = 0
        self.codel_drop_bytes = 0

    @property
    def drops(self):
        return self._queue.drops + self.codel_drops

    @property
    def drops_bytes(self):
        return self._queue.drops_bytes + self.codel_drop_bytes

    def shaper_stats(self):
        return {
            "codel.drops_total": self.codel_drops,
            "codel.drop_bytes_total": self.codel_drop_bytes,
        }

    def _codel_drop(self, head, now):
        sojourn = now - head.enqueued_at
        if sojourn < self.target_s or self._queue.backlog_bytes <= 2 * MTU_BYTES:
            self._first_above = 0.0
            self._dropping = False
            return False
        if self._first_above == 0.0:
            self._first_above = now + self.interval_s
            return False
        if self._dropping:
            if now < self._drop_next:
                return False
            self._drop_count += 1
            self._drop_next += self.interval_s / math.sqrt(self._drop_count)
            return True
        if now >= self._first_above:
            self._dropping = True
            self._drop_count = 1
            self._drop_next = now + self.interval_s
            return True
        return False

    def dequeue(self, now):
        queue = self._queue
        while True:
            head = queue.peek()
            if head is None:
                self._first_above = 0.0
                self._dropping = False
                return None, None
            if not self._codel_drop(head, now):
                break
            packet, _ = queue.dequeue(now)
            self.codel_drops += 1
            self.codel_drop_bytes += packet.size
            if _obs.ENABLED:
                _obs.SINK.inc("netsim.codel.drops")
                _obs.SINK.observe(
                    "netsim.codel.sojourn_at_drop_s", now - packet.enqueued_at
                )
        return super().dequeue(now)


class PieTokenBucket(TokenBucketFilter):
    """TBF whose queue admission runs the PIE controller.

    The drop probability is updated every ``t_update`` seconds from the
    queue-delay error (``alpha``) and trend (``beta``), with RFC 8033's
    small-probability step scaling, and decays while the queue idles.
    Arrivals are randomly dropped with that probability unless the
    backlog is below two MTUs.
    """

    __slots__ = (
        "target_s",
        "t_update_s",
        "alpha",
        "beta",
        "_p",
        "_qdelay_old",
        "_next_update",
        "_rng",
        "early_drops",
        "early_drop_bytes",
    )

    def __init__(
        self,
        rate_bps,
        burst_bytes,
        limit_bytes,
        target=0.02,
        t_update=0.03,
        alpha=0.125,
        beta=1.25,
        seed=0,
    ):
        super().__init__(rate_bps, burst_bytes, limit_bytes)
        if target <= 0 or t_update <= 0:
            raise ValueError("PIE target and t_update must be positive")
        self.target_s = target
        self.t_update_s = t_update
        self.alpha = alpha
        self.beta = beta
        self._p = 0.0
        self._qdelay_old = 0.0
        self._next_update = 0.0
        self._rng = random.Random(seed)
        self.early_drops = 0
        self.early_drop_bytes = 0

    @property
    def drops(self):
        return self._queue.drops + self.early_drops

    @property
    def drops_bytes(self):
        return self._queue.drops_bytes + self.early_drop_bytes

    @property
    def drop_prob(self):
        """PIE's current early-drop probability."""
        return self._p

    def shaper_stats(self):
        return {
            "pie.early_drops_total": self.early_drops,
            "pie.early_drop_bytes_total": self.early_drop_bytes,
        }

    def _update_p(self, now):
        qdelay = self._queue.backlog_bytes * 8.0 / self.rate_bps
        delta = self.alpha * (qdelay - self.target_s)
        delta += self.beta * (qdelay - self._qdelay_old)
        p = self._p
        if p < 0.000001:
            delta /= 2048.0
        elif p < 0.00001:
            delta /= 512.0
        elif p < 0.0001:
            delta /= 128.0
        elif p < 0.001:
            delta /= 32.0
        elif p < 0.01:
            delta /= 8.0
        elif p < 0.1:
            delta /= 2.0
        p += delta
        if qdelay == 0.0 and self._qdelay_old == 0.0:
            p *= 0.98
        self._p = min(max(p, 0.0), 1.0)
        self._qdelay_old = qdelay
        self._next_update = now + self.t_update_s

    def enqueue(self, packet, now):
        if now >= self._next_update:
            self._update_p(now)
        if self._p > 0.0 and self._queue.backlog_bytes > 2 * MTU_BYTES:
            if self._rng.random() < self._p:
                self.early_drops += 1
                self.early_drop_bytes += packet.size
                if _obs.ENABLED:
                    _obs.SINK.inc("netsim.pie.early_drops")
                    _obs.SINK.observe("netsim.pie.drop_prob_at_drop", self._p)
                return False
        return super().enqueue(packet, now)


class DualTokenBucketFilter(TokenBucketFilter):
    """Two-rate policer: committed (CIR) and peak (PIR) buckets in series.

    A packet is released only when *both* buckets hold its size in
    tokens.  With a large committed burst (the "boost" allowance) and a
    small peak burst, throughput runs at the peak rate until the boost
    is consumed, then steps down to the committed rate -- the signature
    of consumer "speed boost" plans.
    """

    __slots__ = ("peak_rate_bps", "peak_burst_bytes", "_peak_tokens", "peak_deferrals")

    def __init__(self, rate_bps, burst_bytes, limit_bytes, peak_rate_bps, peak_burst_bytes):
        super().__init__(rate_bps, burst_bytes, limit_bytes)
        if peak_rate_bps <= rate_bps:
            raise ValueError("peak rate must exceed the committed rate")
        if peak_burst_bytes <= 0:
            raise ValueError("peak burst must be positive")
        self.peak_rate_bps = peak_rate_bps
        self.peak_burst_bytes = peak_burst_bytes
        self._peak_tokens = float(peak_burst_bytes)
        self.peak_deferrals = 0

    def shaper_stats(self):
        return {"tbf.peak_deferrals_total": self.peak_deferrals}

    def _replenish(self, now):
        if now > self._last_update:
            dt = now - self._last_update
            self._tokens = min(
                self.burst_bytes, self._tokens + dt * self.rate_bps / 8.0
            )
            self._peak_tokens = min(
                self.peak_burst_bytes,
                self._peak_tokens + dt * self.peak_rate_bps / 8.0,
            )
            self._last_update = now

    def dequeue(self, now):
        queue = self._queue
        head = queue.peek()
        if head is None:
            return None, None
        self._replenish(now)
        size = head.size
        tokens = self._tokens
        peak = self._peak_tokens
        if tokens + 1e-9 >= size and peak + 1e-9 >= size:
            self._tokens = tokens - size if tokens > size else 0.0
            self._peak_tokens = peak - size if peak > size else 0.0
            return queue.dequeue(now)
        if peak + 1e-9 < size:
            self.peak_deferrals += 1
            if _obs.ENABLED:
                _obs.SINK.inc("netsim.tbf.peak_deferrals")
        if _obs.ENABLED:
            _obs.SINK.inc("netsim.tbf.deferrals")
            _obs.SINK.observe(
                "netsim.tbf.token_debt_bytes",
                max(size - tokens, size - peak, 0.0),
            )
            _obs.SINK.observe(
                "netsim.tbf.occupancy_at_deferral_bytes", queue.backlog_bytes
            )
        wait_cir = (size - tokens) * 8.0 / self.rate_bps if tokens < size else 0.0
        wait_pir = (size - peak) * 8.0 / self.peak_rate_bps if peak < size else 0.0
        return None, now + max(wait_cir, wait_pir) + 1e-9


class ConditionalTokenBucket(TokenBucketFilter):
    """Delayed throttling: a pure FIFO until a trigger, then a TBF.

    The trigger is a byte volume of class traffic (``trigger_bytes``),
    a wall-clock deadline (``trigger_after_s``), or both (first to
    fire wins).  On tripping, the bucket starts full so the transition
    looks exactly like a policer being switched on -- the qdisc-level
    generalization of ISP5's delayed-trigger classifier.
    """

    __slots__ = (
        "trigger_bytes",
        "trigger_after_s",
        "seen_bytes",
        "tripped",
        "tripped_at",
    )

    def __init__(
        self,
        rate_bps,
        burst_bytes,
        limit_bytes,
        trigger_bytes=None,
        trigger_after_s=None,
    ):
        super().__init__(rate_bps, burst_bytes, limit_bytes)
        if trigger_bytes is None and trigger_after_s is None:
            raise ValueError(
                "conditional shaper needs trigger_bytes and/or trigger_after_s"
            )
        self.trigger_bytes = trigger_bytes
        self.trigger_after_s = trigger_after_s
        self.seen_bytes = 0.0
        self.tripped = False
        self.tripped_at = None
        if trigger_bytes is not None and trigger_bytes <= 0:
            self._trip(0.0)  # zero trigger = always-on policer

    def shaper_stats(self):
        return {
            "conditional.trips_total": 1 if self.tripped else 0,
            "conditional.trigger_seen_bytes": self.seen_bytes,
        }

    def _trip(self, now):
        self.tripped = True
        self.tripped_at = now
        # Throttling starts with a full bucket, as if just configured.
        self._tokens = float(self.burst_bytes)
        self._last_update = now
        if _obs.ENABLED:
            _obs.SINK.inc("netsim.conditional.trips")

    def _maybe_trip_time(self, now):
        if (
            not self.tripped
            and self.trigger_after_s is not None
            and now >= self.trigger_after_s
        ):
            self._trip(now)

    def enqueue(self, packet, now):
        self._maybe_trip_time(now)
        if not self.tripped:
            self.seen_bytes += packet.size
            if self.trigger_bytes is not None and self.seen_bytes >= self.trigger_bytes:
                self._trip(now)
        return super().enqueue(packet, now)

    def dequeue(self, now):
        self._maybe_trip_time(now)
        if self.tripped:
            return super().dequeue(now)
        # Pre-trigger: line-rate FIFO; tokens stay banked at full burst.
        self._last_update = now
        if self._queue.peek() is None:
            return None, None
        return self._queue.dequeue(now)


# -- registered device factories -------------------------------------


def _build_red_device(
    rate_bps,
    rtt_s=0.035,
    queue_factor=0.5,
    fifo_capacity=500_000,
    buffer_s=0.25,
    min_th=0.25,
    max_th=0.75,
    max_p=0.1,
    w_q=0.05,
    seed=0,
):
    burst, _ = standard_sizing(rate_bps, rtt_s, queue_factor)
    limit = _aqm_buffer_bytes(rate_bps, queue_factor, buffer_s)
    shaper = RedTokenBucket(
        rate_bps, burst, limit,
        min_th=min_th, max_th=max_th, max_p=max_p, w_q=w_q, seed=seed,
    )
    return DualClassQdisc(shaper, DropTailQueue(fifo_capacity))


def _build_ecn_device(
    rate_bps,
    rtt_s=0.035,
    queue_factor=0.5,
    fifo_capacity=500_000,
    buffer_s=0.25,
    min_th=0.25,
    max_th=0.75,
    max_p=0.1,
    w_q=0.05,
    seed=0,
):
    burst, _ = standard_sizing(rate_bps, rtt_s, queue_factor)
    limit = _aqm_buffer_bytes(rate_bps, queue_factor, buffer_s)
    shaper = RedTokenBucket(
        rate_bps, burst, limit,
        min_th=min_th, max_th=max_th, max_p=max_p, w_q=w_q, ecn=True, seed=seed,
    )
    return DualClassQdisc(shaper, DropTailQueue(fifo_capacity))


def _ecn_bucket(rate_bps, burst_bytes, limit_bytes, **params):
    params.setdefault("ecn", True)
    return RedTokenBucket(rate_bps, burst_bytes, limit_bytes, **params)


def _build_codel_device(
    rate_bps,
    rtt_s=0.035,
    queue_factor=0.5,
    fifo_capacity=500_000,
    buffer_s=0.25,
    target=0.005,
    interval=0.1,
):
    burst, _ = standard_sizing(rate_bps, rtt_s, queue_factor)
    limit = _aqm_buffer_bytes(rate_bps, queue_factor, buffer_s)
    shaper = CoDelTokenBucket(rate_bps, burst, limit, target=target, interval=interval)
    return DualClassQdisc(shaper, DropTailQueue(fifo_capacity))


def _build_pie_device(
    rate_bps,
    rtt_s=0.035,
    queue_factor=0.5,
    fifo_capacity=500_000,
    buffer_s=0.25,
    target=0.02,
    t_update=0.03,
    alpha=0.125,
    beta=1.25,
    seed=0,
):
    burst, _ = standard_sizing(rate_bps, rtt_s, queue_factor)
    limit = _aqm_buffer_bytes(rate_bps, queue_factor, buffer_s)
    shaper = PieTokenBucket(
        rate_bps, burst, limit,
        target=target, t_update=t_update, alpha=alpha, beta=beta, seed=seed,
    )
    return DualClassQdisc(shaper, DropTailQueue(fifo_capacity))


def _build_dual_tbf_device(
    rate_bps,
    rtt_s=0.035,
    queue_factor=0.5,
    fifo_capacity=500_000,
    peak_factor=2.0,
    boost_bytes=1_500_000,
):
    burst, limit = standard_sizing(rate_bps, rtt_s, queue_factor)
    peak_rate = peak_factor * rate_bps
    peak_burst = max(int(peak_rate * rtt_s / 8.0), 3000)
    cir_burst = max(int(boost_bytes), burst)
    shaper = DualTokenBucketFilter(rate_bps, cir_burst, limit, peak_rate, peak_burst)
    return DualClassQdisc(shaper, DropTailQueue(fifo_capacity))


def _build_conditional_device(
    rate_bps,
    rtt_s=0.035,
    queue_factor=0.5,
    fifo_capacity=500_000,
    trigger_bytes=4_000_000.0,
    trigger_after_s=None,
):
    burst, limit = standard_sizing(rate_bps, rtt_s, queue_factor)
    shaper = ConditionalTokenBucket(
        rate_bps, burst, limit,
        trigger_bytes=trigger_bytes, trigger_after_s=trigger_after_s,
    )
    return DualClassQdisc(shaper, DropTailQueue(fifo_capacity))


register(
    "red",
    packet=_build_red_device,
    shaper=RedTokenBucket,
    seeded=True,
    doc="Random Early Detection over the throttled class (Floyd/Jacobson)",
)
register(
    "ecn",
    packet=_build_ecn_device,
    shaper=_ecn_bucket,
    seeded=True,
    doc="RED variant that ECN-marks instead of dropping",
)
register(
    "codel",
    packet=_build_codel_device,
    shaper=CoDelTokenBucket,
    doc="Controlled-Delay AQM, head drops at dequeue (RFC 8289)",
)
register(
    "pie",
    packet=_build_pie_device,
    shaper=PieTokenBucket,
    seeded=True,
    doc="Proportional-Integral controller Enhanced AQM (RFC 8033)",
)
register(
    "dual_tbf",
    packet=_build_dual_tbf_device,
    shaper=DualTokenBucketFilter,
    doc="two-rate CIR/PIR policer with a boost allowance (RFC 2698 shape)",
)
register(
    "conditional",
    packet=_build_conditional_device,
    shaper=ConditionalTokenBucket,
    doc="delayed throttling: FIFO until N bytes or T seconds, then TBF",
)
