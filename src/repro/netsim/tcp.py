"""TCP sender/receiver model.

A single-direction bulk-transfer TCP with the pieces that matter for the
paper's phenomena:

- congestion control: slow start + Cubic (default) or Reno congestion
  avoidance, with IW10;
- loss recovery: fast retransmit on three duplicate ACKs with a
  NewReno-style recovery phase, and RTO with exponential backoff;
- *pacing* (Section 3.4): packets leave at ``cwnd / srtt`` instead of in
  ACK-clocked bursts, which is one of WeHeY's two trace modifications;
- *retransmission logging*: every retransmission is recorded at the time
  the sender detects it -- this is exactly the noisy, delayed,
  overcounting server-side loss signal that Algorithm 1 is designed to
  tolerate.

The receiver ACKs every segment cumulatively (no delayed ACKs), which
generates duplicate ACKs on gaps just like a real stack.
"""

from repro.netsim.packet import ACK, ACK_BYTES, DATA, HEADER_BYTES, Packet
from repro.obs import metrics as _obs

MSS = 1448  # payload bytes per segment
SEGMENT_WIRE_BYTES = MSS + HEADER_BYTES

CUBIC_C = 0.4
CUBIC_BETA = 0.7
RENO_BETA = 0.5
MIN_RTO = 0.2
MAX_RTO = 10.0
INITIAL_CWND = 10.0
MAX_CWND = 2000.0
DUPACK_THRESHOLD = 3


class TcpReceiver:
    """Cumulative-ACK receiver; delivers ACKs over a reverse path."""

    def __init__(self, sim, flow_id, capture=None):
        self.sim = sim
        self.flow_id = flow_id
        self.capture = capture
        self.reverse_path = None  # wired by the sender
        self.rcv_nxt = 0
        self._out_of_order = set()
        self.bytes_received = 0
        self.packets_received = 0

    def receive(self, packet):
        if packet.kind != DATA:
            return
        self.packets_received += 1
        self.bytes_received += packet.size - HEADER_BYTES
        if packet.seq == self.rcv_nxt:
            self.rcv_nxt += MSS
            while self.rcv_nxt in self._out_of_order:
                self._out_of_order.discard(self.rcv_nxt)
                self.rcv_nxt += MSS
        elif packet.seq > self.rcv_nxt:
            self._out_of_order.add(packet.seq)
        if self.capture is not None:
            self.capture.on_arrival(
                self.sim.now, packet.size - HEADER_BYTES, marked=packet.ecn != 0
            )
        ack = Packet(
            self.flow_id,
            ACK,
            self.rcv_nxt,
            ACK_BYTES,
            sent_at=packet.sent_at,
            is_retx=packet.is_retx,
            # The ACK carries (a reference to) the receiver's
            # out-of-order block set -- the simulation equivalent of
            # SACK blocks.  Senders must treat it as read-only.
            sack=self._out_of_order if self._out_of_order else None,
            # ECN echo: the congestion-experienced mark rides back to
            # the sender (simplified ECE -- no latched state).
            ecn=packet.ecn,
        )
        self.reverse_path.inject(ack)


class TcpSender:
    """Bulk TCP sender with Cubic/Reno, pacing, and retransmission logs.

    Parameters:
        sim: the simulator.
        flow_id: flow identifier stamped on packets.
        path: forward :class:`~repro.netsim.path.Path` (must end at the
            matching :class:`TcpReceiver`).
        receiver: the receiver; its ``reverse_path`` is wired here.
        reverse_path: path carrying ACKs back (usually a ``DirectPath``).
        dscp: DSCP marking -- 1 means the flow is subject to throttling.
        cc: ``"cubic"`` or ``"reno"``.
        pacing: when True, spread transmissions at ``cwnd/srtt``.
        total_bytes: stop after this much payload (None = run until
            ``stop()`` or ``stop_at``).
        app_source: optional application-limiting source with
            ``available_bytes(now)`` and ``next_release_after(now)``;
            the sender never runs ahead of what the application has
            written.  WeHe's trace replays are app-limited by the
            recorded trace (the server writes the trace's payload on
            its original schedule), which bounds slow-start overshoot.
    """

    def __init__(
        self,
        sim,
        flow_id,
        path,
        receiver,
        reverse_path,
        dscp=0,
        cc="cubic",
        pacing=True,
        total_bytes=None,
        start_at=0.0,
        stop_at=None,
        app_source=None,
    ):
        if cc not in ("cubic", "reno"):
            raise ValueError(f"unknown congestion control {cc!r}")
        self.sim = sim
        self.flow_id = flow_id
        self.path = path
        self.receiver = receiver
        receiver.reverse_path = reverse_path
        self.dscp = dscp
        self.cc = cc
        self.pacing = pacing
        self.total_bytes = total_bytes
        self.stop_at = stop_at
        self.app_source = app_source
        self._app_wait_handle = None

        # Connection state.
        self.snd_una = 0
        self.snd_nxt = 0
        self.cwnd = INITIAL_CWND
        self.ssthresh = float("inf")
        self.dup_acks = 0
        self.in_recovery = False
        self.recover = -1  # below any seq, so the first loss can recover
        self.srtt = None
        self.rttvar = None
        self.rto = 1.0
        self._rto_backoff = 1
        self._rto_handle = None
        self._pace_handle = None
        self._retx_queue = []  # (seq, reason) pairs awaiting retransmission
        # seq -> time of last retransmission this recovery; a hole may
        # be resent again once ~an RTO has passed (lost retransmissions
        # must not deadlock recovery -- real SACK senders re-mark them).
        self._retransmitted = {}
        self._highest_sent = 0  # highest byte ever transmitted
        self._last_sack = None  # most recent SACK block set from the receiver
        self._stopped = False
        self._last_send_time = -1.0

        # Cubic state.
        self._w_max = INITIAL_CWND
        self._epoch_start = None
        self._cubic_k = 0.0

        # Measurement logs (the server side of the paper's Section 3.4).
        self.send_times = []  # every data transmission, incl. retx
        self.retx_log = []  # (time, seq, reason) at *detection* time
        self.rtt_samples = []  # (time, rtt)
        self.packets_sent = 0
        self.min_rtt = None

        sim.schedule_at(start_at, self._start)
        if stop_at is not None:
            sim.schedule_at(stop_at, self.stop)

    # -- lifecycle ---------------------------------------------------

    def _start(self):
        if self._stopped:
            return
        self._send_loop()

    def stop(self):
        """Stop transmitting; in-flight packets still drain."""
        self._stopped = True
        if self._rto_handle is not None:
            self._rto_handle.cancel()
            self._rto_handle = None
        if self._pace_handle is not None:
            self._pace_handle.cancel()
            self._pace_handle = None
        if self._app_wait_handle is not None:
            self._app_wait_handle.cancel()
            self._app_wait_handle = None

    # -- sending -----------------------------------------------------

    def _inflight_packets(self):
        return (self.snd_nxt - self.snd_una) / MSS

    def _has_data(self):
        if self.total_bytes is not None and self.snd_nxt >= self.total_bytes:
            return False
        if self.app_source is not None:
            if self.snd_nxt + MSS > self.app_source.available_bytes(self.sim.now):
                self._wait_for_app()
                return False
        return True

    def _wait_for_app(self):
        """Re-enter the send loop when the application writes more data."""
        if self._app_wait_handle is not None and not self._app_wait_handle.cancelled:
            return
        release = self.app_source.next_release_after(self.sim.now)
        if release is None:
            return
        self._app_wait_handle = self.sim.schedule_at_cancellable(
            max(release, self.sim.now + 1e-6), self._on_app_data
        )

    def _on_app_data(self):
        self._app_wait_handle = None
        self._kick_sending()

    def _pacing_interval(self):
        rtt = self.srtt if self.srtt is not None else 0.05
        rate = max(self.cwnd, 1.0) / max(rtt, 1e-4)  # packets/s
        return 1.0 / rate

    def _can_send(self):
        return self._retx_queue or (
            self._has_data() and self._inflight_packets() < self.cwnd
        )

    def _send_loop(self):
        """Send as permitted; with pacing, one packet per timer tick.

        Pacing enforces a true minimum inter-packet gap of
        ``srtt / cwnd`` -- ACK arrivals never trigger immediate
        transmissions, they only (re)arm the pacing timer.  This is the
        Section-3.4 modification that lets replay packets "jump over"
        correlation-inducing loss bursts.
        """
        if self._stopped:
            return
        self._pace_handle = None
        if not self.pacing:
            while self._can_send():
                self._send_one()
            return
        if not self._can_send():
            return
        gap = self._pacing_interval()
        due = self._last_send_time + gap
        if due > self.sim.now:
            self._pace_handle = self.sim.schedule_at_cancellable(due, self._send_loop)
            return
        self._send_one()
        if self._can_send():
            self._pace_handle = self.sim.schedule_cancellable(gap, self._send_loop)

    def _send_one(self):
        if self._retx_queue:
            seq, reason = self._retx_queue.pop(0)
            self._transmit(seq, reason=reason)
        else:
            # After an RTO go-back, snd_nxt re-walks old territory;
            # skip segments the receiver already holds (SACK blocks).
            while (
                self.snd_nxt < self._highest_sent
                and self._last_sack
                and self.snd_nxt in self._last_sack
            ):
                self.snd_nxt += MSS
            reason = "rto-gb" if self.snd_nxt < self._highest_sent else None
            self._transmit(self.snd_nxt, reason=reason)
            self.snd_nxt += MSS
        self._last_send_time = self.sim.now

    def _queue_retransmit(self, seq, reason):
        """Queue a retransmission, at most once per re-arm period.

        A segment already retransmitted is eligible again after roughly
        an RTO -- its retransmission may itself have been lost, and
        recovery must not deadlock waiting for a timer-backoff chain.
        """
        last = self._retransmitted.get(seq)
        rearm = max(self.rto, MIN_RTO)
        if last is not None and self.sim.now - last < rearm:
            return False
        self._retransmitted[seq] = self.sim.now
        self._retx_queue.append((seq, reason))
        return True

    def _transmit(self, seq, reason=None):
        is_retx = seq < self._highest_sent
        packet = Packet(
            self.flow_id,
            DATA,
            seq,
            SEGMENT_WIRE_BYTES,
            dscp=self.dscp,
            sent_at=self.sim.now,
            is_retx=is_retx,
        )
        if is_retx:
            # Loss events are registered when the retransmission leaves
            # the server -- this is what a capture-based estimator sees.
            self.retx_log.append((self.sim.now, seq, reason or "retx"))
            if _obs.ENABLED:
                _obs.SINK.inc("netsim.tcp.retransmits")
                _obs.SINK.inc(f"netsim.tcp.retransmits.{reason or 'retx'}")
        self._highest_sent = max(self._highest_sent, seq + MSS)
        self.send_times.append(self.sim.now)
        self.packets_sent += 1
        self.path.inject(packet)
        self._arm_rto()

    def _kick_sending(self):
        if self._stopped:
            return
        if self.pacing:
            if self._pace_handle is None or self._pace_handle.cancelled:
                self._send_loop()
        else:
            self._send_loop()

    # -- RTO ---------------------------------------------------------

    def _arm_rto(self, force=False):
        if self._rto_handle is not None and not self._rto_handle.cancelled:
            if not force:
                return
            self._rto_handle.cancel()
        timeout = min(self.rto * self._rto_backoff, MAX_RTO)
        self._rto_handle = self.sim.schedule_cancellable(timeout, self._on_rto)

    def _on_rto(self):
        self._rto_handle = None
        if self._stopped or self.snd_una >= self.snd_nxt:
            return
        if _obs.ENABLED:
            _obs.SINK.inc("netsim.tcp.rto_events")
        # Loss by timeout: collapse the window and retransmit the head.
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0
        self.dup_acks = 0
        self.in_recovery = False
        self._epoch_start = None
        self._rto_backoff = min(self._rto_backoff * 2, 64)
        self._retransmitted.clear()
        self._retx_queue = []
        # Go-back-N: everything past snd_una is presumed lost; snd_nxt
        # re-walks from the hole, skipping SACKed blocks.  Without this
        # a large lost burst leaves phantom "in flight" data that jams
        # the window and reduces the flow to one segment per RTO.
        self.snd_nxt = self.snd_una
        self._kick_sending()

    # -- receiving ACKs ----------------------------------------------

    def receive(self, packet):
        if packet.kind != ACK:
            return
        self._on_ack(packet)

    def _on_ack(self, packet):
        ack = packet.seq
        if packet.sack is not None:
            self._last_sack = packet.sack
        elif ack > self.snd_una:
            # Receiver holds nothing out of order anymore.
            self._last_sack = None
        if ack > self.snd_una:
            newly_acked = (ack - self.snd_una) / MSS
            self.snd_una = ack
            self.dup_acks = 0
            self._rto_backoff = 1
            if not packet.is_retx:
                self._rtt_sample(self.sim.now - packet.sent_at)
            if self.in_recovery:
                if ack >= self.recover:
                    self.in_recovery = False
                    self._retransmitted.clear()
                else:
                    # NewReno partial ACK: the next segment is also
                    # lost (unless SACK-lite already resent it).
                    self._queue_retransmit(self.snd_una, "partial")
            elif packet.ecn and self.snd_una > self.recover:
                # ECN echo: multiplicative backoff, at most once per
                # window (RFC 3168 semantics) -- no retransmission.
                self._ecn_backoff()
            else:
                self._grow_cwnd(newly_acked)
            if self.snd_una < self.snd_nxt:
                self._arm_rto(force=True)
            elif self._rto_handle is not None:
                self._rto_handle.cancel()
                self._rto_handle = None
            self._kick_sending()
        elif ack == self.snd_una and self.snd_una < self.snd_nxt:
            self.dup_acks += 1
            # Early retransmit (RFC 5827): with fewer than 4 segments in
            # flight, three duplicate ACKs can never arrive; lower the
            # threshold so small-window losses are still detected by
            # dupACKs instead of waiting out a full RTO.
            inflight = self._inflight_packets()
            threshold = DUPACK_THRESHOLD
            if inflight < DUPACK_THRESHOLD + 1:
                threshold = max(1, int(inflight) - 1)
            # NewReno "careful" variant (RFC 6582): never start a new
            # fast-retransmit episode for data below the previous
            # episode's recover point -- dupACKs caused by our own
            # duplicate (spurious) retransmissions would otherwise
            # trigger a self-sustaining retransmission storm.
            if (
                self.dup_acks >= threshold
                and not self.in_recovery
                and self.snd_una > self.recover
            ):
                self._fast_retransmit()
            elif self.in_recovery:
                self._sack_fill_hole(packet)
                # Window inflation lets new data trickle out.
                self._kick_sending()

    def _sack_fill_hole(self, packet):
        """SACK-lite: resend the next hole below the receiver's highest
        out-of-order byte without waiting for a partial ACK.

        Linux servers run SACK, which detects every loss of a burst
        within about one RTT; without this the registration times of a
        loss burst smear over many RTTs and Algorithm 1's fine interval
        sizes lose their correlation signal.
        """
        blocks = packet.sack
        if not blocks:
            return
        top = max(blocks)
        rearm = max(self.rto, MIN_RTO)
        hole = self.snd_una
        while hole < top:
            if hole not in blocks:
                last = self._retransmitted.get(hole)
                if last is None or self.sim.now - last >= rearm:
                    self._queue_retransmit(hole, "sack")
                    return
            hole += MSS

    def _ecn_backoff(self):
        """Congestion response to an ECN echo: halve, don't retransmit.

        Reuses the fast-retransmit window math but leaves the data
        stream alone -- nothing was lost.  ``recover`` advances so
        further echoes within the same window are ignored.
        """
        self.recover = self.snd_nxt
        beta = CUBIC_BETA if self.cc == "cubic" else RENO_BETA
        self._w_max = self.cwnd
        self.cwnd = max(self.cwnd * beta, 2.0)
        self.ssthresh = self.cwnd
        if self.cc == "cubic":
            self._epoch_start = self.sim.now
            self._cubic_k = ((self._w_max * (1.0 - CUBIC_BETA)) / CUBIC_C) ** (1.0 / 3.0)
        if _obs.ENABLED:
            _obs.SINK.inc("netsim.tcp.ecn_backoffs")

    def _fast_retransmit(self):
        self.in_recovery = True
        self.recover = self.snd_nxt
        beta = CUBIC_BETA if self.cc == "cubic" else RENO_BETA
        self._w_max = self.cwnd
        self.cwnd = max(self.cwnd * beta, 2.0)
        self.ssthresh = self.cwnd
        if self.cc == "cubic":
            self._epoch_start = self.sim.now
            self._cubic_k = ((self._w_max * (1.0 - CUBIC_BETA)) / CUBIC_C) ** (1.0 / 3.0)
        self._retransmitted.clear()
        self._queue_retransmit(self.snd_una, "fast")
        self._kick_sending()

    # -- congestion window -------------------------------------------

    def _grow_cwnd(self, newly_acked):
        if self.cwnd < self.ssthresh:
            self.cwnd = min(self.cwnd + newly_acked, MAX_CWND)
            return
        if self.cc == "reno":
            self.cwnd = min(self.cwnd + newly_acked / self.cwnd, MAX_CWND)
            return
        # Cubic congestion avoidance.
        if self._epoch_start is None:
            self._epoch_start = self.sim.now
            self._w_max = max(self._w_max, self.cwnd)
            self._cubic_k = (
                max(self._w_max - self.cwnd, 0.0) / CUBIC_C
            ) ** (1.0 / 3.0)
        t = self.sim.now - self._epoch_start
        target = CUBIC_C * (t - self._cubic_k) ** 3 + self._w_max
        if target > self.cwnd:
            self.cwnd = min(
                self.cwnd + (target - self.cwnd) / self.cwnd * newly_acked, MAX_CWND
            )
        else:
            # TCP-friendly floor: creep up slowly.
            self.cwnd = min(self.cwnd + 0.01 * newly_acked / self.cwnd, MAX_CWND)

    # -- RTT estimation ----------------------------------------------

    def _rtt_sample(self, rtt):
        if rtt <= 0:
            return
        self.rtt_samples.append((self.sim.now, rtt))
        if self.min_rtt is None or rtt < self.min_rtt:
            self.min_rtt = rtt
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt
        self.rto = min(max(self.srtt + 4.0 * self.rttvar, MIN_RTO), MAX_RTO)

    # -- derived statistics ------------------------------------------

    @property
    def retransmission_rate(self):
        """Retransmissions / transmissions -- the paper's retx-rate metric."""
        if self.packets_sent == 0:
            return 0.0
        return len(self.retx_log) / self.packets_sent

    def mean_queuing_delay(self):
        """Average RTT minus minimum RTT (the paper's Appendix C.2 metric)."""
        if not self.rtt_samples or self.min_rtt is None:
            return 0.0
        mean_rtt = sum(r for _, r in self.rtt_samples) / len(self.rtt_samples)
        return max(0.0, mean_rtt - self.min_rtt)
