"""Token-bucket rate limiter (Appendix C.1 of the paper).

The paper's differentiation device has three components:

1. a *classifier* that sends ``dscp == 1`` traffic (original WeHe traces
   plus a share of same-service background traffic) to a token-bucket
   filter and everything else to a plain FIFO;
2. two queues -- the FIFO and the TBF queue;
3. a *forwarding scheduler* that serves the two queues round-robin.

The TBF is configured following tc-tbf / Juniper guidelines: ``rate`` is
the throttling rate, ``burst`` is the bucket size (the paper always uses
``rate x RTT``), and ``limit`` is the TBF queue size, which controls
whether the device behaves as a policer (small limit, drops) or a shaper
(large limit, delays).
"""

import warnings

from repro.netsim.qdisc import Qdisc, register, standard_sizing
from repro.netsim.queues import DropTailQueue
from repro.obs import metrics as _obs


class TokenBucketFilter(Qdisc):
    """A token bucket gating a drop-tail queue.

    Tokens (in bytes) accrue continuously at ``rate_bps / 8`` per second
    up to ``burst_bytes``.  A queued packet may be forwarded only when
    the bucket holds at least its size in tokens.  Arrivals that find the
    queue full are dropped -- with a small ``limit_bytes`` this is
    exactly a policer.
    """

    __slots__ = ("rate_bps", "burst_bytes", "_queue", "_tokens", "_last_update")

    def __init__(self, rate_bps, burst_bytes, limit_bytes):
        if rate_bps <= 0:
            raise ValueError("TBF rate must be positive")
        if burst_bytes <= 0:
            raise ValueError("TBF burst must be positive")
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self._queue = DropTailQueue(max(limit_bytes, 1))
        self._tokens = float(burst_bytes)
        self._last_update = 0.0

    def __len__(self):
        return len(self._queue)

    @property
    def drops(self):
        return self._queue.drops

    @property
    def drops_bytes(self):
        return self._queue.drops_bytes

    @property
    def enqueued(self):
        return self._queue.enqueued

    @property
    def mean_delay(self):
        return self._queue.mean_delay

    @property
    def backlog_bytes(self):
        return self._queue.backlog_bytes

    def tokens(self, now):
        """Tokens available at time ``now`` (bytes)."""
        self._replenish(now)
        return self._tokens

    def _replenish(self, now):
        if now > self._last_update:
            self._tokens = min(
                self.burst_bytes,
                self._tokens + (now - self._last_update) * self.rate_bps / 8.0,
            )
            self._last_update = now

    def enqueue(self, packet, now):
        accepted = self._queue.enqueue(packet, now)
        if not accepted and _obs.ENABLED:
            # The policer verdict: counts only TBF-queue overflows (the
            # generic netsim.queue.drops counter also ticks, inside the
            # inner drop-tail queue).
            _obs.SINK.inc("netsim.tbf.drops")
        return accepted

    def dequeue(self, now):
        queue = self._queue
        head = queue.peek()
        if head is None:
            return None, None
        tokens = self._tokens
        if now > self._last_update:
            tokens = min(
                self.burst_bytes,
                tokens + (now - self._last_update) * self.rate_bps / 8.0,
            )
            self._last_update = now
        # The 1e-9 tolerance absorbs float rounding so a wake-up scheduled
        # for "exactly enough tokens" cannot livelock the link.
        size = head.size
        if tokens + 1e-9 >= size:
            self._tokens = tokens - size if tokens > size else 0.0
            return queue.dequeue(now)
        self._tokens = tokens
        if _obs.ENABLED:
            # Deferrals fire only while the bucket is actively
            # throttling; token debt is how many bytes short the bucket
            # is of releasing the head-of-line packet.
            _obs.SINK.inc("netsim.tbf.deferrals")
            _obs.SINK.observe("netsim.tbf.token_debt_bytes", size - tokens)
            _obs.SINK.observe("netsim.tbf.occupancy_at_deferral_bytes", queue.backlog_bytes)
        wake = now + (size - tokens) * 8.0 / self.rate_bps + 1e-9
        return None, wake


class DualClassQdisc(Qdisc):
    """Classifier + FIFO + TBF + round-robin scheduler (Appendix C.1).

    ``classifier`` maps a packet to True when it belongs to the
    throttled class (the paper uses the DSCP field; the default
    classifier does exactly that).
    """

    __slots__ = ("tbf", "fifo", "classifier", "_serve_tbf_next")

    def __init__(self, tbf, fifo=None, classifier=None):
        self.tbf = tbf
        self.fifo = fifo if fifo is not None else DropTailQueue(500_000)
        self.classifier = classifier if classifier is not None else _dscp_classifier
        self._serve_tbf_next = False

    def __len__(self):
        return len(self.fifo) + len(self.tbf)

    @property
    def drops(self):
        return self.fifo.drops + self.tbf.drops

    @property
    def drops_bytes(self):
        return self.fifo.drops_bytes + self.tbf.drops_bytes

    @property
    def backlog_bytes(self):
        return self.fifo.backlog_bytes + self.tbf.backlog_bytes

    def enqueue(self, packet, now):
        if self.classifier(packet):
            return self.tbf.enqueue(packet, now)
        return self.fifo.enqueue(packet, now)

    def dequeue(self, now):
        # Round-robin between the two classes; when the preferred class
        # cannot supply a packet, fall through to the other.
        first, second = (
            (self.tbf, self.fifo) if self._serve_tbf_next else (self.fifo, self.tbf)
        )
        packet, wake = first.dequeue(now)
        if packet is not None:
            self._serve_tbf_next = first is self.fifo
            return packet, None
        packet2, wake2 = second.dequeue(now)
        if packet2 is not None:
            self._serve_tbf_next = second is self.fifo
            return packet2, None
        # Neither class is ready: report the earliest wake-up, if any.
        wakes = [w for w in (wake, wake2) if w is not None]
        return None, (min(wakes) if wakes else None)


def _dscp_classifier(packet):
    return packet.dscp == 1


def _build_tbf_device(rate_bps, rtt_s=0.035, queue_factor=0.5, fifo_capacity=500_000):
    """Build the paper's standard rate limiter.

    ``burst = rate x RTT`` (so the throttling rate is achieved on
    average), and the TBF queue size is ``queue_factor x burst``
    (0.25/0.5/1 in Table 2; smaller is more policer-like, larger more
    shaper-like).
    """
    burst, limit = standard_sizing(rate_bps, rtt_s, queue_factor)
    tbf = TokenBucketFilter(rate_bps, burst, limit)
    return DualClassQdisc(tbf, DropTailQueue(fifo_capacity))


register(
    "tbf",
    packet=_build_tbf_device,
    shaper=TokenBucketFilter,
    doc="single-rate token-bucket policer/shaper (Appendix C.1 device)",
)


def make_rate_limiter(rate_bps, rtt_s, queue_factor=0.5, fifo_capacity=500_000):
    """Deprecated alias for ``make_qdisc("tbf", ...)``."""
    warnings.warn(
        "make_rate_limiter is deprecated; use "
        "repro.netsim.qdisc.make_qdisc('tbf', ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _build_tbf_device(rate_bps, rtt_s, queue_factor, fifo_capacity)
