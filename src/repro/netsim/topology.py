"""The paper's Figure-1 topology.

Two paths, ``p1 = (l1, lc)`` and ``p2 = (l2, lc)``, start at different
servers, converge exactly once, and the convergence -- the common link
sequence ``lc`` -- is inside the target network area (the client's ISP).
The WeHe reference path ``p0 = (l0, lc)`` from a third (or the same)
server is also available for the single replay.

The rate limiter can sit on ``lc`` (the scenario WeHeY must detect) or
one copy on each of ``l1``/``l2`` (the adversarial false-positive
scenario of Table 5).  *Where* the limiter sits (``limiter``) is
orthogonal to *what* it is (``shaper``): any mechanism registered with
:mod:`repro.netsim.qdisc` -- tbf, red, codel, pie, dual_tbf,
conditional, ecn, ... -- can be deployed at any placement, with
mechanism parameters passed through ``shaper_params``.
"""

from dataclasses import dataclass, field

from repro.netsim.link import Link
from repro.netsim.multipath import MultipathLink, shaped_member_subset
from repro.netsim.path import DirectPath, Path
from repro.netsim.qdisc import make_qdisc, qdisc_spec, supports_fidelity


@dataclass
class TopologyConfig:
    """Knobs for a Figure-1 instance (defaults match Table 2's bold values).

    Rates are bits/s, times are seconds.  ``limiter`` is ``"common"``,
    ``"noncommon"``, ``"perflow"`` or ``None``.  ``queue_factor`` is the
    TBF queue size as a multiple of the burst (0.25 / 0.5 / 1 in
    Table 2).  ``noncommon_bandwidth_bps`` lets Table 4's congestion
    experiments squeeze ``l1``/``l2``.

    ``shaper`` selects the rate-limiting *mechanism* deployed at the
    ``limiter`` placement (default ``"tbf"``, the paper's device);
    ``shaper_params`` is a tuple of ``(name, value)`` pairs forwarded to
    the registered factory, and ``shaper_seed`` seeds randomized
    mechanisms (RED/PIE draws), with each limiter instance getting a
    distinct derived seed.
    """

    common_bandwidth_bps: float = 100e6
    common_delay_s: float = 0.002
    noncommon_bandwidth_bps: float = 100e6
    rtt_1: float = 0.035
    rtt_2: float = 0.035
    limiter: str = None
    limiter_rate_bps: float = 4e6
    queue_factor: float = 0.5
    queue_capacity_bytes: int = 400_000
    extra_server_rtts: tuple = field(default_factory=tuple)
    #: ``"packet"`` builds the exact per-packet qdiscs; ``"hybrid"``
    #: builds their fluid twins so background load can arrive as a rate
    #: process (see :mod:`repro.netsim.fluid`).
    fidelity: str = "packet"
    shaper: str = None
    shaper_params: tuple = ()
    shaper_seed: int = 0
    #: ECMP bundle width of the common device: 0 builds the classic
    #: single ``lc`` link, N >= 1 builds a :class:`MultipathLink` with
    #: N members (each member keeps the full per-member bandwidth, so
    #: the bundle's aggregate capacity is N x ``common_bandwidth_bps``).
    multipath_members: int = 0
    #: flowlet re-hash gap (seconds); None = sticky ECMP.
    flowlet_gap_s: float = None
    #: how many members carry the limiter (None = all of them); the
    #: subset is a seeded draw, so a deployment that shapes only part
    #: of the bundle is reproducible per seed.
    multipath_shaped: int = None
    #: ECMP hash seed of the bundle.
    multipath_seed: int = 0

    def __post_init__(self):
        if self.limiter not in (None, "common", "noncommon", "perflow"):
            raise ValueError(f"unknown limiter placement {self.limiter!r}")
        if self.fidelity not in ("packet", "hybrid"):
            raise ValueError(f"unknown fidelity {self.fidelity!r}")
        for name in ("rtt_1", "rtt_2"):
            rtt = getattr(self, name)
            if rtt <= 2 * self.common_delay_s:
                raise ValueError(f"{name}={rtt} too small for common delay")
        if self.shaper is not None:
            qdisc_spec(self.shaper)  # raises on unknown mechanisms
            if self.limiter is None:
                raise ValueError("shaper requires a limiter placement")
            if self.limiter == "perflow":
                # Composition check: the per-flow device needs the bare
                # class-shaper half of the mechanism.
                if qdisc_spec(self.shaper).shaper is None:
                    raise ValueError(
                        f"shaper {self.shaper!r} cannot be used per-flow"
                    )
                if self.fidelity == "hybrid" and self.shaper != "tbf":
                    raise ValueError(
                        f"fluid per-flow has no {self.shaper!r} twin"
                    )
            elif not supports_fidelity(self.shaper, self.fidelity):
                raise ValueError(
                    f"shaper {self.shaper!r} has no {self.fidelity} "
                    "implementation (AQMs are packet-only)"
                )
        if self.shaper_params and self.shaper is None:
            raise ValueError("shaper_params requires a shaper")
        if self.multipath_members < 0:
            raise ValueError("multipath_members must be non-negative")
        if self.multipath_members:
            if self.fidelity != "packet":
                # The fluid twins model one queue per link; a bundle's
                # per-member hashing has no fluid counterpart (yet).
                raise ValueError("multipath requires fidelity='packet'")
            if self.multipath_shaped is not None and not (
                1 <= self.multipath_shaped <= self.multipath_members
            ):
                raise ValueError(
                    "multipath_shaped must be in [1, multipath_members]"
                )
        else:
            if self.flowlet_gap_s is not None:
                raise ValueError("flowlet_gap_s requires multipath_members >= 1")
            if self.multipath_shaped is not None:
                raise ValueError("multipath_shaped requires multipath_members >= 1")
        if self.flowlet_gap_s is not None and self.flowlet_gap_s <= 0:
            raise ValueError("flowlet_gap_s must be positive")


class FigureOneTopology:
    """Builds and owns the links of a Figure-1 experiment."""

    def __init__(self, sim, config):
        self.sim = sim
        self.config = config

        mean_rtt = (config.rtt_1 + config.rtt_2) / 2.0
        self._limiter_index = 0
        self._common_limiter_qdiscs = []
        if config.multipath_members:
            # The common device is an ECMP bundle: each member gets its
            # own qdisc instance (distinct derived seeds for randomized
            # mechanisms), and only the seeded ``multipath_shaped``
            # subset carries the limiter -- the rest are plain FIFOs.
            # The deployment's shaped capacity is split evenly across
            # the shaped members, so the Section-6.2 load definition
            # (input at ``input_rate_factor`` times the limiter rate)
            # still holds per member when flows spread evenly; per-flow
            # policers keep their full per-flow rate, which hashing
            # cannot dilute.
            shaped = set(
                shaped_member_subset(
                    config.multipath_members,
                    config.multipath_members
                    if config.multipath_shaped is None
                    else config.multipath_shaped,
                    config.multipath_seed,
                )
            )
            member_rate = None
            if config.limiter == "common":
                member_rate = config.limiter_rate_bps / len(shaped)
            member_qdiscs = [
                self._common_qdisc(mean_rtt, rate_bps=member_rate)
                if index in shaped
                else self._make_plain()
                for index in range(config.multipath_members)
            ]
            self.link_c = MultipathLink(
                sim,
                "lc",
                config.common_bandwidth_bps,
                config.common_delay_s,
                member_qdiscs,
                seed=config.multipath_seed,
                flowlet_gap_s=config.flowlet_gap_s,
            )
        else:
            self.link_c = Link(
                sim,
                "lc",
                config.common_bandwidth_bps,
                config.common_delay_s,
                self._common_qdisc(mean_rtt),
            )

        self.noncommon_links = []
        self._rtts = []
        rtts = [config.rtt_1, config.rtt_2] + list(config.extra_server_rtts)
        for i, rtt in enumerate(rtts, start=1):
            if config.limiter == "noncommon":
                qdisc = self._make_limiter(config.shaper or "tbf", rtt)
            else:
                qdisc = self._make_plain()
            forward_delay = max(rtt / 2.0 - config.common_delay_s, 1e-4)
            link = Link(
                sim,
                f"l{i}",
                config.noncommon_bandwidth_bps,
                forward_delay,
                qdisc,
            )
            self.noncommon_links.append(link)
            self._rtts.append(rtt)

        self.link_1 = self.noncommon_links[0]
        self.link_2 = self.noncommon_links[1]

    def _common_qdisc(self, mean_rtt, rate_bps=None):
        """One common-device qdisc instance per the limiter placement."""
        config = self.config
        if config.limiter == "common":
            qdisc = self._make_limiter(
                config.shaper or "tbf", mean_rtt, rate_bps=rate_bps
            )
        elif config.limiter == "perflow":
            qdisc = self._make_perflow(mean_rtt)
        else:
            return self._make_plain()
        self._common_limiter_qdiscs.append(qdisc)
        return qdisc

    def _make_plain(self):
        return make_qdisc(
            "droptail",
            fidelity=self.config.fidelity,
            capacity_bytes=self.config.queue_capacity_bytes,
        )

    def _shaper_kwargs(self, mechanism):
        """Mechanism params, plus a derived per-instance seed if needed."""
        params = dict(self.config.shaper_params)
        if qdisc_spec(mechanism).seeded:
            # Each limiter instance (noncommon placement builds several)
            # gets its own derived seed, in construction order.
            params.setdefault(
                "seed", self.config.shaper_seed + 1009 * self._limiter_index
            )
            self._limiter_index += 1
        return params

    def _make_limiter(self, mechanism, rtt, rate_bps=None):
        config = self.config
        return make_qdisc(
            mechanism,
            fidelity=config.fidelity,
            rate_bps=config.limiter_rate_bps if rate_bps is None else rate_bps,
            rtt_s=rtt,
            queue_factor=config.queue_factor,
            fifo_capacity=config.queue_capacity_bytes,
            **self._shaper_kwargs(mechanism),
        )

    def _make_perflow(self, rtt):
        config = self.config
        kwargs = {}
        if config.shaper is not None and config.shaper != "tbf":
            kwargs["shaper"] = config.shaper
            kwargs.update(self._shaper_kwargs(config.shaper))
            kwargs.setdefault("seed", config.shaper_seed)
        else:
            kwargs.update(dict(config.shaper_params))
        return make_qdisc(
            "perflow",
            fidelity=config.fidelity,
            rate_bps=config.limiter_rate_bps,
            rtt_s=rtt,
            queue_factor=config.queue_factor,
            fifo_capacity=config.queue_capacity_bytes,
            **kwargs,
        )

    def rtt(self, which):
        """Configured RTT of path ``which`` (1-based)."""
        return self._rtts[which - 1]

    def forward_path(self, which, sink):
        """Forward path from server ``which`` to the client sink."""
        return Path([self.noncommon_links[which - 1], self.link_c], sink)

    def reverse_path(self, which, sink, jitter=None):
        """Uncongested reverse (ACK) path for server ``which``."""
        return DirectPath(self.sim, self._rtts[which - 1] / 2.0, sink, jitter=jitter)

    @property
    def limiter_qdisc(self):
        """The rate-limiting qdisc on ``lc``, if any.

        For a multipath common device there is one limiter instance per
        shaped member; this returns the first (see
        :attr:`limiter_qdiscs` for all of them).
        """
        if self.config.limiter in ("common", "perflow"):
            if self._common_limiter_qdiscs:
                return self._common_limiter_qdiscs[0]
        return None

    @property
    def limiter_qdiscs(self):
        """Every limiter qdisc instance on the common device."""
        return tuple(self._common_limiter_qdiscs)
