"""The paper's Figure-1 topology.

Two paths, ``p1 = (l1, lc)`` and ``p2 = (l2, lc)``, start at different
servers, converge exactly once, and the convergence -- the common link
sequence ``lc`` -- is inside the target network area (the client's ISP).
The WeHe reference path ``p0 = (l0, lc)`` from a third (or the same)
server is also available for the single replay.

The rate limiter can sit on ``lc`` (the scenario WeHeY must detect) or
one copy on each of ``l1``/``l2`` (the adversarial false-positive
scenario of Table 5).  *Where* the limiter sits (``limiter``) is
orthogonal to *what* it is (``shaper``): any mechanism registered with
:mod:`repro.netsim.qdisc` -- tbf, red, codel, pie, dual_tbf,
conditional, ecn, ... -- can be deployed at any placement, with
mechanism parameters passed through ``shaper_params``.
"""

from dataclasses import dataclass, field

from repro.netsim.link import Link
from repro.netsim.path import DirectPath, Path
from repro.netsim.qdisc import make_qdisc, qdisc_spec, supports_fidelity


@dataclass
class TopologyConfig:
    """Knobs for a Figure-1 instance (defaults match Table 2's bold values).

    Rates are bits/s, times are seconds.  ``limiter`` is ``"common"``,
    ``"noncommon"``, ``"perflow"`` or ``None``.  ``queue_factor`` is the
    TBF queue size as a multiple of the burst (0.25 / 0.5 / 1 in
    Table 2).  ``noncommon_bandwidth_bps`` lets Table 4's congestion
    experiments squeeze ``l1``/``l2``.

    ``shaper`` selects the rate-limiting *mechanism* deployed at the
    ``limiter`` placement (default ``"tbf"``, the paper's device);
    ``shaper_params`` is a tuple of ``(name, value)`` pairs forwarded to
    the registered factory, and ``shaper_seed`` seeds randomized
    mechanisms (RED/PIE draws), with each limiter instance getting a
    distinct derived seed.
    """

    common_bandwidth_bps: float = 100e6
    common_delay_s: float = 0.002
    noncommon_bandwidth_bps: float = 100e6
    rtt_1: float = 0.035
    rtt_2: float = 0.035
    limiter: str = None
    limiter_rate_bps: float = 4e6
    queue_factor: float = 0.5
    queue_capacity_bytes: int = 400_000
    extra_server_rtts: tuple = field(default_factory=tuple)
    #: ``"packet"`` builds the exact per-packet qdiscs; ``"hybrid"``
    #: builds their fluid twins so background load can arrive as a rate
    #: process (see :mod:`repro.netsim.fluid`).
    fidelity: str = "packet"
    shaper: str = None
    shaper_params: tuple = ()
    shaper_seed: int = 0

    def __post_init__(self):
        if self.limiter not in (None, "common", "noncommon", "perflow"):
            raise ValueError(f"unknown limiter placement {self.limiter!r}")
        if self.fidelity not in ("packet", "hybrid"):
            raise ValueError(f"unknown fidelity {self.fidelity!r}")
        for name in ("rtt_1", "rtt_2"):
            rtt = getattr(self, name)
            if rtt <= 2 * self.common_delay_s:
                raise ValueError(f"{name}={rtt} too small for common delay")
        if self.shaper is not None:
            qdisc_spec(self.shaper)  # raises on unknown mechanisms
            if self.limiter is None:
                raise ValueError("shaper requires a limiter placement")
            if self.limiter == "perflow":
                # Composition check: the per-flow device needs the bare
                # class-shaper half of the mechanism.
                if qdisc_spec(self.shaper).shaper is None:
                    raise ValueError(
                        f"shaper {self.shaper!r} cannot be used per-flow"
                    )
                if self.fidelity == "hybrid" and self.shaper != "tbf":
                    raise ValueError(
                        f"fluid per-flow has no {self.shaper!r} twin"
                    )
            elif not supports_fidelity(self.shaper, self.fidelity):
                raise ValueError(
                    f"shaper {self.shaper!r} has no {self.fidelity} "
                    "implementation (AQMs are packet-only)"
                )
        if self.shaper_params and self.shaper is None:
            raise ValueError("shaper_params requires a shaper")


class FigureOneTopology:
    """Builds and owns the links of a Figure-1 experiment."""

    def __init__(self, sim, config):
        self.sim = sim
        self.config = config

        mean_rtt = (config.rtt_1 + config.rtt_2) / 2.0
        self._limiter_index = 0
        if config.limiter == "common":
            common_qdisc = self._make_limiter(config.shaper or "tbf", mean_rtt)
        elif config.limiter == "perflow":
            common_qdisc = self._make_perflow(mean_rtt)
        else:
            common_qdisc = self._make_plain()
        self.link_c = Link(
            sim, "lc", config.common_bandwidth_bps, config.common_delay_s, common_qdisc
        )

        self.noncommon_links = []
        self._rtts = []
        rtts = [config.rtt_1, config.rtt_2] + list(config.extra_server_rtts)
        for i, rtt in enumerate(rtts, start=1):
            if config.limiter == "noncommon":
                qdisc = self._make_limiter(config.shaper or "tbf", rtt)
            else:
                qdisc = self._make_plain()
            forward_delay = max(rtt / 2.0 - config.common_delay_s, 1e-4)
            link = Link(
                sim,
                f"l{i}",
                config.noncommon_bandwidth_bps,
                forward_delay,
                qdisc,
            )
            self.noncommon_links.append(link)
            self._rtts.append(rtt)

        self.link_1 = self.noncommon_links[0]
        self.link_2 = self.noncommon_links[1]

    def _make_plain(self):
        return make_qdisc(
            "droptail",
            fidelity=self.config.fidelity,
            capacity_bytes=self.config.queue_capacity_bytes,
        )

    def _shaper_kwargs(self, mechanism):
        """Mechanism params, plus a derived per-instance seed if needed."""
        params = dict(self.config.shaper_params)
        if qdisc_spec(mechanism).seeded:
            # Each limiter instance (noncommon placement builds several)
            # gets its own derived seed, in construction order.
            params.setdefault(
                "seed", self.config.shaper_seed + 1009 * self._limiter_index
            )
            self._limiter_index += 1
        return params

    def _make_limiter(self, mechanism, rtt):
        config = self.config
        return make_qdisc(
            mechanism,
            fidelity=config.fidelity,
            rate_bps=config.limiter_rate_bps,
            rtt_s=rtt,
            queue_factor=config.queue_factor,
            fifo_capacity=config.queue_capacity_bytes,
            **self._shaper_kwargs(mechanism),
        )

    def _make_perflow(self, rtt):
        config = self.config
        kwargs = {}
        if config.shaper is not None and config.shaper != "tbf":
            kwargs["shaper"] = config.shaper
            kwargs.update(self._shaper_kwargs(config.shaper))
            kwargs.setdefault("seed", config.shaper_seed)
        else:
            kwargs.update(dict(config.shaper_params))
        return make_qdisc(
            "perflow",
            fidelity=config.fidelity,
            rate_bps=config.limiter_rate_bps,
            rtt_s=rtt,
            queue_factor=config.queue_factor,
            fifo_capacity=config.queue_capacity_bytes,
            **kwargs,
        )

    def rtt(self, which):
        """Configured RTT of path ``which`` (1-based)."""
        return self._rtts[which - 1]

    def forward_path(self, which, sink):
        """Forward path from server ``which`` to the client sink."""
        return Path([self.noncommon_links[which - 1], self.link_c], sink)

    def reverse_path(self, which, sink, jitter=None):
        """Uncongested reverse (ACK) path for server ``which``."""
        return DirectPath(self.sim, self._rtts[which - 1] / 2.0, sink, jitter=jitter)

    @property
    def limiter_qdisc(self):
        """The rate-limiting qdisc on ``lc``, if any."""
        if self.config.limiter in ("common", "perflow"):
            return self.link_c.qdisc
        return None
