"""The paper's Figure-1 topology.

Two paths, ``p1 = (l1, lc)`` and ``p2 = (l2, lc)``, start at different
servers, converge exactly once, and the convergence -- the common link
sequence ``lc`` -- is inside the target network area (the client's ISP).
The WeHe reference path ``p0 = (l0, lc)`` from a third (or the same)
server is also available for the single replay.

The rate limiter can sit on ``lc`` (the scenario WeHeY must detect) or
one copy on each of ``l1``/``l2`` (the adversarial false-positive
scenario of Table 5).
"""

from dataclasses import dataclass, field

from repro.netsim.fluid import (
    FluidDropTailQueue,
    make_fluid_per_flow_limiter,
    make_fluid_rate_limiter,
)
from repro.netsim.link import Link
from repro.netsim.path import DirectPath, Path
from repro.netsim.per_flow import make_per_flow_limiter
from repro.netsim.queues import DropTailQueue
from repro.netsim.token_bucket import make_rate_limiter


@dataclass
class TopologyConfig:
    """Knobs for a Figure-1 instance (defaults match Table 2's bold values).

    Rates are bits/s, times are seconds.  ``limiter`` is ``"common"``,
    ``"noncommon"`` or ``None``.  ``queue_factor`` is the TBF queue size
    as a multiple of the burst (0.25 / 0.5 / 1 in Table 2).
    ``noncommon_bandwidth_bps`` lets Table 4's congestion experiments
    squeeze ``l1``/``l2``.
    """

    common_bandwidth_bps: float = 100e6
    common_delay_s: float = 0.002
    noncommon_bandwidth_bps: float = 100e6
    rtt_1: float = 0.035
    rtt_2: float = 0.035
    limiter: str = None
    limiter_rate_bps: float = 4e6
    queue_factor: float = 0.5
    queue_capacity_bytes: int = 400_000
    extra_server_rtts: tuple = field(default_factory=tuple)
    #: ``"packet"`` builds the exact per-packet qdiscs; ``"hybrid"``
    #: builds their fluid twins so background load can arrive as a rate
    #: process (see :mod:`repro.netsim.fluid`).
    fidelity: str = "packet"

    def __post_init__(self):
        if self.limiter not in (None, "common", "noncommon", "perflow"):
            raise ValueError(f"unknown limiter placement {self.limiter!r}")
        if self.fidelity not in ("packet", "hybrid"):
            raise ValueError(f"unknown fidelity {self.fidelity!r}")
        for name in ("rtt_1", "rtt_2"):
            rtt = getattr(self, name)
            if rtt <= 2 * self.common_delay_s:
                raise ValueError(f"{name}={rtt} too small for common delay")


class FigureOneTopology:
    """Builds and owns the links of a Figure-1 experiment."""

    def __init__(self, sim, config):
        self.sim = sim
        self.config = config

        hybrid = config.fidelity == "hybrid"
        rate_limiter = make_fluid_rate_limiter if hybrid else make_rate_limiter
        per_flow_limiter = (
            make_fluid_per_flow_limiter if hybrid else make_per_flow_limiter
        )
        plain_queue = FluidDropTailQueue if hybrid else DropTailQueue

        mean_rtt = (config.rtt_1 + config.rtt_2) / 2.0
        if config.limiter == "common":
            common_qdisc = rate_limiter(
                config.limiter_rate_bps,
                mean_rtt,
                config.queue_factor,
                fifo_capacity=config.queue_capacity_bytes,
            )
        elif config.limiter == "perflow":
            common_qdisc = per_flow_limiter(
                config.limiter_rate_bps,
                mean_rtt,
                config.queue_factor,
                fifo_capacity=config.queue_capacity_bytes,
            )
        else:
            common_qdisc = plain_queue(config.queue_capacity_bytes)
        self.link_c = Link(
            sim, "lc", config.common_bandwidth_bps, config.common_delay_s, common_qdisc
        )

        self.noncommon_links = []
        self._rtts = []
        rtts = [config.rtt_1, config.rtt_2] + list(config.extra_server_rtts)
        for i, rtt in enumerate(rtts, start=1):
            if config.limiter == "noncommon":
                qdisc = rate_limiter(
                    config.limiter_rate_bps,
                    rtt,
                    config.queue_factor,
                    fifo_capacity=config.queue_capacity_bytes,
                )
            else:
                qdisc = plain_queue(config.queue_capacity_bytes)
            forward_delay = max(rtt / 2.0 - config.common_delay_s, 1e-4)
            link = Link(
                sim,
                f"l{i}",
                config.noncommon_bandwidth_bps,
                forward_delay,
                qdisc,
            )
            self.noncommon_links.append(link)
            self._rtts.append(rtt)

        self.link_1 = self.noncommon_links[0]
        self.link_2 = self.noncommon_links[1]

    def rtt(self, which):
        """Configured RTT of path ``which`` (1-based)."""
        return self._rtts[which - 1]

    def forward_path(self, which, sink):
        """Forward path from server ``which`` to the client sink."""
        return Path([self.noncommon_links[which - 1], self.link_c], sink)

    def reverse_path(self, which, sink, jitter=None):
        """Uncongested reverse (ACK) path for server ``which``."""
        return DirectPath(self.sim, self._rtts[which - 1] / 2.0, sink, jitter=jitter)

    @property
    def limiter_qdisc(self):
        """The rate-limiting qdisc on ``lc``, if any."""
        if self.config.limiter in ("common", "perflow"):
            return self.link_c.qdisc
        return None
