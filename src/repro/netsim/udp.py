"""UDP trace replay.

The WeHe UDP applications (Skype, WhatsApp, MS Teams, Zoom, Webex) are
replayed packet-for-packet: the sender follows a schedule of
``(time, size)`` entries.  WeHeY's modification (Section 3.4) replaces
the original transmission times with a Poisson process of the same
average rate so that, by PASTA, the measured loss rate is an unbiased
estimate of the bottleneck's loss rate; that transformation lives in
:mod:`repro.wehe.traces` -- here we just replay whatever schedule we are
given.

Loss is measured at the *client* (Section 3.4): the receiver knows the
sender's sequence numbers, so gaps are losses, registered at the time
the surrounding packets arrive.
"""

from repro.netsim.packet import DATA, HEADER_BYTES, Packet

UDP_HEADER_BYTES = 28


class UdpReceiver:
    """Receives trace packets; infers loss from sequence gaps."""

    def __init__(self, sim, flow_id, capture=None):
        self.sim = sim
        self.flow_id = flow_id
        self.capture = capture
        self.received_seqs = set()
        self.arrivals = []  # (time, seq, payload_bytes)
        self.bytes_received = 0
        self.ecn_marks = 0

    def receive(self, packet):
        if packet.kind != DATA:
            return
        payload = packet.size - UDP_HEADER_BYTES
        self.received_seqs.add(packet.seq)
        self.arrivals.append((self.sim.now, packet.seq, payload))
        self.bytes_received += payload
        if packet.ecn:
            self.ecn_marks += 1
        if self.capture is not None:
            self.capture.on_arrival(self.sim.now, payload, marked=packet.ecn != 0)

    def loss_events(self, schedule, base_delay):
        """Reconstruct client-side loss events.

        ``schedule`` is the sender's list of ``(time, size)``; a packet
        absent from ``received_seqs`` is a loss, registered at the time
        it *would* have arrived (send time + path delay) -- this is how
        the client-side loss log of Section 3.4 looks.
        """
        events = []
        for seq, (t, _size) in enumerate(schedule):
            if seq not in self.received_seqs:
                events.append((t + base_delay, seq))
        return events


class UdpSender:
    """Replays a ``(time, size)`` schedule of UDP datagrams."""

    def __init__(self, sim, flow_id, path, schedule, dscp=0, start_at=0.0):
        self.sim = sim
        self.flow_id = flow_id
        self.path = path
        self.schedule = list(schedule)
        self.dscp = dscp
        self.start_at = start_at
        self.packets_sent = 0
        self.send_times = []
        for seq, (t, size) in enumerate(self.schedule):
            sim.schedule_at(start_at + t, self._transmit, seq, size)

    def _transmit(self, seq, size):
        wire_size = size + UDP_HEADER_BYTES
        packet = Packet(
            self.flow_id,
            DATA,
            seq,
            wire_size,
            dscp=self.dscp,
            sent_at=self.sim.now,
        )
        self.packets_sent += 1
        self.send_times.append(self.sim.now)
        self.path.inject(packet)


__all__ = ["UdpSender", "UdpReceiver", "UDP_HEADER_BYTES", "HEADER_BYTES"]
