"""``repro.obs`` -- the observability layer.

A lightweight, zero-overhead-when-disabled metrics and tracing
substrate for the whole stack:

- **metrics** (:mod:`repro.obs.metrics`): counters, gauges, and
  histograms recorded into a process-global sink that is a null object
  while disabled.  The netsim hot path instruments only rare events
  (TBF drops and token debt, queue drops, TCP retransmits and RTOs);
  per-run aggregates (link utilization, queue occupancy and delay) are
  harvested from statistics the simulator keeps anyway.
- **tracing** (:mod:`repro.obs.tracing`): spans around coordinator
  test attempts, localizer decisions, and store activity.
- **exporters** (:mod:`repro.obs.exporters`): snapshot -> JSONL file or
  a stderr summary table.

Enable collection for a block of code::

    from repro import obs

    sink = obs.MetricsSink()
    with obs.use_sink(sink):
        run_sweep(...)
    print(obs.summary_table(sink.snapshot()))

or pass ``metrics=True`` / ``metrics="out.jsonl"`` to
:func:`repro.api.run_sweep` (CLI: ``repro sweep --metrics[=PATH]``),
which wraps the sweep in a sink, aggregates worker-process deltas, and
exports for you.

Do **not** ``from``-import the module-level ``SINK``/``ENABLED`` of
:mod:`repro.obs.metrics`; read them as module attributes so rebinding
by :func:`enable`/:func:`use_sink` stays visible.

Metrics are observability data only.  They never feed back into a
simulation or an experiment record -- enabling them changes no record
byte (the CI metrics-smoke job enforces this).
"""

from repro.obs.exporters import snapshot_lines, summary_table, write_jsonl
from repro.obs.harvest import (
    harvest_link,
    harvest_qdisc,
    harvest_topology,
    harvest_topology_database,
)
from repro.obs.metrics import (
    NULL_SINK,
    MetricsSink,
    NullSink,
    disable,
    enable,
    enabled,
    merge_snapshot,
    use_sink,
)
from repro.obs.tracing import span

__all__ = [
    "MetricsSink",
    "NULL_SINK",
    "NullSink",
    "disable",
    "enable",
    "enabled",
    "harvest_link",
    "harvest_qdisc",
    "harvest_topology",
    "harvest_topology_database",
    "merge_snapshot",
    "snapshot_lines",
    "span",
    "summary_table",
    "use_sink",
    "write_jsonl",
]
