"""Exporters: snapshot dicts -> JSONL files / stderr summary tables.

Three surfaces, matching the three consumers:

- **in-memory**: a :meth:`MetricsSink.snapshot` dict -- what tests and
  :class:`repro.api.SweepResult.metrics` hand around;
- **JSONL** (:func:`write_jsonl`): one self-describing line per metric,
  machine-parseable (the CI metrics-smoke job asserts on it)::

      {"type": "meta", "schema": "repro.obs/1", "spans_dropped": 0}
      {"type": "counter", "name": "netsim.tbf.drops", "value": 41}
      {"type": "gauge", "name": "netsim.link.utilization.lc", "value": 0.93}
      {"type": "histogram", "name": "...", "count": 9, "sum": ..., "min": ..., "max": ..., "mean": ...}
      {"type": "span", "name": "localizer.localize", "duration_s": 1.2, "attrs": {...}}

- **summary table** (:func:`summary_table`): a fixed-width human table
  (``repro sweep --metrics`` prints it to stderr so a ``--json`` record
  stream on stdout stays clean).
"""

import json

#: Stamped on the JSONL meta line; bump when the line shapes change.
EXPORT_SCHEMA = "repro.obs/1"


def snapshot_lines(snapshot):
    """Yield the JSONL export of ``snapshot``, one line per metric."""
    yield json.dumps(
        {
            "type": "meta",
            "schema": EXPORT_SCHEMA,
            "spans_dropped": snapshot.get("spans_dropped", 0),
        },
        sort_keys=True,
    )
    for name in sorted(snapshot.get("counters", {})):
        yield json.dumps(
            {"type": "counter", "name": name, "value": snapshot["counters"][name]},
            sort_keys=True,
        )
    for name in sorted(snapshot.get("gauges", {})):
        yield json.dumps(
            {"type": "gauge", "name": name, "value": snapshot["gauges"][name]},
            sort_keys=True,
        )
    for name in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][name]
        entry = {"type": "histogram", "name": name}
        entry.update(hist)
        entry["mean"] = hist["sum"] / hist["count"] if hist["count"] else 0.0
        yield json.dumps(entry, sort_keys=True)
    for span in snapshot.get("spans", []):
        entry = {"type": "span"}
        entry.update(span)
        yield json.dumps(entry, sort_keys=True)


def write_jsonl(snapshot, path):
    """Write the JSONL export of ``snapshot`` to ``path``."""
    with open(path, "w") as fh:
        for line in snapshot_lines(snapshot):
            fh.write(line + "\n")


def _aggregate_spans(spans):
    """Per-name (count, total duration) aggregation of a span list."""
    totals = {}
    for span in spans:
        count, total = totals.get(span["name"], (0, 0.0))
        totals[span["name"]] = (count + 1, total + span.get("duration_s", 0.0))
    return totals


def summary_table(snapshot):
    """The snapshot as a fixed-width text table (one string, no trailer)."""
    lines = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("-- counters " + "-" * 48)
        for name in sorted(counters):
            lines.append(f"{name:<44} {counters[name]:>14,}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("-- gauges " + "-" * 50)
        for name in sorted(gauges):
            lines.append(f"{name:<44} {gauges[name]:>14.4g}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("-- histograms " + "-" * 46)
        lines.append(f"{'name':<36} {'count':>8} {'mean':>10} {'min':>10} {'max':>10}")
        for name in sorted(histograms):
            hist = histograms[name]
            mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
            lines.append(
                f"{name:<36} {hist['count']:>8} {mean:>10.4g} "
                f"{hist['min']:>10.4g} {hist['max']:>10.4g}"
            )
    spans = snapshot.get("spans", [])
    if spans:
        lines.append("-- spans " + "-" * 51)
        lines.append(f"{'name':<44} {'count':>6} {'total s':>9}")
        for name, (count, total) in sorted(_aggregate_spans(spans).items()):
            lines.append(f"{name:<44} {count:>6} {total:>9.3f}")
        dropped = snapshot.get("spans_dropped", 0)
        if dropped:
            lines.append(f"(spans dropped over the span limit: {dropped})")
    if not lines:
        return "(no metrics recorded)"
    return "\n".join(lines)
