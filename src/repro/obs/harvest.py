"""Per-run harvest of the statistics the simulator already keeps.

The cheapest counter is one that was being maintained anyway: links
count bytes and packets, queues count drops and delay sums, token
buckets count enqueues.  Harvesting those aggregates *once per
simulation run* gives the full occupancy/utilization/delay catalog with
literally zero hot-path cost -- the live instrumentation inside
``repro.netsim`` is reserved for rare events (drops, token deferrals,
retransmissions, RTOs) that aggregates cannot time-resolve.

Everything here duck-types against the netsim objects instead of
importing them, deliberately: ``repro.netsim`` imports
``repro.obs.metrics`` for its guards, so this module must not import
``repro.netsim`` back.

The harvested ``netsim.tbf.drops_total`` counter double-books the live
``netsim.tbf.drops`` counter through an independent accounting path
(the queue's own ``drops`` attribute); the two must always agree, and
``tests/obs`` asserts exactly that.
"""


def harvest_link(sink, link, elapsed):
    """Record one link's end-of-run statistics.

    A multipath bundle (anything exposing ``members``) is harvested as
    one logical link -- the aggregates land under the *parent* name,
    and the per-member qdiscs are harvested individually so shaper
    counters keep double-booking their live twins.
    """
    members = getattr(link, "members", None)
    if members is not None:
        _harvest_multipath(sink, link, members, elapsed)
        return
    utilization = link.utilization(elapsed)
    sink.observe("netsim.link.utilization", utilization)
    sink.set_gauge(f"netsim.link.utilization.{link.name}", utilization)
    sink.inc("netsim.link.bytes_sent", link.bytes_sent)
    sink.inc("netsim.link.packets_sent", link.packets_sent)
    sink.inc("netsim.link.packets_offered", link.packets_offered)
    harvest_qdisc(sink, link.qdisc)


def _harvest_multipath(sink, link, members, elapsed):
    """Aggregate a bundle under its parent name + double-entry totals.

    ``netsim.multipath.parent_offered_total`` (the bundle's own offered
    counter) and ``netsim.multipath.member_offered_total`` (the sum of
    the members' offered counters) book the same packets through two
    independent paths; ``tests/obs`` asserts they agree, as do the
    harvested ``rehashes_total``/``flowlet_switches_total`` against the
    live ``netsim.multipath.rehashes``/``flowlet_switches`` counters.
    """
    utilization = link.utilization(elapsed)
    sink.observe("netsim.link.utilization", utilization)
    sink.set_gauge(f"netsim.link.utilization.{link.name}", utilization)
    sink.inc("netsim.link.bytes_sent", link.bytes_sent)
    sink.inc("netsim.link.packets_sent", link.packets_sent)
    sink.inc("netsim.link.packets_offered", link.packets_offered)
    sink.set_gauge(f"netsim.multipath.members.{link.name}", len(members))
    sink.inc("netsim.multipath.parent_offered_total", link.packets_offered)
    sink.inc(
        "netsim.multipath.member_offered_total",
        sum(member.packets_offered for member in members),
    )
    sink.inc(
        "netsim.multipath.member_drops",
        sum(member.qdisc.drops for member in members),
    )
    sink.inc("netsim.multipath.rehashes_total", link.rehashes)
    sink.inc("netsim.multipath.flowlet_switches_total", link.flowlet_switches)
    for member in members:
        sink.set_gauge(
            f"netsim.link.utilization.{member.name}",
            member.utilization(elapsed),
        )
        harvest_qdisc(sink, member.qdisc)


def harvest_qdisc(sink, qdisc):
    """Record a queueing discipline's aggregates (duck-typed by shape).

    A :class:`~repro.netsim.token_bucket.DualClassQdisc` exposes
    ``tbf``/``fifo``; a per-flow qdisc exposes ``fifo`` and a ``_flows``
    map of token buckets; a bare drop-tail queue exposes its own
    counters directly.
    """
    tbf = getattr(qdisc, "tbf", None)
    if tbf is not None:
        _harvest_tbf(sink, tbf)
        _harvest_droptail(sink, qdisc.fifo, "netsim.fifo")
        return
    flows = getattr(qdisc, "_flows", None)
    if flows is not None:  # per-flow limiter: one TBF per flow key
        for bucket in flows.values():
            _harvest_tbf(sink, bucket)
        _harvest_droptail(sink, qdisc.fifo, "netsim.fifo")
        return
    _harvest_droptail(sink, qdisc, "netsim.queue")


def _harvest_tbf(sink, tbf):
    sink.inc("netsim.tbf.drops_total", tbf.drops)
    sink.inc("netsim.tbf.drops_bytes_total", getattr(tbf, "drops_bytes", 0))
    sink.inc("netsim.tbf.enqueued_total", tbf.enqueued)
    sink.observe("netsim.tbf.mean_delay_s", tbf.mean_delay)
    sink.observe("netsim.tbf.final_backlog_bytes", tbf.backlog_bytes)
    _harvest_shaper_extras(sink, tbf)


def _harvest_shaper_extras(sink, qdisc):
    """Mechanism-specific aggregates (RED early drops, CoDel drops,
    PIE drops, peak deferrals, conditional trips, ...).

    Shapers that keep extra counters expose them as a
    ``shaper_stats() -> {suffix: value}`` mapping; the harvested
    ``netsim.<suffix>`` totals double-book the corresponding live
    counters (``netsim.red.early_drops`` etc.), and ``tests/obs``
    asserts the books agree.
    """
    stats = getattr(qdisc, "shaper_stats", None)
    if stats is None:
        return
    for suffix, value in stats().items():
        sink.inc(f"netsim.{suffix}", value)


def _harvest_droptail(sink, queue, prefix):
    sink.inc(f"{prefix}.drops_total", queue.drops)
    sink.inc(f"{prefix}.drops_bytes_total", getattr(queue, "drops_bytes", 0))
    sink.inc(f"{prefix}.enqueued_total", queue.enqueued)
    sink.observe(f"{prefix}.mean_delay_s", queue.mean_delay)
    sink.observe(f"{prefix}.final_backlog_bytes", queue.backlog_bytes)


def harvest_topology(sink, topology, elapsed):
    """Record every link of a Figure-1 topology after a simulation run."""
    for link in [topology.link_c, *topology.noncommon_links]:
        harvest_link(sink, link, elapsed)


def harvest_topology_database(sink, database):
    """Record a TC topology database's end-of-run size.

    ``mlab.tc.entries_total`` double-books the live counters the
    database maintains as it is built and pruned: at any harvest point
    ``entries_total == pairs_found - entries_invalidated`` must hold
    (``tests/obs`` asserts it), so a drifting pair of counters is
    caught the same way the TBF drop counters are.
    """
    sink.inc("mlab.tc.entries_total", len(database))
    sink.set_gauge("mlab.tc.destinations", len(database.destinations))
