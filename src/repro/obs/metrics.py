"""Counters, gauges, histograms, and the process-global metrics sink.

Design constraints, in priority order:

1. **Zero cost when disabled.**  The netsim hot path executes hundreds
   of thousands of events per simulated minute; metrics are recorded at
   *rare* sites (drops, deferrals, retransmissions, RTOs) behind a
   single ``if ENABLED:`` module-attribute check, and per-run
   aggregates (occupancy, utilization, mean delay) are *harvested* from
   the statistics the simulator already keeps -- the common packet path
   gains no instructions at all.  Unguarded call sites are still safe:
   the disabled sink is a null object whose methods do nothing.
2. **Metrics never feed back into results.**  Sinks only record; no
   simulation decision may read one.  This is what makes "enabling
   metrics never changes a record byte" hold by construction.
3. **Mergeable across processes.**  A :meth:`MetricsSink.snapshot` is a
   plain-JSON dict; :meth:`MetricsSink.merge` folds one into a sink, so
   fork-based sweep workers can serialize their deltas back to the
   parent (see ``repro.parallel``).

The module-level ``SINK``/``ENABLED`` pair is the process-global state.
Call sites must read them as module attributes (``_obs.ENABLED``),
never ``from``-import the values -- rebinding through
:func:`enable`/:func:`use_sink` must stay visible.

Not thread-safe: the simulator and the sweep workers are
single-threaded by design.
"""

from contextlib import contextmanager

#: Spans kept per sink before new ones are counted in ``spans_dropped``
#: instead of stored -- a runaway sweep must not hoard memory.
SPAN_LIMIT = 10_000


class MetricsSink:
    """An in-memory recording sink.

    ``counters`` accumulate (monotonic adds), ``gauges`` hold the last
    written value, ``histograms`` keep count/sum/min/max per name --
    enough for mean and range without unbounded storage -- and
    ``spans`` is the bounded trace log (see :mod:`repro.obs.tracing`).
    """

    #: Class-level flag so ``sink.on`` distinguishes real sinks from the
    #: null object without an isinstance check.
    on = True

    def __init__(self):
        self.counters = {}
        self.gauges = {}
        self.histograms = {}
        self.spans = []
        self.spans_dropped = 0

    def inc(self, name, n=1):
        """Add ``n`` to counter ``name`` (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def set_gauge(self, name, value):
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = float(value)

    def observe(self, name, value):
        """Record one sample into histogram ``name``."""
        value = float(value)
        hist = self.histograms.get(name)
        if hist is None:
            self.histograms[name] = {
                "count": 1, "sum": value, "min": value, "max": value,
            }
            return
        hist["count"] += 1
        hist["sum"] += value
        if value < hist["min"]:
            hist["min"] = value
        if value > hist["max"]:
            hist["max"] = value

    def add_span(self, record):
        """Store one finished span record (bounded by :data:`SPAN_LIMIT`)."""
        if len(self.spans) >= SPAN_LIMIT:
            self.spans_dropped += 1
            return
        self.spans.append(record)

    def snapshot(self):
        """A plain-JSON copy of everything recorded so far."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {name: dict(h) for name, h in self.histograms.items()},
            "spans": list(self.spans),
            "spans_dropped": self.spans_dropped,
        }

    def merge(self, snapshot):
        """Fold a :meth:`snapshot` into this sink.

        Counters add, histograms combine, gauges take the incoming
        value (last write wins -- snapshots carry no clock), spans
        append up to :data:`SPAN_LIMIT`.
        """
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.gauges.update(snapshot.get("gauges", {}))
        for name, incoming in snapshot.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                self.histograms[name] = dict(incoming)
                continue
            hist["count"] += incoming["count"]
            hist["sum"] += incoming["sum"]
            hist["min"] = min(hist["min"], incoming["min"])
            hist["max"] = max(hist["max"], incoming["max"])
        for span in snapshot.get("spans", []):
            self.add_span(span)
        self.spans_dropped += snapshot.get("spans_dropped", 0)

    def clear(self):
        """Forget everything recorded so far."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.spans = []
        self.spans_dropped = 0


class NullSink:
    """The disabled sink: every method is a no-op.

    Call sites that fire rarely may call the active sink unguarded;
    when observability is off they land here and do nothing.  Hot
    sites should still guard with ``if ENABLED:`` to skip argument
    construction.
    """

    on = False

    def inc(self, name, n=1):
        pass

    def set_gauge(self, name, value):
        pass

    def observe(self, name, value):
        pass

    def add_span(self, record):
        pass

    def merge(self, snapshot):
        pass

    def snapshot(self):
        return {
            "counters": {}, "gauges": {}, "histograms": {},
            "spans": [], "spans_dropped": 0,
        }

    def clear(self):
        pass


#: The singleton null sink; ``SINK`` points here while disabled.
NULL_SINK = NullSink()

#: Process-global active sink.  Read as a module attribute.
SINK = NULL_SINK

#: Process-global enable flag -- the one-branch hot-path guard.
ENABLED = False


def enabled():
    """True when a recording sink is active."""
    return ENABLED


def enable(sink=None):
    """Install ``sink`` (default: a fresh :class:`MetricsSink`) globally.

    Returns the active sink so callers can hold on to it.
    """
    global SINK, ENABLED
    SINK = sink if sink is not None else MetricsSink()
    ENABLED = True
    return SINK


def disable():
    """Deactivate metrics collection (back to the null sink)."""
    global SINK, ENABLED
    SINK = NULL_SINK
    ENABLED = False


@contextmanager
def use_sink(sink):
    """Temporarily make ``sink`` the active sink (restores the prior one).

    Passing ``None`` temporarily *disables* collection.
    """
    global SINK, ENABLED
    previous_sink, previous_enabled = SINK, ENABLED
    SINK = sink if sink is not None else NULL_SINK
    ENABLED = sink is not None
    try:
        yield SINK
    finally:
        SINK, ENABLED = previous_sink, previous_enabled


def merge_snapshot(snapshot):
    """Fold a worker's snapshot into the active sink (no-op when disabled)."""
    SINK.merge(snapshot)
