"""Span-based tracing over the metrics sink.

A span is a dict ``{"name", "attrs", "duration_s"}`` recorded into the
active sink when its ``with`` block exits.  The context manager yields
the span record so the body can annotate outcomes as they become
known::

    with span("coordinator.run_test", client=name) as sp:
        report = ...
        if sp is not None:
            sp["attrs"]["status"] = report.status.value

When tracing is disabled the manager yields ``None`` and records
nothing -- callers must guard attribute writes with ``if sp is not
None``.  Durations come from ``time.perf_counter`` (wall clock); they
are observability data only and never feed back into simulated time or
any experiment record.
"""

import time
from contextlib import contextmanager

from repro.obs import metrics as _metrics


@contextmanager
def span(name, **attrs):
    """Trace one operation; yields the mutable span record (or ``None``).

    The span is recorded even when the body raises -- the exception
    propagates, but the duration and any attributes set before the
    raise are kept, with ``attrs["error"]`` set to the exception type
    name.
    """
    if not _metrics.ENABLED:
        yield None
        return
    record = {"name": name, "attrs": dict(attrs)}
    start = time.perf_counter()
    try:
        yield record
    except BaseException as exc:
        record["attrs"].setdefault("error", type(exc).__name__)
        raise
    finally:
        record["duration_s"] = time.perf_counter() - start
        _metrics.SINK.add_span(record)
