"""Parallel sweep execution.

Every paper figure and table is a sweep of *independent* simulation
cells: each cell derives all of its randomness from
``np.random.SeedSequence([config.seed, entropy])``, so no cell's output
can depend on which worker ran it or in what order.  That makes the
sweeps embarrassingly parallel -- :class:`SweepExecutor` fans them out
over a process pool and returns results in input order, byte-identical
to a serial run.

Usage::

    from repro.api import SweepRequest, run_sweep

    records = run_sweep(SweepRequest.detection(configs, jobs=4)).results
    # or, for any picklable task:
    from repro.parallel import SweepExecutor

    results = SweepExecutor(jobs=4).map(task, items)

The module-level ``run_detection_sweep``/``run_wild_sweep`` entry
points are deprecated shims over :func:`repro.api.run_sweep`.
"""

from repro.parallel.executor import (
    SweepExecutor,
    default_jobs,
    run_detection_sweep,
    run_wild_sweep,
)
from repro.parallel.supervisor import (
    CellFailure,
    SweepCellError,
    SweepInterrupted,
)

__all__ = [
    "CellFailure",
    "SweepCellError",
    "SweepExecutor",
    "SweepInterrupted",
    "default_jobs",
    "run_detection_sweep",
    "run_wild_sweep",
]
