"""The process-pool sweep executor.

Determinism argument: a sweep cell is a pure function of its config --
``run_detection_experiment`` derives every random stream from
``np.random.SeedSequence([config.seed, entropy])`` and the fault
injector (when present) is seeded from ``config.seed`` alone.  Workers
share no mutable state (each process rebuilds its own simulators), and
``SweepExecutor.map`` preserves input order, so ``jobs=N`` produces the
same result list as ``jobs=1`` for every N.

The executor degrades gracefully: it runs serially when ``jobs == 1``,
when there is at most one item, when the platform cannot fork (the
pool uses the ``fork`` start method so workers inherit the warm module
state instead of re-importing numpy), or when the task or its results
turn out not to be picklable.
"""

import functools
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, process

from repro.experiments.runner import run_detection_experiment


def default_jobs():
    """Default worker count: every core the scheduler gives us."""
    return os.cpu_count() or 1


def fork_available():
    """True when the ``fork`` start method exists (POSIX)."""
    return "fork" in multiprocessing.get_all_start_methods()


class SweepExecutor:
    """Maps a task over independent sweep items, possibly in parallel.

    Parameters:
        jobs: worker-process count; ``None`` means ``os.cpu_count()``,
            ``1`` forces serial execution in-process.

    ``map`` returns results in input order.  The task must be a
    module-level callable (or :func:`functools.partial` of one) so it
    can cross the process boundary; unpicklable tasks fall back to the
    serial path rather than failing the sweep.
    """

    def __init__(self, jobs=None):
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))

    def map(self, task, items, chunksize=1):
        """Run ``task(item)`` for every item; returns results in order."""
        items = list(items)
        workers = min(self.jobs, len(items))
        if workers <= 1 or not fork_available():
            return [task(item) for item in items]
        ctx = multiprocessing.get_context("fork")
        try:
            with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
                return list(pool.map(task, items, chunksize=chunksize))
        except (pickle.PicklingError, AttributeError, TypeError):
            # The task (or a result) would not cross the process
            # boundary; the sweep is still correct run in-process.
            return [task(item) for item in items]
        except process.BrokenProcessPool:
            # A worker died (OOM killer, container limits); rerun the
            # whole sweep serially -- determinism makes that safe.
            return [task(item) for item in items]


def _detection_cell(config, detectors, modified, entropy, merge_flows, fault_profile):
    return run_detection_experiment(
        config,
        detectors=detectors,
        modified=modified,
        entropy=entropy,
        merge_flows=merge_flows,
        fault_profile=fault_profile,
    )


def run_detection_sweep(
    configs,
    jobs=None,
    detectors=None,
    modified=True,
    entropy=0,
    merge_flows=False,
    fault_profile=None,
):
    """Run :func:`run_detection_experiment` over every config.

    Returns one :class:`~repro.experiments.runner.DetectionExperimentRecord`
    per config, in config order, identical for any ``jobs`` value.
    ``fault_profile`` is applied per cell, seeded from each cell's own
    ``config.seed``.
    """
    task = functools.partial(
        _detection_cell,
        detectors=detectors,
        modified=modified,
        entropy=entropy,
        merge_flows=merge_flows,
        fault_profile=fault_profile,
    )
    return SweepExecutor(jobs).map(task, configs)


def _wild_cell(cell, sanity_check):
    from repro.experiments.wild import run_wild_test

    isp_name, app, seed = cell
    report = run_wild_test(isp_name, app=app, seed=seed, sanity_check=sanity_check)
    return {
        "isp": isp_name,
        "app": app,
        "seed": seed,
        "localized": report.localized,
        "outcome": report.outcome.value,
        "mechanism": report.mechanism.value,
    }


def run_wild_sweep(isp_names, apps, seeds, jobs=None, sanity_check=False):
    """Section-5 wild tests over ISPs x apps x seeds, fanned out.

    Returns one summary dict per (isp, app, seed) cell in grid order
    (isp-major).  Full localization reports hold numpy arrays and
    simulator-adjacent objects; the summaries keep the cross-process
    payload small and stable.
    """
    cells = [
        (isp, app, seed) for isp in isp_names for app in apps for seed in seeds
    ]
    task = functools.partial(_wild_cell, sanity_check=sanity_check)
    return SweepExecutor(jobs).map(task, cells)
