"""The process-pool sweep executor.

Determinism argument: a sweep cell is a pure function of its config --
``run_detection_experiment`` derives every random stream from
``np.random.SeedSequence([config.seed, entropy])`` and the fault
injector (when present) is seeded from ``config.seed`` alone.  Workers
share no mutable state (each process rebuilds its own simulators), and
``SweepExecutor.map`` preserves input order, so ``jobs=N`` produces the
same result list as ``jobs=1`` for every N.

The executor degrades gracefully: it runs serially when ``jobs == 1``,
when there is at most one item, when the platform cannot fork (the
pool uses the ``fork`` start method so workers inherit the warm module
state instead of re-importing numpy), or when the task or its results
turn out not to be picklable.
"""

import functools
import logging
import multiprocessing
import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor, process

from repro.experiments.runner import run_detection_experiment
from repro.obs import MetricsSink, use_sink
from repro.obs import metrics as _obs

logger = logging.getLogger(__name__)


def default_jobs():
    """Default worker count: every core the scheduler *actually* gives us.

    ``os.cpu_count()`` reports the machine, not the container --
    in a cgroup-limited CI job or under ``taskset`` it overcounts, and
    oversubscribed workers thrash.  Preference order:

    1. ``REPRO_JOBS`` environment variable (explicit operator override;
       non-integer values are ignored);
    2. the CPU-affinity mask (:func:`os.sched_getaffinity`, which
       reflects cgroups/taskset on Linux);
    3. ``os.cpu_count()`` where affinity is unavailable (macOS);
    4. 1.
    """
    override = os.environ.get("REPRO_JOBS")
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            pass  # fall through to the detected value
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def fork_available():
    """True when the ``fork`` start method exists (POSIX)."""
    return "fork" in multiprocessing.get_all_start_methods()


def _call_on_result(on_result, index, item, result):
    """Fire a result callback without letting it kill the sweep.

    A callback that raises mid-drain used to take the whole parent
    down, losing every result after the bad one.  Observers must not be
    able to abort the computation they observe: log and continue.
    """
    try:
        on_result(index, item, result)
    except Exception:
        logger.exception(
            "on_result callback raised for sweep item %d; continuing", index
        )


def _metered_task(task, item):
    """Run one sweep item under a fresh sink; ship its metrics home.

    Fork-pool workers inherit ``ENABLED`` but accumulate into their own
    copy of the parent's sink, which the parent never sees.  Wrapping
    the task gives every item a private sink and returns ``(result,
    snapshot)`` so the parent can merge worker deltas as results drain.
    """
    with use_sink(MetricsSink()) as sink:
        result = task(item)
    return result, sink.snapshot()


class SweepExecutor:
    """Maps a task over independent sweep items, possibly in parallel.

    Parameters:
        jobs: worker-process count; ``None`` means ``os.cpu_count()``,
            ``1`` forces serial execution in-process.

    ``map`` returns results in input order.  The task must be a
    module-level callable (or :func:`functools.partial` of one) so it
    can cross the process boundary; unpicklable tasks fall back to the
    serial path rather than failing the sweep.
    """

    def __init__(self, jobs=None):
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))

    def map(self, task, items, chunksize=1, on_result=None):
        """Run ``task(item)`` for every item; returns results in order.

        ``on_result(index, item, result)``, when given, fires as each
        result becomes available (in input order) -- the checkpoint hook
        the experiment store uses to persist completed sweep cells
        before the sweep finishes.  The callback runs in the parent
        process and must be idempotent: if the pool breaks mid-stream
        and the sweep falls back to the serial path, already-delivered
        results are re-delivered.  A callback that raises is logged and
        skipped -- it never aborts the sweep.

        When observability is enabled (:mod:`repro.obs`), pool workers
        run each item under a private sink and the parent merges the
        per-item snapshots into the active sink as results drain, so
        ``jobs=N`` metrics match ``jobs=1``.
        """
        items = list(items)
        workers = min(self.jobs, len(items))
        if workers <= 1 or not fork_available():
            return self._run_serial(task, items, on_result)
        # Capture the enabled state once: the pool path must unwrap
        # exactly what _metered_task wrapped, even if someone toggles
        # the sink mid-drain.
        metered = _obs.ENABLED
        pool_task = functools.partial(_metered_task, task) if metered else task
        ctx = multiprocessing.get_context("fork")
        try:
            with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
                results = []
                for index, result in enumerate(
                    pool.map(pool_task, items, chunksize=chunksize)
                ):
                    if metered:
                        result, snapshot = result
                        _obs.SINK.merge(snapshot)
                    if on_result is not None:
                        _call_on_result(on_result, index, items[index], result)
                    results.append(result)
                return results
        except (pickle.PicklingError, AttributeError, TypeError):
            # The task (or a result) would not cross the process
            # boundary; the sweep is still correct run in-process.
            # (Items that already drained may have merged their metric
            # deltas -- results stay exact, metrics may double-count.)
            return self._run_serial(task, items, on_result)
        except process.BrokenProcessPool:
            # A worker died (OOM killer, container limits); rerun the
            # whole sweep serially -- determinism makes that safe.
            return self._run_serial(task, items, on_result)

    @staticmethod
    def _run_serial(task, items, on_result=None):
        # In-process: the task records straight into the active global
        # sink, so no metering wrapper is needed.
        results = []
        for index, item in enumerate(items):
            result = task(item)
            if on_result is not None:
                _call_on_result(on_result, index, item, result)
            results.append(result)
        return results


def _detection_cell(config, detectors, modified, entropy, merge_flows, fault_profile):
    return run_detection_experiment(
        config,
        detectors=detectors,
        modified=modified,
        entropy=entropy,
        merge_flows=merge_flows,
        fault_profile=fault_profile,
    )


def _run_cached_sweep(
    task, items, keys, store, jobs, kind, decode, encode, no_cache, on_result=None
):
    """Shared store plumbing for every sweep flavour.

    Partitions ``items`` into cache hits and misses, runs only the
    misses (checkpointing each completed cell the moment its result
    arrives), records the run in the store's ledger, and returns
    ``(results, hits, misses)`` with results merged in input order.
    ``decode``/``encode`` translate between in-memory results and the
    store's plain-JSON payloads.

    ``on_result(index, item, result)`` fires for every freshly computed
    cell (never for cache hits), with ``index`` in the *original* item
    order.  Neither a failing callback nor a failing checkpoint write
    aborts the sweep; a lost checkpoint only costs resumability for
    that cell.
    """
    results = [None] * len(items)
    missing = []
    for index, key in enumerate(keys):
        payload = None if no_cache else store.get(key)
        if payload is not None:
            results[index] = decode(payload)
        else:
            missing.append(index)
    hits = len(items) - len(missing)
    run_id = store.begin_run(kind=kind, cells=len(items), hits=hits)

    def checkpoint(position, item, result):
        index = missing[position]
        try:
            store.put(keys[index], encode(result), run_id=run_id)
        except Exception:
            logger.exception(
                "store checkpoint failed for sweep cell %d; continuing", index
            )
        if on_result is not None:
            _call_on_result(on_result, index, item, result)

    computed = SweepExecutor(jobs).map(
        task, [items[index] for index in missing], on_result=checkpoint
    )
    for position, index in enumerate(missing):
        results[index] = computed[position]
    store.finish_run(
        run_id,
        kind=kind,
        cells=len(items),
        hits=hits,
        misses=len(missing),
    )
    return results, hits, len(missing)


def _detection_sweep(
    configs,
    jobs=None,
    detectors=None,
    modified=True,
    entropy=0,
    merge_flows=False,
    fault_profile=None,
    store=None,
    no_cache=False,
    on_result=None,
):
    """Detection-sweep implementation; returns ``(records, hits, misses)``.

    This is the engine behind :func:`repro.api.run_sweep`; call that
    instead.  Semantics are documented on the legacy
    :func:`run_detection_sweep` wrapper and in :mod:`repro.api`.
    """
    configs = list(configs)
    task = functools.partial(
        _detection_cell,
        detectors=detectors,
        modified=modified,
        entropy=entropy,
        merge_flows=merge_flows,
        fault_profile=fault_profile,
    )
    if store is None:
        records = SweepExecutor(jobs).map(task, configs, on_result=on_result)
        return records, 0, len(configs)
    from repro.store import (
        detection_cache_key,
        record_from_dict,
        record_to_dict,
    )

    detector_names = sorted(detectors) if detectors else ["loss_trend"]
    keys = [
        detection_cache_key(
            config,
            detectors=detector_names,
            modified=modified,
            entropy=entropy,
            merge_flows=merge_flows,
            fault_profile=fault_profile,
            fingerprint=store.fingerprint,
            schema_version=store.schema_version,
        )
        for config in configs
    ]
    return _run_cached_sweep(
        task,
        configs,
        keys,
        store,
        jobs,
        kind="detection_sweep",
        decode=record_from_dict,
        encode=record_to_dict,
        no_cache=no_cache,
        on_result=on_result,
    )


def run_detection_sweep(
    configs,
    jobs=None,
    detectors=None,
    modified=True,
    entropy=0,
    merge_flows=False,
    fault_profile=None,
    store=None,
    no_cache=False,
):
    """Run :func:`run_detection_experiment` over every config.

    .. deprecated:: 1.1
        Use :func:`repro.api.run_sweep` with
        :meth:`repro.api.SweepRequest.detection` instead; it returns the
        same records plus cache accounting and optional metrics.

    Returns one :class:`~repro.experiments.runner.DetectionExperimentRecord`
    per config, in config order, identical for any ``jobs`` value.
    ``fault_profile`` is applied per cell, seeded from each cell's own
    ``config.seed``.

    ``store`` (a :class:`~repro.store.ExperimentStore`) makes the sweep
    resumable: cached cells are returned without simulating (records
    byte-identical to a cold run), and every freshly computed cell is
    checkpointed as it completes, so a killed sweep re-run with the
    same store computes only the missing cells.  ``no_cache`` skips the
    read side (every cell recomputes and overwrites) while still
    checkpointing.
    """
    warnings.warn(
        "run_detection_sweep is deprecated; use "
        "repro.api.run_sweep(SweepRequest.detection(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro import api

    return api.run_sweep(
        api.SweepRequest.detection(
            configs,
            detectors=detectors,
            modified=modified,
            entropy=entropy,
            merge_flows=merge_flows,
            fault_profile=fault_profile,
            jobs=jobs,
            store=store,
            no_cache=no_cache,
        )
    ).results


def _wild_cell(cell, sanity_check):
    from repro.experiments.wild import run_wild_test

    isp_name, app, seed = cell
    report = run_wild_test(isp_name, app=app, seed=seed, sanity_check=sanity_check)
    return {
        "isp": isp_name,
        "app": app,
        "seed": seed,
        "localized": report.localized,
        "outcome": report.outcome.value,
        "mechanism": report.mechanism.value,
    }


def _wild_sweep(
    isp_names,
    apps,
    seeds,
    jobs=None,
    sanity_check=False,
    store=None,
    no_cache=False,
    on_result=None,
):
    """Wild-sweep implementation; returns ``(summaries, hits, misses)``.

    The engine behind :func:`repro.api.run_sweep`; call that instead.
    """
    cells = [
        (isp, app, seed) for isp in isp_names for app in apps for seed in seeds
    ]
    task = functools.partial(_wild_cell, sanity_check=sanity_check)
    if store is None:
        summaries = SweepExecutor(jobs).map(task, cells, on_result=on_result)
        return summaries, 0, len(cells)
    from repro.store import wild_cache_key
    from repro.store.serialize import plain

    keys = [
        wild_cache_key(
            isp,
            app,
            seed,
            sanity_check=sanity_check,
            fingerprint=store.fingerprint,
            schema_version=store.schema_version,
        )
        for isp, app, seed in cells
    ]
    return _run_cached_sweep(
        task,
        cells,
        keys,
        store,
        jobs,
        kind="wild_sweep",
        decode=lambda payload: payload["cell"],
        encode=lambda cell: {"kind": "wild", "cell": plain(cell)},
        no_cache=no_cache,
        on_result=on_result,
    )


def run_wild_sweep(
    isp_names, apps, seeds, jobs=None, sanity_check=False, store=None, no_cache=False
):
    """Section-5 wild tests over ISPs x apps x seeds, fanned out.

    .. deprecated:: 1.1
        Use :func:`repro.api.run_sweep` with
        :meth:`repro.api.SweepRequest.wild` instead.

    Returns one summary dict per (isp, app, seed) cell in grid order
    (isp-major).  Full localization reports hold numpy arrays and
    simulator-adjacent objects; the summaries keep the cross-process
    payload small and stable.  ``store``/``no_cache`` behave as in
    :func:`run_detection_sweep` (the summaries are cached under
    ``kind="wild"`` keys).
    """
    warnings.warn(
        "run_wild_sweep is deprecated; use "
        "repro.api.run_sweep(SweepRequest.wild(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro import api

    return api.run_sweep(
        api.SweepRequest.wild(
            isp_names,
            apps=apps,
            seeds=seeds,
            sanity_check=sanity_check,
            jobs=jobs,
            store=store,
            no_cache=no_cache,
        )
    ).results
