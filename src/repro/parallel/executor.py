"""The process-pool sweep executor.

Determinism argument: a sweep cell is a pure function of its config --
``run_detection_experiment`` derives every random stream from
``np.random.SeedSequence([config.seed, entropy])`` and the fault
injector (when present) is seeded from ``config.seed`` alone.  Workers
share no mutable state (each process rebuilds its own simulators), and
``SweepExecutor.map`` preserves input order, so ``jobs=N`` produces the
same result list as ``jobs=1`` for every N.

The executor degrades gracefully: it runs serially when ``jobs == 1``,
when there is at most one item, when the platform cannot fork (the
pool uses the ``fork`` start method so workers inherit the warm module
state instead of re-importing numpy), or when the task or its results
turn out not to be picklable.
"""

import functools
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, process

from repro.experiments.runner import run_detection_experiment


def default_jobs():
    """Default worker count: every core the scheduler *actually* gives us.

    ``os.cpu_count()`` reports the machine, not the container --
    in a cgroup-limited CI job or under ``taskset`` it overcounts, and
    oversubscribed workers thrash.  Preference order:

    1. ``REPRO_JOBS`` environment variable (explicit operator override;
       non-integer values are ignored);
    2. the CPU-affinity mask (:func:`os.sched_getaffinity`, which
       reflects cgroups/taskset on Linux);
    3. ``os.cpu_count()`` where affinity is unavailable (macOS);
    4. 1.
    """
    override = os.environ.get("REPRO_JOBS")
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            pass  # fall through to the detected value
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def fork_available():
    """True when the ``fork`` start method exists (POSIX)."""
    return "fork" in multiprocessing.get_all_start_methods()


class SweepExecutor:
    """Maps a task over independent sweep items, possibly in parallel.

    Parameters:
        jobs: worker-process count; ``None`` means ``os.cpu_count()``,
            ``1`` forces serial execution in-process.

    ``map`` returns results in input order.  The task must be a
    module-level callable (or :func:`functools.partial` of one) so it
    can cross the process boundary; unpicklable tasks fall back to the
    serial path rather than failing the sweep.
    """

    def __init__(self, jobs=None):
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))

    def map(self, task, items, chunksize=1, on_result=None):
        """Run ``task(item)`` for every item; returns results in order.

        ``on_result(index, item, result)``, when given, fires as each
        result becomes available (in input order) -- the checkpoint hook
        the experiment store uses to persist completed sweep cells
        before the sweep finishes.  The callback runs in the parent
        process and must be idempotent: if the pool breaks mid-stream
        and the sweep falls back to the serial path, already-delivered
        results are re-delivered.
        """
        items = list(items)
        workers = min(self.jobs, len(items))
        if workers <= 1 or not fork_available():
            return self._run_serial(task, items, on_result)
        ctx = multiprocessing.get_context("fork")
        try:
            with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
                results = []
                for index, result in enumerate(
                    pool.map(task, items, chunksize=chunksize)
                ):
                    if on_result is not None:
                        on_result(index, items[index], result)
                    results.append(result)
                return results
        except (pickle.PicklingError, AttributeError, TypeError):
            # The task (or a result) would not cross the process
            # boundary; the sweep is still correct run in-process.
            return self._run_serial(task, items, on_result)
        except process.BrokenProcessPool:
            # A worker died (OOM killer, container limits); rerun the
            # whole sweep serially -- determinism makes that safe.
            return self._run_serial(task, items, on_result)

    @staticmethod
    def _run_serial(task, items, on_result=None):
        results = []
        for index, item in enumerate(items):
            result = task(item)
            if on_result is not None:
                on_result(index, item, result)
            results.append(result)
        return results


def _detection_cell(config, detectors, modified, entropy, merge_flows, fault_profile):
    return run_detection_experiment(
        config,
        detectors=detectors,
        modified=modified,
        entropy=entropy,
        merge_flows=merge_flows,
        fault_profile=fault_profile,
    )


def _run_cached_sweep(task, items, keys, store, jobs, kind, decode, encode, no_cache):
    """Shared store plumbing for every sweep flavour.

    Partitions ``items`` into cache hits and misses, runs only the
    misses (checkpointing each completed cell the moment its result
    arrives), records the run in the store's ledger, and returns the
    merged results in input order.  ``decode``/``encode`` translate
    between in-memory results and the store's plain-JSON payloads.
    """
    results = [None] * len(items)
    missing = []
    for index, key in enumerate(keys):
        payload = None if no_cache else store.get(key)
        if payload is not None:
            results[index] = decode(payload)
        else:
            missing.append(index)
    hits = len(items) - len(missing)
    run_id = store.begin_run(kind=kind, cells=len(items), hits=hits)

    def checkpoint(position, item, result):
        store.put(keys[missing[position]], encode(result), run_id=run_id)

    computed = SweepExecutor(jobs).map(
        task, [items[index] for index in missing], on_result=checkpoint
    )
    for position, index in enumerate(missing):
        results[index] = computed[position]
    store.finish_run(
        run_id,
        kind=kind,
        cells=len(items),
        hits=hits,
        misses=len(missing),
    )
    return results


def run_detection_sweep(
    configs,
    jobs=None,
    detectors=None,
    modified=True,
    entropy=0,
    merge_flows=False,
    fault_profile=None,
    store=None,
    no_cache=False,
):
    """Run :func:`run_detection_experiment` over every config.

    Returns one :class:`~repro.experiments.runner.DetectionExperimentRecord`
    per config, in config order, identical for any ``jobs`` value.
    ``fault_profile`` is applied per cell, seeded from each cell's own
    ``config.seed``.

    ``store`` (a :class:`~repro.store.ExperimentStore`) makes the sweep
    resumable: cached cells are returned without simulating (records
    byte-identical to a cold run), and every freshly computed cell is
    checkpointed as it completes, so a killed sweep re-run with the
    same store computes only the missing cells.  ``no_cache`` skips the
    read side (every cell recomputes and overwrites) while still
    checkpointing.
    """
    configs = list(configs)
    task = functools.partial(
        _detection_cell,
        detectors=detectors,
        modified=modified,
        entropy=entropy,
        merge_flows=merge_flows,
        fault_profile=fault_profile,
    )
    if store is None:
        return SweepExecutor(jobs).map(task, configs)
    from repro.store import (
        detection_cache_key,
        record_from_dict,
        record_to_dict,
    )

    detector_names = sorted(detectors) if detectors else ["loss_trend"]
    keys = [
        detection_cache_key(
            config,
            detectors=detector_names,
            modified=modified,
            entropy=entropy,
            merge_flows=merge_flows,
            fault_profile=fault_profile,
            fingerprint=store.fingerprint,
            schema_version=store.schema_version,
        )
        for config in configs
    ]
    return _run_cached_sweep(
        task,
        configs,
        keys,
        store,
        jobs,
        kind="detection_sweep",
        decode=record_from_dict,
        encode=record_to_dict,
        no_cache=no_cache,
    )


def _wild_cell(cell, sanity_check):
    from repro.experiments.wild import run_wild_test

    isp_name, app, seed = cell
    report = run_wild_test(isp_name, app=app, seed=seed, sanity_check=sanity_check)
    return {
        "isp": isp_name,
        "app": app,
        "seed": seed,
        "localized": report.localized,
        "outcome": report.outcome.value,
        "mechanism": report.mechanism.value,
    }


def run_wild_sweep(
    isp_names, apps, seeds, jobs=None, sanity_check=False, store=None, no_cache=False
):
    """Section-5 wild tests over ISPs x apps x seeds, fanned out.

    Returns one summary dict per (isp, app, seed) cell in grid order
    (isp-major).  Full localization reports hold numpy arrays and
    simulator-adjacent objects; the summaries keep the cross-process
    payload small and stable.  ``store``/``no_cache`` behave as in
    :func:`run_detection_sweep` (the summaries are cached under
    ``kind="wild"`` keys).
    """
    cells = [
        (isp, app, seed) for isp in isp_names for app in apps for seed in seeds
    ]
    task = functools.partial(_wild_cell, sanity_check=sanity_check)
    if store is None:
        return SweepExecutor(jobs).map(task, cells)
    from repro.store import wild_cache_key
    from repro.store.serialize import plain

    keys = [
        wild_cache_key(
            isp,
            app,
            seed,
            sanity_check=sanity_check,
            fingerprint=store.fingerprint,
            schema_version=store.schema_version,
        )
        for isp, app, seed in cells
    ]
    return _run_cached_sweep(
        task,
        cells,
        keys,
        store,
        jobs,
        kind="wild_sweep",
        decode=lambda payload: payload["cell"],
        encode=lambda cell: {"kind": "wild", "cell": plain(cell)},
        no_cache=no_cache,
    )
