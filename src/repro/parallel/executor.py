"""The supervised process-pool sweep executor.

Determinism argument: a sweep cell is a pure function of its config --
``run_detection_experiment`` derives every random stream from
``np.random.SeedSequence([config.seed, entropy])`` and the fault
injector (when present) is seeded from ``config.seed`` alone.  Workers
share no mutable state (each process rebuilds its own simulators), and
``SweepExecutor.map`` preserves input order, so ``jobs=N`` produces the
same result list as ``jobs=1`` for every N -- *including* after worker
deaths, watchdog kills, and pool restarts, because a retried cell
recomputes from the same seeds.

The executor degrades gracefully: it runs serially when ``jobs == 1``,
when there is at most one item, when the platform cannot fork (the
pool uses the ``fork`` start method so workers inherit the warm module
state instead of re-importing numpy), or when an up-front probe shows
the task or its items would not survive pickling.  Process-level
supervision (crash recovery, per-cell timeouts, quarantine, graceful
drain) lives in :mod:`repro.parallel.supervisor`.
"""

import functools
import logging
import multiprocessing
import os
import pickle
import warnings
from dataclasses import replace

from repro.experiments.runner import run_detection_experiment
from repro.faults.chaos import chaos_from_env
from repro.parallel.supervisor import (
    DEFAULT_MAX_CELL_RETRIES,
    CellFailure,
    Supervision,
    SweepInterrupted,
    _call_on_result,
)

logger = logging.getLogger(__name__)


def default_jobs():
    """Default worker count: every core the scheduler *actually* gives us.

    ``os.cpu_count()`` reports the machine, not the container --
    in a cgroup-limited CI job or under ``taskset`` it overcounts, and
    oversubscribed workers thrash.  Preference order:

    1. ``REPRO_JOBS`` environment variable (explicit operator override;
       non-integer values are ignored);
    2. the CPU-affinity mask (:func:`os.sched_getaffinity`, which
       reflects cgroups/taskset on Linux);
    3. ``os.cpu_count()`` where affinity is unavailable (macOS);
    4. 1.
    """
    override = os.environ.get("REPRO_JOBS")
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            pass  # fall through to the detected value
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def fork_available():
    """True when the ``fork`` start method exists (POSIX)."""
    return "fork" in multiprocessing.get_all_start_methods()


def _probe_picklable(task, items):
    """True when the task and every item can cross a process boundary.

    The old executor discovered pickling trouble by catching
    ``PicklingError``/``AttributeError``/``TypeError`` out of
    ``pool.map`` -- which also caught genuine ``TypeError``s raised
    *inside* a task and silently reran the whole sweep serially,
    masking real bugs.  Probing up front means a pickling problem (and
    only a pickling problem) chooses the serial path; task exceptions
    now surface through quarantine instead of vanishing.
    """
    try:
        pickle.dumps(task)
        for item in items:
            pickle.dumps(item)
    except Exception:
        return False
    return True


class SweepExecutor:
    """Maps a task over independent sweep items, possibly in parallel.

    Parameters:
        jobs: worker-process count; ``None`` means every scheduler-
            granted core, ``1`` forces serial execution in-process.
        cell_timeout: wall-clock seconds one cell may run before the
            watchdog kills its worker and retries it; ``None`` disables
            the watchdog.  Enforced only on the pool path (a serial
            parent has no one to kill).
        max_cell_retries: extra attempts a cell gets after a worker
            death, watchdog kill, or transient exception before it is
            quarantined.
        strict: quarantine nothing -- re-raise a failing cell's
            exception (serial) or a :class:`SweepCellError` (pool),
            aborting the sweep like the pre-supervision executor did.
        chaos_profile: a :class:`repro.faults.chaos.ChaosProfile`
            injected into pool workers; defaults to whatever
            ``REPRO_CHAOS`` names (usually nothing).
        max_worker_restarts: worker respawns allowed before the
            remaining cells finish serially; ``None`` picks
            ``max(8, 2 * workers)``.

    ``map`` returns results in input order.  The task must be a
    module-level callable (or :func:`functools.partial` of one) so it
    can cross the process boundary; unpicklable tasks run serially
    rather than failing the sweep.
    """

    def __init__(
        self,
        jobs=None,
        *,
        cell_timeout=None,
        max_cell_retries=DEFAULT_MAX_CELL_RETRIES,
        strict=False,
        chaos_profile=None,
        max_worker_restarts=None,
    ):
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.cell_timeout = cell_timeout
        self.max_cell_retries = max_cell_retries
        self.strict = strict
        self.chaos = chaos_profile if chaos_profile is not None else chaos_from_env()
        self.max_worker_restarts = max_worker_restarts

    def map(self, task, items, chunksize=1, on_result=None):
        """Run ``task(item)`` for every item; returns results in order.

        ``on_result(index, item, result)``, when given, fires as each
        result becomes available (in input order) -- the checkpoint hook
        the experiment store uses to persist completed sweep cells
        before the sweep finishes.  Delivery is **exactly once** per
        cell across every recovery path (worker respawn, serial
        fallback, interrupt drain).  A callback that raises is logged
        and skipped -- it never aborts the sweep, and it never fires
        for a quarantined cell.

        Failure semantics (see :mod:`repro.parallel.supervisor`):
        unless ``strict``, a cell that exhausts its retries lands in
        the results list as a :class:`CellFailure` instead of aborting
        the sweep, and a drain signal raises :class:`SweepInterrupted`
        carrying the partial results.  ``chunksize`` is accepted for
        backward compatibility and ignored -- the supervising
        dispatcher hands workers one cell at a time so the watchdog
        knows exactly what each worker is doing.

        When observability is enabled (:mod:`repro.obs`), pool workers
        run each item under a private sink and the parent merges the
        per-item snapshots into the active sink as results drain, so
        ``jobs=N`` metrics match ``jobs=1``.
        """
        items = list(items)
        if not items:
            return []
        workers = min(self.jobs, len(items))
        use_pool = (
            workers > 1
            and fork_available()
            and _probe_picklable(task, items)
        )
        supervision = Supervision(
            task,
            items,
            workers=workers,
            on_result=on_result,
            cell_timeout=self.cell_timeout,
            max_cell_retries=self.max_cell_retries,
            strict=self.strict,
            chaos=self.chaos,
            max_worker_restarts=self.max_worker_restarts,
        )
        return supervision.run(use_pool)


def _detection_cell(config, detectors, modified, entropy, merge_flows, fault_profile):
    return run_detection_experiment(
        config,
        detectors=detectors,
        modified=modified,
        entropy=entropy,
        merge_flows=merge_flows,
        fault_profile=fault_profile,
    )


def _collect_failures(results):
    """The quarantined cells embedded in a results list, in order."""
    return [value for value in results if isinstance(value, CellFailure)]


def _run_cached_sweep(
    task, items, keys, store, executor, kind, decode, encode, no_cache,
    on_result=None,
):
    """Shared store plumbing for every sweep flavour.

    Partitions ``items`` into cache hits and misses, runs only the
    misses (checkpointing each completed cell the moment its result
    arrives), records the run in the store's ledger, and returns
    ``(results, hits, misses, failures, interrupted)`` with results
    merged in input order.  ``decode``/``encode`` translate between
    in-memory results and the store's plain-JSON payloads.

    ``on_result(index, item, result)`` fires for every freshly computed
    cell (never for cache hits and never for quarantined cells), with
    ``index`` in the *original* item order, exactly once per cell.
    Neither a failing callback nor a failing checkpoint write aborts
    the sweep; a lost checkpoint only costs resumability for that cell.

    Failure accounting: quarantined cells come back as
    :class:`CellFailure` entries (re-indexed to the original item order
    and stamped with their cache key) both inline in ``results`` and in
    the ``failures`` list; each is also appended to the store ledger.
    A drain signal (``SIGINT``/``SIGTERM``) finishes the ledger entry
    as ``"interrupted"`` -- every checkpoint that made it to disk stays
    usable by ``--resume`` -- and the partial results are returned with
    ``interrupted=True``.
    """
    results = [None] * len(items)
    missing = []
    for index, key in enumerate(keys):
        payload = None if no_cache else store.get(key)
        if payload is not None:
            results[index] = decode(payload)
        else:
            missing.append(index)
    hits = len(items) - len(missing)
    run_id = store.begin_run(kind=kind, cells=len(items), hits=hits)

    def checkpoint(position, item, result):
        index = missing[position]
        try:
            store.put(keys[index], encode(result), run_id=run_id)
        except Exception:
            logger.exception(
                "store checkpoint failed for sweep cell %d; continuing", index
            )
        if on_result is not None:
            _call_on_result(on_result, index, item, result)

    interrupted = False
    try:
        computed = executor.map(
            task, [items[index] for index in missing], on_result=checkpoint
        )
    except SweepInterrupted as exc:
        computed = exc.results
        interrupted = True
    failures = []
    for position, index in enumerate(missing):
        value = computed[position]
        if isinstance(value, CellFailure):
            value = replace(value, index=index, key=keys[index])
            failures.append(value)
        results[index] = value
    for failure in failures:
        store.record_failure(run_id, failure.as_dict())
    store.finish_run(
        run_id,
        kind=kind,
        cells=len(items),
        hits=hits,
        misses=len(missing),
        status="interrupted" if interrupted else "complete",
        failures=len(failures),
    )
    return results, hits, len(missing), failures, interrupted


def _run_plain_sweep(task, items, executor, on_result=None):
    """Store-less sweep: same return shape as :func:`_run_cached_sweep`."""
    interrupted = False
    try:
        results = executor.map(task, items, on_result=on_result)
    except SweepInterrupted as exc:
        results = exc.results
        interrupted = True
    return results, 0, len(items), _collect_failures(results), interrupted


def _detection_sweep(
    configs,
    jobs=None,
    detectors=None,
    modified=True,
    entropy=0,
    merge_flows=False,
    fault_profile=None,
    store=None,
    no_cache=False,
    on_result=None,
    cell_timeout=None,
    max_cell_retries=DEFAULT_MAX_CELL_RETRIES,
    strict=False,
):
    """Detection-sweep implementation; returns the 5-tuple
    ``(records, hits, misses, failures, interrupted)``.

    This is the engine behind :func:`repro.api.run_sweep`; call that
    instead.  Semantics are documented on the legacy
    :func:`run_detection_sweep` wrapper and in :mod:`repro.api`.
    """
    configs = list(configs)
    task = functools.partial(
        _detection_cell,
        detectors=detectors,
        modified=modified,
        entropy=entropy,
        merge_flows=merge_flows,
        fault_profile=fault_profile,
    )
    executor = SweepExecutor(
        jobs,
        cell_timeout=cell_timeout,
        max_cell_retries=max_cell_retries,
        strict=strict,
    )
    if store is None:
        return _run_plain_sweep(task, configs, executor, on_result=on_result)
    from repro.store import (
        detection_cache_key,
        record_from_dict,
        record_to_dict,
    )

    detector_names = sorted(detectors) if detectors else ["loss_trend"]
    keys = [
        detection_cache_key(
            config,
            detectors=detector_names,
            modified=modified,
            entropy=entropy,
            merge_flows=merge_flows,
            fault_profile=fault_profile,
            fingerprint=store.fingerprint,
            schema_version=store.schema_version,
        )
        for config in configs
    ]
    return _run_cached_sweep(
        task,
        configs,
        keys,
        store,
        executor,
        kind="detection_sweep",
        decode=record_from_dict,
        encode=record_to_dict,
        no_cache=no_cache,
        on_result=on_result,
    )


def run_detection_sweep(
    configs,
    jobs=None,
    detectors=None,
    modified=True,
    entropy=0,
    merge_flows=False,
    fault_profile=None,
    store=None,
    no_cache=False,
):
    """Run :func:`run_detection_experiment` over every config.

    .. deprecated:: 1.1
        Use :func:`repro.api.run_sweep` with
        :meth:`repro.api.SweepRequest.detection` instead; it returns the
        same records plus cache accounting and optional metrics.

    Returns one :class:`~repro.experiments.runner.DetectionExperimentRecord`
    per config, in config order, identical for any ``jobs`` value.
    ``fault_profile`` is applied per cell, seeded from each cell's own
    ``config.seed``.

    ``store`` (a :class:`~repro.store.ExperimentStore`) makes the sweep
    resumable: cached cells are returned without simulating (records
    byte-identical to a cold run), and every freshly computed cell is
    checkpointed as it completes, so a killed sweep re-run with the
    same store computes only the missing cells.  ``no_cache`` skips the
    read side (every cell recomputes and overwrites) while still
    checkpointing.
    """
    warnings.warn(
        "run_detection_sweep is deprecated; use "
        "repro.api.run_sweep(SweepRequest.detection(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro import api

    return api.run_sweep(
        api.SweepRequest.detection(
            configs,
            detectors=detectors,
            modified=modified,
            entropy=entropy,
            merge_flows=merge_flows,
            fault_profile=fault_profile,
            jobs=jobs,
            store=store,
            no_cache=no_cache,
        )
    ).results


def _wild_cell(cell, sanity_check, fidelity="packet"):
    from repro.experiments.wild import run_wild_test

    isp_name, app, seed = cell
    report = run_wild_test(
        isp_name, app=app, seed=seed, sanity_check=sanity_check, fidelity=fidelity
    )
    return {
        "isp": isp_name,
        "app": app,
        "seed": seed,
        "localized": report.localized,
        "outcome": report.outcome.value,
        "mechanism": report.mechanism.value,
    }


def _wild_sweep(
    isp_names,
    apps,
    seeds,
    jobs=None,
    sanity_check=False,
    fidelity="packet",
    store=None,
    no_cache=False,
    on_result=None,
    cell_timeout=None,
    max_cell_retries=DEFAULT_MAX_CELL_RETRIES,
    strict=False,
):
    """Wild-sweep implementation; returns the 5-tuple
    ``(summaries, hits, misses, failures, interrupted)``.

    The engine behind :func:`repro.api.run_sweep`; call that instead.
    """
    cells = [
        (isp, app, seed) for isp in isp_names for app in apps for seed in seeds
    ]
    task = functools.partial(_wild_cell, sanity_check=sanity_check, fidelity=fidelity)
    executor = SweepExecutor(
        jobs,
        cell_timeout=cell_timeout,
        max_cell_retries=max_cell_retries,
        strict=strict,
    )
    if store is None:
        return _run_plain_sweep(task, cells, executor, on_result=on_result)
    from repro.store import wild_cache_key
    from repro.store.serialize import plain

    keys = [
        wild_cache_key(
            isp,
            app,
            seed,
            sanity_check=sanity_check,
            fidelity=fidelity,
            fingerprint=store.fingerprint,
            schema_version=store.schema_version,
        )
        for isp, app, seed in cells
    ]
    return _run_cached_sweep(
        task,
        cells,
        keys,
        store,
        executor,
        kind="wild_sweep",
        decode=lambda payload: payload["cell"],
        encode=lambda cell: {"kind": "wild", "cell": plain(cell)},
        no_cache=no_cache,
        on_result=on_result,
    )


def run_wild_sweep(
    isp_names, apps, seeds, jobs=None, sanity_check=False, store=None, no_cache=False
):
    """Section-5 wild tests over ISPs x apps x seeds, fanned out.

    .. deprecated:: 1.1
        Use :func:`repro.api.run_sweep` with
        :meth:`repro.api.SweepRequest.wild` instead.

    Returns one summary dict per (isp, app, seed) cell in grid order
    (isp-major).  Full localization reports hold numpy arrays and
    simulator-adjacent objects; the summaries keep the cross-process
    payload small and stable.  ``store``/``no_cache`` behave as in
    :func:`run_detection_sweep` (the summaries are cached under
    ``kind="wild"`` keys).
    """
    warnings.warn(
        "run_wild_sweep is deprecated; use "
        "repro.api.run_sweep(SweepRequest.wild(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro import api

    return api.run_sweep(
        api.SweepRequest.wild(
            isp_names,
            apps=apps,
            seeds=seeds,
            sanity_check=sanity_check,
            jobs=jobs,
            store=store,
            no_cache=no_cache,
        )
    ).results
