"""The supervising dispatcher behind :meth:`SweepExecutor.map`.

The old executor pushed cells through ``ProcessPoolExecutor.map`` and
treated every process-level failure as fatal: one worker death
(``BrokenProcessPool``) discarded all parallel progress, a task
exception aborted the sweep, and a hung worker stalled it forever.
This module replaces that with a small supervised pool built directly
on ``multiprocessing``:

- each worker is a fork-spawned process with its own duplex pipe, so
  the supervisor always knows *which* cell a worker is running and can
  kill exactly that worker;
- cells are dispatched one at a time to idle workers (no queued
  batches), which makes a wall-clock deadline per cell meaningful: a
  cell that outlives ``cell_timeout`` gets its worker killed by the
  watchdog and is retried;
- a worker death costs one attempt for the cell it was running and one
  respawn from a bounded budget; when the budget is gone the remaining
  cells finish serially in the parent (determinism makes that safe);
- a cell that keeps failing is **quarantined** into a structured
  :class:`CellFailure` instead of aborting the sweep -- an attempt that
  repeats the previous attempt's exception verbatim is treated as
  deterministic and quarantined early, without burning the rest of its
  retry budget;
- ``SIGINT``/``SIGTERM`` trigger a graceful drain: no new cells are
  dispatched, in-flight cells finish and flush their checkpoints, and
  :class:`SweepInterrupted` carries the partial results out (a second
  signal aborts immediately).

Exactly-once delivery: results are delivered (``on_result`` fired) in
input order, each cell at most once, across every recovery path --
pool restarts, the serial tail after restart-budget exhaustion, and
interrupt drains all consult the same per-cell ``done``/``delivered``
state, so a checkpoint can never be written twice for one cell.
"""

import logging
import multiprocessing
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection

from repro.obs import MetricsSink, use_sink
from repro.obs import metrics as _obs

logger = logging.getLogger(__name__)

#: Upper bound on one supervisor wait (seconds): how stale a pending
#: drain signal or an expired cell deadline can go unnoticed.  Only the
#: idle parent polls at this rate; workers never see it.
_TICK = 0.25

#: Default retry budget per cell beyond its first attempt.
DEFAULT_MAX_CELL_RETRIES = 2

_DRAIN_SIGNALS = (signal.SIGINT, signal.SIGTERM)


@dataclass(frozen=True)
class CellFailure:
    """A quarantined sweep cell: what failed, how, and how hard we tried.

    Sweeps return these inline (at the failed cell's position in the
    results list) instead of aborting, unless ``strict`` asked
    otherwise.  ``key`` is the cell's experiment-store cache key when
    the sweep was store-backed, so a resumed run can recompute exactly
    the quarantined cells.
    """

    index: int
    item: str
    error: str
    kind: str  # "exception" | "timeout" | "worker_death"
    attempts: int
    elapsed: float
    key: str = None

    def as_dict(self):
        """Plain-JSON form (ledger entries, ``--json`` failure records)."""
        return {
            "status": "failed",
            "index": self.index,
            "item": self.item,
            "error": self.error,
            "kind": self.kind,
            "attempts": self.attempts,
            "elapsed": round(self.elapsed, 6),
            "key": self.key,
        }


class SweepCellError(Exception):
    """Raised under ``strict=True`` when a cell is quarantined."""

    def __init__(self, failure):
        self.failure = failure
        super().__init__(
            f"sweep cell {failure.index} failed after "
            f"{failure.attempts} attempt(s): {failure.error}"
        )


class SweepInterrupted(Exception):
    """A drain signal ended the sweep; partial results ride along.

    ``results`` is full-length, with ``None`` at never-completed cells;
    ``failures`` lists the cells quarantined before the interrupt;
    ``completed`` is the number of finished cells (successes plus
    quarantines).  Everything completed was already delivered --
    checkpoints for in-flight cells flushed before this was raised.
    """

    def __init__(self, results, failures, completed):
        self.results = results
        self.failures = failures
        self.completed = completed
        super().__init__(
            f"sweep interrupted: {completed}/{len(results)} cells completed"
        )


def _describe(exc):
    """Stable one-line description of an exception, for retry matching."""
    return f"{type(exc).__name__}: {exc}"


def _call_on_result(on_result, index, item, result):
    """Fire a result callback without letting it kill the sweep.

    Observers must not be able to abort the computation they observe:
    a raising callback is logged and skipped.
    """
    try:
        on_result(index, item, result)
    except Exception:
        logger.exception(
            "on_result callback raised for sweep item %d; continuing", index
        )


def _worker_main(conn, task, metered, chaos):
    """One pool worker: recv (index, item, attempt), send the outcome.

    The parent owns interrupt handling -- a drain must let workers
    finish their in-flight cell -- so workers ignore ``SIGINT`` and
    leave ``SIGTERM`` at the default (the supervisor only ever uses
    ``SIGKILL``, which cannot be masked).

    Outcome messages (always a 4-tuple, first element the kind):

    - ``("ok", index, result, snapshot)`` -- success;
    - ``("error", index, description, snapshot)`` -- the task (or a
      chaos injector) raised;
    - ``("unpicklable", index, description, snapshot)`` -- the result
      would not cross the process boundary (pickling happens before any
      bytes hit the pipe, so the channel stays intact).
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        index, item, attempt = message
        snapshot = None
        try:
            if chaos is not None:
                chaos.inject(index, attempt)
            if metered:
                with use_sink(MetricsSink()) as sink:
                    result = task(item)
                snapshot = sink.snapshot()
            else:
                result = task(item)
        except Exception as exc:
            outcome = ("error", index, _describe(exc), snapshot)
        else:
            outcome = ("ok", index, result, snapshot)
        try:
            conn.send(outcome)
        except Exception as exc:
            # Only the result itself can fail to pickle; the fallback
            # message is plain strings and must go through.
            conn.send(("unpicklable", index, _describe(exc), snapshot))


class _Worker:
    """Supervisor-side handle: the process, its pipe, and its cell."""

    __slots__ = ("process", "conn", "index", "started")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.index = None  # cell currently running, or None when idle
        self.started = None  # time.monotonic() at dispatch

    def kill(self):
        try:
            self.process.kill()
        except Exception:  # pragma: no cover - already reaped
            pass
        self.process.join(timeout=5)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass


class Supervision:
    """One supervised sweep: state machine over cells and workers.

    Single-use: construct, call :meth:`run`, discard.  The caller (the
    executor) decides whether the pool path applies at all; with
    ``workers <= 1`` everything runs serially in-parent, with the same
    quarantine, drain, and exactly-once semantics (but no chaos and no
    watchdog -- both need process isolation).
    """

    def __init__(
        self,
        task,
        items,
        *,
        workers,
        on_result=None,
        cell_timeout=None,
        max_cell_retries=DEFAULT_MAX_CELL_RETRIES,
        strict=False,
        chaos=None,
        max_worker_restarts=None,
    ):
        self.task = task
        self.items = items
        self.workers = workers
        self.on_result = on_result
        self.cell_timeout = cell_timeout
        self.max_cell_retries = max(0, int(max_cell_retries))
        self.strict = strict
        self.chaos = chaos
        if max_worker_restarts is None:
            max_worker_restarts = max(8, 2 * workers)
        self.max_worker_restarts = max_worker_restarts

        n = len(items)
        self.results = [None] * n
        self.done = [False] * n
        self.delivered = [False] * n
        self.attempts = [0] * n
        self.spent = [0.0] * n  # cumulative wall-clock across attempts
        self.last_error = [None] * n
        self.pending = deque(range(n))
        self.prefix = 0  # next index due for in-order delivery
        self.failures = []
        self.restarts_used = 0
        self.serial_rest = False  # pool gave up; parent finishes the tail
        self.interrupted = False
        self._old_handlers = {}
        self._publish_restart_budget()

    def _publish_restart_budget(self):
        """Remaining worker-restart budget as a gauge -- an operator
        watching a long sweep sees the budget drain before it runs out."""
        if _obs.ENABLED:
            _obs.SINK.set_gauge(
                "parallel.restart_budget_remaining",
                max(self.max_worker_restarts - self.restarts_used, 0),
            )

    # -- signal plumbing ------------------------------------------------

    def _install_signals(self):
        if threading.current_thread() is not threading.main_thread():
            return
        for signum in _DRAIN_SIGNALS:
            try:
                self._old_handlers[signum] = signal.signal(signum, self._on_signal)
            except (ValueError, OSError):  # pragma: no cover
                pass

    def _restore_signals(self):
        for signum, handler in self._old_handlers.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
        self._old_handlers = {}

    def _on_signal(self, signum, frame):
        if self.interrupted:
            # Second signal: the operator means it.  Die loudly.
            raise KeyboardInterrupt
        self.interrupted = True
        logger.warning(
            "signal %d: draining sweep (in-flight cells will finish; "
            "signal again to abort immediately)", signum,
        )

    # -- shared bookkeeping ---------------------------------------------

    def _inc(self, name):
        if _obs.ENABLED:
            _obs.SINK.inc(name)

    def _quarantine(self, index, error, kind):
        failure = CellFailure(
            index=index,
            item=repr(self.items[index])[:200],
            error=error,
            kind=kind,
            attempts=self.attempts[index],
            elapsed=self.spent[index],
        )
        self._inc("parallel.cells_quarantined")
        if self.strict:
            raise SweepCellError(failure)
        logger.warning(
            "quarantined sweep cell %d after %d attempt(s): %s",
            index, failure.attempts, error,
        )
        self.results[index] = failure
        self.done[index] = True
        self.failures.append(failure)

    def _attempt_failed(self, index, error, kind):
        """One attempt went bad: retry the cell or quarantine it."""
        self.attempts[index] += 1
        deterministic = kind == "exception" and self.last_error[index] == error
        self.last_error[index] = error
        if deterministic or self.attempts[index] > self.max_cell_retries:
            self._quarantine(index, error, kind)
            return
        self._inc("parallel.cell_retries")
        logger.info(
            "retrying sweep cell %d (attempt %d failed: %s)",
            index, self.attempts[index], error,
        )
        # Retry ahead of fresh cells: in-order delivery stalls on the
        # earliest unfinished index, so clearing it first keeps the
        # checkpoint stream moving.
        self.pending.appendleft(index)

    def _deliver(self):
        """Fire callbacks for the contiguous done-prefix, exactly once."""
        n = len(self.items)
        while self.prefix < n and self.done[self.prefix]:
            self._fire(self.prefix)
            self.prefix += 1

    def _fire(self, index):
        if self.delivered[index]:
            return
        self.delivered[index] = True
        result = self.results[index]
        if self.on_result is not None and not isinstance(result, CellFailure):
            _call_on_result(self.on_result, index, self.items[index], result)

    def _flush_completed(self):
        """Drain epilogue: deliver every finished cell, prefix or not.

        An interrupt can leave completed cells stranded behind a gap
        (an unfinished earlier index); their checkpoints must still
        flush before the partial results go back to the caller.
        """
        for index in range(len(self.items)):
            if self.done[index]:
                self._fire(index)

    # -- the pool -------------------------------------------------------

    def _spawn(self, ctx):
        parent_conn, child_conn = ctx.Pipe()
        process = ctx.Process(
            target=_worker_main,
            args=(child_conn, self.task, self._metered, self.chaos),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    def _worker_died(self, worker, pool, now):
        """EOF / send failure on a worker's pipe: account and respawn."""
        self._inc("parallel.worker_deaths")
        worker.process.join(timeout=5)
        exitcode = worker.process.exitcode
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        index = worker.index
        if index is not None:
            self.spent[index] += now - worker.started
            self._attempt_failed(
                index, f"worker died (exit code {exitcode})", "worker_death"
            )
        pool.remove(worker)
        self.restarts_used += 1
        self._publish_restart_budget()
        if self.restarts_used <= self.max_worker_restarts:
            logger.warning(
                "sweep worker died (exit code %s); respawning (%d/%d restarts)",
                exitcode, self.restarts_used, self.max_worker_restarts,
            )
            pool.append(self._spawn(self._ctx))
        elif not pool:
            logger.error(
                "sweep worker restart budget exhausted; finishing the "
                "remaining cells serially in the parent"
            )
            self.serial_rest = True

    def _dispatch(self, pool):
        if self.interrupted or self.serial_rest:
            return
        for worker in list(pool):
            if worker.index is not None or not self.pending:
                continue
            index = self.pending.popleft()
            try:
                worker.conn.send((index, self.items[index], self.attempts[index]))
            except (BrokenPipeError, OSError):
                # Died while idle; the cell was never attempted, so it
                # goes back unpunished.
                self.pending.appendleft(index)
                self._worker_died(worker, pool, time.monotonic())
                continue
            worker.index = index
            worker.started = time.monotonic()

    def _handle_message(self, worker, pool):
        now = time.monotonic()
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            self._worker_died(worker, pool, now)
            return
        kind, index, payload, snapshot = message
        if worker.index != index:  # pragma: no cover - defensive
            logger.error("worker answered for cell %s while running %s",
                         index, worker.index)
        self.spent[index] += now - worker.started
        worker.index = None
        worker.started = None
        if snapshot is not None:
            # Null-safe when metrics were disabled mid-sweep.
            _obs.SINK.merge(snapshot)
        if kind == "ok":
            self.results[index] = payload
            self.done[index] = True
        elif kind == "error":
            self._attempt_failed(index, payload, "exception")
        else:  # "unpicklable"
            logger.warning(
                "sweep result for cell %d would not cross the process "
                "boundary (%s); finishing the remaining cells serially",
                index, payload,
            )
            self.pending.appendleft(index)
            self.serial_rest = True

    def _check_timeouts(self, pool, now):
        if self.cell_timeout is None:
            return
        for worker in list(pool):
            if worker.index is None or now - worker.started < self.cell_timeout:
                continue
            index = worker.index
            self._inc("parallel.cell_timeouts")
            logger.warning(
                "sweep cell %d exceeded its %.3gs wall-clock timeout; "
                "killing its worker", index, self.cell_timeout,
            )
            self.spent[index] += now - worker.started
            worker.kill()
            pool.remove(worker)
            # A watchdog kill is the supervisor's own doing: it charges
            # the cell an attempt but not the worker-restart budget
            # (timeouts are already bounded by per-cell retries, and a
            # sweep of slow cells must not degrade to the serial path,
            # where no watchdog can save it).
            self._attempt_failed(
                index,
                f"TimeoutError: cell exceeded {self.cell_timeout}s wall clock",
                "timeout",
            )
            pool.append(self._spawn(self._ctx))

    def _wait_timeout(self, busy, now):
        timeout = _TICK
        if self.cell_timeout is not None:
            for worker in busy:
                remaining = worker.started + self.cell_timeout - now
                timeout = min(timeout, max(remaining, 0.0))
        return timeout

    def _run_pool(self):
        self._ctx = multiprocessing.get_context("fork")
        self._metered = _obs.ENABLED
        pool = [self._spawn(self._ctx) for _ in range(self.workers)]
        try:
            while not self.serial_rest:
                self._dispatch(pool)
                busy = [w for w in pool if w.index is not None]
                if not busy:
                    if self.pending and not self.interrupted:
                        # Workers all gone and none respawnable.
                        self.serial_rest = True
                    break
                now = time.monotonic()
                ready = connection.wait(
                    [w.conn for w in busy], self._wait_timeout(busy, now)
                )
                ready = set(ready)
                for worker in busy:
                    if worker.conn in ready:
                        self._handle_message(worker, pool)
                self._check_timeouts(pool, time.monotonic())
                self._deliver()
        finally:
            self._shutdown(pool)

    def _shutdown(self, pool):
        for worker in pool:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 2.0
        for worker in pool:
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.kill()
            else:
                try:
                    worker.conn.close()
                except OSError:  # pragma: no cover
                    pass

    # -- the serial path -------------------------------------------------

    def _finish_serial(self):
        """Run every unfinished cell in-parent, honouring drain signals.

        Used for ``jobs=1``, platforms without fork, unpicklable
        tasks/items/results, and the tail after the restart budget is
        gone.  No watchdog (a hung cell would hang a thread-less parent
        regardless) and no chaos (killing the parent is not a recovery
        scenario); exceptions still quarantine -- or propagate under
        ``strict``, preserving the historical serial behaviour of
        raising the original exception.
        """
        for index in range(len(self.items)):
            if self.interrupted:
                break
            if self.done[index]:
                continue
            started = time.monotonic()
            try:
                result = self.task(self.items[index])
            except Exception as exc:
                self.spent[index] += time.monotonic() - started
                if self.strict:
                    raise
                self.attempts[index] += 1
                self._quarantine(index, _describe(exc), "exception")
            else:
                self.spent[index] += time.monotonic() - started
                self.attempts[index] += 1
                self.results[index] = result
                self.done[index] = True
            self._deliver()

    # -- entry point -----------------------------------------------------

    def run(self, use_pool):
        self._install_signals()
        try:
            if use_pool:
                self._run_pool()
            if not self.interrupted:
                self._finish_serial()
            self._deliver()
            if self.interrupted:
                self._flush_completed()
                raise SweepInterrupted(
                    self.results, self.failures, sum(self.done)
                )
            return self.results
        finally:
            self._restore_signals()
