"""Performance regression harness.

``python -m repro.perf`` times the canonical workloads every PR is
measured against -- a single replay, a simultaneous replay, a 3x3x3
detection sweep run serially and in parallel, and the hybrid-fidelity
workloads (``fluid_replay``, ``fluid_validation``) -- then writes
``BENCH_netsim.json`` with wall times and simulator events/sec, and
*asserts* determinism: serial and parallel sweeps byte-identical,
metrics collection record-transparent, and hybrid fidelity reproducing
every packet-mode verdict on the pinned gate grid (timing never fails
the harness; a determinism violation does).

See DESIGN.md ("Performance architecture" and "Hybrid fidelity model")
for how to read the output.
"""

from repro.perf.bench import (
    SchemaMismatchError,
    bench_fluid_validation,
    compare_benchmarks,
    fidelity_gate_configs,
    main,
    run_benchmarks,
)

__all__ = [
    "SchemaMismatchError",
    "bench_fluid_validation",
    "compare_benchmarks",
    "fidelity_gate_configs",
    "main",
    "run_benchmarks",
]
