"""Performance regression harness.

``python -m repro.perf`` times the canonical workloads every PR is
measured against -- a single replay, a simultaneous replay, and a
3x3x3 detection sweep run serially and in parallel -- then writes
``BENCH_netsim.json`` with wall times and simulator events/sec, and
*asserts* that the serial and parallel sweeps produced byte-identical
results (timing never fails the harness; a determinism violation does).

See DESIGN.md ("Performance architecture") for how to read the output.
"""

from repro.perf.bench import (
    SchemaMismatchError,
    compare_benchmarks,
    main,
    run_benchmarks,
)

__all__ = ["SchemaMismatchError", "compare_benchmarks", "main", "run_benchmarks"]
