import sys

from repro.perf.bench import main

if __name__ == "__main__":
    sys.exit(main())
