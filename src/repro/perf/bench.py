"""Canonical workload benchmarks and the ``BENCH_netsim.json`` writer.

Three workloads cover the hot paths end to end:

- ``single_replay``: one WeHe p0 replay (DES engine + TCP + background);
- ``simultaneous_replay``: the p1/p2 replay that every detection and
  localization experiment is built on;
- ``detection_sweep``: a 3x3x3 grid (input-rate factor x queue factor x
  seed) of full detection cells, run serially and through
  :class:`~repro.parallel.SweepExecutor`, whose outputs must be
  byte-identical -- the determinism contract the parallel layer rests
  on.

Timing is reported, never asserted: hardware varies, determinism does
not.  CI runs ``--quick`` and fails only on a crash or a determinism
violation.
"""

import argparse
import dataclasses
import json
import os
import platform
import sys
import time

from repro.experiments.runner import NetsimReplayService, run_detection_experiment
from repro.experiments.scenarios import ScenarioConfig, severity_grid
from repro.netsim.engine import events_processed_total
from repro.parallel import SweepExecutor, default_jobs, run_detection_sweep
from repro.wehe.apps import make_trace

#: The 3x3x3 sweep axes (leading Table-2 values).
SWEEP_FACTORS = (1.5, 1.3, 2.0)
SWEEP_QUEUES = (0.5, 0.25, 1.0)
SWEEP_SEEDS = range(3)


def canonical_record(record):
    """A byte-stable JSON encoding of one DetectionExperimentRecord."""
    return json.dumps(dataclasses.asdict(record), sort_keys=True, default=repr)


def _timed(fn):
    """Run ``fn`` and return (result, wall seconds, simulator events)."""
    events_before = events_processed_total()
    t0 = time.perf_counter()
    result = fn()
    wall = time.perf_counter() - t0
    return result, wall, events_processed_total() - events_before


def bench_single_replay(duration, repeats=2):
    """WeHe's p0 replay; the second repeat exercises the trace memo."""
    def once():
        config = ScenarioConfig(app="netflix", duration=duration, seed=0)
        service = NetsimReplayService(config)
        trace = make_trace(config.app, config.duration, service._trace_rng)
        return service.single_replay(trace)

    walls = []
    events = 0
    for _ in range(repeats):
        _, wall, n_events = _timed(once)
        walls.append(wall)
        events = n_events
    return {
        "wall_s": min(walls),
        "wall_first_s": walls[0],
        "events": events,
        "events_per_sec": events / min(walls) if min(walls) > 0 else 0.0,
    }


def bench_simultaneous_replay(duration):
    def once():
        config = ScenarioConfig(app="netflix", duration=duration, seed=0)
        service = NetsimReplayService(config)
        trace = make_trace(config.app, config.duration, service._trace_rng)
        return service.simultaneous_replay(trace)

    _, wall, events = _timed(once)
    return {
        "wall_s": wall,
        "events": events,
        "events_per_sec": events / wall if wall > 0 else 0.0,
    }


def bench_detection_sweep(duration, jobs):
    """The 3x3x3 sweep, serial vs parallel, with a determinism check."""
    configs = [
        config.with_(duration=duration)
        for config in severity_grid(
            "netflix", SWEEP_SEEDS, factors=SWEEP_FACTORS, queues=SWEEP_QUEUES
        )
    ]
    serial, serial_wall, serial_events = _timed(
        lambda: run_detection_sweep(configs, jobs=1)
    )
    parallel, parallel_wall, _ = _timed(
        lambda: run_detection_sweep(configs, jobs=jobs)
    )
    identical = [canonical_record(r) for r in serial] == [
        canonical_record(r) for r in parallel
    ]
    return {
        "cells": len(configs),
        "serial_wall_s": serial_wall,
        "serial_events": serial_events,
        "serial_events_per_sec": (
            serial_events / serial_wall if serial_wall > 0 else 0.0
        ),
        "parallel_wall_s": parallel_wall,
        "parallel_jobs": jobs,
        "speedup": serial_wall / parallel_wall if parallel_wall > 0 else 0.0,
        "identical": identical,
    }


def bench_cell_repeat(duration):
    """One cell run twice: the repeat measures the trace-memo fast path."""
    config = ScenarioConfig(app="zoom", duration=duration, seed=0)
    _, first, _ = _timed(lambda: run_detection_experiment(config))
    _, second, _ = _timed(lambda: run_detection_experiment(config))
    return {"first_wall_s": first, "repeat_wall_s": second}


def run_benchmarks(quick=False, jobs=None):
    """Run every workload; returns the ``BENCH_netsim.json`` payload."""
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    replay_duration = 8.0 if quick else 30.0
    sweep_duration = 5.0 if quick else 15.0

    results = {
        "schema": "BENCH_netsim/1",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "quick": quick,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "workloads": {},
    }
    workloads = results["workloads"]
    workloads["single_replay"] = dict(
        bench_single_replay(replay_duration), duration_s=replay_duration
    )
    workloads["simultaneous_replay"] = dict(
        bench_simultaneous_replay(replay_duration), duration_s=replay_duration
    )
    workloads["cell_repeat"] = dict(
        bench_cell_repeat(sweep_duration), duration_s=sweep_duration
    )
    workloads["detection_sweep"] = dict(
        bench_detection_sweep(sweep_duration, jobs), duration_s=sweep_duration
    )
    results["determinism_ok"] = workloads["detection_sweep"]["identical"]
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.perf", description="netsim performance regression harness"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="short workloads for CI smoke runs (~1 minute)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="parallel worker count for the sweep workload "
             "(default: all cores)",
    )
    parser.add_argument(
        "--output", default="BENCH_netsim.json",
        help="where to write the results JSON (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    results = run_benchmarks(quick=args.quick, jobs=args.jobs)
    with open(args.output, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")

    workloads = results["workloads"]
    print(f"single replay        : {workloads['single_replay']['wall_s']:.2f} s "
          f"({workloads['single_replay']['events_per_sec']:,.0f} events/s)")
    print(f"simultaneous replay  : {workloads['simultaneous_replay']['wall_s']:.2f} s "
          f"({workloads['simultaneous_replay']['events_per_sec']:,.0f} events/s)")
    sweep = workloads["detection_sweep"]
    print(f"3x3x3 sweep (serial) : {sweep['serial_wall_s']:.2f} s "
          f"({sweep['serial_events_per_sec']:,.0f} events/s)")
    print(f"3x3x3 sweep (jobs={sweep['parallel_jobs']}): "
          f"{sweep['parallel_wall_s']:.2f} s "
          f"(speedup {sweep['speedup']:.2f}x)")
    print(f"determinism          : "
          f"{'ok' if results['determinism_ok'] else 'VIOLATED'}")
    print(f"wrote {args.output}")

    if not results["determinism_ok"]:
        print(
            "ERROR: serial and parallel sweep results differ", file=sys.stderr
        )
        return 1
    return 0
