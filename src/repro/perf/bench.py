"""Canonical workload benchmarks and the ``BENCH_netsim.json`` writer.

The workloads cover the hot paths end to end:

- ``single_replay``: one WeHe p0 replay (DES engine + TCP + background);
- ``simultaneous_replay``: the p1/p2 replay that every detection and
  localization experiment is built on;
- ``detection_sweep``: a 3x3x3 grid (input-rate factor x queue factor x
  seed) of full detection cells, run serially and through
  :class:`~repro.parallel.SweepExecutor`, whose outputs must be
  byte-identical -- the determinism contract the parallel layer rests
  on;
- ``metrics_overhead``: the same cells with :mod:`repro.obs` disabled
  vs enabled -- the disabled path must stay free (the ~2% guard lives
  in ``tests/perf``) and enabling metrics must not change a record
  byte.

Sweeps run through :func:`repro.api.run_sweep` -- the same surface the
CLI uses, so the benchmark measures what users run.

Timing is reported, never asserted: hardware varies, determinism does
not.  CI runs ``--quick`` and fails only on a crash or a determinism
violation.
"""

import argparse
import json
import os
import platform
import subprocess
import sys
import time

from repro.api import SweepRequest, run_sweep
from repro.experiments.runner import NetsimReplayService, run_detection_experiment
from repro.experiments.scenarios import ScenarioConfig, severity_grid
from repro.netsim.engine import events_processed_total
from repro.parallel import default_jobs
from repro.store import code_fingerprint, record_line
from repro.wehe.apps import make_trace

#: The 3x3x3 sweep axes (leading Table-2 values).
SWEEP_FACTORS = (1.5, 1.3, 2.0)
SWEEP_QUEUES = (0.5, 0.25, 1.0)
SWEEP_SEEDS = range(3)

#: Bump whenever the BENCH_netsim.json shape or any workload definition
#: changes; :func:`compare_benchmarks` refuses to diff across versions.
BENCH_SCHEMA_VERSION = 2


class SchemaMismatchError(RuntimeError):
    """Two benchmark files whose schemas make a comparison meaningless."""


def canonical_record(record):
    """A byte-stable JSON encoding of one DetectionExperimentRecord.

    Delegates to :func:`repro.store.record_line` -- the same canonical
    serialization the store shards and ``repro sweep --json`` use, so
    "byte-identical" means one thing across the whole stack.
    """
    return record_line(record)


def _git_commit():
    """The current git commit, or None outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else None


def _timed(fn):
    """Run ``fn`` and return (result, wall seconds, simulator events)."""
    events_before = events_processed_total()
    t0 = time.perf_counter()
    result = fn()
    wall = time.perf_counter() - t0
    return result, wall, events_processed_total() - events_before


def bench_single_replay(duration, repeats=2):
    """WeHe's p0 replay; the second repeat exercises the trace memo."""
    def once():
        config = ScenarioConfig(app="netflix", duration=duration, seed=0)
        service = NetsimReplayService(config)
        trace = make_trace(config.app, config.duration, service._trace_rng)
        return service.single_replay(trace)

    walls = []
    events = 0
    for _ in range(repeats):
        _, wall, n_events = _timed(once)
        walls.append(wall)
        events = n_events
    return {
        "wall_s": min(walls),
        "wall_first_s": walls[0],
        "events": events,
        "events_per_sec": events / min(walls) if min(walls) > 0 else 0.0,
    }


def bench_simultaneous_replay(duration):
    def once():
        config = ScenarioConfig(app="netflix", duration=duration, seed=0)
        service = NetsimReplayService(config)
        trace = make_trace(config.app, config.duration, service._trace_rng)
        return service.simultaneous_replay(trace)

    _, wall, events = _timed(once)
    return {
        "wall_s": wall,
        "events": events,
        "events_per_sec": events / wall if wall > 0 else 0.0,
    }


def bench_detection_sweep(duration, jobs, store=None):
    """The 3x3x3 sweep, serial vs parallel, with a determinism check.

    With ``store`` set, two extra measurements run through the
    experiment store: a cold pass (every cell computes and checkpoints)
    and a warm pass (every cell a cache hit, zero simulations); the
    warm records must be byte-identical to the serial run.
    """
    configs = [
        config.with_(duration=duration)
        for config in severity_grid(
            "netflix", SWEEP_SEEDS, factors=SWEEP_FACTORS, queues=SWEEP_QUEUES
        )
    ]
    serial, serial_wall, serial_events = _timed(
        lambda: run_sweep(SweepRequest.detection(configs, jobs=1)).results
    )
    parallel, parallel_wall, _ = _timed(
        lambda: run_sweep(SweepRequest.detection(configs, jobs=jobs)).results
    )
    serial_canon = [canonical_record(r) for r in serial]
    identical = serial_canon == [canonical_record(r) for r in parallel]
    result = {
        "cells": len(configs),
        "serial_wall_s": serial_wall,
        "serial_events": serial_events,
        "serial_events_per_sec": (
            serial_events / serial_wall if serial_wall > 0 else 0.0
        ),
        "parallel_wall_s": parallel_wall,
        "parallel_jobs": jobs,
        "speedup": serial_wall / parallel_wall if parallel_wall > 0 else 0.0,
        "identical": identical,
    }
    if store is not None:
        _, cold_wall, _ = _timed(
            lambda: run_sweep(
                SweepRequest.detection(configs, jobs=jobs, store=store, no_cache=True)
            ).results
        )
        warm, warm_wall, warm_events = _timed(
            lambda: run_sweep(SweepRequest.detection(configs, jobs=1, store=store)).results
        )
        result.update(
            store_cold_wall_s=cold_wall,
            store_warm_wall_s=warm_wall,
            store_warm_events=warm_events,  # must be 0: all cache hits
            store_identical=serial_canon == [canonical_record(r) for r in warm],
        )
        result["identical"] = identical and result["store_identical"]
    return result


def bench_metrics_overhead(duration, repeats=2):
    """Observability cost: the same cells with metrics off vs on.

    The disabled pass runs ``repeats`` times and keeps the best wall
    (noise floor); the overhead ratio is enabled/disabled.  The
    byte-identity of the two record streams is the invariant that
    metrics only observe -- it folds into ``determinism_ok``.
    """
    configs = [
        ScenarioConfig(app="netflix", duration=duration, seed=seed)
        for seed in range(3)
    ]

    def sweep(metrics=None):
        return run_sweep(SweepRequest.detection(configs, jobs=1, metrics=metrics))

    disabled_walls = []
    disabled = None
    for _ in range(repeats):
        disabled, wall, _ = _timed(sweep)
        disabled_walls.append(wall)
    enabled, enabled_wall, _ = _timed(lambda: sweep(metrics=True))
    disabled_wall = min(disabled_walls)
    base = [canonical_record(r) for r in disabled.results]
    identical = base == [canonical_record(r) for r in enabled.results]
    counters = enabled.metrics["counters"]
    return {
        "cells": len(configs),
        "disabled_wall_s": disabled_wall,
        "enabled_wall_s": enabled_wall,
        "enabled_overhead": (
            enabled_wall / disabled_wall - 1.0 if disabled_wall > 0 else 0.0
        ),
        "engine_events_observed": counters.get("netsim.engine.events", 0),
        "counters_recorded": len(counters),
        "records_identical": identical,
    }


def bench_cell_repeat(duration):
    """One cell run twice: the repeat measures the trace-memo fast path."""
    config = ScenarioConfig(app="zoom", duration=duration, seed=0)
    _, first, _ = _timed(lambda: run_detection_experiment(config))
    _, second, _ = _timed(lambda: run_detection_experiment(config))
    return {"first_wall_s": first, "repeat_wall_s": second}


def run_benchmarks(quick=False, jobs=None, store_root=None):
    """Run every workload; returns the ``BENCH_netsim.json`` payload.

    ``store_root`` adds the experiment-store cold/warm workloads (see
    :func:`bench_detection_sweep`).
    """
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    replay_duration = 8.0 if quick else 30.0
    sweep_duration = 5.0 if quick else 15.0
    store = None
    if store_root is not None:
        from repro.store import ExperimentStore

        store = ExperimentStore(store_root)

    results = {
        "schema": f"BENCH_netsim/{BENCH_SCHEMA_VERSION}",
        "schema_version": BENCH_SCHEMA_VERSION,
        "code_fingerprint": code_fingerprint(),
        "git_commit": _git_commit(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "quick": quick,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "affinity_jobs": default_jobs(),
        },
        "workloads": {},
    }
    workloads = results["workloads"]
    workloads["single_replay"] = dict(
        bench_single_replay(replay_duration), duration_s=replay_duration
    )
    workloads["simultaneous_replay"] = dict(
        bench_simultaneous_replay(replay_duration), duration_s=replay_duration
    )
    workloads["cell_repeat"] = dict(
        bench_cell_repeat(sweep_duration), duration_s=sweep_duration
    )
    workloads["detection_sweep"] = dict(
        bench_detection_sweep(sweep_duration, jobs, store=store),
        duration_s=sweep_duration,
    )
    workloads["metrics_overhead"] = dict(
        bench_metrics_overhead(sweep_duration), duration_s=sweep_duration
    )
    results["determinism_ok"] = (
        workloads["detection_sweep"]["identical"]
        and workloads["metrics_overhead"]["records_identical"]
    )
    return results


def compare_benchmarks(baseline, current):
    """Per-workload wall-time deltas between two BENCH payloads.

    Refuses (raises :class:`SchemaMismatchError`) when the two files
    were produced by different benchmark schemas or different workload
    shapes (``quick`` mode) -- comparing those numbers mis-diffs, it
    does not inform.  A differing ``code_fingerprint`` is expected (the
    comparison exists to measure code changes) and is reported, not
    refused.
    """
    for payload, name in ((baseline, "baseline"), (current, "current")):
        if "schema_version" not in payload:
            raise SchemaMismatchError(
                f"{name} file predates schema_version stamping "
                f"(schema {payload.get('schema')!r}); re-run repro.perf "
                "to regenerate it"
            )
    if baseline["schema_version"] != current["schema_version"]:
        raise SchemaMismatchError(
            f"schema_version {baseline['schema_version']} != "
            f"{current['schema_version']}: workload definitions differ, "
            "refusing to diff"
        )
    if baseline.get("quick") != current.get("quick"):
        raise SchemaMismatchError(
            "one file is --quick and the other is not: durations differ, "
            "refusing to diff"
        )
    deltas = {}
    for name, workload in current["workloads"].items():
        base = baseline["workloads"].get(name)
        if base is None:
            continue
        for field, value in workload.items():
            if not field.endswith("wall_s") or field not in base:
                continue
            before = base[field]
            deltas[f"{name}.{field}"] = {
                "baseline_s": before,
                "current_s": value,
                "speedup": before / value if value > 0 else 0.0,
            }
    return {
        "baseline_fingerprint": baseline.get("code_fingerprint"),
        "current_fingerprint": current.get("code_fingerprint"),
        "deltas": deltas,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.perf", description="netsim performance regression harness"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="short workloads for CI smoke runs (~1 minute)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="parallel worker count for the sweep workload "
             "(default: all cores)",
    )
    parser.add_argument(
        "--output", default="BENCH_netsim.json",
        help="where to write the results JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="experiment-store root: adds cold/warm cached-sweep "
             "workloads and verifies cache hits are byte-identical",
    )
    parser.add_argument(
        "--compare", default=None, metavar="BASELINE.json",
        help="print wall-time deltas against a previous run; refuses "
             "to diff across mismatched benchmark schemas",
    )
    args = parser.parse_args(argv)

    results = run_benchmarks(quick=args.quick, jobs=args.jobs, store_root=args.store)
    with open(args.output, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")

    workloads = results["workloads"]
    print(f"single replay        : {workloads['single_replay']['wall_s']:.2f} s "
          f"({workloads['single_replay']['events_per_sec']:,.0f} events/s)")
    print(f"simultaneous replay  : {workloads['simultaneous_replay']['wall_s']:.2f} s "
          f"({workloads['simultaneous_replay']['events_per_sec']:,.0f} events/s)")
    sweep = workloads["detection_sweep"]
    print(f"3x3x3 sweep (serial) : {sweep['serial_wall_s']:.2f} s "
          f"({sweep['serial_events_per_sec']:,.0f} events/s)")
    print(f"3x3x3 sweep (jobs={sweep['parallel_jobs']}): "
          f"{sweep['parallel_wall_s']:.2f} s "
          f"(speedup {sweep['speedup']:.2f}x)")
    if "store_warm_wall_s" in sweep:
        print(f"store cold / warm    : {sweep['store_cold_wall_s']:.2f} s / "
              f"{sweep['store_warm_wall_s']:.2f} s "
              f"({sweep['store_warm_events']} simulated events when warm)")
    overhead = workloads["metrics_overhead"]
    print(f"metrics off / on     : {overhead['disabled_wall_s']:.2f} s / "
          f"{overhead['enabled_wall_s']:.2f} s "
          f"({overhead['enabled_overhead']:+.1%} when enabled)")
    print(f"determinism          : "
          f"{'ok' if results['determinism_ok'] else 'VIOLATED'}")
    print(f"wrote {args.output}")

    if args.compare:
        try:
            with open(args.compare) as fh:
                baseline = json.load(fh)
            report = compare_benchmarks(baseline, results)
        except SchemaMismatchError as exc:
            print(f"ERROR: cannot compare against {args.compare}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"compare vs {args.compare} "
              f"(fingerprint {report['baseline_fingerprint']} -> "
              f"{report['current_fingerprint']}):")
        for name, delta in sorted(report["deltas"].items()):
            print(f"  {name:<34} {delta['baseline_s']:.2f} s -> "
                  f"{delta['current_s']:.2f} s "
                  f"({delta['speedup']:.2f}x)")

    if not results["determinism_ok"]:
        print(
            "ERROR: serial and parallel sweep results differ", file=sys.stderr
        )
        return 1
    return 0
