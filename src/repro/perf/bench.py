"""Canonical workload benchmarks and the ``BENCH_netsim.json`` writer.

The workloads cover the hot paths end to end:

- ``single_replay``: one WeHe p0 replay (DES engine + TCP + background);
- ``simultaneous_replay``: the p1/p2 replay that every detection and
  localization experiment is built on;
- ``detection_sweep``: a 3x3x3 grid (input-rate factor x queue factor x
  seed) of full detection cells, run serially and through
  :class:`~repro.parallel.SweepExecutor`, whose outputs must be
  byte-identical -- the determinism contract the parallel layer rests
  on;
- ``metrics_overhead``: the same cells with :mod:`repro.obs` disabled
  vs enabled -- the disabled path must stay free (the ~2% guard lives
  in ``tests/perf``) and enabling metrics must not change a record
  byte;
- ``fluid_replay``: one detection cell at ``fidelity="packet"`` vs
  ``fidelity="hybrid"`` -- the raw event-count and wall-time gain of
  the fluid background model (:mod:`repro.netsim.fluid`);
- ``fluid_validation``: the pinned fidelity-gate grid (cells whose
  packet-mode verdicts are seed-stable, so a packet/hybrid verdict
  flip is a model error, not detector noise) plus two wild-ISP
  localization cells.  Hybrid must reproduce every detection and
  localization verdict exactly while simulating >= 5x fewer events;
  any flip folds into ``determinism_ok`` and fails CI.

Sweeps run through :func:`repro.api.run_sweep` -- the same surface the
CLI uses, so the benchmark measures what users run.

Timing is reported, never asserted: hardware varies, determinism does
not.  CI runs ``--quick`` and fails only on a crash or a determinism
violation.
"""

import argparse
import json
import os
import platform
import subprocess
import sys
import time

from repro.api import SweepRequest, run_sweep
from repro.experiments.runner import NetsimReplayService, run_detection_experiment
from repro.experiments.scenarios import ScenarioConfig, severity_grid
from repro.netsim.engine import events_processed_total
from repro.parallel import default_jobs
from repro.store import code_fingerprint, record_line
from repro.wehe.apps import make_trace

#: The 3x3x3 sweep axes (leading Table-2 values).
SWEEP_FACTORS = (1.5, 1.3, 2.0)
SWEEP_QUEUES = (0.5, 0.25, 1.0)
SWEEP_SEEDS = range(3)

#: The pinned fidelity-gate grid.  Verdicts at shorter durations flip
#: seed-to-seed in *packet* mode (Algorithm 1 runs out of usable loss
#: intervals), as do the 0.95/1.05 knife-edge congestion factors --
#: such cells cannot gate a fidelity comparison.  These axes were
#: verified verdict-stable in packet mode, so any packet/hybrid
#: disagreement on them is a fluid-model error.
FIDELITY_GATE_DURATION = 60.0
FIDELITY_GATE_RTTS = (0.015, 0.035, 0.060)
FIDELITY_GATE_LIMITERS = ("common", "noncommon")
FIDELITY_GATE_CONGESTION = (0.2, 1.15)
FIDELITY_GATE_SEEDS = (1, 2)
#: Wild-ISP localization cells gated alongside the detection grid
#: (ISP5 is the delayed-trigger pathological case of Section 5).
FIDELITY_GATE_WILD = (("ISP1", 0), ("ISP5", 0))

#: Bump whenever the BENCH_netsim.json shape or any workload definition
#: changes; :func:`compare_benchmarks` refuses to diff across versions.
BENCH_SCHEMA_VERSION = 3


class SchemaMismatchError(RuntimeError):
    """Two benchmark files whose schemas make a comparison meaningless."""


def canonical_record(record):
    """A byte-stable JSON encoding of one DetectionExperimentRecord.

    Delegates to :func:`repro.store.record_line` -- the same canonical
    serialization the store shards and ``repro sweep --json`` use, so
    "byte-identical" means one thing across the whole stack.
    """
    return record_line(record)


def _git_commit():
    """The current git commit, or None outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else None


def _timed(fn):
    """Run ``fn`` and return (result, wall seconds, simulator events)."""
    events_before = events_processed_total()
    t0 = time.perf_counter()
    result = fn()
    wall = time.perf_counter() - t0
    return result, wall, events_processed_total() - events_before


def bench_single_replay(duration, repeats=2):
    """WeHe's p0 replay; the second repeat exercises the trace memo."""
    def once():
        config = ScenarioConfig(app="netflix", duration=duration, seed=0)
        service = NetsimReplayService(config)
        trace = make_trace(config.app, config.duration, service._trace_rng)
        return service.single_replay(trace)

    walls = []
    events = 0
    for _ in range(repeats):
        _, wall, n_events = _timed(once)
        walls.append(wall)
        events = n_events
    return {
        "wall_s": min(walls),
        "wall_first_s": walls[0],
        "events": events,
        "events_per_sec": events / min(walls) if min(walls) > 0 else 0.0,
    }


def bench_simultaneous_replay(duration):
    def once():
        config = ScenarioConfig(app="netflix", duration=duration, seed=0)
        service = NetsimReplayService(config)
        trace = make_trace(config.app, config.duration, service._trace_rng)
        return service.simultaneous_replay(trace)

    _, wall, events = _timed(once)
    return {
        "wall_s": wall,
        "events": events,
        "events_per_sec": events / wall if wall > 0 else 0.0,
    }


def bench_detection_sweep(duration, jobs, store=None):
    """The 3x3x3 sweep, serial vs parallel, with a determinism check.

    With ``store`` set, two extra measurements run through the
    experiment store: a cold pass (every cell computes and checkpoints)
    and a warm pass (every cell a cache hit, zero simulations); the
    warm records must be byte-identical to the serial run.
    """
    configs = [
        config.with_(duration=duration)
        for config in severity_grid(
            "netflix", SWEEP_SEEDS, factors=SWEEP_FACTORS, queues=SWEEP_QUEUES
        )
    ]
    serial, serial_wall, serial_events = _timed(
        lambda: run_sweep(SweepRequest.detection(configs, jobs=1)).results
    )
    parallel, parallel_wall, _ = _timed(
        lambda: run_sweep(SweepRequest.detection(configs, jobs=jobs)).results
    )
    serial_canon = [canonical_record(r) for r in serial]
    identical = serial_canon == [canonical_record(r) for r in parallel]
    result = {
        "cells": len(configs),
        "serial_wall_s": serial_wall,
        "serial_events": serial_events,
        "serial_events_per_sec": (
            serial_events / serial_wall if serial_wall > 0 else 0.0
        ),
        "parallel_wall_s": parallel_wall,
        "parallel_jobs": jobs,
        "speedup": serial_wall / parallel_wall if parallel_wall > 0 else 0.0,
        "identical": identical,
    }
    if store is not None:
        _, cold_wall, _ = _timed(
            lambda: run_sweep(
                SweepRequest.detection(configs, jobs=jobs, store=store, no_cache=True)
            ).results
        )
        warm, warm_wall, warm_events = _timed(
            lambda: run_sweep(SweepRequest.detection(configs, jobs=1, store=store)).results
        )
        result.update(
            store_cold_wall_s=cold_wall,
            store_warm_wall_s=warm_wall,
            store_warm_events=warm_events,  # must be 0: all cache hits
            store_identical=serial_canon == [canonical_record(r) for r in warm],
        )
        result["identical"] = identical and result["store_identical"]
    return result


def bench_metrics_overhead(duration, repeats=2):
    """Observability cost: the same cells with metrics off vs on.

    The disabled pass runs ``repeats`` times and keeps the best wall
    (noise floor); the overhead ratio is enabled/disabled.  The
    byte-identity of the two record streams is the invariant that
    metrics only observe -- it folds into ``determinism_ok``.
    """
    configs = [
        ScenarioConfig(app="netflix", duration=duration, seed=seed)
        for seed in range(3)
    ]

    def sweep(metrics=None):
        return run_sweep(SweepRequest.detection(configs, jobs=1, metrics=metrics))

    disabled_walls = []
    disabled = None
    for _ in range(repeats):
        disabled, wall, _ = _timed(sweep)
        disabled_walls.append(wall)
    enabled, enabled_wall, _ = _timed(lambda: sweep(metrics=True))
    disabled_wall = min(disabled_walls)
    base = [canonical_record(r) for r in disabled.results]
    identical = base == [canonical_record(r) for r in enabled.results]
    counters = enabled.metrics["counters"]
    return {
        "cells": len(configs),
        "disabled_wall_s": disabled_wall,
        "enabled_wall_s": enabled_wall,
        "enabled_overhead": (
            enabled_wall / disabled_wall - 1.0 if disabled_wall > 0 else 0.0
        ),
        "engine_events_observed": counters.get("netsim.engine.events", 0),
        "counters_recorded": len(counters),
        "records_identical": identical,
    }


def fidelity_gate_configs(duration=FIDELITY_GATE_DURATION):
    """The pinned verdict-invariance grid (deduplicated, in order)."""
    configs = []
    for rtt_2 in FIDELITY_GATE_RTTS:
        for limiter in FIDELITY_GATE_LIMITERS:
            for seed in FIDELITY_GATE_SEEDS:
                configs.append(
                    ScenarioConfig(
                        app="netflix",
                        limiter=limiter,
                        rtt_2=rtt_2,
                        duration=duration,
                        seed=seed,
                    )
                )
    for factor in FIDELITY_GATE_CONGESTION:
        for seed in FIDELITY_GATE_SEEDS:
            configs.append(
                ScenarioConfig(
                    app="netflix",
                    congestion_factor=factor,
                    duration=duration,
                    seed=seed,
                )
            )
    # The default congestion factor coincides with an rtt-grid cell;
    # keep each distinct config once.
    seen, unique = set(), []
    for config in configs:
        if config not in seen:
            seen.add(config)
            unique.append(config)
    return unique


def bench_fluid_replay(duration):
    """One detection cell, packet vs hybrid fidelity, serially timed."""
    config = ScenarioConfig(app="netflix", duration=duration, seed=0)
    _, packet_wall, packet_events = _timed(lambda: run_detection_experiment(config))
    _, hybrid_wall, hybrid_events = _timed(
        lambda: run_detection_experiment(config.with_(fidelity="hybrid"))
    )
    return {
        "packet_wall_s": packet_wall,
        "hybrid_wall_s": hybrid_wall,
        "packet_events": packet_events,
        "hybrid_events": hybrid_events,
        "events_reduction": (
            packet_events / hybrid_events if hybrid_events > 0 else 0.0
        ),
        "wall_speedup": packet_wall / hybrid_wall if hybrid_wall > 0 else 0.0,
    }


def _wild_verdict(isp, seed, fidelity):
    from repro.experiments.wild import run_wild_test

    report = run_wild_test(isp, seed=seed, fidelity=fidelity)
    return {"localized": report.localized, "outcome": report.outcome.value}


def bench_fluid_validation(duration=FIDELITY_GATE_DURATION, cells=None):
    """The hybrid/packet equivalence gate.

    Runs the pinned grid serially in both fidelities (serial so
    ``events_processed_total`` counts in-process) and compares detector
    verdicts cell by cell, then the wild localization cells.  Also
    reruns the first hybrid cell to pin hybrid determinism
    byte-for-byte.  ``cells`` truncates the detection grid for
    ``--quick`` runs; the verdict contract is identical.
    """
    configs = fidelity_gate_configs(duration)
    if cells is not None:
        configs = configs[: max(1, int(cells))]
    packet, packet_wall, packet_events = _timed(
        lambda: run_sweep(
            SweepRequest.detection(configs, jobs=1, fidelity="packet")
        ).results
    )
    hybrid, hybrid_wall, hybrid_events = _timed(
        lambda: run_sweep(
            SweepRequest.detection(configs, jobs=1, fidelity="hybrid")
        ).results
    )
    flips = []
    for config, p, h in zip(configs, packet, hybrid):
        if p.verdicts != h.verdicts:
            flips.append(
                {
                    "limiter": config.limiter,
                    "rtt_2": config.rtt_2,
                    "congestion_factor": config.congestion_factor,
                    "seed": config.seed,
                    "packet": p.verdicts,
                    "hybrid": h.verdicts,
                }
            )
    wild_flips = []
    wild_walls = [0.0, 0.0]
    for isp, seed in FIDELITY_GATE_WILD:
        pv, wall, _ = _timed(lambda: _wild_verdict(isp, seed, "packet"))
        wild_walls[0] += wall
        hv, wall, _ = _timed(lambda: _wild_verdict(isp, seed, "hybrid"))
        wild_walls[1] += wall
        if pv != hv:
            wild_flips.append(
                {"isp": isp, "seed": seed, "packet": pv, "hybrid": hv}
            )
    repeat = run_sweep(
        SweepRequest.detection(configs[:1], jobs=1, fidelity="hybrid")
    ).results
    hybrid_deterministic = canonical_record(repeat[0]) == canonical_record(
        hybrid[0]
    )
    return {
        "cells": len(configs),
        "wild_cells": len(FIDELITY_GATE_WILD),
        "packet_wall_s": packet_wall,
        "hybrid_wall_s": hybrid_wall,
        "wild_packet_wall_s": wild_walls[0],
        "wild_hybrid_wall_s": wild_walls[1],
        "packet_events": packet_events,
        "hybrid_events": hybrid_events,
        "events_reduction": (
            packet_events / hybrid_events if hybrid_events > 0 else 0.0
        ),
        "wall_speedup": packet_wall / hybrid_wall if hybrid_wall > 0 else 0.0,
        "verdict_flips": flips,
        "wild_verdict_flips": wild_flips,
        "verdicts_identical": not flips and not wild_flips,
        "hybrid_deterministic": hybrid_deterministic,
    }


def bench_cell_repeat(duration):
    """One cell run twice: the repeat measures the trace-memo fast path."""
    config = ScenarioConfig(app="zoom", duration=duration, seed=0)
    _, first, _ = _timed(lambda: run_detection_experiment(config))
    _, second, _ = _timed(lambda: run_detection_experiment(config))
    return {"first_wall_s": first, "repeat_wall_s": second}


def run_benchmarks(quick=False, jobs=None, store_root=None, only=None):
    """Run every workload; returns the ``BENCH_netsim.json`` payload.

    ``store_root`` adds the experiment-store cold/warm workloads (see
    :func:`bench_detection_sweep`).  ``only`` restricts the run to the
    named workloads (the CI fidelity gate runs just
    ``fluid_validation``); ``determinism_ok`` then folds in only the
    checks that actually ran.
    """
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    replay_duration = 8.0 if quick else 30.0
    sweep_duration = 5.0 if quick else 15.0
    # Gate cells must keep the paper's 60 s duration -- shorter runs
    # make packet-mode verdicts themselves seed-unstable -- so --quick
    # trims the grid, not the cell length.
    gate_cells = 4 if quick else None
    store = None
    if store_root is not None:
        from repro.store import ExperimentStore

        store = ExperimentStore(store_root)

    results = {
        "schema": f"BENCH_netsim/{BENCH_SCHEMA_VERSION}",
        "schema_version": BENCH_SCHEMA_VERSION,
        "code_fingerprint": code_fingerprint(),
        "git_commit": _git_commit(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "quick": quick,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "affinity_jobs": default_jobs(),
        },
        "workloads": {},
    }
    specs = {
        "single_replay": lambda: dict(
            bench_single_replay(replay_duration), duration_s=replay_duration
        ),
        "simultaneous_replay": lambda: dict(
            bench_simultaneous_replay(replay_duration), duration_s=replay_duration
        ),
        "cell_repeat": lambda: dict(
            bench_cell_repeat(sweep_duration), duration_s=sweep_duration
        ),
        "detection_sweep": lambda: dict(
            bench_detection_sweep(sweep_duration, jobs, store=store),
            duration_s=sweep_duration,
        ),
        "metrics_overhead": lambda: dict(
            bench_metrics_overhead(sweep_duration), duration_s=sweep_duration
        ),
        "fluid_replay": lambda: dict(
            bench_fluid_replay(replay_duration), duration_s=replay_duration
        ),
        "fluid_validation": lambda: dict(
            bench_fluid_validation(cells=gate_cells),
            duration_s=FIDELITY_GATE_DURATION,
        ),
    }
    if only:
        unknown = sorted(set(only) - set(specs))
        if unknown:
            raise ValueError(
                f"unknown workload(s) {unknown}; expected from {sorted(specs)}"
            )
    workloads = results["workloads"]
    for name, build in specs.items():
        if only and name not in only:
            continue
        workloads[name] = build()
    checks = []
    if "detection_sweep" in workloads:
        checks.append(workloads["detection_sweep"]["identical"])
    if "metrics_overhead" in workloads:
        checks.append(workloads["metrics_overhead"]["records_identical"])
    if "fluid_validation" in workloads:
        gate = workloads["fluid_validation"]
        checks.append(gate["verdicts_identical"] and gate["hybrid_deterministic"])
    results["determinism_ok"] = all(checks)
    return results


def compare_benchmarks(baseline, current):
    """Per-workload wall-time deltas between two BENCH payloads.

    Refuses (raises :class:`SchemaMismatchError`) when the two files
    were produced by different benchmark schemas or different workload
    shapes (``quick`` mode) -- comparing those numbers mis-diffs, it
    does not inform.  A differing ``code_fingerprint`` is expected (the
    comparison exists to measure code changes) and is reported, not
    refused.
    """
    for payload, name in ((baseline, "baseline"), (current, "current")):
        if "schema_version" not in payload:
            raise SchemaMismatchError(
                f"{name} file predates schema_version stamping "
                f"(schema {payload.get('schema')!r}); re-run repro.perf "
                "to regenerate it"
            )
    if baseline["schema_version"] != current["schema_version"]:
        raise SchemaMismatchError(
            f"schema_version {baseline['schema_version']} != "
            f"{current['schema_version']}: workload definitions differ, "
            "refusing to diff"
        )
    if baseline.get("quick") != current.get("quick"):
        raise SchemaMismatchError(
            "one file is --quick and the other is not: durations differ, "
            "refusing to diff"
        )
    deltas = {}
    for name, workload in current["workloads"].items():
        base = baseline["workloads"].get(name)
        if base is None:
            continue
        for field, value in workload.items():
            if not field.endswith("wall_s") or field not in base:
                continue
            before = base[field]
            deltas[f"{name}.{field}"] = {
                "baseline_s": before,
                "current_s": value,
                "speedup": before / value if value > 0 else 0.0,
            }
    return {
        "baseline_fingerprint": baseline.get("code_fingerprint"),
        "current_fingerprint": current.get("code_fingerprint"),
        "deltas": deltas,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.perf", description="netsim performance regression harness"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="short workloads for CI smoke runs (~1 minute)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="parallel worker count for the sweep workload "
             "(default: all cores)",
    )
    parser.add_argument(
        "--output", default="BENCH_netsim.json",
        help="where to write the results JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="experiment-store root: adds cold/warm cached-sweep "
             "workloads and verifies cache hits are byte-identical",
    )
    parser.add_argument(
        "--compare", default=None, metavar="BASELINE.json",
        help="print wall-time deltas against a previous run; refuses "
             "to diff across mismatched benchmark schemas",
    )
    parser.add_argument(
        "--only", default=None, metavar="NAME[,NAME...]",
        help="run only the named workloads (e.g. fluid_validation for "
             "the CI fidelity gate)",
    )
    parser.add_argument(
        "--min-fluid-speedup", type=float, default=None, metavar="X",
        help="fail (exit 1) unless the fluid_validation workload's "
             "hybrid wall speedup is at least X",
    )
    args = parser.parse_args(argv)

    only = None
    if args.only:
        only = tuple(name.strip() for name in args.only.split(",") if name.strip())
    results = run_benchmarks(
        quick=args.quick, jobs=args.jobs, store_root=args.store, only=only
    )
    with open(args.output, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")

    workloads = results["workloads"]
    if "single_replay" in workloads:
        print(f"single replay        : {workloads['single_replay']['wall_s']:.2f} s "
              f"({workloads['single_replay']['events_per_sec']:,.0f} events/s)")
    if "simultaneous_replay" in workloads:
        print(f"simultaneous replay  : {workloads['simultaneous_replay']['wall_s']:.2f} s "
              f"({workloads['simultaneous_replay']['events_per_sec']:,.0f} events/s)")
    if "detection_sweep" in workloads:
        sweep = workloads["detection_sweep"]
        print(f"3x3x3 sweep (serial) : {sweep['serial_wall_s']:.2f} s "
              f"({sweep['serial_events_per_sec']:,.0f} events/s)")
        print(f"3x3x3 sweep (jobs={sweep['parallel_jobs']}): "
              f"{sweep['parallel_wall_s']:.2f} s "
              f"(speedup {sweep['speedup']:.2f}x)")
        if "store_warm_wall_s" in sweep:
            print(f"store cold / warm    : {sweep['store_cold_wall_s']:.2f} s / "
                  f"{sweep['store_warm_wall_s']:.2f} s "
                  f"({sweep['store_warm_events']} simulated events when warm)")
    if "metrics_overhead" in workloads:
        overhead = workloads["metrics_overhead"]
        print(f"metrics off / on     : {overhead['disabled_wall_s']:.2f} s / "
              f"{overhead['enabled_wall_s']:.2f} s "
              f"({overhead['enabled_overhead']:+.1%} when enabled)")
    if "fluid_replay" in workloads:
        fluid = workloads["fluid_replay"]
        print(f"fluid replay         : {fluid['packet_wall_s']:.2f} s packet / "
              f"{fluid['hybrid_wall_s']:.2f} s hybrid "
              f"({fluid['events_reduction']:.1f}x fewer events)")
    if "fluid_validation" in workloads:
        gate = workloads["fluid_validation"]
        print(f"fluid gate ({gate['cells']:>2} cells) : "
              f"{gate['packet_wall_s']:.2f} s packet / "
              f"{gate['hybrid_wall_s']:.2f} s hybrid "
              f"({gate['events_reduction']:.1f}x fewer events, "
              f"{gate['wall_speedup']:.1f}x faster, "
              f"{len(gate['verdict_flips']) + len(gate['wild_verdict_flips'])}"
              f" verdict flips)")
    print(f"determinism          : "
          f"{'ok' if results['determinism_ok'] else 'VIOLATED'}")
    print(f"wrote {args.output}")

    if args.compare:
        try:
            with open(args.compare) as fh:
                baseline = json.load(fh)
            report = compare_benchmarks(baseline, results)
        except SchemaMismatchError as exc:
            print(f"ERROR: cannot compare against {args.compare}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"compare vs {args.compare} "
              f"(fingerprint {report['baseline_fingerprint']} -> "
              f"{report['current_fingerprint']}):")
        for name, delta in sorted(report["deltas"].items()):
            print(f"  {name:<34} {delta['baseline_s']:.2f} s -> "
                  f"{delta['current_s']:.2f} s "
                  f"({delta['speedup']:.2f}x)")

    if not results["determinism_ok"]:
        print(
            "ERROR: determinism violated (serial/parallel mismatch, "
            "metrics-altered records, or a packet/hybrid verdict flip)",
            file=sys.stderr,
        )
        return 1
    if args.min_fluid_speedup is not None:
        gate = workloads.get("fluid_validation")
        if gate is None:
            print(
                "ERROR: --min-fluid-speedup requires the fluid_validation "
                "workload",
                file=sys.stderr,
            )
            return 2
        if gate["wall_speedup"] < args.min_fluid_speedup:
            print(
                f"ERROR: hybrid speedup {gate['wall_speedup']:.2f}x below "
                f"required {args.min_fluid_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0
