"""Shaper-fingerprinting benchmark and the ``BENCH_fingerprint.json`` writer.

The workload is the pinned grid the acceptance gate is defined on:

- **train**: :data:`GRID_SHAPERS` x :data:`GRID_APPS` x
  :data:`TRAIN_SEEDS` seeded probe replays, fitted into a
  :class:`~repro.stats.fingerprint.NearestCentroidClassifier`;
- **test**: the same shapers and apps on the held-out
  :data:`TEST_SEEDS`, classified cell by cell; accuracy is gated
  (``--min-accuracy``, default 0.8);
- **compose**: one end-to-end WeHeY test on a dual-token-bucket
  scenario, localized with
  :class:`~repro.core.localizer.WeHeYLocalizer` and then
  fingerprinted via
  :func:`~repro.stats.fingerprint.fingerprint_bottleneck` -- the gate
  asserts the composition produced a classification (the localizer
  found the bottleneck and the classifier ran), which is the API
  contract this subsystem exists for.

Timing is reported; the gates assert *correctness* (accuracy, the
composition contract), not absolute walls.  The report embeds the
fitted classifier (via ``to_dict``) so a regression can be diagnosed
from the artifact alone.
"""

import argparse
import json
import platform
import sys
import time

import numpy as np

from repro.perf.bench import _git_commit
from repro.stats.fingerprint import (
    DEFAULT_SHAPERS,
    FEATURE_NAMES,
    NearestCentroidClassifier,
    fingerprint_bottleneck,
    labelled_grid,
    probe_config,
)

FINGERPRINT_SCHEMA_VERSION = 1

#: Pinned grid: the acceptance gate runs on exactly this shape.  Both
#: apps are TCP streamers at different rates -- TCP probes see the
#: queuing-delay dynamics that separate the AQM trio, which UDP
#: cannot observe (see repro.stats.fingerprint).
GRID_SHAPERS = DEFAULT_SHAPERS
GRID_APPS = ("netflix", "youtube")
TRAIN_SEEDS = (0, 1, 2, 3)
TEST_SEEDS = (4, 5)
GRID_DURATION = 10.0

#: The composition check's scenario.  The mechanism must come from the
#: token-bucket family: the loss-trend localizer keys on correlated
#: loss bursts across the two paths, which burst-dropping shapers
#: produce and randomized AQMs (RED/PIE) deliberately destroy -- a
#: RED scenario never localizes here, which is itself evidence the
#: AQM models behave like the real thing.  Duration is longer than
#: the grid's so the correlation detector has enough windows.
COMPOSE_SHAPER = "dual_tbf"
COMPOSE_APP = "netflix"
COMPOSE_SEED = 0
COMPOSE_DURATION = 20.0


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def bench_train(train_seeds, duration, log=None):
    cells = []

    def on_cell(shaper, app, seed, vector):
        cells.append({"shaper": shaper, "app": app, "seed": seed})
        if log:
            log(f"  train {shaper}/{app}/seed{seed}")

    (features, labels, groups), wall = _timed(
        lambda: labelled_grid(
            shapers=GRID_SHAPERS, apps=GRID_APPS, seeds=train_seeds,
            duration=duration, on_cell=on_cell,
        )
    )
    classifier = NearestCentroidClassifier().fit(features, labels, groups=groups)
    return classifier, {
        "cells": len(cells),
        "seeds": list(train_seeds),
        "wall_s": wall,
    }


def bench_test(classifier, test_seeds, duration, log=None):
    (features, labels, groups), wall = _timed(
        lambda: labelled_grid(
            shapers=GRID_SHAPERS, apps=GRID_APPS, seeds=test_seeds,
            duration=duration,
        )
    )
    predictions = classifier.predict_many(features, groups=groups)
    cells = []
    confusion = {}
    correct = 0
    index = 0
    for shaper in GRID_SHAPERS:
        for app in GRID_APPS:
            for seed in test_seeds:
                predicted = predictions[index]
                hit = predicted == labels[index]
                correct += hit
                cells.append({
                    "shaper": shaper,
                    "app": app,
                    "seed": seed,
                    "predicted": predicted,
                    "correct": bool(hit),
                })
                confusion.setdefault(shaper, {})
                confusion[shaper][predicted] = (
                    confusion[shaper].get(predicted, 0) + 1
                )
                if log and not hit:
                    log(f"  MISS {shaper}/{app}/seed{seed} -> {predicted}")
                index += 1
    accuracy = correct / len(labels) if labels else 0.0
    return {
        "cells": cells,
        "confusion": confusion,
        "accuracy": accuracy,
        "n_cells": len(labels),
        "n_correct": int(correct),
        "seeds": list(test_seeds),
        "wall_s": wall,
    }


def bench_compose(classifier):
    """End-to-end: localize a shaped scenario, then fingerprint it."""
    from repro.core.localizer import WeHeYLocalizer
    from repro.experiments.runner import NetsimReplayService
    from repro.experiments.wild import default_tdiff
    from repro.wehe.apps import make_trace
    from repro.wehe.traces import bit_invert

    config = probe_config(
        COMPOSE_SHAPER, app=COMPOSE_APP, seed=COMPOSE_SEED,
        duration=COMPOSE_DURATION,
    )

    def run():
        service = NetsimReplayService(config)
        localizer = WeHeYLocalizer(
            np.random.default_rng(COMPOSE_SEED), default_tdiff()
        )
        trace = make_trace(config.app, config.duration, service._trace_rng)
        report = localizer.localize(service, trace, bit_invert(trace))
        return report, fingerprint_bottleneck(report, service, classifier)

    (report, fingerprint), wall = _timed(run)
    return {
        "scenario": {
            "shaper": COMPOSE_SHAPER,
            "app": COMPOSE_APP,
            "seed": COMPOSE_SEED,
            "duration": COMPOSE_DURATION,
        },
        "localized": bool(report.localized),
        "outcome": report.outcome.value,
        "fingerprint_reason": fingerprint.reason,
        "fingerprint_shaper": fingerprint.shaper,
        "fingerprint_margin": fingerprint.margin(),
        "classified": fingerprint.classified,
        "wall_s": wall,
    }


def run_benchmarks(train_seeds=TRAIN_SEEDS, test_seeds=TEST_SEEDS,
                   duration=GRID_DURATION, compose=True, log=None):
    classifier, train_report = bench_train(train_seeds, duration, log=log)
    test_report = bench_test(classifier, test_seeds, duration, log=log)
    report = {
        "schema": f"BENCH_fingerprint/{FINGERPRINT_SCHEMA_VERSION}",
        "schema_version": FINGERPRINT_SCHEMA_VERSION,
        "commit": _git_commit(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "grid": {
            "shapers": list(GRID_SHAPERS),
            "apps": list(GRID_APPS),
            "duration_s": duration,
        },
        "feature_names": list(FEATURE_NAMES),
        "train": train_report,
        "test": test_report,
        "classifier": classifier.to_dict(),
    }
    if compose:
        report["compose"] = bench_compose(classifier)
    return report


def check_gates(report, args):
    """Evaluate the acceptance gates; returns a list of failures."""
    failures = []
    accuracy = report["test"]["accuracy"]
    if accuracy < args.min_accuracy:
        failures.append(
            f"fingerprint accuracy {accuracy:.3f} < {args.min_accuracy}"
        )
    compose = report.get("compose")
    if compose is not None:
        if not compose["localized"]:
            failures.append(
                "composition check: localizer found no bottleneck "
                f"(outcome {compose['outcome']!r})"
            )
        elif not compose["classified"]:
            failures.append(
                "composition check: fingerprint_bottleneck returned "
                f"no classification (reason {compose['fingerprint_reason']!r})"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.perf.fingerprint",
        description="shaper-fingerprinting benchmark and acceptance gates",
    )
    parser.add_argument("--out", default="BENCH_fingerprint.json")
    parser.add_argument(
        "--min-accuracy", type=float, default=0.8,
        help="held-out grid accuracy gate (default 0.8)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller train/test split for smoke runs (the gate still "
             "applies; the committed artifact should use the full grid)",
    )
    parser.add_argument(
        "--no-compose", action="store_true",
        help="skip the end-to-end localize-then-fingerprint check",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    log = print if args.verbose else None
    train_seeds = (0, 1) if args.quick else TRAIN_SEEDS
    test_seeds = (2,) if args.quick else TEST_SEEDS
    report = run_benchmarks(
        train_seeds=train_seeds,
        test_seeds=test_seeds,
        compose=not args.no_compose,
        log=log,
    )
    failures = check_gates(report, args)
    report["gates_ok"] = not failures
    report["gate_failures"] = failures
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    test = report["test"]
    print(f"train : {report['train']['cells']} cells "
          f"in {report['train']['wall_s']:.1f}s")
    print(f"test  : {test['n_correct']}/{test['n_cells']} correct "
          f"(accuracy {test['accuracy']:.3f}) in {test['wall_s']:.1f}s")
    compose = report.get("compose")
    if compose is not None:
        print(f"e2e   : localized={compose['localized']} "
              f"fingerprint={compose['fingerprint_shaper']} "
              f"(margin {compose['fingerprint_margin']:.2f})")
    print(f"report: {args.out}")
    if failures:
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
