"""ECMP/flowlet multipath benchmark and the ``BENCH_multipath.json`` writer.

The workload sweeps the multipath confounder grid the acceptance gates
are defined on: bundle width (collision probability 1/N) x flowlet gap
x limiter mechanism, at a fixed app/duration, each cell localized twice:

- **detection off** (``multipath_aware=False``): the legacy pipeline as
  the paper ships it.  Its accuracy *degrades* as the bundle widens --
  the artifact records the curve, and the gates assert the degenerate
  1-member bundle stays accurate while wider bundles decay.
- **detection on** (``multipath_aware=True``) plus the coordinator's
  port-redraw recovery policy (mirrored here run for run): suspect
  reports trigger up to :data:`REHASH_BUDGET` re-hash retries that
  persist until a localized verdict.

Ground truth per localization run comes from the bundle itself: the
deterministic ECMP assignments of the two original replays, integrated
over time into a *co-location fraction* (the share of the replay
window both flows spent on the same member queue; sticky ECMP makes it
exactly 0 or 1, flowlet switching anything between).  A run is
*confounded* when co-location falls below
:data:`COLOCATION_CLEAN` -- the correlation evidence then mixes shared
and disjoint queues, so a localized verdict from it is spurious.  A
flow that switched members briefly but shared the queue for >= 90% of
the window produced causal, not spurious, correlation and stays
clean.  The gates:

- no cell with detection on ends in a localized verdict produced by a
  confounded run (zero wrong ``localized`` verdicts);
- the 1-member bundle raises no multipath suspicion and localizes at
  >= ``--min-baseline-accuracy``;
- re-hash retries recover >= ``--min-recovery`` of the suspect-flagged
  tests (final verdict localized, from a clean run);
- re-running a cell reproduces its record bit for bit (determinism).

Timing is reported; the gates assert correctness, not walls.
"""

import argparse
import json
import platform
import sys
import time

import numpy as np

from repro.core.localizer import WeHeYLocalizer
from repro.experiments.runner import WARMUP, NetsimReplayService
from repro.experiments.scenarios import ScenarioConfig
from repro.experiments.wild import default_tdiff
from repro.netsim.multipath import EPHEMERAL_PORT_HI, EPHEMERAL_PORT_LO
from repro.perf.bench import _git_commit
from repro.wehe.apps import make_trace
from repro.wehe.traces import bit_invert

MULTIPATH_SCHEMA_VERSION = 1

GRID_APP = "zoom"
GRID_DURATION = 15.0
#: (bundle members, flowlet gap) combinations; gap None = sticky ECMP.
#: The 0.03 s gap puts the replay flows in the *long-dwell* flowlet
#: regime (zero or one switch per 15 s test) -- the mid-test regime
#: change the flowlet-split heuristic targets.  Much smaller gaps make
#: flows switch tens of times per test, time-sharing every member;
#: that is a load-balancing regime, not a confounder (co-location is
#: what the ground truth measures).  The compounded wide-bundle +
#: flowlet cell (4, 0.03) is deliberately excluded: the simulator's
#: background modulation is one global envelope applied in sync to all
#: members, so loss trends of *disjoint* members spuriously correlate
#: and a split pair over a 4-wide bundle can be throughput-identical to
#: a shared limiter (see "Known limits" in DESIGN.md).
GRID_CELLS = ((1, None), (2, None), (4, None), (2, 0.03))
GRID_SHAPERS = ("tbf", "dual_tbf")
GRID_SEEDS = (0, 1, 2, 3, 4, 5)
QUICK_CELLS = ((1, None), (2, None))
QUICK_SHAPERS = ("tbf",)
QUICK_SEEDS = (0, 1)

#: dual_tbf's default 1.5 MB boost allowance outlasts a 15 s replay at
#: per-member rates; the grid shrinks it so the CIR stage engages.
DUAL_TBF_PARAMS = (("boost_bytes", 200000.0),)

#: Port-redraw budget, mirroring WeHeYCoordinator's default.
REHASH_BUDGET = 4

#: Minimum co-location fraction for a run's correlation evidence to
#: count as causal (the two replays shared one member queue for at
#: least this share of the replay window).
COLOCATION_CLEAN = 0.9


def grid_scenario(members, flowlet_gap, shaper, seed, duration=GRID_DURATION):
    """The pinned ScenarioConfig for one grid cell."""
    kwargs = {}
    if shaper != "tbf":
        kwargs["shaper"] = shaper
        kwargs["shaper_params"] = DUAL_TBF_PARAMS
    return ScenarioConfig(
        app=GRID_APP,
        duration=duration,
        seed=seed,
        limiter="common",
        multipath=members,
        flowlet_gap_s=flowlet_gap,
        **kwargs,
    )


def _member_at(history, t):
    """The member a flow occupied at time ``t`` (piecewise constant)."""
    member = history[0][1]
    for when, candidate in history:
        if when <= t:
            member = candidate
        else:
            break
    return member


def _colocation(history_1, history_2, start, end):
    """Fraction of ``[start, end]`` two flows spent on the same member."""
    if end <= start:
        return 1.0
    points = sorted(
        {start, end}
        | {t for t, _ in history_1 if start < t < end}
        | {t for t, _ in history_2 if start < t < end}
    )
    shared = 0.0
    for lo, hi in zip(points, points[1:]):
        mid = (lo + hi) / 2.0
        if _member_at(history_1, mid) == _member_at(history_2, mid):
            shared += hi - lo
    return shared / (end - start)


def _ground_truth(config, service, ports):
    """(confounded, colocation) for the original simultaneous run.

    Sticky ECMP cells read the deterministic assignments off the
    service's last environment (registration is identical across
    environments): co-location is exactly 1.0 (co-hashed) or 0.0
    (split).  Flowlet cells integrate the bundle's assignment history
    over the replay window, measured on a dedicated re-run of the
    original simultaneous replay (exact, because the simulator is
    deterministic).  Confounded = co-location below
    :data:`COLOCATION_CLEAN`.
    """
    link = service.last_environment.topology.link_c
    flow_1 = f"replay-{config.app}-1-orig"
    flow_2 = f"replay-{config.app}-2-orig"
    if getattr(link, "members", None) is None or len(link.members) < 2:
        return False, 1.0
    if config.flowlet_gap_s is None:
        split = link.predicted_assignment(
            flow_1
        ) != link.predicted_assignment(flow_2)
        return bool(split), 0.0 if split else 1.0
    replica = NetsimReplayService(config, replay_ports=ports)
    trace = make_trace(config.app, config.duration, replica._trace_rng)
    replica.simultaneous_replay(trace)
    history = replica.last_environment.topology.link_c.assignment_history
    colocation = _colocation(
        history[flow_1],
        history[flow_2],
        WARMUP,
        WARMUP + config.duration,
    )
    return colocation < COLOCATION_CLEAN, colocation


def _localize_once(config, aware, ports):
    """One full localization; returns (report, confounded, colocation)."""
    service = NetsimReplayService(config, replay_ports=ports)
    localizer = WeHeYLocalizer(
        np.random.default_rng(config.seed),
        default_tdiff(),
        # Degenerate bundles never arm suspicion (coordinator policy).
        multipath_aware=aware and config.multipath >= 2,
    )
    trace = make_trace(config.app, config.duration, service._trace_rng)
    report = localizer.localize(service, trace, bit_invert(trace))
    confounded, colocation = _ground_truth(config, service, ports)
    return report, confounded, colocation


def run_cell(members, flowlet_gap, shaper, seed, duration=GRID_DURATION):
    """Both arms of one grid cell, as a JSON-ready record."""
    config = grid_scenario(members, flowlet_gap, shaper, seed, duration)

    off_report, off_confounded, off_colocation = _localize_once(
        config, False, None
    )
    record_off = {
        "reason_code": off_report.reason_code,
        "localized": bool(off_report.localized),
        "colocation": off_colocation,
        "confounded": off_confounded,
        "wrong_localized": bool(off_report.localized and off_confounded),
    }

    report, confounded, colocation = _localize_once(config, True, None)
    initial_code = report.reason_code
    rehashes = []
    recovered = False
    # Mirror WeHeYCoordinator._rehash_recovery: persist until localized.
    if report.multipath_suspect:
        ports_rng = np.random.default_rng(
            np.random.SeedSequence([0xEC49, seed, 0])
        )
        for _ in range(REHASH_BUDGET):
            ports = tuple(
                int(port)
                for port in ports_rng.integers(
                    EPHEMERAL_PORT_LO, EPHEMERAL_PORT_HI + 1, size=2
                )
            )
            retried, retry_confounded, retry_colocation = _localize_once(
                config, True, ports
            )
            rehashes.append(
                {
                    "ports": list(ports),
                    "reason_code": retried.reason_code,
                    "colocation": retry_colocation,
                    "confounded": retry_confounded,
                }
            )
            if retried.invalid:
                break
            if retried.localized:
                report = retried
                confounded = retry_confounded
                colocation = retry_colocation
                recovered = True
                break
            if retried.multipath_suspect:
                report = retried
                confounded = retry_confounded
                colocation = retry_colocation
    record_on = {
        "initial_reason_code": initial_code,
        "final_reason_code": report.reason_code,
        "fallback_reason_code": report.fallback_reason_code,
        "localized": bool(report.localized),
        "suspected": bool(
            initial_code in ("multipath-suspect", "flowlet-split")
        ),
        "retries": len(rehashes),
        "recovered": recovered,
        "rehashes": rehashes,
        "colocation": colocation,
        "confounded": bool(confounded),
        "wrong_localized": bool(report.localized and confounded),
    }

    return {
        "members": members,
        "flowlet_gap_s": flowlet_gap,
        "shaper": shaper,
        "seed": seed,
        "off": record_off,
        "on": record_on,
    }


def _curve(cells):
    """Detection-off accuracy by bundle width (the degradation curve)."""
    curve = {}
    for members in sorted({cell["members"] for cell in cells}):
        rows = [cell for cell in cells if cell["members"] == members]
        localized = sum(cell["off"]["localized"] for cell in rows)
        curve[str(members)] = {
            "cells": len(rows),
            "localized": localized,
            "accuracy": localized / len(rows),
        }
    return curve


def run_benchmarks(cells=GRID_CELLS, shapers=GRID_SHAPERS, seeds=GRID_SEEDS,
                   duration=GRID_DURATION, log=None):
    records = []
    start = time.perf_counter()
    for members, flowlet_gap in cells:
        for shaper in shapers:
            for seed in seeds:
                record = run_cell(
                    members, flowlet_gap, shaper, seed, duration
                )
                records.append(record)
                if log:
                    log(
                        f"members={members} gap={flowlet_gap} "
                        f"shaper={shaper} seed={seed}: "
                        f"off={record['off']['reason_code']} "
                        f"on={record['on']['final_reason_code']} "
                        f"retries={record['on']['retries']}"
                    )
    wall = time.perf_counter() - start

    suspects = [cell for cell in records if cell["on"]["suspected"]]
    recovered = [cell for cell in suspects if cell["on"]["recovered"]]
    summary = {
        "cells": len(records),
        "wall_s": wall,
        "degradation_curve_off": _curve(records),
        "wrong_localized_off": sum(
            cell["off"]["wrong_localized"] for cell in records
        ),
        "wrong_localized_on": sum(
            cell["on"]["wrong_localized"] for cell in records
        ),
        "suspected": len(suspects),
        "recovered": len(recovered),
        "recovery_rate": (
            len(recovered) / len(suspects) if suspects else None
        ),
        "single_member_suspects": sum(
            cell["on"]["suspected"]
            for cell in records
            if cell["members"] == 1
        ),
        "retries_total": sum(cell["on"]["retries"] for cell in records),
    }

    # Determinism: the first suspect cell (or the first cell) re-run
    # from scratch must reproduce its record exactly.
    probe = (suspects or records)[0]
    rerun = run_cell(
        probe["members"],
        probe["flowlet_gap_s"],
        probe["shaper"],
        probe["seed"],
        duration,
    )
    deterministic = rerun == probe

    return {
        "schema": f"BENCH_multipath/{MULTIPATH_SCHEMA_VERSION}",
        "schema_version": MULTIPATH_SCHEMA_VERSION,
        "commit": _git_commit(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "grid": {
            "app": GRID_APP,
            "cells": [list(cell) for cell in cells],
            "shapers": list(shapers),
            "seeds": list(seeds),
            "duration_s": duration,
            "rehash_budget": REHASH_BUDGET,
        },
        "summary": summary,
        "deterministic": deterministic,
        "records": records,
    }


def check_gates(report, args):
    """Evaluate the acceptance gates; returns a list of failures."""
    failures = []
    summary = report["summary"]
    if summary["wrong_localized_on"] != 0:
        failures.append(
            f"{summary['wrong_localized_on']} wrong localized verdict(s) "
            "with multipath detection on (must be 0)"
        )
    if summary["single_member_suspects"] != 0:
        failures.append(
            f"{summary['single_member_suspects']} multipath suspicion(s) "
            "raised on 1-member bundles (must be 0)"
        )
    curve = summary["degradation_curve_off"]
    baseline = curve.get("1")
    if baseline is not None:
        if baseline["accuracy"] < args.min_baseline_accuracy:
            failures.append(
                f"1-member detection-off accuracy {baseline['accuracy']:.3f}"
                f" < {args.min_baseline_accuracy}"
            )
        for members, point in curve.items():
            if members != "1" and point["accuracy"] >= baseline["accuracy"]:
                failures.append(
                    f"detection-off accuracy did not degrade at "
                    f"{members} members ({point['accuracy']:.3f} >= "
                    f"{baseline['accuracy']:.3f})"
                )
    rate = summary["recovery_rate"]
    if rate is not None and rate < args.min_recovery:
        failures.append(
            f"re-hash recovery rate {rate:.3f} < {args.min_recovery}"
        )
    if not report["deterministic"]:
        failures.append("re-running a grid cell did not reproduce its record")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.perf.multipath",
        description="ECMP/flowlet multipath benchmark and acceptance gates",
    )
    parser.add_argument("--out", default="BENCH_multipath.json")
    parser.add_argument(
        "--min-baseline-accuracy", type=float, default=0.8,
        help="detection-off accuracy gate for 1-member bundles "
             "(default 0.8)",
    )
    parser.add_argument(
        "--min-recovery", type=float, default=0.6,
        help="re-hash recovery rate gate over suspect-flagged cells "
             "(default 0.6)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller grid for smoke runs (the gates still apply; the "
             "committed artifact should use the full grid)",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    log = print if args.verbose else None
    report = run_benchmarks(
        cells=QUICK_CELLS if args.quick else GRID_CELLS,
        shapers=QUICK_SHAPERS if args.quick else GRID_SHAPERS,
        seeds=QUICK_SEEDS if args.quick else GRID_SEEDS,
        log=log,
    )
    failures = check_gates(report, args)
    report["gates_ok"] = not failures
    report["gate_failures"] = failures
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    summary = report["summary"]
    curve = summary["degradation_curve_off"]
    print(
        f"grid  : {summary['cells']} cells in {summary['wall_s']:.1f}s"
    )
    print(
        "curve : "
        + "  ".join(
            f"{members}-member {point['accuracy']:.2f}"
            for members, point in sorted(
                curve.items(), key=lambda item: int(item[0])
            )
        )
    )
    print(
        f"wrong : off={summary['wrong_localized_off']} "
        f"on={summary['wrong_localized_on']}"
    )
    rate = summary["recovery_rate"]
    print(
        f"rehash: {summary['suspected']} suspected, "
        f"{summary['recovered']} recovered"
        + (f" ({rate:.2f})" if rate is not None else "")
    )
    for failure in failures:
        print(f"GATE FAIL: {failure}")
    if not failures:
        print("all gates passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
