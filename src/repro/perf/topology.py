"""Topology/TC performance workload and the ``BENCH_topology.json`` writer.

Four workloads cover the ``repro.inet`` subsystem end to end:

- ``graph``: seeded 1000-AS CAIDA-style graph generation (wall time,
  fingerprint -- the fingerprint doubles as a determinism check);
- ``routing``: Gao-Rexford routing-tree construction throughput
  (routes/s over a sample of destinations);
- ``tc``: topology construction end to end on a ``PolicyInternet`` --
  traceroute collection, the table pipeline on the columnar backend,
  and the ground-truth oracle's precision/recall (gated);
- ``columnar``: the BigQuery-shaped join+filter over >= 1M synthetic
  traceroute rows on the row-dict and columnar backends; the speedup
  is gated, and both backends must produce the *identical* topology
  database from the same tables;
- ``dynamics``: a scripted failure/recovery/flip schedule over the TC
  internet, with the coordinator running mid-window under
  ``preflight_verify``: stale entries must be detected and healed via
  ``invalidate``, and no completed test may use a pair the oracle says
  is unsuitable (wrong-verdict count, gated at zero).

Timing is reported; the gates assert *correctness* ratios (precision,
recall, speedup, wrong verdicts), not absolute walls.
"""

import argparse
import json
import platform
import sys
import time

import numpy as np

from repro import obs
from repro.perf.bench import _git_commit

TOPOLOGY_SCHEMA_VERSION = 1

#: Pinned workload shape: the acceptance gate runs on this graph.
GRAPH_SEED = 0
GRAPH_ASES = 1000
TC_CLIENT_ISPS = 12
TC_CLIENTS_PER_ISP = 3

#: The columnar workload tiles a smaller, wider internet (more client
#: ISPs -> more distinct destinations) up to the target row count.
COL_CLIENT_ISPS = 25
COL_CLIENTS_PER_ISP = 4
COL_TARGET_ROWS = 1_000_000
COL_TARGET_ROWS_QUICK = 120_000


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def bench_graph():
    from repro.inet import generate_as_graph

    graph, wall = _timed(lambda: generate_as_graph(GRAPH_SEED, n_ases=GRAPH_ASES))
    graph_2 = generate_as_graph(GRAPH_SEED, n_ases=GRAPH_ASES)
    return graph, {
        "ases": len(graph.asns),
        "edges": graph.n_edges,
        "fingerprint": graph.fingerprint(),
        "deterministic": graph.fingerprint() == graph_2.fingerprint(),
        "wall_s": wall,
    }


def bench_routing(graph, n_destinations=50):
    from repro.inet.policy import compute_routes

    destinations = graph.asns[:: max(1, len(graph.asns) // n_destinations)]
    total = 0

    def run():
        count = 0
        for dest in destinations:
            count += len(compute_routes(graph, dest))
        return count

    total, wall = _timed(run)
    return {
        "destinations": len(destinations),
        "routes_computed": total,
        "routes_per_s": total / wall if wall else 0.0,
        "wall_s": wall,
    }


def _make_internet(graph, n_client_isps, clients_per_isp):
    from repro.inet import PolicyInternet

    return PolicyInternet(
        graph=graph,
        seed=GRAPH_SEED,
        n_client_isps=n_client_isps,
        clients_per_isp=clients_per_isp,
    )


def _collect(internet, seed=5):
    from repro.mlab.traceroute import collect_month

    rng = np.random.default_rng(seed)
    return collect_month(internet, rng, tests_per_client=len(internet.servers))


def bench_tc(graph):
    """TC end to end on the pinned internet; oracle-scored."""
    from repro.inet import TopologyOracle
    from repro.mlab.annotations import AnnotationDatabase
    from repro.mlab.tables import annotation_table, traceroute_table
    from repro.mlab.topology_construction import build_topology_from_tables

    internet = _make_internet(graph, TC_CLIENT_ISPS, TC_CLIENTS_PER_ISP)
    annotations = AnnotationDatabase(internet)
    records, collect_wall = _timed(lambda: _collect(internet))

    sink = obs.MetricsSink()
    with obs.use_sink(sink):
        tables, table_wall = _timed(
            lambda: (
                traceroute_table(records, backend="columnar"),
                annotation_table(annotations, backend="columnar"),
            )
        )
        database, build_wall = _timed(
            lambda: build_topology_from_tables(*tables)
        )
        obs.harvest_topology_database(sink, database)
    counters = sink.snapshot()["counters"]
    rows_scanned = counters.get("mlab.tc.rows_scanned", 0)
    double_entry_ok = counters.get("mlab.tc.entries_total", 0) == (
        counters.get("mlab.tc.pairs_found", 0)
        - counters.get("mlab.tc.entries_invalidated", 0)
    )

    score = TopologyOracle(internet).score(database)
    return internet, annotations, database, {
        "clients": len(internet.clients),
        "servers": len(internet.servers),
        "traceroutes": len(records),
        "rows_scanned": rows_scanned,
        "entries": len(database),
        "precision": score["precision"],
        "recall": score["recall"],
        "rows_per_s": rows_scanned / build_wall if build_wall else 0.0,
        "double_entry_ok": bool(double_entry_ok),
        "collect_wall_s": collect_wall,
        "table_wall_s": table_wall,
        "build_wall_s": build_wall,
    }


def _tiled_tables(graph, target_rows, backend):
    """>= ``target_rows`` synthetic traceroute rows on ``backend``.

    Tiles one collected month, rewriting each copy's client IPs (first
    octet) so every copy is a distinct set of destinations -- same
    shape BigQuery sees: many clients, shared backbone.
    """
    from repro.mlab.annotations import AnnotationDatabase
    from repro.mlab.tables import (
        TRACEROUTE_COLUMNS,
        annotation_table,
        make_table,
        traceroute_table,
    )

    internet = _make_internet(graph, COL_CLIENT_ISPS, COL_CLIENTS_PER_ISP)
    annotations = AnnotationDatabase(internet)
    records = _collect(internet)
    base = traceroute_table(records, backend="row")
    base_rows = list(base)
    client_ips = {c.ip for c in internet.clients}
    copies = max(1, -(-target_rows // len(base_rows)))

    octets = [v for v in range(1, 255) if v != 200][:copies]
    if len(octets) < copies:
        raise ValueError("target_rows too large for the octet rewrite space")

    def rewrite(ip, octet):
        return f"{octet}.{ip.split('.', 1)[1]}" if ip in client_ips else ip

    table = make_table("traceroutes", TRACEROUTE_COLUMNS, backend=backend)
    n_records = len(records)
    for copy_index, octet in enumerate(octets):
        shift = copy_index * n_records
        table.extend(
            {
                **row,
                "traceroute_id": row["traceroute_id"] + shift,
                "destination_ip": rewrite(row["destination_ip"], octet),
                "hop_ip": rewrite(row["hop_ip"], octet),
                "egress_ip": rewrite(row["egress_ip"], octet),
            }
            for row in base_rows
        )

    ann = annotation_table(annotations, backend=backend)
    extra = [
        {"hop_ip": f"{octet}.{c.ip.split('.', 1)[1]}", "asn": c.asn,
         "country": "ZZ"}
        for octet in octets
        for c in internet.clients
    ]
    ann.extend(extra)
    table.materialize()
    ann.materialize()
    return table, ann


def _join_filter(traceroutes, annotations):
    """The TC merge: two left joins plus the link-consistency filter."""
    annotated = traceroutes.join_table(annotations, on="hop_ip", how="left")
    destination_side = annotations.renamed(
        {
            "hop_ip": "destination_ip",
            "asn": "destination_asn",
            "country": "destination_country",
        }
    )
    merged = annotated.join_table(
        destination_side, on="destination_ip", how="left"
    )
    consistent = merged.where_columns_equal("hop_ip", "egress_ip")
    return len(merged), len(consistent)


def bench_columnar(graph, target_rows):
    from repro.mlab.topology_construction import build_topology_from_tables

    results = {}
    databases = {}
    for backend in ("row", "columnar"):
        tables, build_wall = _timed(
            lambda b=backend: _tiled_tables(graph, target_rows, b)
        )
        counts, join_wall = _timed(lambda: _join_filter(*tables))
        database, tc_wall = _timed(
            lambda: build_topology_from_tables(*tables)
        )
        databases[backend] = database
        results[backend] = {
            "rows": len(tables[0]),
            "merged_rows": counts[0],
            "consistent_rows": counts[1],
            "build_wall_s": build_wall,
            "join_filter_wall_s": join_wall,
            "tc_wall_s": tc_wall,
            "entries": len(database),
        }
        del tables, database

    row_db, col_db = databases["row"], databases["columnar"]
    identical = sorted(row_db.entries) == sorted(col_db.entries) and all(
        row_db.entries[key] == col_db.entries[key] for key in row_db.entries
    )
    speedup = (
        results["row"]["join_filter_wall_s"]
        / results["columnar"]["join_filter_wall_s"]
        if results["columnar"]["join_filter_wall_s"]
        else 0.0
    )
    return {
        "target_rows": target_rows,
        "backends": results,
        "join_speedup": speedup,
        "identical_entries": bool(identical),
    }


def bench_dynamics(internet, annotations, database, quick):
    """Scripted route dynamics + the coordinator under preflight."""
    from repro.core.coordinator import CoordinationStatus, WeHeYCoordinator
    from repro.faults import RetryPolicy
    from repro.inet import RouteDynamics, TopologyOracle, generate_schedule
    from repro.experiments.scenarios import ScenarioConfig
    from repro.mlab.verification import TopologyVerifier

    oracle = TopologyOracle(internet)
    events = generate_schedule(
        internet.graph,
        GRAPH_SEED + 1,
        n_failures=1 if quick else 2,
        n_flips=0 if quick else 1,
        targets=internet.isp_asns,
    )
    internet.attach_dynamics(RouteDynamics(events))

    rng = np.random.default_rng(7)
    scenario = ScenarioConfig(
        app="zoom",
        limiter="common",
        duration=10.0 if quick else 20.0,
        fidelity="hybrid",
    )
    verifier = TopologyVerifier(
        internet, annotations, rng, route_change_probability=0.0
    )
    tdiff = np.random.default_rng(9).normal(0.0, 0.08, 80)
    coordinator = WeHeYCoordinator(
        internet,
        database,
        verifier,
        scenario,
        rng,
        tdiff,
        retry_policy=RetryPolicy(max_attempts=3, base_backoff_s=0.0),
        preflight_verify=True,
    )

    stale_detected = 0
    wrong_verdicts = 0
    tests_run = 0
    max_clients = 2 if quick else 4
    entries_before = len(database)
    for event in events:
        internet.advance_to(event.time + 1e-6)
        stale = oracle.stale_entries(database)
        stale_detected += len(stale)
        # Run coordinated tests for the clients the event touched --
        # mid-window, so preflight verification sees the stale routes.
        client_names = []
        for _entry, client_name in stale:
            if client_name not in client_names:
                client_names.append(client_name)
        for client_name in client_names[:max_clients]:
            report = coordinator.run_test(client_name)
            tests_run += 1
            if report.status is CoordinationStatus.COMPLETED:
                pair_ok = oracle.pair_suitable(
                    report.server_pair[0], report.server_pair[1], client_name
                )
                wrong_verdicts += not pair_ok
    horizon = max(e.time + e.convergence_s for e in events) + 1.0
    internet.advance_to(horizon)
    # Heal whatever mid-window testing did not touch.
    healed_by_coordinator = (
        coordinator.telemetry["preflight_stale"]
        + coordinator.telemetry["topology_invalidated"]
    )
    residual = 0
    for entry, _client in oracle.stale_entries(database):
        residual += bool(database.invalidate(entry))
    post = oracle.score(database)
    return {
        "events": len(events),
        "path_changes": internet.telemetry["path_changes"],
        "stale_detected": stale_detected,
        "healed_by_coordinator": healed_by_coordinator,
        "healed_residual": residual,
        "entries_before": entries_before,
        "entries_after": len(database),
        "tests_run": tests_run,
        "completed": coordinator.telemetry.get("attempts", 0),
        "wrong_verdicts": wrong_verdicts,
        "post_precision": post["precision"],
        "post_recall": post["recall"],
        "converged": bool(internet.converged),
    }


def run(quick=False, skip_dynamics=False, target_rows=None):
    from repro.inet import generate_as_graph  # noqa: F401 (import check)

    graph, graph_stats = bench_graph()
    routing = bench_routing(graph)
    internet, annotations, database, tc = bench_tc(graph)
    rows = target_rows or (COL_TARGET_ROWS_QUICK if quick else COL_TARGET_ROWS)
    columnar = bench_columnar(graph, rows)
    workloads = {
        "graph": graph_stats,
        "routing": routing,
        "tc": tc,
        "columnar": columnar,
    }
    if not skip_dynamics:
        workloads["dynamics"] = bench_dynamics(
            internet, annotations, database, quick
        )
    return {
        "schema_version": TOPOLOGY_SCHEMA_VERSION,
        "commit": _git_commit(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": bool(quick),
        "workloads": workloads,
    }


def check_gates(report, args):
    """Evaluate the acceptance gates; returns a list of failures."""
    failures = []
    workloads = report["workloads"]
    tc = workloads["tc"]
    if tc["precision"] < args.min_precision:
        failures.append(
            f"tc precision {tc['precision']:.3f} < {args.min_precision}"
        )
    if tc["recall"] < args.min_recall:
        failures.append(f"tc recall {tc['recall']:.3f} < {args.min_recall}")
    if not tc["double_entry_ok"]:
        failures.append("tc counter double-entry check failed")
    if not workloads["graph"]["deterministic"]:
        failures.append("graph generation is not deterministic")
    columnar = workloads["columnar"]
    if not columnar["identical_entries"]:
        failures.append("row and columnar backends disagree on TC entries")
    if columnar["join_speedup"] < args.min_join_speedup:
        failures.append(
            f"join speedup {columnar['join_speedup']:.1f}x < "
            f"{args.min_join_speedup}x"
        )
    dynamics = workloads.get("dynamics")
    if dynamics is not None:
        if dynamics["wrong_verdicts"] > args.max_wrong_verdicts:
            failures.append(
                f"{dynamics['wrong_verdicts']} wrong-verdict pair selections "
                f"(max {args.max_wrong_verdicts})"
            )
        if dynamics["stale_detected"] == 0:
            failures.append("dynamics produced no stale entries to heal")
        if dynamics["post_precision"] < args.min_precision:
            failures.append(
                f"post-dynamics precision {dynamics['post_precision']:.3f} "
                f"< {args.min_precision}"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.perf.topology",
        description="repro.inet topology/TC benchmark and acceptance gates",
    )
    parser.add_argument("--out", default="BENCH_topology.json")
    parser.add_argument("--quick", action="store_true",
                        help="smaller columnar/coordinator legs (CI smoke)")
    parser.add_argument("--rows", type=int, default=None,
                        help="columnar workload row target (overrides --quick)")
    parser.add_argument("--skip-dynamics", action="store_true")
    parser.add_argument("--min-precision", type=float, default=1.0)
    parser.add_argument("--min-recall", type=float, default=0.9)
    parser.add_argument("--min-join-speedup", type=float, default=None,
                        help="default 10.0 at the full 1M-row scale, "
                             "4.0 for the --quick smoke")
    parser.add_argument("--max-wrong-verdicts", type=int, default=0)
    args = parser.parse_args(argv)
    if args.min_join_speedup is None:
        # The acceptance gate is defined at >= 1M rows, where the row
        # backend's per-row dict churn dominates; the quick smoke runs
        # ~124k rows where constant costs compress the ratio, so it
        # gates at a proportionally lower bar.
        args.min_join_speedup = 4.0 if (args.quick and args.rows is None) \
            else 10.0

    report = run(
        quick=args.quick,
        skip_dynamics=args.skip_dynamics,
        target_rows=args.rows,
    )
    failures = check_gates(report, args)
    report["gates_ok"] = not failures
    report["gate_failures"] = failures
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    workloads = report["workloads"]
    print(f"graph     : {workloads['graph']['ases']} ASes in "
          f"{workloads['graph']['wall_s']:.2f}s")
    print(f"routing   : {workloads['routing']['routes_per_s']:.0f} routes/s")
    print(f"tc        : precision {workloads['tc']['precision']:.3f} "
          f"recall {workloads['tc']['recall']:.3f} "
          f"({workloads['tc']['rows_per_s']:.0f} rows/s)")
    print(f"columnar  : {workloads['columnar']['join_speedup']:.1f}x join "
          f"speedup over {workloads['columnar']['backends']['row']['rows']} rows")
    if "dynamics" in workloads:
        dyn = workloads["dynamics"]
        print(f"dynamics  : {dyn['path_changes']} path changes, "
              f"{dyn['stale_detected']} stale detected, "
              f"{dyn['healed_by_coordinator']}+{dyn['healed_residual']} healed, "
              f"{dyn['wrong_verdicts']} wrong verdicts")
    print(f"report    : {args.out}")
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
