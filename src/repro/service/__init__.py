"""``repro.service`` -- the overload-safe WeHeY localization front-end.

A long-lived asyncio service that accepts WeHe-style test submissions
(tenant, client, app, scenario knobs) over newline-delimited JSON,
batches compatible requests into sweep cells, runs them on the
supervised executor via :mod:`repro.api`, and streams verdicts back.
Designed to stay *predictable under overload*:

- **Admission control** -- bounded queue + per-tenant token buckets;
  excess load gets an explicit ``REJECTED_OVERLOAD``.
- **Backpressure & fairness** -- per-tenant FIFOs served deficit
  round-robin in units of simulated replay seconds; one hot tenant
  cannot starve the rest.
- **Deadlines** -- each submission carries a budget that expires queued
  work without burning a worker and bounds dispatched cells via
  ``cell_timeout``.
- **Graceful degradation** -- a HEALTHY/DEGRADED/SHEDDING governor with
  hysteresis, plus a circuit breaker around the executor.
- **Crash-safe drain** -- ``SIGTERM`` finishes in-flight cells, flushes
  checkpoints, and persists the pending queue to the store ledger; a
  restarted service resumes it.

Layering (each module imports only downward)::

    protocol     submissions, responses, JSONL framing
    admission    bounded queue + token buckets
    fairqueue    deficit round-robin
    degradation  governor + circuit breaker
    engine       batch executors (real sweep / deterministic synthetic)
    core         the sans-IO control plane (everything above, no clock)
    server       asyncio shell: sockets, threads, signals

The core is sans-IO (explicit ``now`` everywhere), which is what lets
:mod:`repro.loadgen` replay overload scenarios in virtual time with
byte-identical admission decisions run-to-run.
"""

from repro.service.admission import AdmissionController, RequestTokenBucket
from repro.service.core import Batch, QueuedRequest, ServiceConfig, ServiceCore
from repro.service.degradation import (
    CircuitBreaker,
    LatencyWindow,
    OverloadGovernor,
    ServiceState,
)
from repro.service.engine import SweepEngine, SyntheticEngine
from repro.service.fairqueue import DeficitRoundRobin
from repro.service.protocol import (
    MalformedSubmission,
    Response,
    Status,
    Submission,
    parse_submission,
)
from repro.service.server import ServiceServer, serve

__all__ = [
    "AdmissionController",
    "Batch",
    "CircuitBreaker",
    "DeficitRoundRobin",
    "LatencyWindow",
    "MalformedSubmission",
    "OverloadGovernor",
    "QueuedRequest",
    "RequestTokenBucket",
    "Response",
    "ServiceConfig",
    "ServiceCore",
    "ServiceServer",
    "ServiceState",
    "Status",
    "Submission",
    "SweepEngine",
    "SyntheticEngine",
    "parse_submission",
    "serve",
]
