"""Admission control: bounded queueing plus per-tenant token buckets.

The service never queues unboundedly.  A submission is admitted only
when (a) the service is accepting work at all (state machine / drain),
(b) the global accept queue has room, and (c) the submitting tenant's
token bucket holds a token.  Everything else gets an explicit
``REJECTED_OVERLOAD`` with a structured reason -- the 429 of this
protocol -- so clients can back off instead of piling on.

The bucket is the request-granularity twin of
:class:`repro.netsim.token_bucket.TokenBucketFilter`: tokens accrue
continuously at ``rate`` per second up to ``burst``, and the replenish
arithmetic mirrors the netsim TBF's (same ``min(burst, tokens + dt *
rate)`` update, same monotonic-``now`` guard), so the admission-control
math is the one the paper's rate-limiter model already trusts.
"""


class RequestTokenBucket:
    """A continuous-replenish token bucket in request units.

    Parameters:
        rate: tokens (requests) accrued per second.
        burst: bucket capacity; also the initial fill, so a quiet
            tenant can open with a burst without being rejected.
    """

    __slots__ = ("rate", "burst", "_tokens", "_last_update")

    def __init__(self, rate, burst):
        if rate <= 0:
            raise ValueError("token rate must be positive")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last_update = None

    def _replenish(self, now):
        # Mirrors TokenBucketFilter._replenish: monotonic guard + cap.
        if self._last_update is None:
            self._last_update = now
            return
        if now > self._last_update:
            self._tokens = min(
                self.burst, self._tokens + (now - self._last_update) * self.rate
            )
            self._last_update = now

    def tokens(self, now):
        """Tokens available at ``now`` (fractional)."""
        self._replenish(now)
        return self._tokens

    def try_take(self, now, n=1.0):
        """Take ``n`` tokens if available; False (untaken) otherwise.

        The same 1e-9 tolerance the netsim TBF applies, so float
        rounding at exact replenish boundaries cannot starve a tenant
        that is precisely at its configured rate.
        """
        self._replenish(now)
        if self._tokens + 1e-9 >= n:
            self._tokens = max(self._tokens - n, 0.0)
            return True
        return False


class AdmissionController:
    """The accept/reject gate in front of the fair queue.

    Stateless apart from the per-tenant buckets; the caller supplies
    the current queue depth and service state, which keeps this class a
    pure decision function and the whole admission path deterministic
    under the virtual-time load generator.
    """

    def __init__(self, max_queue, tenant_rate=None, tenant_burst=8.0):
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.max_queue = int(max_queue)
        self.tenant_rate = tenant_rate
        self.tenant_burst = tenant_burst
        self._buckets = {}

    def bucket(self, tenant):
        """The tenant's bucket (created on first use), or None when uncapped."""
        if self.tenant_rate is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = RequestTokenBucket(self.tenant_rate, self.tenant_burst)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant, queue_depth, now):
        """``(True, "")`` to admit, else ``(False, reason)``.

        Order matters: the global bound is checked before the tenant
        bucket so a full queue does not silently drain tenant tokens
        (a rejected request must not charge the tenant's future).
        """
        if queue_depth >= self.max_queue:
            return False, "queue_full"
        bucket = self.bucket(tenant)
        if bucket is not None and not bucket.try_take(now):
            return False, "tenant_rate"
        return True, ""
