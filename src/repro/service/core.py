"""The sans-IO service core: admission, queueing, dispatch, accounting.

:class:`ServiceCore` is the entire control plane of the WeHeY service
with the clock and the sockets factored out.  Every method takes an
explicit ``now``; no wall time, randomness, or IO happens inside.  The
asyncio server (:mod:`repro.service.server`) wraps it with real sockets
and a real clock; the load generator (:mod:`repro.loadgen`) wraps it
with a virtual-time event loop -- and because the core is a pure
function of its call sequence, two identical load traces produce
byte-identical admission-decision sequences (an acceptance criterion,
asserted in ``tests/loadgen/``).

Lifecycle of one submission::

    submit(sub, now) -> request id
      |- cache hit            -> VERDICT (cached=True), skips the queue
      |- draining / shedding /
      |  degraded (miss)      -> REJECTED_OVERLOAD
      |- queue full /
      |  tenant bucket empty  -> REJECTED_OVERLOAD
      '- admitted             -> queued under its tenant's FIFO (DRR)
    next_batch(now)           -> expired entries -> DEADLINE_EXCEEDED,
                                 else a Batch (breaker + concurrency
                                 permitting) with a deadline-derived
                                 cell_timeout
    batch_done(batch, .., now)-> VERDICT / FAILED / DEADLINE_EXCEEDED

Terminal responses are appended to :attr:`ServiceCore.outbox`; the
shell drains it after every core call and routes responses by request
id.  Exactly one terminal response is emitted per submission -- the
accounting invariant the whole test suite leans on.
"""

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.obs import metrics as _obs
from repro.service.admission import AdmissionController
from repro.service.degradation import (
    CircuitBreaker,
    LatencyWindow,
    OverloadGovernor,
    ServiceState,
)
from repro.service.fairqueue import DeficitRoundRobin
from repro.service.protocol import Response, Status
from repro.store.keys import detection_cache_key

#: obs gauge values for the service state machine.
STATE_GAUGE = {
    ServiceState.HEALTHY: 0.0,
    ServiceState.DEGRADED: 1.0,
    ServiceState.SHEDDING: 2.0,
}


@dataclass(frozen=True)
class ServiceConfig:
    """All tuning knobs of the service core, with smoke-test defaults.

    ``degraded_queue`` / ``shed_queue`` default to 50% / 85% of
    ``max_queue`` so the governor always trips strictly before
    admission's hard bound -- degradation is meant to be the *soft*
    envelope inside the hard one.
    """

    max_queue: int = 64
    tenant_rate: float = None  # requests/s per tenant; None = uncapped
    tenant_burst: float = 8.0
    batch_max: int = 4  # cells per dispatched batch
    max_concurrent_batches: int = 2
    drr_quantum: float = 8.0  # simulated replay seconds per round
    degraded_queue: int = None
    shed_queue: int = None
    degraded_p99_s: float = None
    shed_p99_s: float = None
    recover_fraction: float = 0.5
    recover_dwell_s: float = 2.0
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 30.0
    latency_window: int = 128
    memo_size: int = 1024  # in-memory verdict cache entries

    def resolved_degraded_queue(self):
        if self.degraded_queue is not None:
            return self.degraded_queue
        return max(1, self.max_queue // 2)

    def resolved_shed_queue(self):
        if self.shed_queue is not None:
            return self.shed_queue
        return max(self.resolved_degraded_queue(), (self.max_queue * 17) // 20)


@dataclass
class QueuedRequest:
    """One admitted submission waiting for (or in) dispatch."""

    id: str
    submission: object
    scenario: object
    cache_key: str
    admitted_at: float
    deadline_at: float

    @property
    def tenant(self):
        return self.submission.tenant

    def remaining(self, now):
        return self.deadline_at - now


@dataclass
class Batch:
    """One engine dispatch: up to ``batch_max`` compatible requests.

    ``cell_timeout`` is the *largest* remaining deadline budget in the
    batch -- no cell may burn a worker past the point where every
    request in the batch has already expired; per-request deadlines are
    re-checked at completion.
    """

    id: int
    requests: list = field(default_factory=list)
    dispatched_at: float = 0.0
    cell_timeout: float = None


class ServiceCore:
    """Deterministic service control plane (see module docstring).

    Parameters:
        config: a :class:`ServiceConfig` (default-constructed if None).
        store: optional :class:`repro.store.ExperimentStore` consulted
            (read-only from the core's point of view) for cached
            verdicts; fresh verdicts land in the in-memory memo either
            way, which is what DEGRADED mode serves from.
    """

    def __init__(self, config=None, store=None):
        self.config = config or ServiceConfig()
        self.store = store
        self.admission = AdmissionController(
            self.config.max_queue,
            tenant_rate=self.config.tenant_rate,
            tenant_burst=self.config.tenant_burst,
        )
        self.queue = DeficitRoundRobin(quantum=self.config.drr_quantum)
        self.governor = OverloadGovernor(
            self.config.resolved_degraded_queue(),
            self.config.resolved_shed_queue(),
            degraded_p99_s=self.config.degraded_p99_s,
            shed_p99_s=self.config.shed_p99_s,
            recover_fraction=self.config.recover_fraction,
            recover_dwell_s=self.config.recover_dwell_s,
        )
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
        )
        self.latency = LatencyWindow(self.config.latency_window)
        self.outbox = []  # terminal Responses awaiting the shell
        self.decision_log = []  # (request_id, tenant, decision, detail)
        self.counts = {status: 0 for status in (
            Status.VERDICT, Status.REJECTED_OVERLOAD,
            Status.DEADLINE_EXCEEDED, Status.FAILED,
        )}
        self.tenant_counts = {}  # tenant -> {status: n}
        self.inflight = {}  # batch id -> Batch
        self.draining = False
        self._memo = OrderedDict()  # cache_key -> verdict payload
        self._seq = 0
        self._batch_seq = 0

    # -- accounting -----------------------------------------------------

    def _log(self, request_id, tenant, decision, detail=""):
        self.decision_log.append((request_id, tenant, decision, detail))

    def _respond(self, response):
        self.counts[response.status] += 1
        per_tenant = self.tenant_counts.setdefault(response.tenant, {})
        per_tenant[response.status] = per_tenant.get(response.status, 0) + 1
        self.outbox.append(response)
        if _obs.ENABLED:
            _obs.SINK.inc(f"service.responses.{response.status}")
            if response.status == Status.REJECTED_OVERLOAD:
                _obs.SINK.inc(f"service.rejected.{response.reason}")

    def take_responses(self):
        """Drain and return the accumulated terminal responses."""
        out, self.outbox = self.outbox, []
        return out

    def inflight_requests(self):
        return sum(len(batch.requests) for batch in self.inflight.values())

    def _memo_get(self, key):
        payload = self._memo.get(key)
        if payload is not None:
            self._memo.move_to_end(key)
            return payload
        if self.store is not None:
            return self.store.get(key)
        return None

    def _memo_put(self, key, payload):
        self._memo[key] = payload
        self._memo.move_to_end(key)
        while len(self._memo) > self.config.memo_size:
            self._memo.popitem(last=False)

    # -- ingress --------------------------------------------------------

    def submit(self, submission, now):
        """Admit one validated :class:`Submission`; returns its request id.

        The terminal response -- immediate (cached verdict, rejection)
        or eventual (queued work) -- arrives via :attr:`outbox`.
        """
        self._seq += 1
        request_id = submission.id or f"req-{self._seq:06d}"
        tenant = submission.tenant

        def reject(reason):
            self._log(request_id, tenant, "reject", reason)
            self._respond(Response(
                id=request_id, status=Status.REJECTED_OVERLOAD,
                tenant=tenant, reason=reason, state=self.governor.state,
            ))
            return request_id

        if self.draining:
            return reject("draining")
        scenario = submission.to_scenario()
        key = detection_cache_key(scenario)
        cached = self._memo_get(key)
        if cached is not None:
            # Cache hits are served in every state: they cost no worker
            # and no queue slot, which is exactly why DEGRADED exists.
            self._log(request_id, tenant, "cached", key[:12])
            self._respond(Response(
                id=request_id, status=Status.VERDICT, tenant=tenant,
                state=self.governor.state, verdict=cached, cached=True,
            ))
            return request_id
        if self.governor.state == ServiceState.SHEDDING:
            return reject("shedding")
        if self.governor.state == ServiceState.DEGRADED:
            return reject("degraded")
        ok, reason = self.admission.admit(tenant, len(self.queue), now)
        if not ok:
            return reject(reason)
        request = QueuedRequest(
            id=request_id,
            submission=submission,
            scenario=scenario,
            cache_key=key,
            admitted_at=now,
            deadline_at=now + submission.deadline_s,
        )
        self.queue.push(tenant, request, cost=submission.duration)
        self._log(request_id, tenant, "accept", "")
        return request_id

    def malformed(self, request_id, reason, tenant=""):
        """Terminal ``FAILED`` for a submission that never parsed.

        Keeps the one-response-per-submission invariant intact for
        garbage input (bad JSON, unknown knobs, chaos-injected noise).
        """
        self._seq += 1
        request_id = request_id or f"req-{self._seq:06d}"
        self._log(request_id, tenant or "-", "malformed", reason)
        self._respond(Response(
            id=request_id, status=Status.FAILED, tenant=tenant,
            reason=f"malformed submission: {reason}",
            state=self.governor.state,
        ))
        return request_id

    # -- deadline sweeper -----------------------------------------------

    def expire(self, now):
        """Expel queued requests whose deadline has passed.

        Each becomes a ``DEADLINE_EXCEEDED`` response without ever
        touching a worker -- the cheap half of deadline propagation.
        """
        removed = self.queue.remove_if(
            lambda tenant, request: request.deadline_at <= now
        )
        for _tenant, request in removed:
            self._log(request.id, request.tenant, "expire", "queued")
            self._respond(Response(
                id=request.id, status=Status.DEADLINE_EXCEEDED,
                tenant=request.tenant, reason="expired in queue",
                state=self.governor.state,
                queued_s=now - request.admitted_at,
            ))
        return len(removed)

    # -- dispatch -------------------------------------------------------

    def next_batch(self, now):
        """The next batch to hand to the engine, or None.

        None when the queue is empty, concurrency is saturated, or the
        circuit breaker is open.  Expired entries are swept first so a
        returned batch only ever contains live requests.
        """
        self.expire(now)
        if not len(self.queue):
            return None
        if len(self.inflight) >= self.config.max_concurrent_batches:
            return None
        if not self.breaker.allow_dispatch(now):
            return None
        requests = []
        while len(requests) < self.config.batch_max:
            entry = self.queue.pop()
            if entry is None:
                break
            requests.append(entry[1])
        # pop() cannot return expired entries: expire() just swept them.
        self._batch_seq += 1
        budget = max(request.remaining(now) for request in requests)
        batch = Batch(
            id=self._batch_seq,
            requests=requests,
            dispatched_at=now,
            cell_timeout=max(budget, 1e-3),
        )
        self.inflight[batch.id] = batch
        self.tick(now)
        return batch

    def batch_done(self, batch, outcomes, now):
        """Account one finished batch; ``outcomes`` aligns with its requests.

        Each outcome is ``("ok", payload)`` or ``("failed", reason)``
        (see :mod:`repro.service.engine`).  Any failed outcome counts
        against the circuit breaker; a clean batch resets it.
        """
        self.inflight.pop(batch.id, None)
        any_failed = False
        for request, (kind, payload) in zip(batch.requests, outcomes):
            queued_s = batch.dispatched_at - request.admitted_at
            service_s = now - batch.dispatched_at
            if kind == "ok":
                self._memo_put(request.cache_key, payload)
                if now >= request.deadline_at:
                    self._respond(Response(
                        id=request.id, status=Status.DEADLINE_EXCEEDED,
                        tenant=request.tenant,
                        reason="completed after deadline",
                        state=self.governor.state,
                        queued_s=queued_s, service_s=service_s,
                    ))
                    continue
                self.latency.observe(now - request.admitted_at)
                self._respond(Response(
                    id=request.id, status=Status.VERDICT,
                    tenant=request.tenant, state=self.governor.state,
                    verdict=payload, queued_s=queued_s, service_s=service_s,
                ))
            else:
                any_failed = True
                self._respond(Response(
                    id=request.id, status=Status.FAILED,
                    tenant=request.tenant, reason=payload,
                    state=self.governor.state,
                    queued_s=queued_s, service_s=service_s,
                ))
        if any_failed:
            self.breaker.record_failure(now)
        else:
            self.breaker.record_success(now)
        if _obs.ENABLED:
            _obs.SINK.inc("service.batches")
            _obs.SINK.observe("service.batch_service_s", now - batch.dispatched_at)
        self.tick(now)

    def batch_failed(self, batch, reason, now):
        """The shell could not run the batch at all (engine thread blew up)."""
        outcomes = [("failed", reason)] * len(batch.requests)
        self.batch_done(batch, outcomes, now)

    # -- periodic upkeep ------------------------------------------------

    def tick(self, now):
        """Sweep deadlines, advance the governor, publish gauges."""
        self.expire(now)
        state = self.governor.update(
            now, len(self.queue), self.latency.quantile(0.99)
        )
        if _obs.ENABLED:
            _obs.SINK.set_gauge("service.state", STATE_GAUGE[state])
            _obs.SINK.set_gauge("service.queue_depth", len(self.queue))
            _obs.SINK.set_gauge("service.inflight", self.inflight_requests())
        return state

    # -- graceful drain -------------------------------------------------

    def begin_drain(self, now):
        """Stop admitting; in-flight batches finish, the queue persists."""
        self.draining = True
        self._log("-", "-", "drain", f"queued={len(self.queue)}")

    def pending_payloads(self, now):
        """Remove and return the queued work as plain-JSON resume payloads.

        Entries carry the *remaining* deadline budget, not the absolute
        deadline -- wall time spent down does not count against a
        submission.  Order is DRR-fair order, so a restarted service
        resumes exactly as fairly as a live one would have dispatched.
        """
        payloads = []
        for _tenant, request in self.queue.drain_all():
            payloads.append({
                "id": request.id,
                "submission": request.submission.as_dict(),
                "remaining_s": max(request.remaining(now), 0.0),
            })
        return payloads

    def resume(self, payloads, now):
        """Re-queue persisted submissions (admission already happened).

        Entries whose remaining budget is gone become immediate
        ``DEADLINE_EXCEEDED`` responses -- still exactly one terminal
        response, just issued by the next process.
        """
        from repro.service.protocol import parse_submission

        resumed = 0
        for payload in payloads:
            raw = dict(payload["submission"])
            raw.pop("id", None)
            submission = parse_submission(raw)
            request_id = payload.get("id") or submission.id
            remaining = float(payload.get("remaining_s", submission.deadline_s))
            if remaining <= 0:
                self._log(request_id, submission.tenant, "expire", "resume")
                self._respond(Response(
                    id=request_id, status=Status.DEADLINE_EXCEEDED,
                    tenant=submission.tenant, reason="expired while down",
                    state=self.governor.state,
                ))
                continue
            scenario = submission.to_scenario()
            request = QueuedRequest(
                id=request_id,
                submission=submission,
                scenario=scenario,
                cache_key=detection_cache_key(scenario),
                admitted_at=now,
                deadline_at=now + remaining,
            )
            self.queue.push(submission.tenant, request, cost=submission.duration)
            self._log(request_id, submission.tenant, "resume", "")
            resumed += 1
        return resumed
