"""Graceful degradation: the overload state machine and circuit breaker.

Two independent protective loops:

- :class:`OverloadGovernor` watches *load* (queue depth, p99 end-to-end
  latency) and walks HEALTHY -> DEGRADED -> SHEDDING.  DEGRADED serves
  store/memo cache hits only (fresh work is rejected); SHEDDING rejects
  all new work while in-flight cells drain.  Up-transitions fire
  immediately (overload must not wait out a dwell timer); recovery
  requires the pressure to fall below a *fraction* of the trip
  threshold **and** stay there for a dwell period -- hysteresis, so the
  service cannot flap at a threshold boundary.
- :class:`CircuitBreaker` watches the *executor* (repeated batch
  failures / quarantined cells trip it OPEN), halts dispatch for a
  cooldown, then HALF_OPEN probes with a single batch before closing.
  A broken simulator backend therefore stops burning workers after a
  few failures instead of failing every queued cell in turn.

Both are sans-IO: every method takes an explicit ``now``, no wall clock
is read, so the virtual-time load generator exercises exactly the
transitions a production deployment would see.
"""

from bisect import insort
from collections import deque


class ServiceState:
    """Service-level load states (string constants)."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    SHEDDING = "shedding"


_STATE_ORDER = {
    ServiceState.HEALTHY: 0,
    ServiceState.DEGRADED: 1,
    ServiceState.SHEDDING: 2,
}


class LatencyWindow:
    """Rolling window of the last ``size`` latency samples with quantiles.

    Maintains a sorted shadow of the window so ``quantile`` is O(log n)
    per insert and O(1) per query -- cheap enough to run on every
    governor tick.
    """

    def __init__(self, size=128):
        if size < 1:
            raise ValueError("window size must be >= 1")
        self.size = size
        self._window = deque()
        self._sorted = []

    def __len__(self):
        return len(self._window)

    def observe(self, value):
        value = float(value)
        self._window.append(value)
        insort(self._sorted, value)
        if len(self._window) > self.size:
            old = self._window.popleft()
            # Remove one instance of the evicted value from the shadow.
            index = self._index_of(old)
            del self._sorted[index]

    def _index_of(self, value):
        from bisect import bisect_left

        return bisect_left(self._sorted, value)

    def quantile(self, q):
        """The q-quantile (nearest-rank) of the window; 0.0 when empty."""
        if not self._sorted:
            return 0.0
        rank = min(len(self._sorted) - 1, int(q * len(self._sorted)))
        return self._sorted[rank]


class OverloadGovernor:
    """The HEALTHY / DEGRADED / SHEDDING state machine.

    Parameters:
        degraded_queue / shed_queue: queue-depth trip points.
        degraded_p99_s / shed_p99_s: p99-latency trip points (None
            disables the latency criterion).
        recover_fraction: recovery requires pressure below
            ``fraction * trip`` (hysteresis width).
        recover_dwell_s: recovery requires the low-pressure condition
            to hold this long (flap damping).
    """

    def __init__(
        self,
        degraded_queue,
        shed_queue,
        degraded_p99_s=None,
        shed_p99_s=None,
        recover_fraction=0.5,
        recover_dwell_s=2.0,
    ):
        if shed_queue < degraded_queue:
            raise ValueError("shed_queue must be >= degraded_queue")
        if not 0.0 < recover_fraction <= 1.0:
            raise ValueError("recover_fraction must be in (0, 1]")
        self.degraded_queue = degraded_queue
        self.shed_queue = shed_queue
        self.degraded_p99_s = degraded_p99_s
        self.shed_p99_s = shed_p99_s
        self.recover_fraction = recover_fraction
        self.recover_dwell_s = recover_dwell_s
        self.state = ServiceState.HEALTHY
        self.transitions = []  # (now, from, to, reason)
        self._calm_since = None  # start of the current low-pressure streak

    def _target_state(self, queue_depth, p99_s):
        """The state current pressure *demands* (ignoring hysteresis)."""
        if queue_depth >= self.shed_queue or (
            self.shed_p99_s is not None and p99_s >= self.shed_p99_s
        ):
            return ServiceState.SHEDDING
        if queue_depth >= self.degraded_queue or (
            self.degraded_p99_s is not None and p99_s >= self.degraded_p99_s
        ):
            return ServiceState.DEGRADED
        return ServiceState.HEALTHY

    def _calm(self, queue_depth, p99_s):
        """Pressure low enough to *recover* from the current state."""
        if self.state == ServiceState.SHEDDING:
            queue_trip, p99_trip = self.shed_queue, self.shed_p99_s
        else:
            queue_trip, p99_trip = self.degraded_queue, self.degraded_p99_s
        if queue_depth > self.recover_fraction * queue_trip:
            return False
        if p99_trip is not None and p99_s > self.recover_fraction * p99_trip:
            return False
        return True

    def _move(self, now, new_state, reason):
        self.transitions.append((now, self.state, new_state, reason))
        self.state = new_state
        self._calm_since = None

    def update(self, now, queue_depth, p99_s):
        """Advance the machine one tick; returns the (possibly new) state."""
        target = self._target_state(queue_depth, p99_s)
        if _STATE_ORDER[target] > _STATE_ORDER[self.state]:
            # Escalation is immediate -- overload does not wait.
            self._move(
                now, target, f"queue={queue_depth} p99={p99_s:.3f}"
            )
            return self.state
        if self.state == ServiceState.HEALTHY:
            self._calm_since = None
            return self.state
        # Recovery: one step down per dwell period, and only while calm.
        if not self._calm(queue_depth, p99_s):
            self._calm_since = None
            return self.state
        if self._calm_since is None:
            self._calm_since = now
            return self.state
        if now - self._calm_since >= self.recover_dwell_s:
            down = (
                ServiceState.DEGRADED
                if self.state == ServiceState.SHEDDING
                else ServiceState.HEALTHY
            )
            self._move(now, down, f"recovered (queue={queue_depth})")
        return self.state


class CircuitBreaker:
    """CLOSED / OPEN / HALF_OPEN breaker around the sweep executor.

    ``record_failure`` counts *consecutive* batch failures (an engine
    exception or a quarantined cell); ``threshold`` of them trips the
    breaker OPEN for ``cooldown_s``.  After the cooldown,
    ``allow_dispatch`` admits exactly one probe batch (HALF_OPEN); its
    outcome closes or re-opens the breaker.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, threshold=3, cooldown_s=30.0):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self.opened_at = None
        self._probe_outstanding = False
        self.transitions = []  # (now, from, to)

    def _move(self, now, new_state):
        self.transitions.append((now, self.state, new_state))
        self.state = new_state

    def allow_dispatch(self, now):
        """May a batch be dispatched right now?

        OPEN past its cooldown moves to HALF_OPEN and admits a single
        probe; further dispatches wait for the probe's outcome.
        """
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if now - self.opened_at < self.cooldown_s:
                return False
            self._move(now, self.HALF_OPEN)
            self._probe_outstanding = False
        # HALF_OPEN: one probe at a time.
        if self._probe_outstanding:
            return False
        self._probe_outstanding = True
        return True

    def record_success(self, now):
        self.consecutive_failures = 0
        self._probe_outstanding = False
        if self.state != self.CLOSED:
            self._move(now, self.CLOSED)

    def record_failure(self, now):
        self.consecutive_failures += 1
        self._probe_outstanding = False
        if self.state == self.HALF_OPEN:
            # The probe failed: back to OPEN for another cooldown.
            self.trips += 1
            self.opened_at = now
            self._move(now, self.OPEN)
        elif (
            self.state == self.CLOSED
            and self.consecutive_failures >= self.threshold
        ):
            self.trips += 1
            self.opened_at = now
            self._move(now, self.OPEN)
