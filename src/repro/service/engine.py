"""Batch executors behind the service: the real sweep engine and a
deterministic synthetic stand-in.

An *engine* takes one dispatched batch and returns one outcome per
request, aligned with ``batch.requests``::

    ("ok", payload_dict)      # a verdict; payload is plain JSON
    ("failed", reason)        # structured failure, never an exception

Engines are synchronous -- the asyncio front-end runs them in a worker
thread, the virtual-time load generator asks :meth:`duration` instead
of running anything.

- :class:`SweepEngine` routes batches through
  :func:`repro.api.run_sweep`, inheriting the supervised executor's
  whole robustness envelope (worker crash recovery, per-cell timeouts,
  quarantine) plus store checkpointing; the batch's deadline-derived
  ``cell_timeout`` propagates into the supervisor's watchdog.
- :class:`SyntheticEngine` produces deterministic verdicts after a
  deterministic per-cell service time (pure SHA-256 draws via
  :func:`repro.faults.chaos.uniform_draw`) -- the overload suite's
  workhorse, since two runs of a load scenario must make identical
  admission decisions.
"""

import time

from repro.faults.chaos import uniform_draw

#: Reference replay duration (seconds of simulated time) that
#: ``mean_service_s`` is quoted against: a cell of this duration takes
#: ``mean_service_s`` on average; longer replays cost proportionally.
REFERENCE_DURATION_S = 8.0


class SweepEngine:
    """The production engine: batches become detection sweeps.

    Parameters:
        store: optional :class:`repro.store.ExperimentStore`; cells
            checkpoint as they complete and identical resubmissions hit
            the cache inside :func:`run_sweep` itself.
        jobs: worker processes per batch (cells within a batch run in
            parallel under the supervised executor).
        max_cell_retries: supervision retry budget per cell.
    """

    def __init__(self, store=None, jobs=1, max_cell_retries=1):
        self.store = store
        self.jobs = jobs
        self.max_cell_retries = max_cell_retries

    def run(self, batch):
        from repro.api import SweepRequest, run_sweep
        from repro.parallel import CellFailure

        configs = [request.scenario for request in batch.requests]
        try:
            result = run_sweep(
                SweepRequest.detection(
                    configs,
                    jobs=self.jobs,
                    store=self.store,
                    cell_timeout=batch.cell_timeout,
                    max_cell_retries=self.max_cell_retries,
                )
            )
        except Exception as exc:
            reason = f"engine error: {type(exc).__name__}: {exc}"
            return [("failed", reason)] * len(configs)
        from repro.store.serialize import record_to_dict

        outcomes = []
        for value in result.results:
            if value is None:
                outcomes.append(("failed", "engine interrupted before this cell"))
            elif isinstance(value, CellFailure):
                outcomes.append(("failed", f"quarantined: {value.error}"))
            else:
                outcomes.append(("ok", record_to_dict(value)))
        return outcomes


class SyntheticEngine:
    """Deterministic fake executor for overload and robustness tests.

    Per-request service time is ``mean_service_s`` scaled by the cell's
    simulated duration and a deterministic uniform factor in
    ``[1 - jitter, 1 + jitter]``; batch duration is the max over the
    batch (cells run in parallel, like ``jobs >= batch`` under the real
    engine) or the sum with ``parallel=False``.

    ``fail`` injects deterministic engine failures (the circuit
    breaker's food); ``realtime=True`` makes :meth:`run` actually sleep
    for the computed duration, for wall-clock server tests.
    """

    def __init__(
        self,
        mean_service_s=0.5,
        jitter=0.5,
        parallel=True,
        fail=0.0,
        seed=0,
        realtime=False,
    ):
        if mean_service_s <= 0:
            raise ValueError("mean_service_s must be positive")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if not 0.0 <= fail <= 1.0:
            raise ValueError("fail probability must be in [0, 1]")
        self.mean_service_s = mean_service_s
        self.jitter = jitter
        self.parallel = parallel
        self.fail = fail
        self.seed = seed
        self.realtime = realtime

    def cell_time(self, request):
        """Deterministic service seconds for one request."""
        draw = uniform_draw(
            self.seed, "cell_time", request.submission.tenant,
            request.submission.client, request.id,
        )
        factor = 1.0 + self.jitter * (2.0 * draw - 1.0)
        scale = request.submission.duration / REFERENCE_DURATION_S
        return self.mean_service_s * scale * factor

    def duration(self, batch):
        """Wall-clock seconds the whole batch takes."""
        times = [self.cell_time(request) for request in batch.requests]
        return max(times) if self.parallel else sum(times)

    def _fails(self, request):
        return self.fail and uniform_draw(
            self.seed, "fail", request.id
        ) < self.fail

    def outcomes(self, batch):
        results = []
        for request in batch.requests:
            if self._fails(request):
                results.append(("failed", "injected synthetic engine failure"))
                continue
            scenario = request.scenario
            detected = scenario.limiter in ("common", "perflow")
            results.append(
                (
                    "ok",
                    {
                        "kind": "synthetic",
                        "detected": detected,
                        "app": scenario.app,
                        "limiter": scenario.limiter,
                        "seed": scenario.seed,
                        "cell_time_s": round(self.cell_time(request), 6),
                    },
                )
            )
        return results

    def run(self, batch):
        if self.realtime:
            time.sleep(self.duration(batch))
        return self.outcomes(batch)
