"""Per-tenant FIFOs under deficit round-robin dispatch.

One heavy tenant must not starve the others: each tenant gets its own
FIFO, and the dispatcher serves them deficit-round-robin (Shreedhar &
Varghese).  The cost unit is *simulated replay seconds* (a 60 s replay
cell is ~7.5x the work of an 8 s one), so fairness is in work, not in
request count -- a tenant submitting long cells gets proportionally
fewer of them per round.

Determinism: tenant service order is arrival order of their first
pending request (a ``deque`` of active tenants), every operation is a
pure function of the push/pop sequence, and no clock or randomness is
involved -- the virtual-time load generator replays byte-identical
dispatch sequences from identical arrival traces.
"""

from collections import deque


class DeficitRoundRobin:
    """DRR scheduler over per-tenant FIFO queues.

    Parameters:
        quantum: deficit added per round visit, in cost units (the
            service uses simulated replay seconds).
    """

    def __init__(self, quantum=8.0):
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = float(quantum)
        self._queues = {}  # tenant -> deque[(cost, item)]
        self._active = deque()  # tenants with pending work, service order
        self._deficit = {}
        self._depth = 0

    def __len__(self):
        return self._depth

    def depth(self, tenant):
        queue = self._queues.get(tenant)
        return len(queue) if queue else 0

    def tenants(self):
        """Tenants with pending work, in current service order."""
        return [t for t in self._active if self._queues.get(t)]

    def push(self, tenant, item, cost=1.0):
        if cost <= 0:
            raise ValueError("cost must be positive")
        queue = self._queues.get(tenant)
        if queue is None:
            queue = deque()
            self._queues[tenant] = queue
        if not queue:
            # (Re)activation: join the end of the service order with a
            # clean slate -- an idle tenant must not bank deficit.
            self._active.append(tenant)
            self._deficit[tenant] = 0.0
        queue.append((float(cost), item))
        self._depth += 1

    def pop(self):
        """Next ``(tenant, item)`` in DRR order, or None when empty.

        Classic DRR: the head tenant's deficit grows by one quantum per
        visit; it may emit items while the deficit covers their cost,
        then rotates to the back of the active list.
        """
        while self._active:
            tenant = self._active[0]
            queue = self._queues.get(tenant)
            if not queue:
                # Went idle: leave the round and drop banked deficit.
                self._active.popleft()
                self._deficit.pop(tenant, None)
                continue
            cost, item = queue[0]
            if self._deficit[tenant] >= cost:
                self._deficit[tenant] -= cost
                queue.popleft()
                self._depth -= 1
                if not queue:
                    self._active.popleft()
                    self._deficit.pop(tenant, None)
                return tenant, item
            self._deficit[tenant] += self.quantum
            self._active.rotate(-1)
        return None

    def remove_if(self, predicate):
        """Remove queued items where ``predicate(tenant, item)`` is true.

        Returns the removed ``(tenant, item)`` pairs in queue order.
        Used by the deadline sweeper: expired submissions leave the
        queue without being dispatched (and without costing a worker).
        """
        removed = []
        for tenant, queue in self._queues.items():
            kept = deque()
            for cost, item in queue:
                if predicate(tenant, item):
                    removed.append((tenant, item))
                    self._depth -= 1
                else:
                    kept.append((cost, item))
            self._queues[tenant] = kept
        return removed

    def drain_all(self):
        """Remove and return every queued ``(tenant, item)``, DRR-fair order.

        Used by the graceful drain to persist the pending queue: the
        persisted order is the order a healthy service would have
        dispatched, so a restarted service resumes fairly too.
        """
        items = []
        while True:
            entry = self.pop()
            if entry is None:
                return items
            items.append(entry)
