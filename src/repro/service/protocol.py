"""Wire protocol of the WeHeY service: submissions in, responses out.

The service speaks newline-delimited JSON (one object per line) over a
plain TCP stream -- stdlib-only framing, no HTTP dependency.  A client
writes submission objects and reads response objects; requests and
responses are correlated by ``id`` (client-chosen, else assigned by the
server), so verdicts can stream back out of order while earlier cells
are still simulating.

A submission is a WeHe-style test request::

    {"tenant": "carrier-A", "client": "client-17", "app": "netflix",
     "deadline_s": 60, "knobs": {"limiter": "common", "seed": 4}}

``knobs`` maps onto :class:`~repro.experiments.scenarios.ScenarioConfig`
fields (whitelisted subset); everything else about the cell is pinned
by the service so that identical submissions are cache-equal.

Every request terminates in **exactly one** terminal response status:

- ``VERDICT`` -- the localization/detection verdict (fresh or cached);
- ``REJECTED_OVERLOAD`` -- admission control said no (structured
  ``reason``: ``queue_full``, ``tenant_rate``, ``shedding``,
  ``degraded``, ``draining``);
- ``DEADLINE_EXCEEDED`` -- the submission's budget expired before (or
  while) it could be served;
- ``FAILED`` -- the cell was attempted and could not produce a verdict
  (malformed submission, engine failure, quarantined cell), with a
  structured ``reason``.

Nothing is ever silently dropped: the accounting invariant
"one terminal response per submission" is enforced by the load
generator and the service test suite.
"""

import json
from dataclasses import dataclass, field

from repro.experiments.scenarios import ScenarioConfig
from repro.wehe.apps import APP_SPECS


class Status:
    """Terminal response statuses (string constants)."""

    VERDICT = "VERDICT"
    REJECTED_OVERLOAD = "REJECTED_OVERLOAD"
    DEADLINE_EXCEEDED = "DEADLINE_EXCEEDED"
    FAILED = "FAILED"


TERMINAL_STATUSES = (
    Status.VERDICT,
    Status.REJECTED_OVERLOAD,
    Status.DEADLINE_EXCEEDED,
    Status.FAILED,
)

#: ScenarioConfig fields a submission may set.  Everything else
#: (background model, modulation, ...) is service-pinned so the cache
#: key space stays small and submissions cannot smuggle in arbitrary
#: work multipliers.
ALLOWED_KNOBS = frozenset(
    {
        "limiter",
        "input_rate_factor",
        "queue_factor",
        "background_share",
        "duration",
        "rtt_1",
        "rtt_2",
        "congestion_factor",
        "seed",
    }
)

#: Hard ceiling on a submission's replay duration (seconds of simulated
#: time).  Deadlines bound *wall* time; this bounds per-cell *work*.
MAX_DURATION_S = 120.0


class MalformedSubmission(ValueError):
    """The submission cannot be parsed/validated; carries the reason."""

    def __init__(self, reason):
        self.reason = reason
        super().__init__(reason)


@dataclass(frozen=True)
class Submission:
    """One validated WeHe-style test submission."""

    tenant: str
    client: str
    app: str = "netflix"
    carrier: str = ""
    deadline_s: float = 120.0
    id: str = None
    knobs: dict = field(default_factory=dict)

    def to_scenario(self):
        """The ground-truth :class:`ScenarioConfig` this submission asks for."""
        return ScenarioConfig(app=self.app, **self.knobs)

    @property
    def duration(self):
        """Simulated replay seconds -- the DRR cost unit."""
        return float(self.knobs.get("duration", ScenarioConfig.duration))

    def as_dict(self):
        return {
            "tenant": self.tenant,
            "client": self.client,
            "app": self.app,
            "carrier": self.carrier,
            "deadline_s": self.deadline_s,
            "id": self.id,
            "knobs": dict(self.knobs),
        }


def parse_submission(raw):
    """Validate a raw dict into a :class:`Submission`.

    Raises :class:`MalformedSubmission` with a structured reason on any
    violation -- the caller turns that into a ``FAILED`` response, so a
    malformed submission still terminates in exactly one status.
    """
    if not isinstance(raw, dict):
        raise MalformedSubmission("submission must be a JSON object")
    unknown = set(raw) - {
        "tenant", "client", "app", "carrier", "deadline_s", "id", "knobs"
    }
    if unknown:
        raise MalformedSubmission(f"unknown fields: {sorted(unknown)}")
    tenant = raw.get("tenant", "default")
    client = raw.get("client")
    if not isinstance(tenant, str) or not tenant:
        raise MalformedSubmission("tenant must be a non-empty string")
    if not isinstance(client, str) or not client:
        raise MalformedSubmission("client must be a non-empty string")
    app = raw.get("app", "netflix")
    if app not in APP_SPECS:
        raise MalformedSubmission(f"unknown app {app!r}")
    carrier = raw.get("carrier", "")
    if not isinstance(carrier, str):
        raise MalformedSubmission("carrier must be a string")
    deadline_s = raw.get("deadline_s", 120.0)
    if not isinstance(deadline_s, (int, float)) or isinstance(deadline_s, bool):
        raise MalformedSubmission("deadline_s must be a number")
    deadline_s = float(deadline_s)
    if not deadline_s > 0:
        raise MalformedSubmission("deadline_s must be positive")
    request_id = raw.get("id")
    if request_id is not None and not isinstance(request_id, str):
        raise MalformedSubmission("id must be a string")
    knobs = raw.get("knobs", {})
    if not isinstance(knobs, dict):
        raise MalformedSubmission("knobs must be an object")
    bad = set(knobs) - ALLOWED_KNOBS
    if bad:
        raise MalformedSubmission(f"unknown knobs: {sorted(bad)}")
    knobs = dict(knobs)
    if "seed" in knobs:
        if not isinstance(knobs["seed"], int) or isinstance(knobs["seed"], bool):
            raise MalformedSubmission("seed must be an integer")
    submission = Submission(
        tenant=tenant,
        client=client,
        app=app,
        carrier=carrier,
        deadline_s=deadline_s,
        id=request_id,
        knobs=knobs,
    )
    try:
        scenario = submission.to_scenario()
    except (ValueError, TypeError) as exc:
        raise MalformedSubmission(f"invalid scenario knobs: {exc}") from None
    if scenario.duration > MAX_DURATION_S:
        raise MalformedSubmission(
            f"duration {scenario.duration:g}s exceeds the {MAX_DURATION_S:g}s cap"
        )
    return submission


@dataclass(frozen=True)
class Response:
    """One terminal response for one submission."""

    id: str
    status: str
    tenant: str = ""
    reason: str = ""
    state: str = ""  # service state at decision time
    verdict: dict = None  # present iff status == VERDICT
    cached: bool = False
    queued_s: float = 0.0
    service_s: float = 0.0

    def as_dict(self):
        data = {
            "id": self.id,
            "status": self.status,
            "tenant": self.tenant,
            "reason": self.reason,
            "state": self.state,
            "cached": self.cached,
            "queued_s": round(self.queued_s, 6),
            "service_s": round(self.service_s, 6),
        }
        if self.verdict is not None:
            data["verdict"] = self.verdict
        return data

    def line(self):
        """The one-line JSON wire form."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))


def encode_line(obj):
    """One JSONL frame as bytes (used by both client and server)."""
    return (json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n").encode()


def decode_line(line):
    """Parse one JSONL frame; raises :class:`MalformedSubmission` on garbage."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError:
            raise MalformedSubmission("frame is not valid UTF-8") from None
    try:
        obj = json.loads(line)
    except ValueError:
        raise MalformedSubmission("frame is not valid JSON") from None
    if not isinstance(obj, dict):
        raise MalformedSubmission("frame must be a JSON object")
    return obj
