"""The asyncio shell around :class:`~repro.service.core.ServiceCore`.

This module owns everything the sans-IO core deliberately does not:
sockets, the wall clock, worker threads, and signals.  The division of
labour is strict -- every decision (admit/reject/dispatch/expire) is
made by the core; the shell only moves bytes and time:

- one reader task per client connection parses newline-delimited JSON
  submissions and feeds them to ``core.submit`` (malformed frames
  become ``FAILED`` responses via ``core.malformed`` -- a garbage line
  never kills the connection, let alone the service);
- a dispatcher task asks ``core.next_batch`` and runs each batch's
  engine call in a worker thread (``run_in_executor``), so the event
  loop keeps accepting clients while cells simulate;
- a ticker task drives ``core.tick`` so deadlines expire and the
  governor recovers even when no traffic arrives;
- ``SIGTERM``/``SIGINT`` trigger the graceful drain: admission closes,
  in-flight batches finish (their cells checkpoint through the store as
  usual), the pending queue is persisted to the store ledger as a
  ``service_pending`` event, and the server exits.  A restarted service
  finds unconsumed ``service_pending`` events and resumes them with
  their *remaining* deadline budgets.

Responses are routed back by request id; responses whose client has
disconnected (or that belong to a previous process's resumed queue)
land in :attr:`ServiceServer.unrouted` instead of being lost.
"""

import asyncio
import logging
import signal
import time
import uuid

from repro.obs import metrics as _obs
from repro.service.protocol import (
    MalformedSubmission,
    decode_line,
    encode_line,
    parse_submission,
)

logger = logging.getLogger(__name__)


class ServiceServer:
    """TCP front-end for one :class:`ServiceCore` + engine pair.

    Parameters:
        core: the sans-IO control plane.
        engine: a batch executor (``run(batch) -> outcomes``); run in a
            worker thread per batch.
        store: optional :class:`ExperimentStore` -- enables drain
            persistence and resume (the core uses it for verdict
            caching independently).
        host / port: bind address; port 0 picks a free port
            (``self.port`` holds the real one after :meth:`start`).
        tick_interval_s: cadence of the background ``core.tick``.
    """

    def __init__(
        self,
        core,
        engine,
        store=None,
        host="127.0.0.1",
        port=0,
        tick_interval_s=0.05,
    ):
        self.core = core
        self.engine = engine
        self.store = store
        self.host = host
        self.port = port
        self.tick_interval_s = tick_interval_s
        self.unrouted = []  # terminal responses with no live client
        self.resumed = 0  # requests recovered from a previous drain
        self._routes = {}  # request id -> StreamWriter
        self._loop = None
        self._server = None
        self._tasks = []
        self._batch_tasks = set()
        self._wake = None
        self._drain_requested = None
        self._done = None

    # -- lifecycle ------------------------------------------------------

    def _now(self):
        return self._loop.time()

    async def start(self):
        """Bind, resume any persisted queue, and start the service tasks."""
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._drain_requested = asyncio.Event()
        self._done = asyncio.Event()
        self.resumed = self._resume_from_store()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._install_signals()
        self._tasks = [
            self._loop.create_task(self._dispatch_loop()),
            self._loop.create_task(self._tick_loop()),
        ]
        logger.info("service listening on %s:%d", self.host, self.port)

    def _install_signals(self):
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self.request_drain)
            except (NotImplementedError, ValueError, RuntimeError):
                # Non-main thread or platform without signal support:
                # drains still work via request_drain() directly.
                return

    def request_drain(self):
        """Begin the graceful drain (signal handler / test hook)."""
        if not self._drain_requested.is_set():
            logger.info("service drain requested")
            self.core.begin_drain(self._now())
            self._drain_requested.set()
            self._wake.set()

    async def serve_until_drained(self):
        """Block until a requested drain has fully completed."""
        await self._done.wait()

    # -- resume / persist ----------------------------------------------

    def _resume_from_store(self):
        if self.store is None:
            return 0
        consumed = {
            event.get("drain_id")
            for event in self.store.ledger_events("service_resume")
        }
        resumed = 0
        for event in self.store.ledger_events("service_pending"):
            drain_id = event.get("drain_id")
            if drain_id in consumed:
                continue
            resumed += self.core.resume(event.get("pending", []), self._now())
            self.store.append_ledger_event({
                "event": "service_resume",
                "run_id": drain_id,
                "drain_id": drain_id,
                "time": time.time(),
            })
        if resumed:
            logger.info("service resumed %d persisted submissions", resumed)
            # Their terminal responses have no client to go to yet.
            self._collect_unrouted()
        return resumed

    def _persist_pending(self):
        payloads = self.core.pending_payloads(self._now())
        if not payloads or self.store is None:
            if payloads:
                logger.warning(
                    "service dropping %d queued submissions (no store)",
                    len(payloads),
                )
            return len(payloads)
        drain_id = uuid.uuid4().hex[:12]
        self.store.append_ledger_event({
            "event": "service_pending",
            "run_id": drain_id,
            "drain_id": drain_id,
            "pending": payloads,
            "time": time.time(),
        })
        logger.info(
            "service persisted %d queued submissions (drain %s)",
            len(payloads), drain_id,
        )
        return len(payloads)

    # -- IO -------------------------------------------------------------

    def _collect_unrouted(self):
        for response in self.core.take_responses():
            writer = self._routes.pop(response.id, None)
            if writer is None or writer.is_closing():
                self.unrouted.append(response)
                if _obs.ENABLED:
                    _obs.SINK.inc("service.responses_unrouted")
                continue
            try:
                writer.write(encode_line(response.as_dict()))
            except (ConnectionError, OSError):
                self.unrouted.append(response)

    async def _handle_client(self, reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                now = self._now()
                raw = None
                try:
                    raw = decode_line(line)
                    submission = parse_submission(raw)
                except MalformedSubmission as exc:
                    raw_id = raw.get("id") if isinstance(raw, dict) else None
                    raw_id = raw_id if isinstance(raw_id, str) else None
                    tenant = raw.get("tenant") if isinstance(raw, dict) else ""
                    tenant = tenant if isinstance(tenant, str) else ""
                    request_id = self.core.malformed(
                        raw_id, exc.reason, tenant=tenant
                    )
                else:
                    request_id = self.core.submit(submission, now)
                    self._wake.set()
                self._routes[request_id] = writer
                self._collect_unrouted()
                await self._drain_writer(writer)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass  # mid-stream disconnect: responses divert to unrouted
        finally:
            stale = [rid for rid, w in self._routes.items() if w is writer]
            for rid in stale:
                del self._routes[rid]
            try:
                writer.close()
            except OSError:
                pass

    @staticmethod
    async def _drain_writer(writer):
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # slow/dead client: its future responses go unrouted

    # -- background tasks ----------------------------------------------

    async def _dispatch_loop(self):
        while not self._drain_requested.is_set():
            batch = self.core.next_batch(self._now())
            self._collect_unrouted()
            if batch is None:
                try:
                    await asyncio.wait_for(
                        self._wake.wait(), timeout=self.tick_interval_s
                    )
                except asyncio.TimeoutError:
                    pass
                self._wake.clear()
                continue
            task = self._loop.create_task(self._run_batch(batch))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)
        await self._finish_drain()

    async def _run_batch(self, batch):
        try:
            outcomes = await self._loop.run_in_executor(
                None, self.engine.run, batch
            )
            self.core.batch_done(batch, outcomes, self._now())
        except Exception as exc:  # the engine thread itself blew up
            logger.exception("service batch %d failed in the shell", batch.id)
            self.core.batch_failed(
                batch, f"engine error: {type(exc).__name__}: {exc}", self._now()
            )
        self._collect_unrouted()
        self._wake.set()

    async def _tick_loop(self):
        while not self._done.is_set():
            await asyncio.sleep(self.tick_interval_s)
            if self._loop is None:
                continue
            self.core.tick(self._now())
            self._collect_unrouted()

    async def _finish_drain(self):
        # In-flight batches finish (and checkpoint through the store).
        if self._batch_tasks:
            await asyncio.gather(*list(self._batch_tasks), return_exceptions=True)
        self.core.tick(self._now())
        self._persist_pending()
        self._collect_unrouted()
        self._server.close()
        await self._server.wait_closed()
        for task in self._tasks:
            if task is not asyncio.current_task():
                task.cancel()
        self._done.set()
        logger.info("service drained")


async def serve(
    core,
    engine,
    store=None,
    host="127.0.0.1",
    port=0,
    ready=None,
):
    """Run a service until it drains (the ``repro serve`` entry point).

    ``ready``, if given, is a callable invoked with the bound
    :class:`ServiceServer` once it is listening -- tests and the CLI use
    it to learn the real port.
    """
    server = ServiceServer(core, engine, store=store, host=host, port=port)
    await server.start()
    if ready is not None:
        ready(server)
    await server.serve_until_drained()
    return server
