"""From-scratch statistics used by WeHeY's detection algorithms.

Everything here is implemented directly (and cross-checked against scipy
in the test suite):

- :func:`~repro.stats.empirical.ecdf` and friends -- empirical CDFs,
- :func:`~repro.stats.ks.ks_2samp` -- two-sample Kolmogorov-Smirnov
  (WeHe's differentiation detector),
- :func:`~repro.stats.mwu.mann_whitney_u` -- one-sided Mann-Whitney U
  (the throughput-comparison test of Section 4.1),
- :func:`~repro.stats.spearman.spearman_test` -- Spearman rank
  correlation with p-value (Algorithm 1's trend test),
- :func:`~repro.stats.montecarlo.relative_mean_difference_distribution`
  -- the O_diff Monte-Carlo machinery of Section 4.1,
- :mod:`~repro.stats.bootstrap` -- jackknife / bootstrap error bars,
- :mod:`~repro.stats.fingerprint` -- shaper fingerprinting at a
  localized bottleneck (nearest-centroid over windowed replay
  features).
"""

from repro.stats.empirical import ecdf, ecdf_at, quantile
from repro.stats.fingerprint import (
    FingerprintReport,
    NearestCentroidClassifier,
    fingerprint_bottleneck,
    replay_features,
    train_fingerprinter,
)
from repro.stats.ks import ks_2samp
from repro.stats.mwu import mann_whitney_u
from repro.stats.montecarlo import relative_mean_difference, relative_mean_difference_distribution
from repro.stats.spearman import rankdata, spearman_rho, spearman_test

__all__ = [
    "ecdf",
    "ecdf_at",
    "quantile",
    "ks_2samp",
    "mann_whitney_u",
    "rankdata",
    "spearman_rho",
    "spearman_test",
    "relative_mean_difference",
    "relative_mean_difference_distribution",
    "FingerprintReport",
    "NearestCentroidClassifier",
    "fingerprint_bottleneck",
    "replay_features",
    "train_fingerprinter",
]
