"""Jackknife and bootstrap resampling helpers.

The paper (footnote 5) notes that statistical errors in loss-rate
estimation "are bounded or can even be mitigated using jackknife or
bootstrap methods"; these utilities provide that machinery for the
experiment harness and for users extending the analysis.
"""

import numpy as np


def jackknife(samples, statistic):
    """Leave-one-out jackknife estimate and standard error.

    Returns ``(estimate, standard_error)`` where ``estimate`` is the
    bias-corrected jackknife estimate of ``statistic(samples)``.
    """
    samples = np.asarray(samples, dtype=float)
    n = len(samples)
    if n < 2:
        raise ValueError("jackknife needs at least two samples")
    full = statistic(samples)
    leave_one_out = np.array(
        [statistic(np.delete(samples, i)) for i in range(n)]
    )
    mean_loo = leave_one_out.mean()
    estimate = n * full - (n - 1) * mean_loo
    variance = (n - 1) / n * np.sum((leave_one_out - mean_loo) ** 2)
    return float(estimate), float(np.sqrt(variance))


def bootstrap_ci(samples, statistic, n_resamples, rng, confidence=0.95):
    """Percentile bootstrap confidence interval.

    Returns ``(low, high)`` for ``statistic`` at the given confidence
    level, using ``n_resamples`` resamples with replacement.
    """
    samples = np.asarray(samples, dtype=float)
    if len(samples) < 2:
        raise ValueError("bootstrap needs at least two samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    stats = np.empty(n_resamples)
    n = len(samples)
    for i in range(n_resamples):
        resample = samples[rng.integers(0, n, size=n)]
        stats[i] = statistic(resample)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(stats, [alpha, 1.0 - alpha])
    return float(low), float(high)
