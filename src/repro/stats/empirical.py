"""Empirical distributions: ECDFs and quantiles."""

import numpy as np


def ecdf(samples):
    """Empirical CDF of ``samples``.

    Returns ``(xs, ps)`` where ``xs`` are the sorted unique sample
    values and ``ps[i]`` is the fraction of samples ``<= xs[i]``.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise ValueError("ecdf of an empty sample")
    xs, counts = np.unique(samples, return_counts=True)
    ps = np.cumsum(counts) / samples.size
    return xs, ps


def ecdf_at(samples, x):
    """Evaluate the ECDF of ``samples`` at point(s) ``x``."""
    samples = np.sort(np.asarray(samples, dtype=float))
    if samples.size == 0:
        raise ValueError("ecdf of an empty sample")
    return np.searchsorted(samples, x, side="right") / samples.size


def quantile(samples, q):
    """Empirical quantile(s) (linear interpolation, like numpy default)."""
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise ValueError("quantile of an empty sample")
    return np.quantile(samples, q)


def summarize(samples):
    """Five-number + mean summary (used by the Figure-5 boxplots)."""
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise ValueError("summary of an empty sample")
    q1, median, q3 = np.quantile(samples, [0.25, 0.5, 0.75])
    return {
        "min": float(samples.min()),
        "q1": float(q1),
        "median": float(median),
        "q3": float(q3),
        "max": float(samples.max()),
        "mean": float(samples.mean()),
        "n": int(samples.size),
    }
