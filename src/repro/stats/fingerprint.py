"""Shaper fingerprinting at the localized bottleneck.

Once WeHeY has *localized* differentiation to the common link, the
natural follow-up question is *what mechanism* the ISP deployed there:
a plain token-bucket policer, an AQM (RED / CoDel / PIE), an ECN
marker, a two-rate policer with a boost allowance, or delayed
("conditional") throttling.  Different mechanisms leave different
micro-signatures in measurements WeHe already collects -- loss-event
timing, throughput plateau structure, and (with ECN) congestion marks
-- so classification needs no new probe traffic.

The pipeline:

1. :func:`replay_features` reduces one simultaneous replay (the pair of
   :class:`~repro.wehe.replay.ReplayHandle` objects the runner keeps on
   ``NetsimReplayService.last_simultaneous_handles``) to a fixed vector
   of :data:`FEATURE_NAMES` -- windowed loss/throughput/mark statistics.
2. :class:`NearestCentroidClassifier` is a dependency-free classifier
   over z-normalized feature vectors (no sklearn: fit stores per-class
   centroids, predict returns the nearest by Euclidean distance).
3. :func:`train_fingerprinter` builds a labelled training set by
   running seeded probe replays across a shaper x app x seed grid.
4. :func:`fingerprint_bottleneck` composes with the localizer: it
   classifies only when the report actually localized differentiation
   (anything else returns a no-verdict report with a reason code).

Why these features discriminate:

- token buckets tail-drop in bursts when the bucket runs dry
  (high ``loss_burst_frac``, bursty inter-loss times);
- RED and PIE randomize drops, giving near-Poisson loss interarrivals
  (``loss_iat_cv`` near 1, low burst fraction);
- CoDel head-drops on a deterministic ``interval/sqrt(count)``
  schedule (low interarrival CV);
- the ECN variant marks instead of dropping (``mark_fraction`` is
  essentially a one-feature fingerprint);
- the dual token bucket serves its boost allowance first, so early
  throughput exceeds the steady plateau (``plateau_ratio`` > 1);
- conditional throttling passes traffic untouched until the trigger,
  so the first loss arrives late (``loss_onset``) and losses
  concentrate in the tail of the replay (``late_loss_frac``).
"""

from dataclasses import dataclass, field

import numpy as np

#: The fixed feature vector order (one entry per column).
FEATURE_NAMES = (
    "loss_rate",        # losses / packets sent (mean of the two paths)
    "mark_fraction",    # ECN-marked fraction of client arrivals
    "loss_iat_cv",      # coefficient of variation of inter-loss times
    "loss_burst_frac",  # fraction of inter-loss gaps under 5 ms
    "loss_onset",       # (first loss - replay start) / duration
    "late_loss_frac",   # fraction of losses in the second half
    "plateau_ratio",    # early-window throughput / steady throughput
    "throughput_cv",    # windowed throughput coefficient of variation
    "throughput_slope", # normalized linear trend of windowed throughput
    "loss_window_cv",   # drop clustering across fixed windows
    "queuing_delay",    # mean RTT inflation (TCP; the AQM tell)
    "loss_run_mean",    # mean length of consecutive-packet loss runs
    "loss_gap_cv",      # regularity of gaps between loss runs (CoDel tell)
    "delay_cv",         # queuing-delay oscillation (TCP RTT series)
    "delay_p90",        # 90th-percentile queuing delay (TCP RTT series)
    "loss_xcorr",       # cross-path correlation of windowed loss counts
    "loss_cooccur",     # fraction of path-1 losses echoed on path 2
)

#: Inter-loss gaps below this are one burst (a queue overflowing
#: back-to-back), not independent drop decisions.
BURST_GAP_S = 0.005

#: Windows used for the throughput / loss-clustering series.
N_WINDOWS = 40


def _series_cv(values):
    values = np.asarray(values, dtype=float)
    if len(values) < 2:
        return 0.0
    mean = values.mean()
    if mean <= 0:
        return 0.0
    return float(values.std() / mean)


def _run_structure(loss_times, send_times):
    """Loss *run* statistics: ``(mean run length, run-gap CV)``.

    A "run" is a maximal sequence of losses separated by at most ~2.5
    packet interarrival times -- i.e. (nearly) consecutive packets of
    the flow.  Tail-dropping token buckets lose whole runs when the
    bucket runs dry; RED/PIE drop isolated packets (runs of ~1); CoDel
    drops single heads on a near-deterministic schedule, so the gaps
    *between* runs have a distinctly low coefficient of variation.
    """
    send_iats = np.diff(np.asarray(send_times, dtype=float))
    positive = send_iats[send_iats > 0]
    if len(positive) == 0:
        return 1.0, 1.0
    spacing = float(np.median(positive))
    threshold = max(2.5 * spacing, 0.002)
    gaps = np.diff(loss_times)
    boundaries = np.flatnonzero(gaps > threshold)
    run_lengths = np.diff(np.concatenate(([-1], boundaries, [len(loss_times) - 1])))
    run_starts = loss_times[np.concatenate(([0], boundaries + 1))]
    run_mean = float(run_lengths.mean())
    if len(run_starts) >= 3:
        gap_cv = _series_cv(np.diff(run_starts))
    else:
        gap_cv = 1.0
    return run_mean, gap_cv


def _path_features(handle, estimator, t_start, duration):
    """The per-path half of :func:`replay_features`."""
    measurements = handle.path_measurements(estimator)
    capture = handle.capture
    t_end = t_start + duration

    loss_times = np.asarray(measurements.loss_times, dtype=float)
    loss_rate = measurements.loss_rate

    if len(loss_times) >= 3:
        gaps = np.diff(loss_times)
        positive = gaps[gaps > 0]
        loss_iat_cv = _series_cv(positive) if len(positive) >= 2 else 0.0
        loss_burst_frac = float(np.mean(gaps < BURST_GAP_S))
        loss_run_mean, loss_gap_cv = _run_structure(
            loss_times, measurements.send_times
        )
    else:
        # Too few losses to characterize timing; neutral values.
        loss_iat_cv = 1.0
        loss_burst_frac = 0.0
        loss_run_mean = 1.0
        loss_gap_cv = 1.0

    if len(loss_times):
        loss_onset = float(
            np.clip((loss_times[0] - t_start) / duration, 0.0, 1.0)
        )
        late_loss_frac = float(
            np.mean(loss_times > t_start + duration / 2.0)
        )
        edges = np.linspace(t_start, t_end, N_WINDOWS // 2 + 1)
        counts, _ = np.histogram(loss_times, bins=edges)
        loss_window_cv = _series_cv(counts)
    else:
        loss_onset = 1.0
        late_loss_frac = 0.5
        loss_window_cv = 0.0

    # Queuing-delay dynamics from the sender's RTT sample series (TCP):
    # deep token-bucket FIFOs saturate high and flat, RED oscillates
    # between its thresholds, CoDel/PIE regulate tightly to their
    # targets -- the *distribution* of RTT inflation tells them apart.
    delay_cv = 0.0
    delay_p90 = 0.0
    rtt_samples = getattr(handle.sender, "rtt_samples", None)
    min_rtt = getattr(handle.sender, "min_rtt", None)
    if rtt_samples and min_rtt:
        inflation = np.asarray([r for _, r in rtt_samples]) - min_rtt
        if len(inflation) >= 8:
            delay_cv = _series_cv(inflation)
            delay_p90 = float(np.percentile(inflation, 90))

    samples = capture.throughput_samples(n_intervals=N_WINDOWS)
    if len(samples) >= 8 and samples.mean() > 0:
        head = samples[: max(N_WINDOWS // 4, 1)]
        tail = samples[N_WINDOWS // 2:]
        tail_mean = tail.mean()
        plateau_ratio = float(head.mean() / tail_mean) if tail_mean > 0 else 1.0
        # Steady-state oscillation only: the startup knee lives in
        # plateau_ratio, while token *banking* (a big CIR bucket
        # refilling during background lulls) shows up here.
        throughput_cv = _series_cv(tail) if tail_mean > 0 else 0.0
        x = np.linspace(0.0, 1.0, len(samples))
        slope = np.polyfit(x, samples / samples.mean(), 1)[0]
        throughput_slope = float(slope)
    else:
        plateau_ratio = 1.0
        throughput_cv = 0.0
        throughput_slope = 0.0

    return np.array([
        loss_rate,
        capture.mark_fraction(),
        loss_iat_cv,
        loss_burst_frac,
        loss_onset,
        late_loss_frac,
        plateau_ratio,
        throughput_cv,
        throughput_slope,
        loss_window_cv,
        handle.queuing_delay(),
        loss_run_mean,
        loss_gap_cv,
        delay_cv,
        delay_p90,
    ])


def _joint_features(handles, estimator, t_start, duration):
    """Cross-path features: ``(loss_xcorr, loss_cooccur)``.

    The two simultaneous replays traverse the *same* shaper, so its
    mechanism shows in how their loss processes co-move: a dry token
    bucket or a CoDel dropping episode hits both flows at once (high
    windowed correlation, frequent sub-burst-gap co-occurrence), while
    RED/PIE coin flips drop each flow independently.
    """
    losses = [
        np.asarray(h.path_measurements(estimator).loss_times, dtype=float)
        for h in handles
    ]
    if min(len(times) for times in losses) < 3:
        return 0.0, 0.0
    edges = np.linspace(t_start, t_start + duration, int(duration / 0.1) + 1)
    counts = [np.histogram(times, bins=edges)[0] for times in losses]
    if counts[0].std() == 0 or counts[1].std() == 0:
        xcorr = 0.0
    else:
        xcorr = float(np.corrcoef(counts[0], counts[1])[0, 1])
    gaps = np.min(
        np.abs(losses[0][:, None] - losses[1][None, :]), axis=1
    )
    cooccur = float(np.mean(gaps < BURST_GAP_S))
    return xcorr, cooccur


def replay_features(handles, duration, estimator=None, t_start=None):
    """One simultaneous replay -> the :data:`FEATURE_NAMES` vector.

    ``handles`` is the pair of replay handles from a simultaneous
    replay; both paths traverse the same common-link shaper, so their
    per-path features are averaged and two cross-path features are
    appended.  ``t_start`` defaults to the first handle's replay start.
    """
    if len(handles) != 2:
        raise ValueError("replay_features expects the two simultaneous handles")
    if estimator is None:
        from repro.wehe.loss_measurement import RetransmissionLossEstimator

        estimator = RetransmissionLossEstimator()
    if t_start is None:
        t_start = min(handle.start_at for handle in handles)
    per_path = [
        _path_features(handle, estimator, t_start, duration)
        for handle in handles
    ]
    joint = _joint_features(handles, estimator, t_start, duration)
    return np.concatenate([np.mean(per_path, axis=0), joint])


class _CentroidGroup:
    """One z-normalization + centroid set (one protocol partition).

    ``weights`` are per-feature Fisher scores (between-class spread
    over pooled within-class spread): distances are computed in the
    weighted z-space, so features that separate the classes count for
    more and features that are mostly per-seed noise count for less.
    """

    __slots__ = ("classes", "mean", "scale", "weights", "centroids")

    def __init__(self, classes, mean, scale, weights, centroids):
        self.classes = classes
        self.mean = mean
        self.scale = scale
        self.weights = weights
        self.centroids = centroids


class NearestCentroidClassifier:
    """Nearest-centroid over z-normalized features (dependency-free).

    ``fit`` z-scores each feature column over the training set (zero-
    variance columns are left unscaled) and stores one centroid per
    label; ``predict`` returns the label of the closest centroid in
    Euclidean distance.

    The optional ``groups`` axis partitions the model: samples are
    normalized and matched only against centroids of their own group.
    The fingerprinter groups by transport protocol -- a prober always
    knows whether it replayed TCP or UDP, and the two leave
    structurally different measurements (UDP loss timing is exact
    client-side gap timing; TCP has queuing-delay visibility), so
    cross-protocol variance would otherwise drown the shaper signal.
    """

    def __init__(self):
        self._groups = {}

    @property
    def fitted(self):
        return bool(self._groups)

    @property
    def classes_(self):
        """Sorted union of labels across all groups."""
        classes = set()
        for group in self._groups.values():
            classes.update(group.classes)
        return tuple(sorted(classes))

    @property
    def group_names(self):
        return tuple(sorted(self._groups))

    def fit(self, features, labels, groups=None):
        features = np.asarray(features, dtype=float)
        if features.ndim != 2 or len(features) != len(labels):
            raise ValueError("features must be (n_samples, n_features) "
                             "matching labels")
        if len(features) == 0:
            raise ValueError("cannot fit on an empty training set")
        labels = list(labels)
        if groups is None:
            groups = [None] * len(labels)
        groups = list(groups)
        if len(groups) != len(labels):
            raise ValueError("groups must match labels")
        self._groups = {}
        for name in sorted(set(groups), key=lambda g: (g is not None, g)):
            rows = [i for i, g in enumerate(groups) if g == name]
            sub = features[rows]
            mean = sub.mean(axis=0)
            scale = sub.std(axis=0)
            scale[scale == 0] = 1.0
            z = (sub - mean) / scale
            sub_labels = [labels[i] for i in rows]
            classes = tuple(sorted(set(sub_labels)))
            class_rows = [
                [j for j, lab in enumerate(sub_labels) if lab == cls]
                for cls in classes
            ]
            centroids = np.stack([z[idx].mean(axis=0) for idx in class_rows])
            # Fisher score per feature: spread of the class means over
            # the pooled within-class spread.  One class (or one sample
            # per class) degenerates to uniform weights.
            within = np.stack([z[idx].std(axis=0) for idx in class_rows])
            between = centroids.std(axis=0)
            pooled = within.mean(axis=0)
            fisher = between / np.maximum(pooled, 1e-6)
            if len(classes) < 2 or not np.any(fisher > 0):
                weights = np.ones(features.shape[1])
            else:
                weights = np.minimum(fisher / fisher.mean(), 10.0)
            self._groups[name] = _CentroidGroup(
                classes, mean, scale, weights, centroids
            )
        return self

    def _group(self, group):
        if not self.fitted:
            raise ValueError("classifier is not fitted")
        if group in self._groups:
            return self._groups[group]
        if None in self._groups:  # ungrouped model answers any group
            return self._groups[None]
        known = ", ".join(str(g) for g in sorted(self._groups))
        raise ValueError(f"unknown group {group!r} (trained on: {known})")

    def distances(self, feature_vector, group=None):
        """Per-class distance in the weighted z-space, as ``{label: d}``."""
        sub = self._group(group)
        z = (np.asarray(feature_vector, dtype=float) - sub.mean) / sub.scale
        dists = np.linalg.norm((sub.centroids - z) * sub.weights, axis=1)
        return dict(zip(sub.classes, (float(d) for d in dists)))

    def predict(self, feature_vector, group=None):
        dists = self.distances(feature_vector, group=group)
        return min(dists, key=dists.get)

    def predict_many(self, features, groups=None):
        features = np.asarray(features, dtype=float)
        if groups is None:
            groups = [None] * len(features)
        return [
            self.predict(row, group=group)
            for row, group in zip(features, groups)
        ]

    def centroids(self, group=None):
        """Per-class centroids in z-space, as ``{label: vector}``."""
        sub = self._group(group)
        return {
            cls: sub.centroids[i].copy() for i, cls in enumerate(sub.classes)
        }

    def to_dict(self):
        """Plain-JSON form (the bench artifact embeds fitted models)."""
        if not self.fitted:
            raise ValueError("classifier is not fitted")
        return {
            "feature_names": list(FEATURE_NAMES),
            "groups": {
                ("" if name is None else name): {
                    "classes": list(sub.classes),
                    "mean": [float(v) for v in sub.mean],
                    "scale": [float(v) for v in sub.scale],
                    "weights": [float(v) for v in sub.weights],
                    "centroids": [
                        [float(v) for v in row] for row in sub.centroids
                    ],
                }
                for name, sub in self._groups.items()
            },
        }

    @classmethod
    def from_dict(cls, data):
        self = cls()
        for name, sub in data["groups"].items():
            self._groups[name or None] = _CentroidGroup(
                tuple(sub["classes"]),
                np.asarray(sub["mean"], dtype=float),
                np.asarray(sub["scale"], dtype=float),
                np.asarray(sub["weights"], dtype=float),
                np.asarray(sub["centroids"], dtype=float),
            )
        return self


#: The default training grid's mechanism axis.  PIE is deliberately
#: *included*: its delay-driven drops are the closest confuser to RED's
#: queue-driven ones, which is exactly what the bench accuracy gate
#: should be exercising.
DEFAULT_SHAPERS = ("tbf", "red", "codel", "pie", "ecn", "dual_tbf", "conditional")


def probe_config(shaper, app="netflix", seed=0, duration=10.0, **overrides):
    """A :class:`ScenarioConfig` for one labelled probe replay.

    Probe cells default to ``background_share=0.25``: the replay flows
    then carry most of the shaper's load, so the loss process they
    observe is densely sampled by their own packets -- at the paper's
    default 0.5 share the background aggregate dominates the queue and
    the mechanism's per-drop signature washes out of the thin sample
    the probe sees.
    """
    from repro.experiments.scenarios import ScenarioConfig

    params = overrides.pop("shaper_params", ())
    overrides.setdefault("background_share", 0.25)
    return ScenarioConfig(
        app=app,
        limiter="common",
        duration=duration,
        seed=seed,
        shaper=shaper,
        shaper_params=tuple(params),
        **overrides,
    )


def probe_features(config, entropy=0):
    """Run one probe replay and return its feature vector."""
    from repro.experiments.runner import NetsimReplayService
    from repro.wehe.apps import make_trace

    service = NetsimReplayService(config, entropy=entropy)
    trace = make_trace(config.app, config.duration, service._trace_rng)
    service.simultaneous_replay(trace)
    env = service.last_environment
    return replay_features(
        service.last_simultaneous_handles,
        config.duration,
        estimator=env.loss_estimator(),
    )


def labelled_grid(shapers=DEFAULT_SHAPERS, apps=("netflix", "zoom"),
                  seeds=range(2), duration=10.0, on_cell=None):
    """Feature vectors + labels over the shaper x app x seed grid.

    ``on_cell(label, app, seed, features)`` streams progress (the bench
    uses it for per-cell logging).  Returns ``(features, labels,
    groups)`` with one row per grid cell, shaper-major; ``groups`` is
    each cell's transport protocol (the classifier's partition axis).
    """
    from repro.wehe.apps import APP_SPECS

    features, labels, groups = [], [], []
    for shaper in shapers:
        for app in apps:
            for seed in seeds:
                config = probe_config(shaper, app=app, seed=seed,
                                      duration=duration)
                vector = probe_features(config)
                features.append(vector)
                labels.append(shaper)
                groups.append(APP_SPECS[app].protocol)
                if on_cell is not None:
                    on_cell(shaper, app, seed, vector)
    return np.asarray(features), labels, groups


def train_fingerprinter(shapers=DEFAULT_SHAPERS, apps=("netflix", "zoom"),
                        seeds=range(2), duration=10.0, on_cell=None):
    """A fitted :class:`NearestCentroidClassifier` over seeded probes."""
    features, labels, groups = labelled_grid(
        shapers=shapers, apps=apps, seeds=seeds, duration=duration,
        on_cell=on_cell,
    )
    return NearestCentroidClassifier().fit(features, labels, groups=groups)


@dataclass(frozen=True)
class FingerprintReport:
    """What :func:`fingerprint_bottleneck` returns.

    ``shaper`` is the classified mechanism (None when classification
    did not run -- ``reason`` says why: ``"not-localized"`` when the
    localizer produced no common-bottleneck evidence, ``"no-replay"``
    when the service holds no simultaneous-replay handles).
    ``distances`` maps every trained label to its z-space distance, so
    callers can judge the margin between the top candidates.
    """

    shaper: str = None
    reason: str = "ok"
    distances: dict = field(default_factory=dict)
    features: dict = field(default_factory=dict)

    @property
    def classified(self):
        return self.shaper is not None

    def margin(self):
        """Distance gap between the best and second-best candidates."""
        if len(self.distances) < 2:
            return 0.0
        best, runner_up = sorted(self.distances.values())[:2]
        return float(runner_up - best)


def fingerprint_bottleneck(report, service, classifier):
    """Classify the shaper behind a *localized* differentiation verdict.

    ``report`` is the :class:`~repro.core.localizer.LocalizationReport`
    from a completed WeHeY test, ``service`` the
    :class:`~repro.experiments.runner.NetsimReplayService` that ran it
    (its last simultaneous replay provides the measurements), and
    ``classifier`` a fitted :class:`NearestCentroidClassifier`.

    Composition rule: fingerprinting only makes claims about a
    bottleneck the localizer actually found.  A non-localized report
    short-circuits to ``reason="not-localized"`` -- classifying noise
    would be worse than useless.
    """
    if not getattr(report, "localized", False):
        return FingerprintReport(shaper=None, reason="not-localized")
    handles = service.last_simultaneous_handles
    if not handles:
        return FingerprintReport(shaper=None, reason="no-replay")
    env = service.last_environment
    estimator = env.loss_estimator() if env is not None else None
    vector = replay_features(
        handles, service.config.duration, estimator=estimator
    )
    from repro.wehe.apps import APP_SPECS

    protocol = APP_SPECS[service.config.app].protocol
    distances = classifier.distances(vector, group=protocol)
    label = min(distances, key=distances.get)
    return FingerprintReport(
        shaper=label,
        reason="ok",
        distances=distances,
        features=dict(zip(FEATURE_NAMES, (float(v) for v in vector))),
    )


__all__ = [
    "FEATURE_NAMES",
    "DEFAULT_SHAPERS",
    "FingerprintReport",
    "NearestCentroidClassifier",
    "fingerprint_bottleneck",
    "labelled_grid",
    "probe_config",
    "probe_features",
    "replay_features",
    "train_fingerprinter",
]
