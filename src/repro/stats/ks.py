"""Two-sample Kolmogorov-Smirnov test.

WeHe's differentiation detector (Section 2.1): build the CDFs of the
per-interval throughputs of the original and bit-inverted replays and
declare differentiation when the two CDFs differ significantly.
"""

import math
from dataclasses import dataclass

import numpy as np

from repro.stats.special import kolmogorov_sf


@dataclass(frozen=True)
class KsResult:
    """Outcome of a two-sample KS test."""

    statistic: float
    pvalue: float

    def significant(self, alpha=0.05):
        return self.pvalue < alpha


def ks_2samp(sample_1, sample_2):
    """Two-sample KS test with the asymptotic p-value.

    Uses the Numerical-Recipes effective-sample-size correction
    ``(en + 0.12 + 0.11 / en) * D`` before evaluating the Kolmogorov
    survival function.
    """
    x = np.sort(np.asarray(sample_1, dtype=float))
    y = np.sort(np.asarray(sample_2, dtype=float))
    n, m = len(x), len(y)
    if n == 0 or m == 0:
        raise ValueError("ks_2samp requires non-empty samples")
    grid = np.concatenate([x, y])
    cdf_x = np.searchsorted(x, grid, side="right") / n
    cdf_y = np.searchsorted(y, grid, side="right") / m
    statistic = float(np.max(np.abs(cdf_x - cdf_y)))
    en = math.sqrt(n * m / (n + m))
    pvalue = kolmogorov_sf((en + 0.12 + 0.11 / en) * statistic)
    return KsResult(statistic=statistic, pvalue=pvalue)
