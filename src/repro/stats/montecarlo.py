"""Monte-Carlo machinery for the throughput-comparison test (Section 4.1).

O_diff is built by repeatedly subsampling half of X (single-replay
throughput samples) and half of Y (summed simultaneous-replay samples)
and recording the relative mean difference; its size is matched to the
size of T_diff so the MWU comparison is balanced.
"""

import numpy as np


def relative_mean_difference(sample_x, sample_y):
    """``(mean(X) - mean(Y)) / max(mean(X), mean(Y))`` -- the o_diff/t_diff statistic."""
    mean_x = float(np.mean(sample_x))
    mean_y = float(np.mean(sample_y))
    denominator = max(mean_x, mean_y)
    if denominator == 0:
        return 0.0
    return (mean_x - mean_y) / denominator


def relative_mean_difference_distribution(sample_x, sample_y, n_iterations, rng):
    """The O_diff empirical distribution (Section 4.1).

    Each iteration draws a random half of ``sample_x`` and of
    ``sample_y`` (without replacement) and computes their relative mean
    difference.  Returns an array of ``n_iterations`` values.
    """
    x = np.asarray(sample_x, dtype=float)
    y = np.asarray(sample_y, dtype=float)
    if len(x) < 2 or len(y) < 2:
        raise ValueError("need at least two samples on each side")
    if n_iterations <= 0:
        raise ValueError("n_iterations must be positive")
    half_x = max(len(x) // 2, 1)
    half_y = max(len(y) // 2, 1)
    values = np.empty(n_iterations)
    for i in range(n_iterations):
        sub_x = rng.choice(x, size=half_x, replace=False)
        sub_y = rng.choice(y, size=half_y, replace=False)
        values[i] = relative_mean_difference(sub_x, sub_y)
    return values
