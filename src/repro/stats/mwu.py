"""Mann-Whitney U (Wilcoxon rank-sum) test.

Section 4.1 compares O_diff against T_diff with a one-sided MWU test:
the alternative hypothesis is that O_diff has significantly *smaller*
rank-sum than T_diff.  The paper prefers MWU over the t-test (no
distributional assumptions) and over KS (more robust to outliers).
"""

from dataclasses import dataclass

import numpy as np

from repro.stats.spearman import rankdata
from repro.stats.special import normal_sf


@dataclass(frozen=True)
class MwuResult:
    """Outcome of a Mann-Whitney U test."""

    u_statistic: float
    pvalue: float
    alternative: str

    def significant(self, alpha=0.05):
        return self.pvalue < alpha


def mann_whitney_u(sample_x, sample_y, alternative="less"):
    """Mann-Whitney U test with normal approximation and tie correction.

    ``alternative="less"`` tests whether ``sample_x`` is stochastically
    smaller than ``sample_y`` (smaller rank-sum); ``"greater"`` and
    ``"two-sided"`` are also supported.
    """
    if alternative not in ("less", "greater", "two-sided"):
        raise ValueError(f"unknown alternative {alternative!r}")
    x = np.asarray(sample_x, dtype=float)
    y = np.asarray(sample_y, dtype=float)
    n1, n2 = len(x), len(y)
    if n1 == 0 or n2 == 0:
        raise ValueError("mann_whitney_u requires non-empty samples")

    combined = np.concatenate([x, y])
    ranks = rankdata(combined)
    rank_sum_x = float(np.sum(ranks[:n1]))
    u_x = rank_sum_x - n1 * (n1 + 1) / 2.0

    n = n1 + n2
    mean_u = n1 * n2 / 2.0
    # Tie correction for the variance.
    _, counts = np.unique(combined, return_counts=True)
    tie_term = float(np.sum(counts**3 - counts))
    var_u = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if var_u <= 0:
        # All values identical: no evidence either way.
        return MwuResult(u_statistic=u_x, pvalue=1.0, alternative=alternative)
    sd_u = np.sqrt(var_u)

    if alternative == "less":
        z = (u_x - mean_u + 0.5) / sd_u
        pvalue = 1.0 - normal_sf(z)
    elif alternative == "greater":
        z = (u_x - mean_u - 0.5) / sd_u
        pvalue = normal_sf(z)
    else:
        z = (u_x - mean_u) / sd_u
        z_abs = abs(z) - 0.5 / sd_u
        pvalue = min(1.0, 2.0 * normal_sf(max(z_abs, 0.0)))
    return MwuResult(u_statistic=u_x, pvalue=float(pvalue), alternative=alternative)
