"""Spearman rank correlation with significance test.

Algorithm 1's core statistic: the Spearman coefficient is normalized
(it captures *trend*, not absolute-value similarity) and is the
correlation metric least sensitive to strong outliers, because an
outlier is clamped to the value of its rank.  The p-value is computed
under the null hypothesis of no correlation via the t-distribution
approximation.
"""

from dataclasses import dataclass

import numpy as np

from repro.stats.special import t_sf


def rankdata(values):
    """Ranks (1-based) with ties assigned their average rank."""
    values = np.asarray(values, dtype=float)
    n = len(values)
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(n, dtype=float)
    sorted_values = values[order]
    i = 0
    while i < n:
        j = i
        while j + 1 < n and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        average_rank = (i + j) / 2.0 + 1.0
        ranks[order[i : j + 1]] = average_rank
        i = j + 1
    return ranks


def spearman_rho(series_1, series_2):
    """Spearman's rank correlation coefficient."""
    x = np.asarray(series_1, dtype=float)
    y = np.asarray(series_2, dtype=float)
    if len(x) != len(y):
        raise ValueError("series must have equal length")
    if len(x) < 2:
        raise ValueError("need at least two points")
    rank_x = rankdata(x)
    rank_y = rankdata(y)
    rank_x -= rank_x.mean()
    rank_y -= rank_y.mean()
    denom = np.sqrt(np.sum(rank_x**2) * np.sum(rank_y**2))
    if denom == 0:
        return 0.0  # a constant series carries no trend information
    return float(np.sum(rank_x * rank_y) / denom)


@dataclass(frozen=True)
class SpearmanResult:
    """Outcome of a Spearman correlation test."""

    rho: float
    pvalue: float
    n: int

    def significant(self, alpha=0.05):
        return self.pvalue < alpha


def spearman_test(series_1, series_2, alternative="greater"):
    """Spearman correlation with a t-approximation p-value.

    ``alternative="greater"`` (the Algorithm-1 usage) tests for
    *positive* correlation; ``"two-sided"`` is also available.  Series
    shorter than 3 points return ``pvalue=1.0`` (inconclusive), which is
    what Algorithm 1 wants for too-coarse interval sizes.
    """
    if alternative not in ("greater", "two-sided"):
        raise ValueError(f"unknown alternative {alternative!r}")
    x = np.asarray(series_1, dtype=float)
    y = np.asarray(series_2, dtype=float)
    if len(x) != len(y):
        raise ValueError("series must have equal length")
    n = len(x)
    if n < 3:
        return SpearmanResult(rho=0.0, pvalue=1.0, n=n)
    rho = spearman_rho(x, y)
    rho_clamped = max(min(rho, 1.0 - 1e-12), -1.0 + 1e-12)
    t_stat = rho_clamped * np.sqrt((n - 2) / (1.0 - rho_clamped**2))
    if alternative == "greater":
        pvalue = t_sf(t_stat, n - 2)
    else:
        pvalue = min(1.0, 2.0 * t_sf(abs(t_stat), n - 2))
    return SpearmanResult(rho=rho, pvalue=float(pvalue), n=n)
