"""Special functions needed by the hypothesis tests.

Implemented from scratch (Numerical-Recipes-style) so the statistics
layer has no hidden dependencies; the test suite cross-checks every
function against scipy.
"""

import math


def normal_sf(z):
    """Survival function of the standard normal, ``P(Z > z)``."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def log_gamma(x):
    """Natural log of the gamma function (Lanczos approximation)."""
    if x <= 0:
        raise ValueError("log_gamma requires x > 0")
    coefficients = (
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    )
    y = x
    tmp = x + 5.5
    tmp -= (x + 0.5) * math.log(tmp)
    series = 1.000000000190015
    for coefficient in coefficients:
        y += 1.0
        series += coefficient / y
    return -tmp + math.log(2.5066282746310005 * series / x)


def _betacf(a, b, x, max_iter=200, eps=3e-12):
    """Continued fraction for the incomplete beta function."""
    tiny = 1e-300
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, max_iter + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < eps:
            return h
    return h


def betainc(a, b, x):
    """Regularized incomplete beta function ``I_x(a, b)``."""
    if not 0.0 <= x <= 1.0:
        raise ValueError("x must be in [0, 1]")
    if x == 0.0 or x == 1.0:
        return float(x)
    ln_front = (
        log_gamma(a + b)
        - log_gamma(a)
        - log_gamma(b)
        + a * math.log(x)
        + b * math.log(1.0 - x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def t_sf(t, df):
    """Survival function of Student's t, ``P(T > t)``."""
    if df <= 0:
        raise ValueError("df must be positive")
    x = df / (df + t * t)
    p = 0.5 * betainc(df / 2.0, 0.5, x)
    if t < 0:
        return 1.0 - p
    return p


def kolmogorov_sf(x):
    """Survival function of the Kolmogorov distribution, ``Q_KS(x)``."""
    if x <= 0:
        return 1.0
    total = 0.0
    for k in range(1, 101):
        term = (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * x * x)
        total += term
        if abs(term) < 1e-12:
            break
    return max(0.0, min(1.0, 2.0 * total))
