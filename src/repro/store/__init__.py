"""Content-addressed experiment store with resumable sweeps.

Every sweep cell in this codebase is a pure function of its
configuration (the determinism contract of :mod:`repro.parallel`), so
its result can be cached under the SHA-256 of everything it depends on
-- config, runner knobs, fault profile, serialization schema, and a
fingerprint of the simulation source code.  The store turns the
fire-and-forget benchmark sweeps into durable, resumable, inspectable
artifacts:

- re-running a completed sweep performs **zero simulations** and
  returns records byte-identical to the cold run;
- a sweep killed mid-run resumes with only the missing cells (each
  completed cell is checkpointed the moment it finishes);
- a JSONL run ledger records every sweep's cells / hits / misses.

Usage::

    from repro.api import SweepRequest, run_sweep
    from repro.store import ExperimentStore

    store = ExperimentStore(".repro-store")
    cold = run_sweep(SweepRequest.detection(configs, jobs=4, store=store))
    warm = run_sweep(SweepRequest.detection(configs, jobs=4, store=store))
    assert warm.hits == warm.cells

Inspect from the shell: ``python -m repro.store ls|show|stats|gc``.
"""

from repro.store.keys import (
    code_fingerprint,
    detection_cache_key,
    fault_profile_id,
    tdiff_cache_key,
    wild_cache_key,
)
from repro.store.serialize import (
    STORE_SCHEMA_VERSION,
    canonical_json,
    config_from_dict,
    config_to_dict,
    record_from_dict,
    record_line,
    record_to_dict,
)
from repro.store.store import ExperimentStore

__all__ = [
    "ExperimentStore",
    "STORE_SCHEMA_VERSION",
    "canonical_json",
    "code_fingerprint",
    "config_from_dict",
    "config_to_dict",
    "detection_cache_key",
    "fault_profile_id",
    "record_from_dict",
    "record_line",
    "record_to_dict",
    "tdiff_cache_key",
    "wild_cache_key",
]
