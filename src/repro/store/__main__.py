"""Store inspection CLI: ``python -m repro.store ls|show|stats|gc``.

The default store root is ``.repro-store`` (override with ``--root`` or
the ``REPRO_STORE`` environment variable) -- the same default the
``repro sweep --store`` flag documents.
"""

import argparse
import json
import os
import sys

from repro.store import ExperimentStore, canonical_json


def _store_from(args):
    return ExperimentStore(args.root)


def _summarize(envelope):
    payload = envelope["payload"]
    kind = payload.get("kind", "?")
    if kind == "detection":
        config = payload.get("config", {})
        detail = (
            f"app={config.get('app')} limiter={config.get('limiter')} "
            f"seed={config.get('seed')} status={payload.get('status')}"
        )
    elif kind == "wild":
        cell = payload.get("cell", {})
        detail = (
            f"isp={cell.get('isp')} app={cell.get('app')} "
            f"seed={cell.get('seed')} outcome={cell.get('outcome')}"
        )
    elif kind == "tdiff":
        detail = f"value={payload.get('value')}"
    else:
        detail = ""
    return kind, detail


def cmd_ls(args):
    store = _store_from(args)
    entries = store.entries()
    shown = 0
    for envelope in entries:
        kind, detail = _summarize(envelope)
        if args.kind and kind != args.kind:
            continue
        print(f"{envelope['key'][:16]}  {kind:<9} {detail}")
        shown += 1
        if args.limit and shown >= args.limit:
            break
    print(f"({shown} of {len(entries)} records; root {store.root})", file=sys.stderr)
    return 0


def cmd_show(args):
    store = _store_from(args)
    matches = [
        envelope
        for envelope in store.entries()
        if envelope["key"].startswith(args.key)
    ]
    if not matches:
        print(f"no record with key prefix {args.key!r}", file=sys.stderr)
        return 1
    if len(matches) > 1:
        print(
            f"key prefix {args.key!r} is ambiguous ({len(matches)} matches)",
            file=sys.stderr,
        )
        return 1
    print(json.dumps(matches[0], indent=2, sort_keys=True))
    return 0


def cmd_stats(args):
    store = _store_from(args)
    stats = store.stats()
    if args.json:
        print(canonical_json(stats))
        return 0
    for field in (
        "root",
        "records",
        "stale",
        "corrupt_lines",
        "shards",
        "bytes",
        "runs",
        "interrupted_runs",
    ):
        print(f"{field:<17}: {stats[field]}")
    for run in store.ledger_runs()[-args.runs:]:
        print(
            f"run {run['run_id']}  {run['kind']:<16} cells={run['cells']} "
            f"hits={run['hits']} misses={run['misses']} [{run['status']}]"
        )
    return 0


def cmd_gc(args):
    store = _store_from(args)
    result = store.gc(dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    print(f"{verb} {result['removed']} stale/corrupt/superseded lines; "
          f"{result['kept']} records kept")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro.store", description="inspect the experiment store"
    )
    parser.add_argument(
        "--root",
        default=os.environ.get("REPRO_STORE", ".repro-store"),
        help="store root directory (default: $REPRO_STORE or .repro-store)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    ls = subparsers.add_parser("ls", help="list cached records")
    ls.add_argument("--kind", choices=["detection", "wild", "tdiff"], default=None)
    ls.add_argument("--limit", type=int, default=0, help="max rows (0 = all)")
    ls.set_defaults(func=cmd_ls)

    show = subparsers.add_parser("show", help="print one record by key prefix")
    show.add_argument("key", help="cache key (any unambiguous prefix)")
    show.set_defaults(func=cmd_show)

    stats = subparsers.add_parser("stats", help="store-wide counts + recent runs")
    stats.add_argument("--json", action="store_true", help="machine-readable output")
    stats.add_argument("--runs", type=int, default=5, help="recent runs to list")
    stats.set_defaults(func=cmd_stats)

    gc = subparsers.add_parser(
        "gc", help="compact shards; drop stale/corrupt/superseded lines"
    )
    gc.add_argument("--dry-run", action="store_true")
    gc.set_defaults(func=cmd_gc)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pipe closed early (e.g. `... show KEY | head`);
        # point stdout at devnull so interpreter shutdown stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
