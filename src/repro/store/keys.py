"""Cache-key derivation: what makes two experiment cells "the same".

A key is the SHA-256 of the canonical JSON of everything the cell's
output depends on:

- the full :class:`ScenarioConfig` (any field change changes the key);
- the runner knobs (``detectors`` by name, ``modified``, ``entropy``,
  ``merge_flows``);
- the fault-profile identity (name + exact rule tuples -- a profile
  changes the record stream, so it must change the key);
- the store schema version (serialization shape);
- the code fingerprint -- a hash over the source of every package that
  feeds the simulation (netsim, wehe, core, experiments, stats,
  faults).  Editing any simulation code invalidates the whole cache,
  which is the conservative-but-always-correct rule.

Keys deliberately do NOT include wall-clock time, host, worker count or
sweep order: a cell's record is a pure function of its key inputs (the
determinism contract from ``repro.parallel``).
"""

import dataclasses
import hashlib
import os
from functools import lru_cache
from pathlib import Path

from repro.faults import FaultProfile
from repro.store.serialize import STORE_SCHEMA_VERSION, canonical_json, config_to_dict

#: Packages whose source determines simulation output.  ``repro.store``
#: itself is excluded on purpose: changing how results are *cached*
#: does not change the results.
FINGERPRINT_PACKAGES = ("core", "experiments", "faults", "netsim", "stats", "wehe")


@lru_cache(maxsize=None)
def code_fingerprint():
    """Hex digest over the simulation-relevant source tree.

    ``REPRO_CODE_FINGERPRINT`` overrides the computed value (useful for
    pinning a cache across a refactor known to be behaviour-preserving,
    and for tests).
    """
    override = os.environ.get("REPRO_CODE_FINGERPRINT")
    if override:
        return override
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for package in FINGERPRINT_PACKAGES:
        for path in sorted((package_root / package).glob("**/*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
    return digest.hexdigest()[:16]


def fault_profile_id(fault_profile):
    """A canonical string identity for a fault profile (or spec, or None).

    Two profiles with the same rules get the same id regardless of how
    they were constructed (spec string vs :class:`FaultProfile`); rule
    *order* within a profile is normalized by site name.
    """
    if fault_profile is None:
        return "none"
    if isinstance(fault_profile, str):
        fault_profile = FaultProfile.parse(fault_profile)
    rules = sorted(
        (dataclasses.asdict(rule) for rule in fault_profile.rules),
        key=lambda rule: rule["site"],
    )
    if not rules:
        return "none"
    return canonical_json(rules)


def _digest(payload):
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def detection_cache_key(
    config,
    detectors=("loss_trend",),
    modified=True,
    entropy=0,
    merge_flows=False,
    fault_profile=None,
    fingerprint=None,
    schema_version=STORE_SCHEMA_VERSION,
):
    """Key for one :func:`run_detection_experiment` cell.

    ``detectors`` is the detector *name* iterable (sorted into the
    key); detector identity is by name only -- a renamed or reconfigured
    detector must get a new name to invalidate its cached verdicts.
    """
    return _digest(
        {
            "kind": "detection",
            "config": config_to_dict(config),
            "detectors": sorted(detectors),
            "modified": bool(modified),
            "entropy": int(entropy),
            "merge_flows": bool(merge_flows),
            "fault_profile": fault_profile_id(fault_profile),
            "fingerprint": fingerprint or code_fingerprint(),
            "schema_version": schema_version,
        }
    )


def wild_cache_key(
    isp,
    app,
    seed,
    sanity_check=False,
    fidelity="packet",
    fingerprint=None,
    schema_version=STORE_SCHEMA_VERSION,
):
    """Key for one Section-5 wild-sweep cell."""
    return _digest(
        {
            "kind": "wild",
            "isp": isp,
            "app": app,
            "seed": int(seed),
            "sanity_check": bool(sanity_check),
            "fidelity": fidelity,
            "fingerprint": fingerprint or code_fingerprint(),
            "schema_version": schema_version,
        }
    )


def tdiff_cache_key(config, fingerprint=None, schema_version=STORE_SCHEMA_VERSION):
    """Key for one T_diff back-to-back replay pair."""
    return _digest(
        {
            "kind": "tdiff",
            "config": config_to_dict(config),
            "fingerprint": fingerprint or code_fingerprint(),
            "schema_version": schema_version,
        }
    )
