"""Canonical serialization shared by the store, the CLI, and perf.

Every place that turns a :class:`DetectionExperimentRecord` into bytes
-- the store's JSONL shards, ``repro sweep --json``, and the perf
harness's serial-vs-parallel byte-equality check -- goes through this
module, so "byte-identical" means the same thing everywhere.

Canonical form: plain-JSON dicts (numpy scalars unwrapped, tuples
listified) dumped with ``sort_keys=True``.  JSON floats round-trip
exactly (``repr`` shortest-float encoding), which is what lets a cached
record compare byte-identical to a freshly computed one.
"""

import dataclasses
import json

from repro.experiments.runner import DetectionExperimentRecord
from repro.experiments.scenarios import ScenarioConfig

#: Bump when the serialized record shape changes; stored entries with a
#: different version are treated as cache misses (see keys/invalidation
#: rules in DESIGN.md).
STORE_SCHEMA_VERSION = 1


def plain(obj):
    """Reduce ``obj`` to pure-JSON types (dict/list/str/int/float/bool).

    Numpy scalars are unwrapped via ``.item()`` so that a computed
    record (which may carry ``np.bool_`` verdicts or ``np.float64``
    rates) serializes identically to the same record loaded back from
    JSON.
    """
    if obj is None or isinstance(obj, str):
        return obj
    if isinstance(obj, bool):
        return obj
    if isinstance(obj, int):
        return int(obj)
    if isinstance(obj, float):
        return float(obj)
    if isinstance(obj, dict):
        return {str(key): plain(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [plain(value) for value in obj]
    if hasattr(obj, "item"):  # numpy scalar (incl. np.bool_, np.float32)
        return plain(obj.item())
    raise TypeError(f"cannot canonicalize {type(obj).__name__!r} for the store")


def canonical_json(obj):
    """The one true JSON encoding: plain types, sorted keys."""
    return json.dumps(plain(obj), sort_keys=True)


def config_to_dict(config):
    """A :class:`ScenarioConfig` as a plain-JSON dict.

    The shaper knobs are omitted at their defaults (``shaper=None``):
    the mechanism axis was added after the store shipped, and omission
    keeps every pre-shaper record -- and, downstream, every cache key
    computed over this dict -- byte-identical for default (TBF)
    scenarios.  The multipath knobs follow the same rule (omitted when
    ``multipath`` is 0/absent): pre-multipath keys and record streams
    stay byte-identical.
    """
    data = plain(dataclasses.asdict(config))
    if data.get("shaper") is None:
        data.pop("shaper", None)
        data.pop("shaper_params", None)
    if not data.get("multipath"):
        data.pop("multipath", None)
        data.pop("flowlet_gap_s", None)
        data.pop("multipath_shaped", None)
    return data


def config_from_dict(data):
    """Rebuild a :class:`ScenarioConfig` (inverse of :func:`config_to_dict`)."""
    kwargs = dict(data)
    modulation = kwargs.get("background_modulation")
    if modulation is not None:
        kwargs["background_modulation"] = tuple(
            tuple(part) if isinstance(part, list) else part for part in modulation
        )
    params = kwargs.get("shaper_params")
    if params is not None:
        kwargs["shaper_params"] = tuple(
            tuple(pair) if isinstance(pair, list) else pair for pair in params
        )
    return ScenarioConfig(**kwargs)


def record_to_dict(record):
    """A :class:`DetectionExperimentRecord` as a plain-JSON dict."""
    data = plain(dataclasses.asdict(record))
    data["config"] = config_to_dict(record.config)
    data["kind"] = "detection"
    return data


def record_from_dict(data):
    """Rebuild a frozen record (inverse of :func:`record_to_dict`)."""
    kwargs = dict(data)
    kwargs.pop("kind", None)
    kwargs["config"] = config_from_dict(kwargs["config"])
    return DetectionExperimentRecord(**kwargs)


def record_line(record):
    """The canonical one-line JSON form of one detection record.

    This is the line format of ``repro sweep --json`` and the byte
    string the perf harness and the equivalence tests compare; a record
    that has been through a store round-trip produces the same line as
    the record computed cold.
    """
    return canonical_json(record_to_dict(record))
