"""The content-addressed experiment store and its run ledger.

On-disk layout (everything under one *store root* directory)::

    <root>/
      shards/shard-<xx>.jsonl   # records, sharded by key prefix (256 ways)
      ledger.jsonl              # one start + one finish event per run

Each shard line is one JSON *envelope*::

    {"key": ..., "schema_version": ..., "fingerprint": ...,
     "run_id": ..., "payload": {...}}

Durability model:

- **Checkpoints are appends.**  Every completed sweep cell is appended
  to its shard with a single ``O_APPEND`` write, so a killed sweep
  loses at most the cell in flight; the next run resumes from whatever
  lines made it to disk.
- **Rewrites are atomic.**  ``gc`` compacts shards by writing a temp
  file and ``os.replace``-ing it over the shard, so a crash mid-gc
  leaves either the old shard or the new one, never a torn file.
- **Readers never trust a line.**  A truncated tail (crash mid-append),
  garbage bytes, or an envelope missing fields is counted, logged at
  debug level, and skipped -- a corrupt shard can cost cache hits but
  can never crash a sweep.

Staleness: an envelope whose ``schema_version`` or ``fingerprint``
differs from the store's current values is invisible to ``get`` (a
cache miss) but kept on disk until ``gc`` removes it -- so flipping
back to an old code version revalidates its old entries for free.
"""

import json
import logging
import os
import time
import uuid
from pathlib import Path

from repro.obs import metrics as _obs
from repro.store.keys import code_fingerprint
from repro.store.serialize import STORE_SCHEMA_VERSION, canonical_json

logger = logging.getLogger(__name__)

_ENVELOPE_FIELDS = ("key", "schema_version", "fingerprint", "payload")


def _atomic_write_text(path, text):
    """Write ``text`` to ``path`` via temp-file + rename (atomic on POSIX)."""
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)


def _append_line(path, line):
    """Append one full line with a single O_APPEND write.

    A crash can leave at most one partial line at the tail, which the
    tolerant reader skips.
    """
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, (line + "\n").encode())
    finally:
        os.close(fd)


def _iter_jsonl(path):
    """Yield parsed dicts from a JSONL file, skipping unparseable lines.

    Returns via generator; increments no global state -- the caller
    counts skips through the (line_ok, obj) pairs.
    """
    try:
        raw = path.read_bytes()
    except OSError:
        return
    for line in raw.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except (ValueError, UnicodeDecodeError):
            yield False, None
            continue
        if not isinstance(obj, dict):
            yield False, None
            continue
        yield True, obj


class ExperimentStore:
    """Content-addressed record cache + run ledger under one root dir.

    Parameters:
        root: store directory (created if missing).
        fingerprint: code fingerprint stamped on writes and required on
            reads; defaults to :func:`repro.store.keys.code_fingerprint`.
        schema_version: serialization schema stamped/required likewise.
    """

    def __init__(self, root, fingerprint=None, schema_version=STORE_SCHEMA_VERSION):
        self.root = Path(root)
        self.shard_dir = self.root / "shards"
        self.shard_dir.mkdir(parents=True, exist_ok=True)
        self.ledger_path = self.root / "ledger.jsonl"
        self.fingerprint = fingerprint or code_fingerprint()
        self.schema_version = schema_version
        self.skipped_lines = 0
        self.ledger_write_errors = 0
        self._index = {}  # key -> envelope (current schema/fingerprint only)
        self._loaded_prefixes = set()

    # -- record cache ---------------------------------------------------

    def _shard_path(self, prefix):
        return self.shard_dir / f"shard-{prefix}.jsonl"

    def _load_prefix(self, prefix):
        if prefix in self._loaded_prefixes:
            return
        self._loaded_prefixes.add(prefix)
        path = self._shard_path(prefix)
        for ok, envelope in _iter_jsonl(path):
            if not ok or any(field not in envelope for field in _ENVELOPE_FIELDS):
                self.skipped_lines += 1
                logger.debug("store: skipping corrupt line in %s", path)
                continue
            if (
                envelope["schema_version"] != self.schema_version
                or envelope["fingerprint"] != self.fingerprint
            ):
                continue  # stale: invisible until gc
            # Append-wins: a later line for the same key supersedes.
            self._index[envelope["key"]] = envelope

    def get(self, key):
        """The payload cached under ``key``, or None (miss/stale/corrupt)."""
        self._load_prefix(key[:2])
        envelope = self._index.get(key)
        if _obs.ENABLED:
            _obs.SINK.inc("store.misses" if envelope is None else "store.hits")
        return None if envelope is None else envelope["payload"]

    def __contains__(self, key):
        return self.get(key) is not None

    def put(self, key, payload, run_id=None):
        """Durably cache ``payload`` (a plain-JSON dict) under ``key``."""
        envelope = {
            "key": key,
            "schema_version": self.schema_version,
            "fingerprint": self.fingerprint,
            "run_id": run_id,
            "payload": payload,
        }
        self._load_prefix(key[:2])
        _append_line(self._shard_path(key[:2]), canonical_json(envelope))
        self._index[key] = envelope
        if _obs.ENABLED:
            _obs.SINK.inc("store.checkpoints")

    def entries(self):
        """Every live envelope (current schema + fingerprint), all shards."""
        for path in sorted(self.shard_dir.glob("shard-*.jsonl")):
            self._load_prefix(path.stem.split("-", 1)[1])
        return list(self._index.values())

    # -- maintenance ----------------------------------------------------

    def stats(self):
        """Store-wide counts: live / stale / corrupt lines, bytes, runs."""
        live = {}
        stale = 0
        corrupt = 0
        total_bytes = 0
        shards = 0
        for path in sorted(self.shard_dir.glob("shard-*.jsonl")):
            shards += 1
            total_bytes += path.stat().st_size
            for ok, envelope in _iter_jsonl(path):
                if not ok or any(f not in envelope for f in _ENVELOPE_FIELDS):
                    corrupt += 1
                    continue
                if (
                    envelope["schema_version"] != self.schema_version
                    or envelope["fingerprint"] != self.fingerprint
                ):
                    stale += 1
                    continue
                live[envelope["key"]] = True
        runs = self.ledger_runs()
        return {
            "root": str(self.root),
            "records": len(live),
            "stale": stale,
            "corrupt_lines": corrupt,
            "shards": shards,
            "bytes": total_bytes,
            "runs": len(runs),
            "interrupted_runs": sum(r["status"] == "interrupted" for r in runs),
        }

    def gc(self, dry_run=False):
        """Compact shards: drop stale/corrupt/superseded lines atomically.

        Returns a dict of counts.  With ``dry_run`` nothing is written.
        """
        kept = 0
        removed = 0
        for path in sorted(self.shard_dir.glob("shard-*.jsonl")):
            live = {}
            lines_seen = 0
            for ok, envelope in _iter_jsonl(path):
                lines_seen += 1
                if (
                    not ok
                    or any(f not in envelope for f in _ENVELOPE_FIELDS)
                    or envelope["schema_version"] != self.schema_version
                    or envelope["fingerprint"] != self.fingerprint
                ):
                    continue
                live[envelope["key"]] = envelope
            kept += len(live)
            removed += lines_seen - len(live)
            if dry_run or lines_seen == len(live):
                continue
            if live:
                text = "".join(
                    canonical_json(envelope) + "\n" for envelope in live.values()
                )
                _atomic_write_text(path, text)
            else:
                path.unlink()
        if not dry_run:
            # Force reload so the in-memory index matches the compacted disk.
            self._index.clear()
            self._loaded_prefixes.clear()
        return {"kept": kept, "removed": removed, "dry_run": dry_run}

    # -- run ledger -----------------------------------------------------

    def _append_ledger_tolerant(self, event):
        """Append one ledger event, surviving a full or failing disk.

        The ledger is *accounting*, not results: losing a finish event
        to ``ENOSPC``/``EIO`` costs a resume some cache bookkeeping, but
        crashing a sweep at its very last step (after every record has
        checkpointed) would cost the whole run.  Failures are logged and
        counted (``ledger_write_errors`` + the ``store.ledger_write_errors``
        obs counter) instead of raised.
        """
        try:
            _append_line(self.ledger_path, canonical_json(event))
            return True
        except OSError as exc:
            self.ledger_write_errors += 1
            logger.error(
                "store: ledger append failed (%s): %s", self.ledger_path, exc
            )
            if _obs.ENABLED:
                _obs.SINK.inc("store.ledger_write_errors")
            return False

    def begin_run(self, kind, cells, hits):
        """Append a start event; returns the ``run_id``.

        A start event with no matching finish event marks an
        interrupted run -- exactly the situation ``--resume`` exists
        for.
        """
        run_id = uuid.uuid4().hex[:12]
        _append_line(
            self.ledger_path,
            canonical_json(
                {
                    "event": "start",
                    "run_id": run_id,
                    "kind": kind,
                    "cells": int(cells),
                    "hits": int(hits),
                    "time": time.time(),
                }
            ),
        )
        return run_id

    def finish_run(
        self, run_id, kind, cells, hits, misses, status="complete", failures=0
    ):
        """Append the matching finish event for ``run_id``.

        ``status`` is ``"complete"`` for a sweep that ran to the end
        (quarantined cells included -- they are accounted separately in
        ``failures``) or ``"interrupted"`` for a graceful drain; a run
        with *no* finish event at all was killed outright.

        Tolerant of disk-full/IO errors: by the time the finish event
        is written every record has already checkpointed, so a failed
        append is logged and counted rather than raised (the run simply
        reads as "interrupted" until the next successful ledger write).
        """
        self._append_ledger_tolerant(
            {
                "event": "finish",
                "run_id": run_id,
                "kind": kind,
                "cells": int(cells),
                "hits": int(hits),
                "misses": int(misses),
                "status": status,
                "failures": int(failures),
                "time": time.time(),
            }
        )

    def record_failure(self, run_id, failure):
        """Append one quarantined-cell event for ``run_id``.

        ``failure`` is a plain-JSON dict (see
        :meth:`repro.parallel.CellFailure.as_dict`): cell key, error
        repr, attempt count, elapsed seconds.  Failure entries make a
        sweep's ledger self-explanatory -- ``--resume`` recomputes
        exactly these keys, since a quarantined cell never checkpoints.
        """
        event = {"event": "cell_failure", "run_id": run_id, "time": time.time()}
        event.update(failure)
        _append_line(self.ledger_path, canonical_json(event))

    def append_ledger_event(self, event):
        """Append one arbitrary-kind ledger event (tolerant, see above).

        ``event`` must carry ``event`` (the kind) and ``run_id`` keys --
        the latter so :meth:`ledger_runs`'s reader treats unknown kinds
        as well-formed strangers rather than corruption.  The WeHeY
        service persists its pending queue as ``service_pending`` /
        ``service_resume`` events through this; older readers ignore
        them by construction.
        """
        if "event" not in event or "run_id" not in event:
            raise ValueError("ledger events need 'event' and 'run_id' keys")
        return self._append_ledger_tolerant(event)

    def ledger_events(self, kind=None):
        """Every well-formed ledger event, optionally filtered by kind.

        The raw-event twin of :meth:`ledger_runs`, for consumers (the
        service's drain/resume) whose events are not runs.
        """
        events = []
        for ok, event in _iter_jsonl(self.ledger_path):
            if not ok or "event" not in event:
                continue
            if kind is None or event["event"] == kind:
                events.append(event)
        return events

    def ledger_runs(self):
        """Every run, in ledger order; unfinished runs are "interrupted".

        Each entry has ``run_id``, ``kind``, ``cells``, ``hits``,
        ``misses`` (None while interrupted), ``status``, ``failures``
        (a count) and ``cell_failures`` (the quarantined-cell events
        themselves).  Corrupt ledger lines are counted, logged, and
        skipped -- the same tolerance the shard reader applies.
        """
        runs = {}
        order = []
        for ok, event in _iter_jsonl(self.ledger_path):
            if not ok or "run_id" not in event or "event" not in event:
                self.skipped_lines += 1
                logger.debug(
                    "store: skipping corrupt ledger line in %s", self.ledger_path
                )
                continue
            run_id = event["run_id"]
            if event["event"] == "start":
                order.append(run_id)
                runs[run_id] = {
                    "run_id": run_id,
                    "kind": event.get("kind"),
                    "cells": event.get("cells"),
                    "hits": event.get("hits"),
                    "misses": None,
                    "status": "interrupted",
                    "failures": 0,
                    "cell_failures": [],
                    "started": event.get("time"),
                }
            elif event["event"] == "finish" and run_id in runs:
                runs[run_id].update(
                    hits=event.get("hits"),
                    misses=event.get("misses"),
                    status=event.get("status", "complete"),
                    failures=event.get("failures", 0),
                    finished=event.get("time"),
                )
            elif event["event"] == "cell_failure" and run_id in runs:
                runs[run_id]["cell_failures"].append(
                    {
                        key: value
                        for key, value in event.items()
                        if key not in ("event", "run_id")
                    }
                )
        return [runs[run_id] for run_id in order]
