"""The WeHe substrate.

WeHe (Li et al., SIGCOMM 2019) detects traffic differentiation by
replaying a prerecorded application trace and a bit-inverted copy of it
between a client and a server, then comparing the two end-to-end
throughput distributions.  WeHeY is built on top of this machinery
(Section 2.1 / 3.4 of the paper), so we implement it here:

- :mod:`~repro.wehe.traces` -- trace records, bit inversion, the
  Poisson-time modification for UDP and trace extension for TCP;
- :mod:`~repro.wehe.apps` -- the replayed application library (video
  streaming over TCP; Skype, WhatsApp, MS Teams, Zoom, Webex over UDP);
- :mod:`~repro.wehe.replay` -- replay endpoints over the simulator;
- :mod:`~repro.wehe.detection` -- the KS-based differentiation verdict;
- :mod:`~repro.wehe.loss_measurement` -- server-side retransmission
  loss estimation with its two noise sources;
- :mod:`~repro.wehe.corpus` -- the historical test corpus from which
  T_diff (normal throughput variation) is derived.
"""

from repro.wehe.apps import APP_SPECS, make_trace
from repro.wehe.detection import DifferentiationResult, detect_differentiation
from repro.wehe.traces import Trace, bit_invert, extend_to_duration, poissonize

__all__ = [
    "APP_SPECS",
    "make_trace",
    "Trace",
    "bit_invert",
    "poissonize",
    "extend_to_duration",
    "DifferentiationResult",
    "detect_differentiation",
]
