"""The WeHe application trace library.

WeHe ships prerecorded traces for popular services; we cannot
redistribute those, so this module generates statistically equivalent
traces per application *class* (the differentiation algorithms only see
packet sizes and timings, never payload bytes):

- video streaming over TCP (Netflix, YouTube, Disney+, Amazon Prime,
  Twitch): chunked downloads -- bursts of MTU-sized packets at the
  content bitrate;
- real-time communication over UDP (Skype, WhatsApp, MS Teams, Zoom,
  Webex): 20-30 ms packetization with talk-spurt on/off behaviour and
  app-specific size mixtures.

Trace parameters are per-app so the UDP false-negative/false-positive
tables can report per-app rows like the paper's Tables 5 and Figure 6.
"""

from dataclasses import dataclass

import numpy as np

from repro.wehe.traces import Trace


@dataclass(frozen=True)
class AppSpec:
    """Statistical description of one WeHe application."""

    name: str
    protocol: str
    sni: str
    rate_bps: float
    #: (size_bytes, probability) mixture for UDP; MTU payload for TCP.
    packet_sizes: tuple
    #: UDP packetization interval in seconds (mean).
    packet_interval: float = 0.02
    #: probability of being inside a talk spurt (UDP on/off behaviour).
    spurt_on_probability: float = 0.9
    #: mean spurt / gap lengths in seconds.
    spurt_mean_on: float = 3.0
    spurt_mean_off: float = 0.4
    #: TCP chunk period in seconds (video streaming).
    chunk_period: float = 2.0


TCP_MSS_PAYLOAD = 1448

APP_SPECS = {
    "netflix": AppSpec(
        "netflix", "tcp", "nflxvideo.net", 5.0e6, ((TCP_MSS_PAYLOAD, 1.0),)
    ),
    "youtube": AppSpec(
        "youtube", "tcp", "googlevideo.com", 4.5e6, ((TCP_MSS_PAYLOAD, 1.0),)
    ),
    "disneyplus": AppSpec(
        "disneyplus", "tcp", "dssott.com", 5.5e6, ((TCP_MSS_PAYLOAD, 1.0),)
    ),
    "amazonprime": AppSpec(
        "amazonprime", "tcp", "aiv-cdn.net", 4.0e6, ((TCP_MSS_PAYLOAD, 1.0),)
    ),
    "twitch": AppSpec(
        "twitch", "tcp", "ttvnw.net", 3.5e6, ((TCP_MSS_PAYLOAD, 1.0),)
    ),
    "skype": AppSpec(
        "skype",
        "udp",
        "skype.com",
        2.2e6,
        ((1100, 0.55), (640, 0.25), (160, 0.20)),
        packet_interval=0.004,
        spurt_on_probability=0.92,
    ),
    "whatsapp": AppSpec(
        "whatsapp",
        "udp",
        "whatsapp.net",
        1.8e6,
        ((1000, 0.5), (480, 0.3), (120, 0.2)),
        packet_interval=0.004,
        spurt_on_probability=0.88,
    ),
    "msteams": AppSpec(
        "msteams",
        "udp",
        "teams.microsoft.com",
        2.5e6,
        ((1150, 0.6), (700, 0.25), (180, 0.15)),
        packet_interval=0.0035,
        spurt_on_probability=0.94,
    ),
    "zoom": AppSpec(
        "zoom",
        "udp",
        "zoom.us",
        2.8e6,
        ((1200, 0.65), (750, 0.20), (200, 0.15)),
        packet_interval=0.003,
        spurt_on_probability=0.95,
    ),
    "webex": AppSpec(
        "webex",
        "udp",
        "webex.com",
        2.4e6,
        ((1100, 0.6), (620, 0.25), (150, 0.15)),
        packet_interval=0.0035,
        spurt_on_probability=0.93,
    ),
}

TCP_APPS = tuple(name for name, spec in APP_SPECS.items() if spec.protocol == "tcp")
UDP_APPS = tuple(name for name, spec in APP_SPECS.items() if spec.protocol == "udp")


#: Memo of generated traces keyed by (app, duration, rng state).  A
#: replay service seeded from the same ``(seed, entropy)`` pair asks for
#: the same trace with the same generator state every time -- sweeps and
#: benchmark reruns hit the cache instead of re-drawing tens of
#: thousands of packets.  Hits restore the generator to the state it
#: would have had after generation, so cached and uncached runs are
#: bit-identical.
_TRACE_CACHE = {}
_TRACE_CACHE_MAX = 256


def _rng_state_key(rng):
    """Hashable snapshot of a numpy Generator's bit-generator state."""
    return repr(rng.bit_generator.state)


def make_trace(app, duration, rng):
    """Generate an original trace for ``app`` spanning ``duration`` seconds.

    The returned trace carries the app's SNI (so differentiators match
    it); pass it through :func:`repro.wehe.traces.bit_invert` for the
    control replay.
    """
    spec = APP_SPECS.get(app)
    if spec is None:
        raise KeyError(f"unknown app {app!r}; known: {sorted(APP_SPECS)}")
    if duration <= 0:
        raise ValueError("duration must be positive")
    key = (app, float(duration), _rng_state_key(rng))
    hit = _TRACE_CACHE.get(key)
    if hit is not None:
        trace, post_state = hit
        rng.bit_generator.state = post_state
        return trace
    if spec.protocol == "tcp":
        schedule = _tcp_schedule(spec, duration, rng)
    else:
        schedule = _udp_schedule(spec, duration, rng)
    trace = Trace(app=app, protocol=spec.protocol, schedule=schedule, sni=spec.sni)
    if len(_TRACE_CACHE) >= _TRACE_CACHE_MAX:
        _TRACE_CACHE.clear()
    _TRACE_CACHE[key] = (trace, rng.bit_generator.state)
    return trace


def _tcp_schedule(spec, duration, rng):
    """Chunked video download: a burst of MSS packets every chunk period."""
    chunk_bytes = spec.rate_bps / 8.0 * spec.chunk_period
    packets_per_chunk = max(int(chunk_bytes / TCP_MSS_PAYLOAD), 1)
    schedule = []
    t = 0.0
    while t < duration:
        # Within a chunk, packets leave back-to-back at line rate; we
        # space them 0.1 ms apart as a stand-in for serialization.
        for i in range(packets_per_chunk):
            schedule.append((t + i * 1e-4, TCP_MSS_PAYLOAD))
        t += spec.chunk_period * float(rng.uniform(0.9, 1.1))
    return tuple(schedule)


def _udp_schedule(spec, duration, rng):
    """RTC traffic: packetized media with on/off talk spurts."""
    sizes, probs = zip(*spec.packet_sizes)
    sizes = np.array(sizes)
    probs = np.array(probs, dtype=float)
    probs /= probs.sum()
    # CDF + searchsorted over one uniform is bit-identical to
    # ``rng.choice(sizes, p=probs)`` but much cheaper per packet.
    cdf = probs.cumsum()
    cdf /= cdf[-1]
    schedule = []
    t = 0.0
    in_spurt = rng.random() < spec.spurt_on_probability
    spurt_end = t + rng.exponential(
        spec.spurt_mean_on if in_spurt else spec.spurt_mean_off
    )
    while t < duration:
        if t >= spurt_end:
            in_spurt = not in_spurt
            spurt_end = t + rng.exponential(
                spec.spurt_mean_on if in_spurt else spec.spurt_mean_off
            )
        if in_spurt:
            size = int(sizes[cdf.searchsorted(rng.random(), "right")])
            schedule.append((t, size))
            t += spec.packet_interval * float(rng.uniform(0.7, 1.3))
        else:
            t = spurt_end
    if not schedule:
        schedule.append((0.0, int(sizes[0])))
    return tuple(schedule)
