"""Historical WeHe test corpus and the T_diff distribution (Section 4.1).

T_diff captures *normal throughput variation*: for pairs of past WeHe
tests run less than 10 minutes apart by the same client, on the same
app and carrier, it records the relative difference of the two
bit-inverted-replay throughput means.

The paper computes T_diff from the public wehe-data corpus; offline we
build an equivalent corpus two ways:

- :func:`generate_corpus` -- a statistical corpus: per-(client,
  carrier) base rates with multiplicative lognormal test-to-test noise
  (the measured quantity the corpus supplies is exactly this
  variation);
- :func:`repro.experiments.tdiff.simulate_tdiff` -- pairs of actual
  back-to-back simulator replays, when full fidelity is wanted.
"""

from dataclasses import dataclass

import numpy as np

from repro.stats.montecarlo import relative_mean_difference

#: Maximum spacing between tests of a pair (Section 4.1).
PAIR_WINDOW_SECONDS = 600.0


@dataclass(frozen=True)
class HistoricalTest:
    """One past WeHe test (only the fields T_diff needs)."""

    client: str
    app: str
    carrier: str
    timestamp: float
    inverted_mean_bps: float


def generate_corpus(
    rng,
    n_clients=40,
    tests_per_client=4,
    apps=("netflix", "youtube", "zoom"),
    carriers=("carrier-a", "carrier-b"),
    base_rate_range=(2e6, 20e6),
    variation_cv=0.08,
):
    """Generate a synthetic historical corpus.

    Each client gets a base rate per app; successive tests vary by a
    lognormal factor with coefficient of variation ``variation_cv``
    (back-to-back WeHe tests on an undisturbed path differ by a few
    percent -- this knob *is* the normal-variation assumption and is
    recorded in EXPERIMENTS.md).
    """
    if tests_per_client < 2:
        raise ValueError("need at least two tests per client to form pairs")
    sigma = np.sqrt(np.log(1.0 + variation_cv**2))
    corpus = []
    for c in range(n_clients):
        client = f"client-{c}"
        carrier = carriers[c % len(carriers)]
        app = apps[c % len(apps)]
        base = rng.uniform(*base_rate_range)
        t0 = rng.uniform(0, 1e6)
        for k in range(tests_per_client):
            factor = rng.lognormal(-(sigma**2) / 2.0, sigma)
            corpus.append(
                HistoricalTest(
                    client=client,
                    app=app,
                    carrier=carrier,
                    timestamp=t0 + k * rng.uniform(60.0, PAIR_WINDOW_SECONDS - 60.0),
                    inverted_mean_bps=base * factor,
                )
            )
    return corpus


def tdiff_distribution(corpus):
    """Extract the T_diff sample set from a corpus (Section 4.1).

    Pairs are tests by the same client/app/carrier less than 10 minutes
    apart; each contributes ``(T1 - T2) / max(T1, T2)``.  Returns a
    numpy array (may be empty if no pairs qualify).
    """
    by_key = {}
    for test in corpus:
        by_key.setdefault((test.client, test.app, test.carrier), []).append(test)
    values = []
    for tests in by_key.values():
        tests.sort(key=lambda t: t.timestamp)
        for first, second in zip(tests, tests[1:]):
            if second.timestamp - first.timestamp < PAIR_WINDOW_SECONDS:
                values.append(
                    relative_mean_difference(
                        [first.inverted_mean_bps], [second.inverted_mean_bps]
                    )
                )
    return np.asarray(values)
