"""WeHe's differentiation detector (Section 2.1).

The client divides the replay duration into 100 intervals, computes the
throughput per interval for the original and the bit-inverted replay,
builds the two CDFs, and compares them with a two-sample KS test: a
significant difference means traffic differentiation somewhere on the
path.
"""

from dataclasses import dataclass

import numpy as np

from repro.stats.ks import ks_2samp

N_THROUGHPUT_INTERVALS = 100


@dataclass(frozen=True)
class DifferentiationResult:
    """WeHe's verdict for one path."""

    differentiated: bool
    ks_statistic: float
    pvalue: float
    original_mean_bps: float
    inverted_mean_bps: float
    #: WeHe's Area Test statistic (Li et al. 2019): the normalized area
    #: between the two throughput CDFs; ~0 for identical behaviour,
    #: approaching 1 for fully separated distributions.
    area_statistic: float = 0.0

    @property
    def throttled(self):
        """True when the original trace did *worse* (the throttling case)."""
        return self.differentiated and self.original_mean_bps < self.inverted_mean_bps


def area_test_statistic(original_samples, inverted_samples):
    """The area between the two throughput CDFs, normalized.

    WeHe uses this alongside the KS test: the KS statistic is the
    *maximum* CDF gap (sensitive to a single narrow divergence), while
    the area statistic integrates the gap over the throughput range and
    so reflects how different the distributions are overall.
    """
    original = np.sort(np.asarray(original_samples, dtype=float))
    inverted = np.sort(np.asarray(inverted_samples, dtype=float))
    if original.size == 0 or inverted.size == 0:
        raise ValueError("need samples from both replays")
    grid = np.unique(np.concatenate([original, inverted]))
    if grid.size < 2:
        return 0.0
    cdf_original = np.searchsorted(original, grid, side="right") / original.size
    cdf_inverted = np.searchsorted(inverted, grid, side="right") / inverted.size
    widths = np.diff(grid)
    gaps = np.abs(cdf_original - cdf_inverted)[:-1]
    span = grid[-1] - grid[0]
    return float(np.sum(gaps * widths) / span)


def detect_differentiation(
    original_samples, inverted_samples, alpha=0.05, min_relative_gap=0.05
):
    """Compare original vs bit-inverted throughput samples, WeHe-style.

    Both inputs are per-interval throughput arrays (bits/s).  On top of
    the KS significance test, a minimum relative mean gap guards against
    flagging statistically-significant-but-tiny differences -- WeHe
    requires the difference to be practically meaningful as well.
    """
    original = np.asarray(original_samples, dtype=float)
    inverted = np.asarray(inverted_samples, dtype=float)
    if original.size == 0 or inverted.size == 0:
        raise ValueError("need throughput samples from both replays")
    ks = ks_2samp(original, inverted)
    mean_original = float(original.mean())
    mean_inverted = float(inverted.mean())
    top = max(mean_original, mean_inverted)
    relative_gap = 0.0 if top == 0 else abs(mean_original - mean_inverted) / top
    differentiated = ks.pvalue < alpha and relative_gap >= min_relative_gap
    return DifferentiationResult(
        differentiated=differentiated,
        ks_statistic=ks.statistic,
        pvalue=ks.pvalue,
        original_mean_bps=mean_original,
        inverted_mean_bps=mean_inverted,
        area_statistic=area_test_statistic(original, inverted),
    )
