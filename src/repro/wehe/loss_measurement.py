"""Server-side loss measurement for TCP replays.

The client typically cannot observe transport-layer loss (mobile OSes),
so WeHeY estimates it at the server from TCP retransmissions
(Section 3.4).  This signal is noisy in two specific ways (Section 4.2):

1. *Overcounting* -- retransmissions also fire for late (not lost)
   packets, e.g. spurious RTOs;
2. *Delayed registration* -- a loss is logged when the sender detects
   it (duplicate ACKs or timeout), not when the queue dropped it, and
   the delay differs across paths (desynchronization).

The simulator's TCP already produces both effects organically; this
estimator optionally injects *additional* noise so the robustness of
Algorithm 1 can be stress-tested beyond what the simulator generates.
"""

import numpy as np


class RetransmissionLossEstimator:
    """Turns a sender's retransmission log into loss-event timestamps.

    Parameters:
        overcount_rate: probability of duplicating a loss event
            (models measurement tools double-counting rexmits).
        registration_jitter: std-dev (seconds) of extra Gaussian delay
            added to each registration time.
        rng: numpy Generator; required when noise is enabled.
    """

    def __init__(self, overcount_rate=0.0, registration_jitter=0.0, rng=None):
        if not 0.0 <= overcount_rate < 1.0:
            raise ValueError("overcount_rate must be in [0, 1)")
        if registration_jitter < 0.0:
            raise ValueError("registration_jitter must be non-negative")
        if (overcount_rate > 0 or registration_jitter > 0) and rng is None:
            raise ValueError("noise injection requires an rng")
        self.overcount_rate = overcount_rate
        self.registration_jitter = registration_jitter
        self.rng = rng

    def loss_times(self, sender):
        """Loss-event timestamps estimated from ``sender.retx_log``."""
        times = [t for t, _seq, _reason in sender.retx_log]
        if self.registration_jitter > 0 and times:
            jitter = self.rng.normal(0.0, self.registration_jitter, size=len(times))
            times = list(np.maximum(0.0, np.asarray(times) + jitter))
        if self.overcount_rate > 0 and times:
            extra = [t for t in times if self.rng.random() < self.overcount_rate]
            times = times + extra
        return sorted(times)

    def loss_rate(self, sender):
        """Estimated loss rate: retransmissions / transmissions."""
        if sender.packets_sent == 0:
            return 0.0
        return len(self.loss_times(sender)) / sender.packets_sent
