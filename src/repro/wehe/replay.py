"""Replay endpoints: running a trace between a server and the client.

``attach_replay`` wires a trace onto a forward path of a
:class:`~repro.netsim.topology.FigureOneTopology`:

- TCP traces become a bulk :class:`~repro.netsim.tcp.TcpSender` with
  pacing enabled (Section 3.4: congestion control and pacing dictate
  transmission times) running for the replay duration;
- UDP traces become a :class:`~repro.netsim.udp.UdpSender` following
  the (possibly Poisson-modified) schedule.

The returned :class:`ReplayHandle` exposes the client-side throughput
capture and, after the simulation ran, the
:class:`~repro.netsim.capture.PathMeasurements` the detection
algorithms consume -- built from server-side retransmissions for TCP
and client-side sequence gaps for UDP, exactly as in Section 3.4.
"""

import numpy as np

from repro.netsim.capture import FlowCapture, PathMeasurements
from repro.netsim.tcp import TcpReceiver, TcpSender
from repro.netsim.udp import UdpReceiver, UdpSender
from repro.wehe.loss_measurement import RetransmissionLossEstimator
from repro.wehe.traces import MIN_REPLAY_DURATION, extend_to_duration


class TraceAppSource:
    """Application-limits a TCP replay to the trace's byte schedule.

    The WeHe server writes the trace's payload on the trace's own
    timeline; TCP may fall behind (backlog) but can never run ahead of
    what the application has produced.  This is what keeps replay
    slow-start overshoot bounded by the first chunk rather than by the
    congestion window alone.
    """

    def __init__(self, trace, start_at=0.0):
        times = np.asarray([t for t, _ in trace.schedule], dtype=float) + start_at
        sizes = np.asarray([s for _, s in trace.schedule], dtype=float)
        self._times = times
        self._cumulative = np.cumsum(sizes)

    def available_bytes(self, now):
        """Payload bytes the application has written by time ``now``."""
        index = int(np.searchsorted(self._times, now, side="right"))
        if index == 0:
            return 0.0
        return float(self._cumulative[index - 1])

    def next_release_after(self, now):
        """Next time the application writes more data, or None."""
        index = int(np.searchsorted(self._times, now, side="right"))
        if index >= len(self._times):
            return None
        return float(self._times[index])


class ReplayHandle:
    """A live replay: sender + receiver + measurement taps for one path."""

    def __init__(self, trace, sender, receiver, capture, path, rtt, protocol, start_at):
        self.trace = trace
        self.sender = sender
        self.receiver = receiver
        self.capture = capture
        self.path = path
        self.rtt = rtt
        self.protocol = protocol
        self.start_at = start_at

    def throughput_samples(self, n_intervals=100):
        """Client-side per-interval throughput (the WeHe measurement)."""
        return self.capture.throughput_samples(n_intervals=n_intervals)

    def mean_throughput(self):
        return self.capture.mean_throughput()

    def path_measurements(self, loss_estimator=None):
        """Loss/transmission logs for the detection algorithms.

        TCP: server-side retransmission log (noisy by construction);
        UDP: client-side sequence gaps registered at expected arrival.
        """
        if self.protocol == "tcp":
            estimator = loss_estimator or RetransmissionLossEstimator()
            loss_times = estimator.loss_times(self.sender)
            send_times = list(self.sender.send_times)
            # Algorithm 1 scales its interval sweep by the path's
            # *minimum* RTT (line 2); use the measured one.
            rtt = self.sender.min_rtt or self.rtt
        else:
            base_delay = self.path.propagation_delay
            schedule = [
                (self.start_at + t, size) for t, size in self.sender.schedule
            ]
            loss_times = [t for t, _seq in self.receiver.loss_events(schedule, base_delay)]
            send_times = list(self.sender.send_times)
            rtt = self.rtt
        return PathMeasurements(send_times, loss_times, rtt)

    def retransmission_rate(self):
        """Server-side retx rate (TCP) or client-observed loss rate (UDP)."""
        if self.protocol == "tcp":
            return self.sender.retransmission_rate
        sent = self.sender.packets_sent
        if sent == 0:
            return 0.0
        return 1.0 - len(self.receiver.received_seqs) / sent

    def queuing_delay(self):
        """Mean RTT minus min RTT (TCP only; UDP returns 0)."""
        if self.protocol == "tcp":
            return self.sender.mean_queuing_delay()
        return 0.0


def attach_replay(
    sim,
    topology,
    which,
    trace,
    start_at=0.0,
    duration=None,
    dscp=None,
    flow_id=None,
    ack_jitter_rng=None,
):
    """Wire a replay of ``trace`` from server ``which`` onto the topology.

    ``dscp`` defaults to 1 for original traces (a DPI differentiator
    matches the intact SNI) and 0 for bit-inverted ones -- the netsim
    encoding of the paper's content-triggered classification.
    ``duration`` defaults to the extended-trace duration (>= 45 s).
    """
    if dscp is None:
        dscp = 1 if trace.is_original else 0
    if flow_id is None:
        suffix = "orig" if trace.is_original else "inv"
        flow_id = f"replay-{trace.app}-{which}-{suffix}"
    capture = FlowCapture()
    rtt = topology.rtt(which)

    if trace.protocol == "tcp":
        if duration is None:
            duration = max(trace.duration, MIN_REPLAY_DURATION)
        replay_trace = trace
        if replay_trace.duration < duration:
            replay_trace = extend_to_duration(trace, duration)
        receiver = TcpReceiver(sim, flow_id, capture)
        path = topology.forward_path(which, receiver)
        # Reverse-path delay jitter (a couple of ms, as on any real WAN)
        # keeps deterministically paced flows from phase-locking against
        # each other at a shared queue -- a simulator artifact that does
        # not exist in the paper's testbed.
        jitter = None
        if ack_jitter_rng is not None:
            def jitter():
                return float(ack_jitter_rng.uniform(0.0, 0.003))
        reverse = topology.reverse_path(which, None, jitter=jitter)
        sender = TcpSender(
            sim,
            flow_id,
            path,
            receiver,
            reverse,
            dscp=dscp,
            pacing=True,
            start_at=start_at,
            stop_at=start_at + duration,
            app_source=TraceAppSource(replay_trace, start_at),
        )
        reverse.sink = sender
        trace = replay_trace
    else:
        replay_trace = extend_to_duration(trace)
        if duration is not None:
            replay_trace = _truncate(replay_trace, duration)
        receiver = UdpReceiver(sim, flow_id, capture)
        path = topology.forward_path(which, receiver)
        sender = UdpSender(
            sim, flow_id, path, replay_trace.schedule, dscp=dscp, start_at=start_at
        )
        trace = replay_trace

    return ReplayHandle(
        trace, sender, receiver, capture, path, rtt, trace.protocol, start_at
    )


def _truncate(trace, duration):
    from repro.wehe.traces import Trace

    schedule = tuple((t, s) for t, s in trace.schedule if t <= duration)
    if not schedule:
        schedule = (trace.schedule[0],)
    return Trace(trace.app, trace.protocol, schedule, trace.sni)
