"""Trace serialization.

WeHe ships its prerecorded traces as files; this module provides the
equivalent for our synthetic traces: a stable JSON format with a
version field, plus summary statistics used when curating a trace
library.
"""

import json

from repro.wehe.traces import Trace

FORMAT_VERSION = 1


def trace_to_dict(trace):
    """A JSON-serializable representation of a trace."""
    return {
        "version": FORMAT_VERSION,
        "app": trace.app,
        "protocol": trace.protocol,
        "sni": trace.sni,
        "schedule": [[t, s] for t, s in trace.schedule],
    }


def trace_from_dict(data):
    """Inverse of :func:`trace_to_dict` (validates the version)."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {version!r}")
    return Trace(
        app=data["app"],
        protocol=data["protocol"],
        schedule=tuple((float(t), int(s)) for t, s in data["schedule"]),
        sni=data.get("sni"),
    )


def save_trace(trace, path):
    """Write a trace to ``path`` as JSON."""
    with open(path, "w") as handle:
        json.dump(trace_to_dict(trace), handle)


def load_trace(path):
    """Read a trace written by :func:`save_trace`."""
    with open(path) as handle:
        return trace_from_dict(json.load(handle))


def trace_statistics(trace):
    """Summary statistics for curating a trace library."""
    sizes = [s for _, s in trace.schedule]
    times = [t for t, _ in trace.schedule]
    gaps = [b - a for a, b in zip(times, times[1:])]
    return {
        "app": trace.app,
        "protocol": trace.protocol,
        "n_packets": trace.n_packets,
        "total_bytes": trace.total_bytes,
        "duration_s": trace.duration,
        "mean_rate_bps": trace.mean_rate_bps,
        "mean_packet_bytes": sum(sizes) / len(sizes),
        "max_packet_bytes": max(sizes),
        "mean_gap_s": (sum(gaps) / len(gaps)) if gaps else 0.0,
        "original": trace.is_original,
    }
