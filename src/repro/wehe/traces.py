"""Application traces and WeHe/WeHeY trace transformations.

A :class:`Trace` is a prerecorded application session: a schedule of
``(time, size)`` packets plus the plaintext SNI of the service.  WeHe
replays the *original* (SNI intact -- a DPI-based differentiator will
match it) and a *bit-inverted* copy (same sizes and timings, payload
patterns destroyed, so differentiators cannot match it).

WeHeY further modifies the replayed traces (Section 3.4):

- UDP traces get Poisson transmission times (same sizes and average
  rate) so that, by PASTA, loss measurements are unbiased;
- TCP traces are paced by congestion control itself, and are *extended*
  (replayed repeatedly) until the replay lasts at least 45 seconds so
  that enough loss samples accumulate.
"""

from dataclasses import dataclass

import numpy as np

#: Minimum replay duration after extension (Section 3.4).
MIN_REPLAY_DURATION = 45.0


@dataclass(frozen=True)
class Trace:
    """A prerecorded application trace.

    Attributes:
        app: application name (e.g. ``"netflix"``).
        protocol: ``"tcp"`` or ``"udp"``.
        schedule: tuple of ``(time, size)`` pairs, time relative to the
            trace start in seconds, size in payload bytes.
        sni: plaintext server name, or None for bit-inverted traces.
            Differentiation devices match on this (Section 2.1).
    """

    app: str
    protocol: str
    schedule: tuple
    sni: str = None

    def __post_init__(self):
        if self.protocol not in ("tcp", "udp"):
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if not self.schedule:
            raise ValueError("a trace needs at least one packet")
        times = [t for t, _ in self.schedule]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("trace schedule must be time-sorted")
        if any(size <= 0 for _, size in self.schedule):
            raise ValueError("packet sizes must be positive")

    @property
    def is_original(self):
        """True when the SNI is intact (a differentiator would match)."""
        return self.sni is not None

    @property
    def n_packets(self):
        return len(self.schedule)

    @property
    def total_bytes(self):
        return sum(size for _, size in self.schedule)

    @property
    def duration(self):
        return self.schedule[-1][0] - self.schedule[0][0]

    @property
    def mean_rate_bps(self):
        span = self.duration
        if span <= 0:
            return 0.0
        return self.total_bytes * 8.0 / span


def bit_invert(trace):
    """The WeHe control trace: identical sizes/timings, SNI destroyed."""
    return Trace(
        app=trace.app,
        protocol=trace.protocol,
        schedule=trace.schedule,
        sni=None,
    )


#: Memo of Poisson-modified traces keyed by (source trace, rng state);
#: same exact-replay contract as the ``make_trace`` cache (see
#: :mod:`repro.wehe.apps`): a hit restores the generator to its
#: post-generation state, so cached runs are bit-identical.
_POISSONIZE_CACHE = {}
_POISSONIZE_CACHE_MAX = 256


def poissonize(trace, rng):
    """WeHeY's UDP modification (Section 3.4).

    Keeps packet sizes, order, and the average transmission rate, but
    redraws inter-packet gaps from an exponential distribution, making
    the transmission process Poisson.  PASTA then guarantees that the
    per-packet loss observations sample the bottleneck's true loss rate
    without bias.
    """
    if trace.protocol != "udp":
        raise ValueError("poissonize applies to UDP traces only")
    n = trace.n_packets
    if n < 2:
        return trace
    key = (trace, repr(rng.bit_generator.state))
    hit = _POISSONIZE_CACHE.get(key)
    if hit is not None:
        modified, post_state = hit
        rng.bit_generator.state = post_state
        return modified
    mean_gap = trace.duration / (n - 1)
    gaps = rng.exponential(mean_gap, size=n - 1)
    times = np.concatenate([[0.0], np.cumsum(gaps)])
    schedule = tuple(
        (float(t), size) for t, (_, size) in zip(times, trace.schedule)
    )
    modified = Trace(
        app=trace.app, protocol=trace.protocol, schedule=schedule, sni=trace.sni
    )
    if len(_POISSONIZE_CACHE) >= _POISSONIZE_CACHE_MAX:
        _POISSONIZE_CACHE.clear()
    _POISSONIZE_CACHE[key] = (modified, rng.bit_generator.state)
    return modified


def extend_to_duration(trace, min_duration=MIN_REPLAY_DURATION):
    """Repeat a trace until it spans at least ``min_duration`` seconds.

    The paper extends short traces so replays yield enough loss
    measurements for a reliable conclusion (Section 3.4).
    """
    if trace.duration >= min_duration:
        return trace
    if trace.duration <= 0:
        raise ValueError("cannot extend a zero-duration trace")
    period = trace.duration + _median_gap(trace)
    schedule = list(trace.schedule)
    offset = period
    while schedule[-1][0] < min_duration:
        schedule.extend((t + offset, size) for t, size in trace.schedule)
        offset += period
    return Trace(
        app=trace.app,
        protocol=trace.protocol,
        schedule=tuple(schedule),
        sni=trace.sni,
    )


def _median_gap(trace):
    times = [t for t, _ in trace.schedule]
    gaps = [b - a for a, b in zip(times, times[1:])]
    if not gaps:
        return 0.02
    return float(np.median(gaps))
