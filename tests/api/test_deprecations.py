"""Legacy entry points must warn and delegate to repro.api.run_sweep."""

import pytest

import repro.api
from repro.api import SweepResult
from repro.experiments.scenarios import ScenarioConfig
from repro.experiments.tdiff import simulate_tdiff
from repro.experiments.wild import run_table1_sweep
from repro.parallel import run_detection_sweep, run_wild_sweep


@pytest.fixture
def spy_run_sweep(monkeypatch):
    """Capture the request each shim builds without running a real sweep."""
    calls = []

    def fake_run_sweep(request):
        calls.append(request)
        return SweepResult(
            kind=request.kind,
            results=["sentinel"],
            cells=1,
            hits=0,
            misses=1,
        )

    monkeypatch.setattr(repro.api, "run_sweep", fake_run_sweep)
    return calls


def test_run_detection_sweep_warns_and_delegates(spy_run_sweep):
    configs = [ScenarioConfig(app="netflix", duration=4.0, seed=0)]
    with pytest.warns(DeprecationWarning, match="run_detection_sweep"):
        records = run_detection_sweep(configs, jobs=3, entropy=2)
    assert records == ["sentinel"]
    (request,) = spy_run_sweep
    assert request.kind == "detection"
    assert request.jobs == 3
    assert request.params["entropy"] == 2
    assert request.params["configs"] == configs


def test_run_wild_sweep_warns_and_delegates(spy_run_sweep):
    with pytest.warns(DeprecationWarning, match="run_wild_sweep"):
        summaries = run_wild_sweep(["isp_a"], ["netflix"], [0, 1], jobs=2)
    assert summaries == ["sentinel"]
    (request,) = spy_run_sweep
    assert request.kind == "wild"
    assert request.params["isp_names"] == ["isp_a"]
    assert request.params["seeds"] == [0, 1]


def test_simulate_tdiff_warns_and_delegates(spy_run_sweep):
    with pytest.warns(DeprecationWarning, match="simulate_tdiff"):
        values = simulate_tdiff(n_pairs=7, duration=4.0)
    assert values == ["sentinel"]
    (request,) = spy_run_sweep
    assert request.kind == "tdiff"
    assert request.params["n_pairs"] == 7
    assert request.params["duration"] == 4.0


def test_run_table1_sweep_warns_and_delegates(spy_run_sweep):
    with pytest.warns(DeprecationWarning, match="run_table1_sweep"):
        summaries = run_table1_sweep(["isp_a"], apps=("netflix",), seeds=[0])
    assert summaries == ["sentinel"]
    (request,) = spy_run_sweep
    assert request.kind == "wild"
    assert request.params["isp_names"] == ["isp_a"]
