"""The repro.api facade: request validation, result accounting, metrics."""

import pytest

from repro import obs
from repro.api import SweepRequest, SweepResult, run_sweep
from repro.experiments.scenarios import ScenarioConfig
from repro.store import ExperimentStore

DURATION = 4.0


def _configs(n=2):
    return [
        ScenarioConfig(app="netflix", duration=DURATION, seed=seed)
        for seed in range(n)
    ]


class TestSweepRequest:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep kind"):
            SweepRequest(kind="bogus")

    def test_on_result_must_be_callable(self):
        with pytest.raises(TypeError, match="on_result"):
            SweepRequest(kind="detection", on_result="not callable")

    def test_constructors_set_kind(self):
        assert SweepRequest.detection([]).kind == "detection"
        assert SweepRequest.wild().kind == "wild"
        assert SweepRequest.tdiff().kind == "tdiff"

    def test_requests_are_frozen(self):
        request = SweepRequest.detection([])
        with pytest.raises(AttributeError):
            request.jobs = 4

    def test_detection_fidelity_overrides_every_config(self):
        request = SweepRequest.detection(_configs(), fidelity="hybrid")
        assert all(
            config.fidelity == "hybrid" for config in request.params["configs"]
        )
        # Without the knob, per-config fidelity is left alone.
        mixed = _configs() + [_configs()[0].with_(fidelity="hybrid")]
        request = SweepRequest.detection(mixed)
        assert [c.fidelity for c in request.params["configs"]] == [
            "packet",
            "packet",
            "hybrid",
        ]

    def test_wild_and_tdiff_carry_fidelity(self):
        assert SweepRequest.wild().params["fidelity"] == "packet"
        assert (
            SweepRequest.wild(fidelity="hybrid").params["fidelity"] == "hybrid"
        )
        assert SweepRequest.tdiff().params["fidelity"] == "packet"
        assert (
            SweepRequest.tdiff(fidelity="hybrid").params["fidelity"] == "hybrid"
        )


class TestSweepResult:
    def test_len_and_iter_delegate_to_results(self):
        result = SweepResult(
            kind="detection", results=[1, 2, 3], cells=3, hits=0, misses=3
        )
        assert len(result) == 3
        assert list(result) == [1, 2, 3]


class TestRunSweep:
    def test_storeless_sweep_counts_every_cell_a_miss(self):
        configs = _configs()
        result = run_sweep(SweepRequest.detection(configs, jobs=1))
        assert result.kind == "detection"
        assert (result.cells, result.hits, result.misses) == (2, 0, 2)
        assert len(result.results) == 2
        assert result.metrics is None

    def test_store_accounting_cold_then_warm(self, tmp_path):
        configs = _configs()
        store = ExperimentStore(tmp_path / "store")
        cold = run_sweep(SweepRequest.detection(configs, jobs=1, store=store))
        warm = run_sweep(SweepRequest.detection(configs, jobs=1, store=store))
        assert (cold.hits, cold.misses) == (0, 2)
        assert (warm.hits, warm.misses) == (2, 0)
        assert [r.config for r in warm.results] == [r.config for r in cold.results]

    def test_on_result_fires_only_for_misses_with_original_indices(self, tmp_path):
        configs = _configs(3)
        store = ExperimentStore(tmp_path / "store")
        run_sweep(
            SweepRequest.detection([configs[1]], jobs=1, store=store)
        )  # pre-seed the middle cell
        seen = []
        result = run_sweep(
            SweepRequest.detection(
                configs,
                jobs=1,
                store=store,
                on_result=lambda i, item, rec: seen.append((i, item.seed)),
            )
        )
        assert (result.hits, result.misses) == (1, 2)
        assert sorted(seen) == [(0, 0), (2, 2)]

    def test_raising_on_result_does_not_kill_the_sweep(self, caplog):
        def bad_callback(index, item, record):
            raise RuntimeError("callback boom")

        result = run_sweep(
            SweepRequest.detection(_configs(), jobs=1, on_result=bad_callback)
        )
        assert len(result.results) == 2
        assert any("on_result" in message for message in caplog.messages)

    def test_metrics_true_collects_in_memory_only(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        result = run_sweep(
            SweepRequest.detection(_configs(1), jobs=1, metrics=True)
        )
        assert result.metrics["counters"]["netsim.engine.runs"] == 1
        assert list(tmp_path.iterdir()) == []  # nothing written to disk

    def test_metrics_path_also_writes_jsonl(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        result = run_sweep(
            SweepRequest.detection(_configs(1), jobs=1, metrics=str(path))
        )
        assert result.metrics is not None
        first_line = path.read_text().splitlines()[0]
        assert '"type": "meta"' in first_line

    def test_nested_collection_merges_into_outer_sink(self):
        outer = obs.MetricsSink()
        with obs.use_sink(outer):
            result = run_sweep(
                SweepRequest.detection(_configs(1), jobs=1, metrics=True)
            )
        assert result.metrics["counters"]["netsim.engine.runs"] == 1
        assert (
            outer.counters["netsim.engine.runs"]
            == result.metrics["counters"]["netsim.engine.runs"]
        )
