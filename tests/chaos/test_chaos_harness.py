"""Unit tests for the process-level chaos harness itself.

The ``kill`` and ``hang`` sites are never fired in-process here (a test
that SIGKILLs the pytest runner proves little); they are exercised
end-to-end through the supervised pool in ``test_sweep_under_chaos``.
"""

import time

import pytest

from repro.faults import ChaosError, ChaosProfile, chaos_from_env
from repro.faults.chaos import CHAOS_SITES
from repro.faults.injector import FaultInjectionError


class TestProfileConstruction:
    def test_defaults_fire_nothing(self):
        profile = ChaosProfile()
        assert profile.schedule(100) == {}

    def test_probability_bounds_enforced(self):
        with pytest.raises(ValueError):
            ChaosProfile(kill=1.5)
        with pytest.raises(ValueError):
            ChaosProfile(raise_=-0.1)

    def test_smoke_profile_is_named_and_hang_free(self):
        profile = ChaosProfile.smoke()
        assert profile.name == "smoke"
        # No hangs: the CI smoke job runs without a watchdog.
        assert profile.hang == 0.0
        assert profile.kill > 0

    def test_chaos_error_is_a_fault_injection_error(self):
        # Chaos failures sort with the rest of the injected-fault
        # taxonomy, so blanket fault handling catches them too.
        assert issubclass(ChaosError, FaultInjectionError)


class TestSchedulingDeterminism:
    def test_plan_is_pure(self):
        profile = ChaosProfile(kill=0.3, hang=0.2, seed=7)
        first = [profile.plan(i, a) for i in range(20) for a in range(3)]
        second = [profile.plan(i, a) for i in range(20) for a in range(3)]
        assert first == second

    def test_equal_profiles_agree_across_instances(self):
        a = ChaosProfile(kill=0.4, seed=3)
        b = ChaosProfile(kill=0.4, seed=3)
        assert a.schedule(50) == b.schedule(50)

    def test_seed_changes_the_schedule(self):
        a = ChaosProfile(kill=0.4, seed=3)
        b = ChaosProfile(kill=0.4, seed=4)
        assert a.schedule(200) != b.schedule(200)

    def test_attempts_redraw_independently(self):
        # A retried cell must not deterministically re-hit the same
        # fault, or recovery could never converge.
        profile = ChaosProfile(kill=0.6, seed=78)
        assert profile.plan(1, 0) == "kill"
        assert profile.plan(1, 1) is None

    def test_schedule_matches_plan(self):
        profile = ChaosProfile(kill=0.3, hang=0.1, raise_=0.1, slow=0.2, seed=9)
        schedule = profile.schedule(64, attempt=2)
        for index in range(64):
            assert schedule.get(index) == profile.plan(index, 2)
        assert all(action in CHAOS_SITES for action in schedule.values())

    def test_site_precedence_kill_wins(self):
        # With every probability at 1, the first site in CHAOS_SITES
        # shadows the rest.
        profile = ChaosProfile(kill=1.0, hang=1.0, raise_=1.0, slow=1.0)
        assert profile.plan(0, 0) == "kill"


class TestInjection:
    def test_raise_site_raises_chaos_error(self):
        profile = ChaosProfile(raise_=1.0, seed=1)
        with pytest.raises(ChaosError, match="cell 3, attempt 1"):
            profile.inject(3, 1)

    def test_slow_site_sleeps_then_returns(self):
        profile = ChaosProfile(slow=1.0, slow_seconds=0.01, seed=1)
        start = time.monotonic()
        profile.inject(0, 0)
        assert time.monotonic() - start >= 0.01

    def test_no_action_is_a_no_op(self):
        ChaosProfile(seed=1).inject(0, 0)


class TestParsing:
    @pytest.mark.parametrize("spec", ["", "off", "none", None, "  off  "])
    def test_off_specs_mean_no_chaos(self, spec):
        assert ChaosProfile.parse(spec) is None

    def test_named_smoke_profile(self):
        assert ChaosProfile.parse("smoke") == ChaosProfile.smoke()

    def test_key_value_spec(self):
        profile = ChaosProfile.parse("kill=0.3,hang=0.1,seed=7,slow_seconds=0.2")
        assert profile == ChaosProfile(
            kill=0.3, hang=0.1, seed=7, slow_seconds=0.2
        )

    def test_raise_keyword_maps_to_raise_(self):
        assert ChaosProfile.parse("raise=0.5").raise_ == 0.5

    @pytest.mark.parametrize(
        "spec", ["bogus", "kill", "kill=lots", "frob=0.5", "kill=0.2,=3"]
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ValueError):
            ChaosProfile.parse(spec)

    def test_env_activation(self):
        assert chaos_from_env({}) is None
        assert chaos_from_env({"REPRO_CHAOS": "off"}) is None
        profile = chaos_from_env({"REPRO_CHAOS": "kill=0.25,seed=5"})
        assert profile == ChaosProfile(kill=0.25, seed=5)

    def test_env_malformed_spec_raises(self):
        # Silently running *without* chaos when the operator asked for
        # it would invert the point of the harness.
        with pytest.raises(ValueError):
            chaos_from_env({"REPRO_CHAOS": "garbage"})
