"""CLI behaviour under chaos: exit codes, failure table, --json stream.

``raise=1`` makes every attempt of every cell raise *before* the task
runs, so these tests quarantine entire sweeps in well under a second --
no simulation time is spent.
"""

import json

from repro.cli import EXIT_QUARANTINED, main

SWEEP = [
    "sweep", "--app", "zoom", "--duration", "5",
    "--seeds", "3", "--jobs", "2",
]


class TestQuarantineExit:
    def test_exit_code_and_failure_table(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "raise=1")
        code = main(SWEEP)
        assert code == EXIT_QUARANTINED
        captured = capsys.readouterr()
        assert "quarantined cells: 3" in captured.err
        assert "ChaosError" in captured.err

    def test_json_stream_stays_machine_readable(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "raise=1")
        code = main(SWEEP + ["--json"])
        assert code == EXIT_QUARANTINED
        captured = capsys.readouterr()
        records = [json.loads(line) for line in captured.out.splitlines()]
        assert len(records) == 3
        for record in records:
            assert record["status"] == "failed"
            assert record["kind"] == "exception"
            assert "ChaosError" in record["error"]
        # The human-readable report moved to stderr with --json.
        assert "quarantined cells: 3" in captured.err

    def test_strict_aborts_with_exit_1(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "raise=1")
        code = main(SWEEP + ["--strict"])
        assert code == 1
        assert "sweep aborted (--strict)" in capsys.readouterr().err


class TestCleanExit:
    def test_no_chaos_means_exit_0(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        code = main(
            ["sweep", "--app", "zoom", "--duration", "5", "--seeds", "2",
             "--jobs", "1", "--cell-timeout", "60", "--max-cell-retries", "1"]
        )
        assert code == 0
        assert "quarantined" not in capsys.readouterr().out
