"""The chaos equivalence proof: the tentpole acceptance criterion.

A seeded chaos profile (kills, a hang, a poison cell) is injected into
a ``jobs=4`` store-backed detection sweep.  The sweep must complete,
every non-quarantined record must be byte-identical to a clean
``jobs=1`` run, and a follow-up clean run against the same store must
recompute *only* the quarantined cell -- every surviving checkpoint is
reused.

The profile is pinned, and chaos draws are pure SHA-256 functions of
``(seed, cell, attempt)``, so the failure schedule below is exact on
every machine:

    cell 0: hang               -> watchdog kill, retry succeeds
    cell 4: kill, kill, kill   -> quarantined (worker_death, 3 attempts)
    cell 5: kill               -> respawn, retry succeeds
    cell 7: kill               -> respawn, retry succeeds

i.e. 5 worker deaths (within the jobs=4 restart budget of 8), 1
watchdog timeout, 5 retries, 1 quarantine.
"""

import pytest

from repro.api import SweepRequest, run_sweep
from repro.experiments.scenarios import ScenarioConfig, seed_sweep
from repro.faults import ChaosProfile
from repro.store import ExperimentStore, detection_cache_key, record_line

DURATION = 5.0
N_CELLS = 8
MAX_CELL_RETRIES = 2
CHAOS_SPEC = "kill=0.3,hang=0.12,seed=30"
CHAOS = ChaosProfile.parse(CHAOS_SPEC)
QUARANTINED_CELL = 4

FAILING = ("kill", "hang", "raise")


def _configs():
    base = ScenarioConfig(app="zoom", duration=DURATION, seed=0)
    return list(seed_sweep(base, range(1, N_CELLS + 1)))


def _attempt_paths():
    """Walk each cell's retry path through the pinned schedule."""
    paths = {}
    for index in range(N_CELLS):
        actions = []
        for attempt in range(MAX_CELL_RETRIES + 1):
            action = CHAOS.plan(index, attempt)
            actions.append(action)
            if action not in FAILING:
                break
        paths[index] = actions
    return paths


def _counting(monkeypatch):
    """Count actual cell simulations (serial path only)."""
    import repro.parallel.executor as executor

    calls = []
    real = executor.run_detection_experiment

    def counted(config, **kwargs):
        calls.append(config.seed)
        return real(config, **kwargs)

    monkeypatch.setattr(executor, "run_detection_experiment", counted)
    return calls


@pytest.fixture(scope="module")
def clean_records():
    """The ground truth: a clean serial sweep, no chaos, no store."""
    return run_sweep(
        SweepRequest.detection(_configs(), jobs=1)
    ).results


class TestPinnedSchedule:
    """Assert the profile is violent enough *before* spending compute."""

    def test_first_round_kills_and_hangs(self):
        schedule = CHAOS.schedule(N_CELLS, attempt=0)
        kills = [i for i, action in schedule.items() if action == "kill"]
        hangs = [i for i, action in schedule.items() if action == "hang"]
        assert len(kills) >= 2, schedule
        assert len(hangs) >= 1, schedule

    def test_exactly_one_cell_exhausts_its_retries(self):
        paths = _attempt_paths()
        doomed = [
            index
            for index, actions in paths.items()
            if len(actions) == MAX_CELL_RETRIES + 1
            and actions[-1] in FAILING
        ]
        assert doomed == [QUARANTINED_CELL], paths


class TestChaosEquivalence:
    def test_chaos_sweep_matches_clean_run_and_resumes(
        self, tmp_path, monkeypatch, clean_records
    ):
        configs = _configs()
        clean_lines = [record_line(r) for r in clean_records]
        monkeypatch.setenv("REPRO_CHAOS", CHAOS_SPEC)
        store = ExperimentStore(tmp_path / "store")
        result = run_sweep(
            SweepRequest.detection(
                configs,
                jobs=4,
                store=store,
                metrics=True,
                cell_timeout=3.0,
                max_cell_retries=MAX_CELL_RETRIES,
            )
        )

        # The sweep completed despite the chaos -- one cell quarantined.
        assert not result.interrupted
        assert not result.ok
        [failure] = result.failures
        assert failure.index == QUARANTINED_CELL
        assert failure.kind == "worker_death"
        assert failure.attempts == MAX_CELL_RETRIES + 1
        assert failure.key == detection_cache_key(
            configs[QUARANTINED_CELL], fingerprint=store.fingerprint
        )
        assert result.results[QUARANTINED_CELL] is failure

        # Every surviving record is byte-identical to the clean run.
        for index, record in enumerate(result.results):
            if index == QUARANTINED_CELL:
                continue
            assert record_line(record) == clean_lines[index], index

        # The supervision counters match the pinned schedule exactly.
        counters = result.metrics["counters"]
        assert counters["parallel.worker_deaths"] == 5
        assert counters["parallel.cell_timeouts"] == 1
        assert counters["parallel.cell_retries"] == 5
        assert counters["parallel.cells_quarantined"] == 1

        # The ledger tells the same story.
        run = store.ledger_runs()[-1]
        assert run["status"] == "complete"
        assert run["failures"] == 1
        [event] = run["cell_failures"]
        assert event["kind"] == "worker_death"
        assert event["key"] == failure.key

        # Resume without chaos: only the quarantined cell recomputes,
        # and the full record set now matches the clean run.
        monkeypatch.delenv("REPRO_CHAOS")
        calls = _counting(monkeypatch)
        resumed = run_sweep(
            SweepRequest.detection(
                configs, jobs=1, store=ExperimentStore(tmp_path / "store")
            )
        )
        assert calls == [configs[QUARANTINED_CELL].seed]
        assert resumed.ok
        assert [record_line(r) for r in resumed.results] == clean_lines
