"""Edge-case tests for detection results and report plumbing."""

import numpy as np
import pytest

from repro.core.loss_correlation import LossCorrelationResult
from repro.core.throughput_comparison import ThroughputComparisonResult
from repro.wehe.detection import DifferentiationResult, detect_differentiation


class TestDifferentiationResult:
    def test_throttled_requires_both_conditions(self):
        slower = DifferentiationResult(True, 0.5, 0.001, 1e6, 5e6)
        assert slower.throttled
        faster = DifferentiationResult(True, 0.5, 0.001, 5e6, 1e6)
        assert not faster.throttled
        undetected = DifferentiationResult(False, 0.1, 0.4, 1e6, 5e6)
        assert not undetected.throttled

    def test_zero_throughput_edge(self):
        # A dead original replay against a live inverted one.
        rng = np.random.default_rng(1)
        original = np.zeros(100)
        inverted = rng.normal(5e6, 1e5, 100)
        result = detect_differentiation(original, inverted)
        assert result.differentiated
        assert result.throttled

    def test_both_dead_is_not_differentiation(self):
        result = detect_differentiation(np.zeros(100), np.zeros(100))
        assert not result.differentiated


class TestResultTypes:
    def test_loss_result_fraction(self):
        result = LossCorrelationResult(
            common_bottleneck=True, n_correlated=40, n_intervals_tested=41
        )
        assert result.correlated_fraction == pytest.approx(40 / 41)

    def test_loss_result_empty(self):
        result = LossCorrelationResult(
            common_bottleneck=False, n_correlated=0, n_intervals_tested=0
        )
        assert result.correlated_fraction == 0.0

    def test_throughput_result_is_frozen(self):
        result = ThroughputComparisonResult(
            common_bottleneck=True,
            pvalue=0.01,
            odiff=np.array([0.1]),
            tdiff=np.array([0.2]),
            x_mean_bps=1.0,
            y_mean_bps=1.0,
        )
        with pytest.raises(AttributeError):
            result.pvalue = 0.5
