"""Coordinator tests (full Section-3.4 flow) with fast scenarios."""

import numpy as np
import pytest

from repro.core.coordinator import (
    CoordinationStatus,
    WeHeYCoordinator,
    rtts_from_traceroutes,
)
from repro.experiments.scenarios import ScenarioConfig
from repro.mlab.annotations import AnnotationDatabase
from repro.mlab.internet import SyntheticInternet
from repro.mlab.topology_construction import TopologyConstructor
from repro.mlab.traceroute import collect_month
from repro.mlab.verification import TopologyVerifier


@pytest.fixture(scope="module")
def platform():
    rng = np.random.default_rng(41)
    internet = SyntheticInternet(
        rng, icmp_block_fraction=0.0, alias_fraction=0.0
    )
    annotations = AnnotationDatabase(internet)
    records = collect_month(internet, rng, tests_per_client=len(internet.servers))
    database = TopologyConstructor(annotations).build(records)
    return internet, annotations, database, rng


def make_coordinator(platform, route_change=0.0, duration=25.0):
    internet, annotations, database, rng = platform
    scenario = ScenarioConfig(app="zoom", limiter="common", duration=duration)
    verifier = TopologyVerifier(
        internet, annotations, rng, route_change_probability=route_change
    )
    tdiff = np.random.default_rng(9).normal(0.0, 0.08, 80)
    return WeHeYCoordinator(internet, database, verifier, scenario, rng, tdiff)


def client_with_topology(platform):
    internet, _annotations, database, _rng = platform
    for client in internet.clients:
        if database.lookup(client.ip, client.asn):
            return client
    pytest.fail("fixture internet has no suitable topology")


class TestCoordinator:
    def test_completed_test_localizes_collective_throttling(self, platform):
        coordinator = make_coordinator(platform)
        client = client_with_topology(platform)
        report = coordinator.run_test(client.name, app="zoom")
        assert report.status is CoordinationStatus.COMPLETED
        assert report.server_pair is not None
        assert report.localized

    def test_client_without_topology(self, platform):
        internet, _, database, _ = platform
        missing = None
        for client in internet.clients:
            if not database.lookup(client.ip, client.asn):
                missing = client
                break
        if missing is None:
            pytest.skip("every client has a topology in this fixture")
        coordinator = make_coordinator(platform)
        report = coordinator.run_test(missing.name)
        assert report.status is CoordinationStatus.NO_TOPOLOGY
        assert not report.localized

    def test_route_churn_discards_measurements(self, platform):
        coordinator = make_coordinator(platform, route_change=1.0, duration=15.0)
        client = client_with_topology(platform)
        outcomes = set()
        for _ in range(5):
            report = coordinator.run_test(client.name, app="zoom")
            outcomes.add(report.status)
            if report.status is CoordinationStatus.DISCARDED_TOPOLOGY_CHANGED:
                assert report.localization is None
                break
        assert CoordinationStatus.DISCARDED_TOPOLOGY_CHANGED in outcomes

    def test_rtt_estimation_from_traceroutes(self, platform):
        internet, _, database, rng = platform
        client = client_with_topology(platform)
        entry = database.lookup(client.ip, client.asn)[0]
        rtt_1, rtt_2 = rtts_from_traceroutes(
            internet, rng, entry.server_pair, client
        )
        assert 0.005 < rtt_1 < 0.5
        assert 0.005 < rtt_2 < 0.5
