"""Coordinator re-hash recovery: port draws, telemetry, audit trail.

The replay service and localizer are replaced with scripted fakes so
every test pins the *policy* (when to redraw ports, what to keep, what
to count) without simulating, which keeps the file fast and the
assertions exact.
"""

import numpy as np
import pytest

import repro.core.coordinator as coordinator_mod
from repro.core.coordinator import (
    CoordinationStatus,
    WeHeYCoordinator,
    replay_entropy,
)
from repro.core.localizer import (
    FLOWLET_SPLIT,
    MULTIPATH_SUSPECT,
    LocalizationOutcome,
    LocalizationReport,
    Mechanism,
)
from repro.experiments.scenarios import ScenarioConfig
from repro.faults import ReplayAbortedError
from repro.netsim.multipath import EPHEMERAL_PORT_HI, EPHEMERAL_PORT_LO
from repro.obs import metrics as obs_metrics

CLIENT = "c0"


def suspect_report(code=MULTIPATH_SUSPECT, fallback="collective-throttling"):
    return LocalizationReport(
        outcome=LocalizationOutcome.NO_EVIDENCE,
        mechanism=Mechanism.NONE,
        reason="evidence inconsistent with one shared limiter",
        reason_code=code,
        fallback_reason_code=fallback,
    )


def collective_report():
    return LocalizationReport(
        outcome=LocalizationOutcome.EVIDENCE_IN_TARGET_AREA,
        mechanism=Mechanism.COLLECTIVE_THROTTLING,
        reason="loss trends of the two paths are significantly correlated",
        reason_code="collective-throttling",
    )


def no_common_report():
    return LocalizationReport(
        outcome=LocalizationOutcome.NO_EVIDENCE,
        mechanism=Mechanism.NONE,
        reason="no common bottleneck detected",
        reason_code="no-common-bottleneck",
    )


class FakeClient:
    name = CLIENT
    ip = "10.0.0.1"
    asn = 64500


class FakeEntry:
    server_pair = ("s1", "s2")


class FakeInternet:
    def find_client(self, name):
        assert name == CLIENT
        return FakeClient()


class FakeDatabase:
    def lookup(self, ip, asn):
        return [FakeEntry()]

    def invalidate(self, entry):
        pass


class FakeVerifier:
    def verify(self, entry, client_name):
        return True


class Harness:
    """A coordinator whose localizer plays back a scripted report list."""

    def __init__(self, monkeypatch, script, scenario=None, **kwargs):
        self.ports_seen = []
        self.aware_seen = []
        script = list(script)
        ports_seen = self.ports_seen
        aware_seen = self.aware_seen

        class RecordingService:
            def __init__(
                self, config, entropy=0, fault_injector=None, replay_ports=None
            ):
                ports_seen.append(replay_ports)
                self._trace_rng = np.random.default_rng(0)

        class ScriptedLocalizer:
            def __init__(self, rng, tdiff, multipath_aware=False):
                aware_seen.append(multipath_aware)

            def localize(self, service, original, inverted):
                step = script.pop(0)
                if isinstance(step, Exception):
                    raise step
                return step

        monkeypatch.setattr(
            coordinator_mod, "NetsimReplayService", RecordingService
        )
        monkeypatch.setattr(
            coordinator_mod, "WeHeYLocalizer", ScriptedLocalizer
        )
        monkeypatch.setattr(
            coordinator_mod,
            "rtts_from_traceroutes",
            lambda *args, **kw: (0.03, 0.04),
        )
        self.scenario = scenario or ScenarioConfig(
            app="zoom", limiter="common", duration=25.0, multipath=2
        )
        self.coordinator = WeHeYCoordinator(
            FakeInternet(),
            FakeDatabase(),
            FakeVerifier(),
            self.scenario,
            np.random.default_rng(5),
            np.random.default_rng(9).normal(0.0, 0.08, 80),
            **kwargs,
        )

    def run(self):
        return self.coordinator.run_test(CLIENT, app="zoom")


def expected_ports(scenario, n, attempt_index=0):
    rng = np.random.default_rng(
        np.random.SeedSequence(
            [0xEC49, scenario.seed, replay_entropy(CLIENT, attempt_index)]
        )
    )
    return [
        tuple(
            int(p)
            for p in rng.integers(
                EPHEMERAL_PORT_LO, EPHEMERAL_PORT_HI + 1, size=2
            )
        )
        for _ in range(n)
    ]


class TestRehashRecovery:
    def test_retries_until_localized(self, monkeypatch):
        harness = Harness(
            monkeypatch,
            [suspect_report(), suspect_report(), collective_report()],
        )
        report = harness.run()
        assert report.status is CoordinationStatus.COMPLETED
        assert report.localization.reason_code == "collective-throttling"
        assert report.localized
        assert harness.coordinator.telemetry["multipath_retries"] == 2
        assert harness.coordinator.telemetry["multipath_recovered"] == 1

    def test_port_draws_recorded_and_deterministic(self, monkeypatch):
        harness = Harness(
            monkeypatch,
            [suspect_report(), suspect_report(), collective_report()],
        )
        harness.run()
        # First run uses derived default ports; each retry a fresh draw.
        assert harness.ports_seen[0] is None
        assert harness.ports_seen[1:] == expected_ports(harness.scenario, 2)
        for ports in harness.ports_seen[1:]:
            for port in ports:
                assert EPHEMERAL_PORT_LO <= port <= EPHEMERAL_PORT_HI

    def test_audit_log_has_one_record_per_redraw(self, monkeypatch):
        harness = Harness(
            monkeypatch,
            [suspect_report(), suspect_report(), collective_report()],
        )
        report = harness.run()
        rehash = [a for a in report.attempts if a.ports is not None]
        assert len(rehash) == 2
        assert rehash[0].reason == "multipath re-hash retry -> multipath-suspect"
        assert rehash[1].reason == (
            "multipath re-hash retry -> collective-throttling"
        )
        assert [a.ports for a in rehash] == expected_ports(harness.scenario, 2)
        assert all(a.failure is None for a in rehash)
        # The completed record still closes the log.
        assert report.attempts[-1].reason == "completed"

    def test_exhausted_budget_keeps_freshest_suspicion(self, monkeypatch):
        # Draws that come back empty-handed may be split-path collateral:
        # the suspect finding persists, updated by later suspect draws.
        harness = Harness(
            monkeypatch,
            [
                suspect_report(),
                no_common_report(),
                suspect_report(code=FLOWLET_SPLIT, fallback=""),
                no_common_report(),
                no_common_report(),
            ],
        )
        report = harness.run()
        assert report.status is CoordinationStatus.COMPLETED
        assert harness.coordinator.telemetry["multipath_retries"] == 4
        assert harness.coordinator.telemetry["multipath_recovered"] == 0
        assert report.localization.multipath_suspect
        assert report.localization.reason_code == FLOWLET_SPLIT
        assert not report.localized

    def test_no_redraw_without_suspicion(self, monkeypatch):
        harness = Harness(monkeypatch, [collective_report()])
        report = harness.run()
        assert report.status is CoordinationStatus.COMPLETED
        assert harness.ports_seen == [None]
        assert harness.coordinator.telemetry["multipath_retries"] == 0
        assert all(a.ports is None for a in report.attempts)

    def test_retry_budget_configurable(self, monkeypatch):
        harness = Harness(
            monkeypatch,
            [suspect_report(), no_common_report()],
            multipath_rehash_retries=1,
        )
        report = harness.run()
        assert harness.coordinator.telemetry["multipath_retries"] == 1
        assert report.localization.reason_code == MULTIPATH_SUSPECT

    def test_aborted_retry_keeps_last_honest_report(self, monkeypatch):
        harness = Harness(
            monkeypatch,
            [suspect_report(), ReplayAbortedError("mid-retry abort")],
        )
        report = harness.run()
        assert report.status is CoordinationStatus.COMPLETED
        assert report.localization.reason_code == MULTIPATH_SUSPECT
        rehash = [a for a in report.attempts if a.ports is not None]
        assert len(rehash) == 1
        assert rehash[0].reason == "multipath re-hash retry -> replay-aborted"

    def test_awareness_requires_multipath_bundle(self, monkeypatch):
        plain = ScenarioConfig(app="zoom", limiter="common", duration=25.0)
        harness = Harness(monkeypatch, [collective_report()], scenario=plain)
        harness.run()
        assert harness.aware_seen == [False]

        degenerate = plain.with_(multipath=1)
        harness = Harness(
            monkeypatch, [collective_report()], scenario=degenerate
        )
        harness.run()
        assert harness.aware_seen == [False]

        bundled = plain.with_(multipath=2)
        harness = Harness(monkeypatch, [collective_report()], scenario=bundled)
        harness.run()
        assert harness.aware_seen == [True]

    def test_obs_counters_booked(self, monkeypatch):
        harness = Harness(
            monkeypatch, [suspect_report(), collective_report()]
        )
        sink = obs_metrics.MetricsSink()
        with obs_metrics.use_sink(sink):
            harness.run()
        counters = sink.snapshot()["counters"]
        assert counters["coordinator.multipath_retries"] == 1
        assert counters["coordinator.multipath_recovered"] == 1
