"""WeHeY pipeline tests with a controllable fake replay service."""

import numpy as np
import pytest

from repro.core.localizer import (
    LocalizationOutcome,
    Mechanism,
    SimultaneousReplayResult,
    WeHeYLocalizer,
)
from repro.netsim.capture import PathMeasurements
from repro.wehe.traces import Trace


def trace_pair():
    original = Trace("app", "udp", ((0.0, 500), (0.02, 500)), sni="x.com")
    inverted = Trace("app", "udp", ((0.0, 500), (0.02, 500)), sni=None)
    return original, inverted


def throughput(rng, mean, n=100, cv=0.03):
    return rng.normal(mean, cv * mean, n)


def correlated_measurements(rng, shared=True):
    sends = np.sort(rng.uniform(0, 60, 12000))
    trend = 1.0 + 0.8 * np.sin(2 * np.pi * sends / 8.0)
    p1 = np.clip(0.03 * trend, 0, 1)
    if shared:
        p2 = p1
    else:
        p2 = np.clip(0.03 * (2.0 - trend), 0, 1)
    m1 = PathMeasurements(sends, sends[rng.random(len(sends)) < p1], 0.035)
    m2 = PathMeasurements(sends, sends[rng.random(len(sends)) < p2], 0.035)
    return m1, m2


class FakeService:
    """Scripted replay outcomes for each pipeline scenario."""

    def __init__(
        self,
        rng,
        single_mean=2.5e6,
        sim_original_mean=1.25e6,
        sim_inverted_mean=8e6,
        shared_loss_trend=True,
    ):
        self.rng = rng
        self.single_mean = single_mean
        self.sim_original_mean = sim_original_mean
        self.sim_inverted_mean = sim_inverted_mean
        self.shared_loss_trend = shared_loss_trend

    def single_replay(self, trace):
        return throughput(self.rng, self.single_mean)

    def simultaneous_replay(self, trace):
        mean = self.sim_original_mean if trace.is_original else self.sim_inverted_mean
        m1, m2 = correlated_measurements(self.rng, shared=self.shared_loss_trend)
        return SimultaneousReplayResult(
            samples_1=throughput(self.rng, mean),
            samples_2=throughput(self.rng, mean),
            measurements_1=m1,
            measurements_2=m2,
        )


@pytest.fixture
def rng():
    return np.random.default_rng(31)


@pytest.fixture
def tdiff(rng):
    return rng.normal(0.0, 0.08, 100)


class TestPipeline:
    def test_per_client_throttling_localized(self, rng, tdiff):
        # X = 2.5 Mb/s, Y = 2 x 1.25 Mb/s: aggregate adds up.
        service = FakeService(rng)
        localizer = WeHeYLocalizer(rng, tdiff)
        original, inverted = trace_pair()
        report = localizer.localize(service, original, inverted)
        assert report.localized
        assert report.mechanism is Mechanism.PER_CLIENT_THROTTLING

    def test_collective_throttling_localized_by_loss_trends(self, rng, tdiff):
        # Aggregate does NOT add up (4 Mb/s vs 2.5), but loss trends
        # correlate: the second detector fires.
        service = FakeService(rng, sim_original_mean=2.0e6, shared_loss_trend=True)
        localizer = WeHeYLocalizer(rng, tdiff)
        original, inverted = trace_pair()
        report = localizer.localize(service, original, inverted)
        assert report.localized
        assert report.mechanism is Mechanism.COLLECTIVE_THROTTLING

    def test_confirmation_gate_blocks_undifferentiated_paths(self, rng, tdiff):
        # Original and inverted replays perform identically: WeHe's
        # per-path confirmation fails and no detector runs.
        service = FakeService(
            rng, sim_original_mean=8e6, sim_inverted_mean=8e6
        )
        localizer = WeHeYLocalizer(rng, tdiff)
        original, inverted = trace_pair()
        report = localizer.localize(service, original, inverted)
        assert not report.localized
        assert report.mechanism is Mechanism.NONE
        assert "not confirmed" in report.reason
        assert report.throughput_result is None

    def test_no_common_bottleneck_yields_no_evidence(self, rng, tdiff):
        service = FakeService(
            rng, sim_original_mean=2.0e6, shared_loss_trend=False
        )
        localizer = WeHeYLocalizer(rng, tdiff)
        original, inverted = trace_pair()
        report = localizer.localize(service, original, inverted)
        assert report.outcome is LocalizationOutcome.NO_EVIDENCE
        assert report.loss_result is not None
        assert not report.loss_result.common_bottleneck

    def test_skip_flags_disable_detectors(self, rng, tdiff):
        service = FakeService(rng, sim_original_mean=2.0e6, shared_loss_trend=True)
        localizer = WeHeYLocalizer(
            rng, tdiff, skip_loss_correlation=True
        )
        original, inverted = trace_pair()
        report = localizer.localize(service, original, inverted)
        assert not report.localized  # throughput comparison fails; Alg.1 skipped
        assert report.loss_result is None

    def test_report_carries_confirmations(self, rng, tdiff):
        service = FakeService(rng)
        localizer = WeHeYLocalizer(rng, tdiff)
        original, inverted = trace_pair()
        report = localizer.localize(service, original, inverted)
        assert report.confirmation_1.differentiated
        assert report.confirmation_2.differentiated
        assert report.confirmation_1.throttled
