"""Additional localizer scenarios: asymmetric paths, partial confirmation."""

import numpy as np
import pytest

from repro.core.localizer import (
    LocalizationOutcome,
    Mechanism,
    SimultaneousReplayResult,
    WeHeYLocalizer,
)
from repro.netsim.capture import PathMeasurements
from repro.wehe.traces import Trace


def trace_pair():
    original = Trace("app", "udp", ((0.0, 500), (0.02, 500)), sni="x.com")
    return original, Trace("app", "udp", ((0.0, 500), (0.02, 500)), sni=None)


def measurements(rng, shared=True):
    sends = np.sort(rng.uniform(0, 60, 12000))
    trend = 1.0 + 0.8 * np.sin(2 * np.pi * sends / 8.0)
    p2_trend = trend if shared else (2.0 - trend)
    m1 = PathMeasurements(
        sends, sends[rng.random(len(sends)) < np.clip(0.03 * trend, 0, 1)], 0.035
    )
    m2 = PathMeasurements(
        sends, sends[rng.random(len(sends)) < np.clip(0.03 * p2_trend, 0, 1)], 0.035
    )
    return m1, m2


class AsymmetricService:
    """Path 1 differentiates, path 2 does not (e.g. the limiter sits on
    l1 rather than inside the ISP): confirmation must gate this out."""

    def __init__(self, rng):
        self.rng = rng

    def single_replay(self, trace):
        return self.rng.normal(2.5e6, 0.1e6, 100)

    def simultaneous_replay(self, trace):
        mean_1 = 1.2e6 if trace.is_original else 8e6
        mean_2 = 8e6  # never throttled
        m1, m2 = measurements(self.rng)
        return SimultaneousReplayResult(
            samples_1=self.rng.normal(mean_1, 0.05e6, 100),
            samples_2=self.rng.normal(mean_2, 0.05e6, 100),
            measurements_1=m1,
            measurements_2=m2,
        )


@pytest.fixture
def rng():
    return np.random.default_rng(61)


@pytest.fixture
def tdiff(rng):
    return rng.normal(0.0, 0.08, 100)


class TestAsymmetricDifferentiation:
    def test_single_path_differentiation_is_gated(self, rng, tdiff):
        localizer = WeHeYLocalizer(rng, tdiff)
        original, inverted = trace_pair()
        report = localizer.localize(AsymmetricService(rng), original, inverted)
        assert report.outcome is LocalizationOutcome.NO_EVIDENCE
        assert report.confirmation_1.differentiated
        assert not report.confirmation_2.differentiated
        assert report.mechanism is Mechanism.NONE


class TestDetectorPrecedence:
    def test_throughput_comparison_takes_precedence(self, rng, tdiff):
        """When both detectors would fire, the per-client mechanism is
        reported (it is checked first, as in Section 3.1)."""

        class BothService:
            def __init__(self, rng):
                self.rng = rng

            def single_replay(self, trace):
                return self.rng.normal(2.5e6, 0.05e6, 100)

            def simultaneous_replay(self, trace):
                mean = 1.25e6 if trace.is_original else 8e6
                m1, m2 = measurements(self.rng, shared=True)
                return SimultaneousReplayResult(
                    samples_1=self.rng.normal(mean, 0.03e6, 100),
                    samples_2=self.rng.normal(mean, 0.03e6, 100),
                    measurements_1=m1,
                    measurements_2=m2,
                )

        localizer = WeHeYLocalizer(rng, tdiff)
        original, inverted = trace_pair()
        report = localizer.localize(BothService(rng), original, inverted)
        assert report.localized
        assert report.mechanism is Mechanism.PER_CLIENT_THROTTLING
        # Algorithm 1 never ran.
        assert report.loss_result is None
